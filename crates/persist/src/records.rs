//! The persisted vocabulary: what a checkpoint and a journal record carry.

use cqm_anfis::TrainReport;
use cqm_appliance::events::ContextEvent;
use cqm_core::model::CqmModel;
use cqm_core::monitor::MonitorSnapshot;
use cqm_resilience::breaker::FuserSnapshot;
use cqm_resilience::fault::{FaultPlan, ScheduledFault};
use cqm_resilience::supervisor::{StepReport, SupervisorConfig, SupervisorSnapshot};
use serde::{Deserialize, Serialize};

use crate::Result;

/// Everything a restart needs that is *not* derivable from the journal: the
/// trained model, optional training provenance, and the full supervisor /
/// breaker runtime state at the moment the checkpoint was cut.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuntimeCheckpoint {
    /// Number of journaled steps already reflected in this checkpoint;
    /// recovery replays only journal steps with `seq` greater than this.
    pub seq: u64,
    /// The trained model (quality FIS + threshold), version-guarded by
    /// [`CqmModel`] itself on top of the envelope's format version.
    pub model: CqmModel,
    /// ANFIS training provenance, when the model came from hybrid learning.
    pub training: Option<TrainReport>,
    /// Supervisor runtime state: config, ladder, cache, monitor.
    pub supervisor: SupervisorSnapshot,
    /// Circuit-breaker fuser state, when fusion is in play.
    pub fuser: Option<FuserSnapshot>,
}

/// First record of every journal: the deterministic run description. Replay
/// needs the exact window stream, the fault plan, and the supervisor config
/// the run started with.
///
/// The fault plan is stored as its raw parts (`seed` + schedule) rather
/// than as a `FaultPlan`, so rebuilding goes through the validating
/// constructor — a tampered journal cannot smuggle in an unvalidated plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunHeader {
    /// Seed of the fault injector's RNG.
    pub seed: u64,
    /// The scheduled faults.
    pub faults: Vec<ScheduledFault>,
    /// The clean window stream fed to the source.
    pub windows: Vec<Vec<f64>>,
    /// Supervisor config the run started with.
    pub config: SupervisorConfig,
    /// Quality-monitor state at run start, when one was attached (needed so
    /// deterministic replay reproduces drift verdicts).
    pub monitor: Option<MonitorSnapshot>,
}

impl RunHeader {
    /// Rebuild the validated fault plan.
    ///
    /// # Errors
    ///
    /// Returns [`crate::PersistError::InvalidState`] if the journaled
    /// schedule no longer passes `FaultPlan` validation.
    pub fn fault_plan(&self) -> Result<FaultPlan> {
        Ok(FaultPlan::new(self.seed, self.faults.clone())?)
    }
}

/// One journal entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JournalRecord {
    /// Run description; must be the journal's first record.
    Header(RunHeader),
    /// One supervisor step, `seq` counting from 1.
    Step {
        /// 1-based step sequence number.
        seq: u64,
        /// The full step outcome.
        report: StepReport,
    },
    /// A context event published on the office bus.
    Event {
        /// Sequence number of the step that produced the event.
        seq: u64,
        /// The published event.
        event: ContextEvent,
    },
    /// A checkpoint was durably written covering steps `1..=seq`.
    CheckpointMark {
        /// Steps covered by the checkpoint.
        seq: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqm_core::filter::Decision;
    use cqm_core::normalize::Quality;
    use cqm_resilience::degrade::HealthState;
    use cqm_resilience::fault::FaultKind;
    use cqm_resilience::supervisor::{ServedContext, StepFault};
    use cqm_sensors::Context;

    fn header() -> RunHeader {
        RunHeader {
            seed: 42,
            faults: vec![ScheduledFault {
                channel: None,
                kind: FaultKind::Dropout,
                from: 3,
                until: 9,
            }],
            windows: vec![vec![0.1, 0.2], vec![0.3, 0.4]],
            config: SupervisorConfig::default(),
            monitor: None,
        }
    }

    #[test]
    fn header_round_trips_and_rebuilds_plan() {
        let h = header();
        let json = serde_json::to_string(&h).unwrap();
        let back: RunHeader = serde_json::from_str(&json).unwrap();
        assert_eq!(back, h);
        assert!(back.fault_plan().is_ok());
    }

    #[test]
    fn tampered_header_fails_plan_validation() {
        let mut h = header();
        h.faults[0].until = h.faults[0].from; // empty interval: invalid
        assert!(h.fault_plan().is_err());
    }

    #[test]
    fn journal_record_variants_round_trip() {
        let records = vec![
            JournalRecord::Header(header()),
            JournalRecord::Step {
                seq: 1,
                report: StepReport {
                    served: ServedContext::Unavailable,
                    state: HealthState::Degraded,
                    fault: Some(StepFault::Dropout),
                    retries: 2,
                    monitor: None,
                },
            },
            JournalRecord::Event {
                seq: 1,
                event: ContextEvent {
                    source: "awarepen".into(),
                    context: Context::Writing,
                    quality: Quality::Value(0.875),
                    decision: Decision::Accept,
                    timestamp: 1.5,
                },
            },
            JournalRecord::CheckpointMark { seq: 1 },
        ];
        for r in records {
            let json = serde_json::to_string(&r).unwrap();
            let back: JournalRecord = serde_json::from_str(&json).unwrap();
            assert_eq!(back, r);
        }
    }
}
