//! CRC-32 (IEEE 802.3 polynomial), table-driven, std-only.
//!
//! Guards every persisted byte: the checkpoint envelope carries one CRC over
//! its payload, and each journal record carries its own, so a flipped bit or
//! a torn write is detected before any state is trusted.

const POLY: u32 = 0xEDB8_8320;

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        // lint: allow(PANIC_IN_LIB) -- const fn cannot use iterators; the `i < 256` bound matches the table length
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// Incremental CRC-32 state, for checksumming discontiguous fields without
/// concatenating them.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh hasher.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feed more bytes.
    pub fn update(&mut self, data: &[u8]) {
        for &b in data {
            self.state = TABLE[usize::from((self.state ^ u32::from(b)) as u8)] ^ (self.state >> 8);
        }
    }

    /// Finish and produce the checksum.
    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// CRC-32 of `data` (IEEE, init `0xFFFFFFFF`, final xor `0xFFFFFFFF`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let mut h = Crc32::new();
        h.update(b"123");
        h.update(b"456");
        h.update(b"789");
        assert_eq!(h.finalize(), crc32(b"123456789"));
        assert_eq!(Crc32::default().finalize(), crc32(b""));
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = crc32(b"checkpoint payload");
        let mut corrupted = b"checkpoint payload".to_vec();
        for byte in 0..corrupted.len() {
            for bit in 0..8 {
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), base, "flip at {byte}:{bit} undetected");
                corrupted[byte] ^= 1 << bit;
            }
        }
    }
}
