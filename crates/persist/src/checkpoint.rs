//! Versioned, checksummed, atomically-written checkpoints.
//!
//! On-disk envelope (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"CQMCKPT1"
//! 8       4     format version (u32)
//! 12      8     payload length in bytes (u64)
//! 20      4     CRC-32 (IEEE) over version ‖ length ‖ payload (u32)
//! 24      n     payload: JSON of the checkpointed value
//! ```
//!
//! The CRC covers the version and length fields as well as the payload, so
//! a bit flip anywhere but the magic (which has its own check) is detected.
//!
//! Writes are atomic with respect to crashes: the envelope is written to a
//! sibling temp file, fsynced, then renamed over the destination, and the
//! parent directory is fsynced so the rename itself is durable. A crash at
//! any point leaves either the previous checkpoint or the new one — never a
//! half-written file at the destination path.

use std::fs::{self, File};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::crc32::Crc32;
use crate::{PersistError, Result};

/// Magic bytes opening every checkpoint file.
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"CQMCKPT1";

/// Current envelope format version.
pub const CHECKPOINT_VERSION: u32 = 1;

const HEADER_LEN: usize = 8 + 4 + 8 + 4;

/// Refuse to allocate for payloads beyond this (a corrupt length field must
/// not turn into an OOM): 256 MiB.
const MAX_PAYLOAD_LEN: u64 = 256 << 20;

fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().map_or_else(
        || std::ffi::OsString::from("checkpoint"),
        std::ffi::OsStr::to_os_string,
    );
    name.push(".tmp");
    path.with_file_name(name)
}

fn sync_parent_dir(path: &Path) -> Result<()> {
    // Make the rename itself durable. Platforms where directories cannot be
    // fsynced (or opened) would error here; on Linux this succeeds.
    let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) else {
        return Ok(());
    };
    let dir = File::open(parent).map_err(|e| PersistError::io("opening checkpoint dir", &e))?;
    dir.sync_all()
        .map_err(|e| PersistError::io("syncing checkpoint dir", &e))
}

/// Serialize `value` and atomically replace whatever checkpoint is at
/// `path`.
///
/// # Errors
///
/// Returns [`PersistError::Decode`] on serialization failure (e.g. a
/// non-finite float) and [`PersistError::Io`] on any filesystem failure; in
/// both cases the previous checkpoint at `path`, if any, is untouched.
pub fn save_checkpoint<T: Serialize>(path: &Path, value: &T) -> Result<()> {
    let payload = serde_json::to_string(value)?;
    let payload = payload.as_bytes();
    let version_le = CHECKPOINT_VERSION.to_le_bytes();
    let len_le = (payload.len() as u64).to_le_bytes();
    let mut crc = Crc32::new();
    crc.update(&version_le);
    crc.update(&len_le);
    crc.update(payload);
    let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
    bytes.extend_from_slice(CHECKPOINT_MAGIC);
    bytes.extend_from_slice(&version_le);
    bytes.extend_from_slice(&len_le);
    bytes.extend_from_slice(&crc.finalize().to_le_bytes());
    bytes.extend_from_slice(payload);

    let tmp = tmp_sibling(path);
    let mut f =
        File::create(&tmp).map_err(|e| PersistError::io("creating checkpoint temp file", &e))?;
    f.write_all(&bytes)
        .map_err(|e| PersistError::io("writing checkpoint temp file", &e))?;
    f.sync_all()
        .map_err(|e| PersistError::io("syncing checkpoint temp file", &e))?;
    drop(f);
    fs::rename(&tmp, path).map_err(|e| PersistError::io("renaming checkpoint into place", &e))?;
    sync_parent_dir(path)
}

/// Load and validate the checkpoint at `path`.
///
/// # Errors
///
/// * [`PersistError::NoCheckpoint`] if the file does not exist;
/// * [`PersistError::Corrupt`] on bad magic, impossible length, short file
///   or CRC mismatch;
/// * [`PersistError::SchemaVersion`] if written by a newer format;
/// * [`PersistError::Decode`] if the intact payload does not decode as `T`.
pub fn load_checkpoint<T: Deserialize>(path: &Path) -> Result<T> {
    let mut f = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Err(PersistError::NoCheckpoint(path.display().to_string()));
        }
        Err(e) => return Err(PersistError::io("opening checkpoint", &e)),
    };
    let mut bytes = Vec::new();
    f.read_to_end(&mut bytes)
        .map_err(|e| PersistError::io("reading checkpoint", &e))?;
    decode_checkpoint_bytes(&bytes)
}

/// Validate and decode checkpoint *bytes* already in memory — the envelope
/// half of [`load_checkpoint`] without the filesystem half, for callers that
/// source the bytes elsewhere (e.g. a fault-injected read path that mutilates
/// the returned copy, where the CRC here is exactly what catches it).
///
/// # Errors
///
/// * [`PersistError::Corrupt`] on bad magic, impossible length, short input
///   or CRC mismatch;
/// * [`PersistError::SchemaVersion`] if written by a newer format;
/// * [`PersistError::Decode`] if the intact payload does not decode as `T`.
pub fn decode_checkpoint_bytes<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    if bytes.len() < HEADER_LEN {
        return Err(PersistError::Corrupt(format!(
            "checkpoint shorter than its {HEADER_LEN}-byte header ({} bytes)",
            bytes.len()
        )));
    }
    if &bytes[0..8] != CHECKPOINT_MAGIC {
        return Err(PersistError::Corrupt("bad checkpoint magic".into()));
    }
    let version = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    if version > CHECKPOINT_VERSION {
        return Err(PersistError::SchemaVersion {
            found: version,
            supported: CHECKPOINT_VERSION,
        });
    }
    let len = u64::from_le_bytes([
        bytes[12], bytes[13], bytes[14], bytes[15], bytes[16], bytes[17], bytes[18], bytes[19],
    ]);
    if len > MAX_PAYLOAD_LEN {
        return Err(PersistError::Corrupt(format!(
            "checkpoint claims impossible payload length {len}"
        )));
    }
    let expected_crc = u32::from_le_bytes([bytes[20], bytes[21], bytes[22], bytes[23]]);
    let payload = &bytes[HEADER_LEN..];
    if payload.len() as u64 != len {
        return Err(PersistError::Corrupt(format!(
            "checkpoint payload is {} bytes but header claims {len}",
            payload.len()
        )));
    }
    let mut crc = Crc32::new();
    crc.update(&bytes[8..12]);
    crc.update(&bytes[12..20]);
    crc.update(payload);
    let actual_crc = crc.finalize();
    if actual_crc != expected_crc {
        return Err(PersistError::Corrupt(format!(
            "checkpoint CRC mismatch (stored {expected_crc:#010x}, computed {actual_crc:#010x})"
        )));
    }
    let text = std::str::from_utf8(payload)
        .map_err(|e| PersistError::Decode(format!("checkpoint payload not UTF-8: {e}")))?;
    Ok(serde_json::from_str(text)?)
}

/// A reusable handle on one checkpoint path: the same atomic-save /
/// validated-load discipline as the free functions, packaged so a long-lived
/// component (e.g. a server doing warm start + shutdown checkpointing) can
/// hold the destination once instead of threading a `&Path` everywhere.
#[derive(Debug, Clone)]
pub struct CheckpointHandle {
    path: PathBuf,
}

impl CheckpointHandle {
    /// Bind the handle to `path`. Nothing is touched on disk until a
    /// save/load call.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        CheckpointHandle { path: path.into() }
    }

    /// The bound checkpoint path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Whether a file currently exists at the bound path (it may still fail
    /// validation on load).
    pub fn exists(&self) -> bool {
        self.path.exists()
    }

    /// Atomically replace the checkpoint; see [`save_checkpoint`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`save_checkpoint`].
    pub fn save<T: Serialize>(&self, value: &T) -> Result<()> {
        save_checkpoint(&self.path, value)
    }

    /// Load and validate the checkpoint; see [`load_checkpoint`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`load_checkpoint`].
    pub fn load<T: Deserialize>(&self) -> Result<T> {
        load_checkpoint(&self.path)
    }

    /// Like [`CheckpointHandle::load`], but maps the missing-file case to
    /// `None` so "cold start" is not an error path.
    ///
    /// # Errors
    ///
    /// Same conditions as [`load_checkpoint`] except
    /// [`PersistError::NoCheckpoint`], which becomes `Ok(None)`.
    pub fn try_load<T: Deserialize>(&self) -> Result<Option<T>> {
        match load_checkpoint(&self.path) {
            Ok(v) => Ok(Some(v)),
            Err(PersistError::NoCheckpoint(_)) => Ok(None),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "cqm_persist_ckpt_{tag}_{}",
            std::process::id()
        ));
        fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Payload {
        name: String,
        values: Vec<f64>,
        count: u64,
    }

    fn payload() -> Payload {
        Payload {
            name: "office".into(),
            values: vec![0.1, 0.25, 1.0 / 3.0],
            count: 42,
        }
    }

    #[test]
    fn round_trip_preserves_floats_bit_exactly() {
        let dir = scratch_dir("round_trip");
        let path = dir.join("ckpt.bin");
        save_checkpoint(&path, &payload()).unwrap();
        let back: Payload = load_checkpoint(&path).unwrap();
        assert_eq!(back, payload());
        for (a, b) in back.values.iter().zip(payload().values.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_no_checkpoint() {
        let dir = scratch_dir("missing");
        let err = load_checkpoint::<Payload>(&dir.join("nope.bin")).unwrap_err();
        assert!(matches!(err, PersistError::NoCheckpoint(_)));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn overwrite_is_atomic_no_tmp_left_behind() {
        let dir = scratch_dir("atomic");
        let path = dir.join("ckpt.bin");
        save_checkpoint(&path, &payload()).unwrap();
        let mut second = payload();
        second.count = 43;
        save_checkpoint(&path, &second).unwrap();
        let back: Payload = load_checkpoint(&path).unwrap();
        assert_eq!(back.count, 43);
        // The temp file was renamed away.
        assert!(!tmp_sibling(&path).exists());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let dir = scratch_dir("flip");
        let path = dir.join("ckpt.bin");
        save_checkpoint(&path, &payload()).unwrap();
        let pristine = fs::read(&path).unwrap();
        for i in 0..pristine.len() {
            let mut corrupted = pristine.clone();
            corrupted[i] ^= 0x01;
            fs::write(&path, &corrupted).unwrap();
            match load_checkpoint::<Payload>(&path) {
                // A flip in the version field may masquerade as a future
                // schema; a payload flip may still be valid JSON of the
                // wrong shape. All are typed errors — never a panic, and
                // never a silently-wrong success.
                Err(_) => {}
                Ok(back) => {
                    // A flip inside a JSON number can produce a different
                    // but well-formed payload; CRC makes that impossible.
                    panic!("byte {i} flip went undetected, decoded {back:?}");
                }
            }
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncation_at_every_length_is_detected() {
        let dir = scratch_dir("trunc");
        let path = dir.join("ckpt.bin");
        save_checkpoint(&path, &payload()).unwrap();
        let pristine = fs::read(&path).unwrap();
        for keep in 0..pristine.len() {
            fs::write(&path, &pristine[..keep]).unwrap();
            assert!(
                load_checkpoint::<Payload>(&path).is_err(),
                "truncation to {keep} bytes went undetected"
            );
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn handle_round_trip_and_cold_start() {
        let dir = scratch_dir("handle");
        let handle = CheckpointHandle::new(dir.join("ckpt.bin"));
        assert!(!handle.exists());
        assert_eq!(handle.try_load::<Payload>().unwrap(), None);
        assert!(matches!(
            handle.load::<Payload>().unwrap_err(),
            PersistError::NoCheckpoint(_)
        ));
        handle.save(&payload()).unwrap();
        assert!(handle.exists());
        assert_eq!(handle.load::<Payload>().unwrap(), payload());
        assert_eq!(handle.try_load::<Payload>().unwrap(), Some(payload()));
        // Corruption is still an error through try_load, not a silent None.
        let mut bytes = fs::read(handle.path()).unwrap();
        bytes[30] ^= 0xff;
        fs::write(handle.path(), &bytes).unwrap();
        assert!(handle.try_load::<Payload>().is_err());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn future_version_rejected() {
        let dir = scratch_dir("version");
        let path = dir.join("ckpt.bin");
        save_checkpoint(&path, &payload()).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        bytes[8..12].copy_from_slice(&(CHECKPOINT_VERSION + 1).to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        let err = load_checkpoint::<Payload>(&path).unwrap_err();
        assert!(matches!(err, PersistError::SchemaVersion { .. }));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn oversized_length_claim_rejected_without_allocation() {
        let dir = scratch_dir("oversize");
        let path = dir.join("ckpt.bin");
        save_checkpoint(&path, &payload()).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        bytes[12..20].copy_from_slice(&u64::MAX.to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        let err = load_checkpoint::<Payload>(&path).unwrap_err();
        assert!(matches!(err, PersistError::Corrupt(_)));
        fs::remove_dir_all(&dir).ok();
    }
}
