//! # cqm-persist — crash-safe persistence for the CQM runtime
//!
//! A deployed appliance must survive a power cut without retraining or
//! forgetting where its degradation ladder stood. This crate provides the
//! three durability primitives (DESIGN.md §8 documents the formats):
//!
//! * [`checkpoint`] — versioned, checksummed snapshots of the whole runtime
//!   (model, training state, supervisor, breaker fuser), written atomically
//!   via temp-file + fsync + rename so a crash mid-save never corrupts the
//!   last good checkpoint;
//! * [`journal`] — a write-ahead log of length-prefixed, CRC-guarded
//!   records with batched fsync. A torn tail (crash mid-append) is detected
//!   and truncated back to the last valid record instead of failing;
//! * [`store`] — [`store::CheckpointStore`], a tenant-keyed directory of
//!   checkpoints (`<dir>/<key>.ckpt` with strict key validation) so a model
//!   fleet can treat disk as the source of truth for which tenants exist;
//! * [`recovery`] — [`recovery::RecoveryManager`], which reloads the last
//!   good checkpoint, replays the journal tail to rebuild the supervisor
//!   (ladder position, last-good-context cache, monitor history), and can
//!   *verify* the recovery by re-running the journaled fault plan through a
//!   fresh system and demanding bit-identical step reports.
//!
//! Everything is std-only: no external I/O or serialization crates beyond
//! the vendored `serde`/`serde_json` shims already used by `cqm-core`.

#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod crc32;
pub mod journal;
pub mod records;
pub mod recovery;
pub mod store;

pub use checkpoint::{
    decode_checkpoint_bytes, load_checkpoint, save_checkpoint, CheckpointHandle, CHECKPOINT_MAGIC,
    CHECKPOINT_VERSION,
};
pub use store::{validate_key, CheckpointStore, MAX_KEY_LEN};
pub use journal::{JournalScan, JournalWriter};
pub use records::{JournalRecord, RunHeader, RuntimeCheckpoint};
pub use recovery::{RecoveredRun, RecoveryManager};

/// Errors produced by the persistence layer.
///
/// Every failure mode a crash or corruption can produce maps to a typed
/// variant — persistence code never panics on bad bytes and never silently
/// swallows an I/O error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// An OS-level I/O failure, tagged with the operation that failed.
    Io {
        /// What the layer was doing ("create checkpoint temp file", …).
        op: String,
        /// The underlying `std::io::Error`, stringified.
        detail: String,
    },
    /// Stored bytes failed an integrity check (bad magic, CRC mismatch,
    /// impossible length, missing header record).
    Corrupt(String),
    /// The checkpoint was written by a newer, unknown format version.
    SchemaVersion {
        /// Version found in the file.
        found: u32,
        /// Newest version this build understands.
        supported: u32,
    },
    /// Bytes passed their CRC but did not decode to the expected type.
    Decode(String),
    /// No checkpoint exists at the expected path (first boot, or wiped).
    NoCheckpoint(String),
    /// A decoded snapshot failed semantic revalidation in the owning crate
    /// (invalid policy, bad threshold, dimension mismatch).
    InvalidState(String),
    /// Deterministic replay of the journaled run diverged from the journal.
    ReplayDivergence {
        /// Zero-based step index of the first divergence.
        step: usize,
        /// Human-readable description of the mismatch.
        detail: String,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io { op, detail } => write!(f, "i/o failure while {op}: {detail}"),
            PersistError::Corrupt(msg) => write!(f, "corrupt persistence data: {msg}"),
            PersistError::SchemaVersion { found, supported } => write!(
                f,
                "checkpoint version {found} is newer than supported {supported}"
            ),
            PersistError::Decode(msg) => write!(f, "decode failure: {msg}"),
            PersistError::NoCheckpoint(path) => write!(f, "no checkpoint at {path}"),
            PersistError::InvalidState(msg) => write!(f, "restored state invalid: {msg}"),
            PersistError::ReplayDivergence { step, detail } => {
                write!(f, "replay diverged from journal at step {step}: {detail}")
            }
        }
    }
}

impl std::error::Error for PersistError {}

impl PersistError {
    /// Tag a `std::io::Error` with the operation that produced it.
    pub fn io(op: impl Into<String>, e: &std::io::Error) -> Self {
        PersistError::Io {
            op: op.into(),
            detail: e.to_string(),
        }
    }
}

impl From<serde::Error> for PersistError {
    fn from(e: serde::Error) -> Self {
        PersistError::Decode(e.to_string())
    }
}

impl From<cqm_core::CqmError> for PersistError {
    fn from(e: cqm_core::CqmError) -> Self {
        PersistError::InvalidState(e.to_string())
    }
}

impl From<cqm_resilience::ResilienceError> for PersistError {
    fn from(e: cqm_resilience::ResilienceError) -> Self {
        PersistError::InvalidState(e.to_string())
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, PersistError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_covers_variants() {
        let cases: Vec<PersistError> = vec![
            PersistError::io("writing", &std::io::Error::other("disk full")),
            PersistError::Corrupt("bad magic".into()),
            PersistError::SchemaVersion {
                found: 9,
                supported: 1,
            },
            PersistError::Decode("not a map".into()),
            PersistError::NoCheckpoint("/tmp/x".into()),
            PersistError::InvalidState("threshold 2".into()),
            PersistError::ReplayDivergence {
                step: 3,
                detail: "class mismatch".into(),
            },
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_conversions() {
        let e: PersistError = serde::Error::msg("bad json").into();
        assert!(matches!(e, PersistError::Decode(_)));
        let e: PersistError = cqm_core::CqmError::InvalidInput("dim".into()).into();
        assert!(matches!(e, PersistError::InvalidState(_)));
        let e: PersistError =
            cqm_resilience::ResilienceError::InvalidConfig("zero".into()).into();
        assert!(matches!(e, PersistError::InvalidState(_)));
    }
}
