//! Append-only write-ahead journal with torn-tail recovery.
//!
//! Record framing (integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     payload length in bytes (u32)
//! 4       4     CRC-32 (IEEE) over length ‖ payload (u32)
//! 8       n     payload: JSON of one record
//! ```
//!
//! Appends are buffered by the OS and fsynced every `sync_every` records
//! (`sync_every = 1` gives per-record durability at per-record fsync cost).
//! A crash can therefore tear the tail of the file: a partial length
//! prefix, a partial payload, or a complete-looking record whose CRC fails.
//! [`scan`] stops at the first invalid frame and reports how many trailing
//! bytes are garbage; [`scan_and_repair`] additionally truncates the file
//! back to the last valid record so appending can resume.
//!
//! A corrupt frame is indistinguishable from a torn one by design — both
//! truncate. What cannot happen is a *panic* or a silently-wrong record:
//! every byte behind a passing CRC either decodes or surfaces
//! [`PersistError::Decode`].

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::crc32::Crc32;
use crate::{PersistError, Result};

const FRAME_HEADER_LEN: usize = 8;

/// Refuse to allocate for records beyond this (a corrupt length prefix must
/// not turn into an OOM): 64 MiB.
const MAX_RECORD_LEN: u32 = 64 << 20;

/// Appending half of the journal.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
    pending: usize,
    sync_every: usize,
    appended: u64,
}

impl JournalWriter {
    /// Start a fresh journal at `path`, truncating any existing file.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] on filesystem failure and
    /// [`PersistError::InvalidState`] for `sync_every == 0`.
    pub fn create(path: &Path, sync_every: usize) -> Result<Self> {
        let file = File::create(path).map_err(|e| PersistError::io("creating journal", &e))?;
        Self::with_file(file, sync_every)
    }

    /// Open an existing journal for appending. Call
    /// [`scan_and_repair`] first so a torn tail is truncated before new
    /// records land after it.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] on filesystem failure and
    /// [`PersistError::InvalidState`] for `sync_every == 0`.
    pub fn open_append(path: &Path, sync_every: usize) -> Result<Self> {
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| PersistError::io("opening journal for append", &e))?;
        Self::with_file(file, sync_every)
    }

    fn with_file(file: File, sync_every: usize) -> Result<Self> {
        if sync_every == 0 {
            return Err(PersistError::InvalidState(
                "journal sync_every must be positive".into(),
            ));
        }
        Ok(JournalWriter {
            file,
            pending: 0,
            sync_every,
            appended: 0,
        })
    }

    /// Append one record, fsyncing if the batch is full.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Decode`] on serialization failure and
    /// [`PersistError::Io`] on write/sync failure.
    pub fn append<T: Serialize>(&mut self, record: &T) -> Result<()> {
        let json = serde_json::to_string(record)?;
        let payload = json.as_bytes();
        if payload.len() > MAX_RECORD_LEN as usize {
            return Err(PersistError::InvalidState(format!(
                "journal record of {} bytes exceeds the {MAX_RECORD_LEN}-byte cap",
                payload.len()
            )));
        }
        let len_le = (payload.len() as u32).to_le_bytes();
        let mut crc = Crc32::new();
        crc.update(&len_le);
        crc.update(payload);
        let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
        frame.extend_from_slice(&len_le);
        frame.extend_from_slice(&crc.finalize().to_le_bytes());
        frame.extend_from_slice(payload);
        self.file
            .write_all(&frame)
            .map_err(|e| PersistError::io("appending journal record", &e))?;
        self.appended += 1;
        self.pending += 1;
        if self.pending >= self.sync_every {
            self.sync()?;
        }
        Ok(())
    }

    /// Force everything appended so far to stable storage.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] on fsync failure.
    pub fn sync(&mut self) -> Result<()> {
        self.file
            .sync_data()
            .map_err(|e| PersistError::io("syncing journal", &e))?;
        self.pending = 0;
        Ok(())
    }

    /// Records appended through this writer (not counting pre-existing ones
    /// when opened with [`JournalWriter::open_append`]).
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Records appended since the last fsync.
    pub fn pending(&self) -> usize {
        self.pending
    }
}

impl Drop for JournalWriter {
    fn drop(&mut self) {
        // Callers that care about the result must call `sync()` themselves;
        // a Drop impl cannot report failure and must not panic.
        // lint: allow(IO_SWALLOWED) -- Drop cannot propagate errors; explicit sync() is the checked path
        let _ = self.file.sync_data();
    }
}

/// Result of scanning a journal file.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalScan<T> {
    /// Every record up to the first invalid frame, in append order.
    pub records: Vec<T>,
    /// Byte length of the valid prefix.
    pub valid_len: u64,
    /// Trailing bytes past the valid prefix (torn or corrupt tail).
    pub truncated_bytes: u64,
}

/// Read every valid record from the journal at `path`, stopping cleanly at
/// a torn or corrupt tail.
///
/// # Errors
///
/// * [`PersistError::Io`] if the file cannot be read at all;
/// * [`PersistError::Decode`] if a CRC-valid record does not decode as `T`
///   (intact bytes of the wrong shape are *not* a torn tail).
pub fn scan<T: Deserialize>(path: &Path) -> Result<JournalScan<T>> {
    let mut f = File::open(path).map_err(|e| PersistError::io("opening journal", &e))?;
    let mut bytes = Vec::new();
    f.read_to_end(&mut bytes)
        .map_err(|e| PersistError::io("reading journal", &e))?;

    let mut records = Vec::new();
    let mut pos = 0usize;
    let mut valid_len = 0u64;
    while bytes.len() - pos >= FRAME_HEADER_LEN {
        let Some(header) = bytes.get(pos..pos + FRAME_HEADER_LEN) else {
            break;
        };
        let mut word = [0u8; 4];
        word.copy_from_slice(&header[..4]);
        let len = u32::from_le_bytes(word);
        word.copy_from_slice(&header[4..8]);
        let stored_crc = u32::from_le_bytes(word);
        if len > MAX_RECORD_LEN {
            break; // corrupt length prefix: treat as tail garbage
        }
        let start = pos + FRAME_HEADER_LEN;
        let Some(end) = start.checked_add(len as usize).filter(|&e| e <= bytes.len()) else {
            break; // frame runs past EOF: torn payload
        };
        let payload = &bytes[start..end];
        let mut crc = Crc32::new();
        crc.update(&bytes[pos..pos + 4]);
        crc.update(payload);
        if crc.finalize() != stored_crc {
            break; // torn or flipped frame
        }
        let text = std::str::from_utf8(payload)
            .map_err(|e| PersistError::Decode(format!("journal record not UTF-8: {e}")))?;
        records.push(serde_json::from_str(text)?);
        pos = end;
        valid_len = end as u64;
    }
    Ok(JournalScan {
        records,
        valid_len,
        truncated_bytes: bytes.len() as u64 - valid_len,
    })
}

/// [`scan`], then truncate the file back to its valid prefix so appends can
/// resume after the last good record.
///
/// # Errors
///
/// Same as [`scan`], plus [`PersistError::Io`] if the truncation fails.
pub fn scan_and_repair<T: Deserialize>(path: &Path) -> Result<JournalScan<T>> {
    let result = scan::<T>(path)?;
    if result.truncated_bytes > 0 {
        let f = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| PersistError::io("opening journal for repair", &e))?;
        f.set_len(result.valid_len)
            .map_err(|e| PersistError::io("truncating torn journal tail", &e))?;
        f.sync_all()
            .map_err(|e| PersistError::io("syncing repaired journal", &e))?;
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "cqm_persist_journal_{tag}_{}",
            std::process::id()
        ));
        fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Rec {
        seq: u64,
        value: f64,
        label: String,
    }

    fn rec(seq: u64) -> Rec {
        Rec {
            seq,
            value: seq as f64 / 7.0,
            label: format!("record-{seq}"),
        }
    }

    fn write_n(path: &Path, n: u64, sync_every: usize) {
        let mut w = JournalWriter::create(path, sync_every).unwrap();
        for i in 0..n {
            w.append(&rec(i)).unwrap();
        }
        w.sync().unwrap();
    }

    #[test]
    fn round_trip_in_order() {
        let dir = scratch_dir("round_trip");
        let path = dir.join("wal.log");
        write_n(&path, 25, 8);
        let scanned: JournalScan<Rec> = scan(&path).unwrap();
        assert_eq!(scanned.records.len(), 25);
        assert_eq!(scanned.truncated_bytes, 0);
        for (i, r) in scanned.records.iter().enumerate() {
            assert_eq!(r, &rec(i as u64));
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sync_batching_counts() {
        let dir = scratch_dir("batching");
        let path = dir.join("wal.log");
        let mut w = JournalWriter::create(&path, 3).unwrap();
        w.append(&rec(0)).unwrap();
        w.append(&rec(1)).unwrap();
        assert_eq!(w.pending(), 2);
        w.append(&rec(2)).unwrap(); // batch full: auto-sync
        assert_eq!(w.pending(), 0);
        assert_eq!(w.appended(), 3);
        assert!(JournalWriter::create(&path, 0).is_err());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncation_at_every_offset_never_panics_and_keeps_whole_records() {
        let dir = scratch_dir("torn");
        let path = dir.join("wal.log");
        write_n(&path, 10, 4);
        let pristine = fs::read(&path).unwrap();
        // Record boundaries, for checking the scan stops exactly there.
        let full: JournalScan<Rec> = scan(&path).unwrap();
        assert_eq!(full.records.len(), 10);
        for keep in 0..pristine.len() {
            fs::write(&path, &pristine[..keep]).unwrap();
            let scanned: JournalScan<Rec> = scan(&path).unwrap();
            // Whatever survived is an exact prefix of the original stream.
            assert!(scanned.records.len() <= 10);
            for (i, r) in scanned.records.iter().enumerate() {
                assert_eq!(r, &rec(i as u64), "truncate-to-{keep} corrupted record {i}");
            }
            assert_eq!(
                scanned.valid_len + scanned.truncated_bytes,
                keep as u64,
                "byte accounting at truncation {keep}"
            );
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn repair_truncates_then_append_resumes() {
        let dir = scratch_dir("repair");
        let path = dir.join("wal.log");
        write_n(&path, 6, 2);
        // Tear the tail mid-record.
        let pristine = fs::read(&path).unwrap();
        fs::write(&path, &pristine[..pristine.len() - 5]).unwrap();
        let repaired: JournalScan<Rec> = scan_and_repair(&path).unwrap();
        assert_eq!(repaired.records.len(), 5);
        assert_eq!(fs::metadata(&path).unwrap().len(), repaired.valid_len);
        // Appending after repair yields a clean 6-record journal again.
        let mut w = JournalWriter::open_append(&path, 1).unwrap();
        w.append(&rec(5)).unwrap();
        let rescanned: JournalScan<Rec> = scan(&path).unwrap();
        assert_eq!(rescanned.records.len(), 6);
        assert_eq!(rescanned.truncated_bytes, 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mid_file_corruption_truncates_from_there() {
        let dir = scratch_dir("midflip");
        let path = dir.join("wal.log");
        write_n(&path, 8, 4);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        let scanned: JournalScan<Rec> = scan(&path).unwrap();
        assert!(scanned.records.len() < 8);
        for (i, r) in scanned.records.iter().enumerate() {
            assert_eq!(r, &rec(i as u64));
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn random_byte_flips_never_panic() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let dir = scratch_dir("fuzz");
        let path = dir.join("wal.log");
        write_n(&path, 12, 4);
        let pristine = fs::read(&path).unwrap();
        let mut rng = StdRng::seed_from_u64(0xC0FF_EE00);
        for _ in 0..200 {
            let mut bytes = pristine.clone();
            let flips = rng.gen_range(1..4);
            for _ in 0..flips {
                let i = rng.gen_range(0..bytes.len());
                let bit = rng.gen_range(0..8u32);
                bytes[i] ^= 1u8 << bit;
            }
            fs::write(&path, &bytes).unwrap();
            // Must either scan a valid prefix or return a typed error
            // (flips inside JSON text behind an unluckily-still-matching
            // CRC are astronomically unlikely, but Decode covers them).
            match scan::<Rec>(&path) {
                Ok(s) => {
                    for (i, r) in s.records.iter().enumerate() {
                        assert_eq!(r.seq, i as u64);
                    }
                }
                Err(
                    PersistError::Decode(_) | PersistError::Corrupt(_) | PersistError::Io { .. },
                ) => {}
                Err(other) => panic!("unexpected error class: {other}"),
            }
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn oversized_length_prefix_is_tail_garbage() {
        let dir = scratch_dir("oversize");
        let path = dir.join("wal.log");
        write_n(&path, 2, 1);
        let mut bytes = fs::read(&path).unwrap();
        let tail = bytes.len();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0xAB; 12]);
        fs::write(&path, &bytes).unwrap();
        let scanned: JournalScan<Rec> = scan(&path).unwrap();
        assert_eq!(scanned.records.len(), 2);
        assert_eq!(scanned.valid_len, tail as u64);
        fs::remove_dir_all(&dir).ok();
    }
}
