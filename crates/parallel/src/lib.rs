//! # cqm-parallel — deterministic data parallelism on scoped threads
//!
//! The runtime promise of this workspace (see DESIGN.md §9) is that *thread
//! count never changes a result*: the crash-recovery machinery in
//! `cqm-persist` proves recovery by **bit-identical replay**, so a model
//! trained on 8 cores must replay exactly on 1. This crate provides the two
//! primitives that make parallel hot loops safe under that contract:
//!
//! * [`WorkerPool::par_map_chunks`] — embarrassingly parallel maps. Each
//!   output element is produced by exactly one closure call, and outputs are
//!   concatenated in input order, so results cannot depend on scheduling.
//! * [`WorkerPool::par_reduce_ordered`] — deterministic reductions. Chunk
//!   boundaries are a pure function of the input length and the caller's
//!   fixed `chunk_len` (never the thread count), each chunk's partial is
//!   accumulated sequentially within the chunk, and partials are folded
//!   **strictly in chunk order**. Floating-point accumulation order is
//!   therefore identical whether 1 or 8 workers ran the chunks.
//!
//! Work distribution uses an atomic chunk cursor (idle workers steal the
//! next chunk index), which affects only *which thread* computes a chunk —
//! never the chunk boundaries or the merge order. There is no
//! atomics-ordered float accumulation anywhere.
//!
//! The pool is std-only (`std::thread::scope`); a pool with one thread runs
//! everything inline on the caller's thread, which is both the serial
//! reference semantics and the zero-overhead default.
//!
//! ```
//! use cqm_parallel::WorkerPool;
//!
//! let xs: Vec<f64> = (0..1000).map(|i| i as f64).collect();
//! let serial = WorkerPool::serial();
//! let pool = WorkerPool::new(4);
//! let a = serial.par_reduce_ordered(xs.len(), 64, |c| {
//!     xs[c.start..c.end].iter().sum::<f64>()
//! }, |p, q| p + q).unwrap_or(0.0);
//! let b = pool.par_reduce_ordered(xs.len(), 64, |c| {
//!     xs[c.start..c.end].iter().sum::<f64>()
//! }, |p, q| p + q).unwrap_or(0.0);
//! assert_eq!(a.to_bits(), b.to_bits());
//! ```

// lint: allow(PANIC_IN_LIB, file) -- a worker panic must propagate to the caller (join + resume), and chunk-slot indices come from the dispatcher's own enumeration

use std::sync::atomic::{AtomicUsize, Ordering};

/// Default chunk length for reductions over training samples. Fixed here so
/// every call site shares one deterministic granularity: datasets at or
/// below this size reduce in a single chunk, i.e. exactly like the plain
/// sequential loop.
pub const REDUCE_CHUNK: usize = 256;

/// One contiguous slice of the input index space `[start, end)`.
///
/// Boundaries are a pure function of `(len, chunk_len)` — see
/// [`chunk_bounds`] — so a `Chunk` carries no scheduling information.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk {
    /// Position of this chunk in the deterministic chunk sequence.
    pub index: usize,
    /// First input index covered (inclusive).
    pub start: usize,
    /// One past the last input index covered (exclusive).
    pub end: usize,
}

impl Chunk {
    /// Number of input indices covered.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the chunk covers nothing (never produced by [`chunk_bounds`]).
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// Deterministic chunk boundaries: `len` indices split into runs of
/// `chunk_len` (the last run may be shorter). Depends only on the two
/// arguments — in particular **not** on the worker count — which is what
/// makes chunked float reductions thread-count invariant.
pub fn chunk_bounds(len: usize, chunk_len: usize) -> Vec<Chunk> {
    let chunk_len = chunk_len.max(1);
    let mut out = Vec::with_capacity(len.div_ceil(chunk_len));
    let mut start = 0;
    let mut index = 0;
    while start < len {
        let end = (start + chunk_len).min(len);
        out.push(Chunk { index, start, end });
        start = end;
        index += 1;
    }
    out
}

/// A fixed-size scoped-thread worker pool.
///
/// The pool holds no OS threads between calls: each parallel operation
/// spawns scoped workers, drains the chunk queue, and joins them. That keeps
/// the type trivially `Send + Sync + Clone` and free of lifecycle state —
/// the costs show up only on inputs large enough to be worth splitting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerPool {
    threads: usize,
}

impl Default for WorkerPool {
    fn default() -> Self {
        WorkerPool::serial()
    }
}

impl WorkerPool {
    /// Pool with exactly `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        WorkerPool {
            threads: threads.max(1),
        }
    }

    /// The serial pool: one worker, everything runs inline on the calling
    /// thread. This is the reference semantics all other pools must match
    /// bit for bit.
    pub fn serial() -> Self {
        WorkerPool { threads: 1 }
    }

    /// Pool sized to the machine (`std::thread::available_parallelism`),
    /// falling back to serial when the count is unavailable.
    pub fn auto() -> Self {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        WorkerPool::new(threads)
    }

    /// Number of workers.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `f` once per chunk of `chunk_bounds(len, chunk_len)` and return
    /// the per-chunk results **in chunk order**. Which worker runs which
    /// chunk is unspecified; the output is not.
    pub fn run_chunks<R, F>(&self, len: usize, chunk_len: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Chunk) -> R + Sync,
    {
        let chunks = chunk_bounds(len, chunk_len);
        let workers = self.threads.min(chunks.len());
        if workers <= 1 {
            return chunks.into_iter().map(f).collect();
        }
        let cursor = AtomicUsize::new(0);
        let (chunks_ref, cursor_ref, f_ref) = (&chunks, &cursor, &f);
        let parts: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(move || {
                        let mut done = Vec::new();
                        loop {
                            // The cursor only decides which worker computes a
                            // chunk; results are re-ordered by chunk index
                            // below, so this race is result-invisible.
                            let k = cursor_ref.fetch_add(1, Ordering::Relaxed);
                            let Some(chunk) = chunks_ref.get(k) else {
                                break;
                            };
                            done.push((k, f_ref(*chunk)));
                        }
                        done
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("cqm-parallel worker panicked"))
                .collect()
        });
        let mut slots: Vec<Option<R>> = Vec::with_capacity(chunks.len());
        slots.resize_with(chunks.len(), || None);
        for (k, r) in parts.into_iter().flatten() {
            slots[k] = Some(r);
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("chunk cursor dispatches every index exactly once"))
            .collect()
    }

    /// Parallel map: `out[i] = f(i, &items[i])`, outputs concatenated in
    /// input order. Because every element is computed independently, the
    /// result is bit-identical for **any** `chunk_len` and thread count;
    /// `chunk_len` only tunes scheduling granularity.
    pub fn par_map_chunks<T, U, F>(&self, items: &[T], chunk_len: usize, f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &T) -> U + Sync,
    {
        let parts = self.run_chunks(items.len(), chunk_len, |c| {
            let mut out = Vec::with_capacity(c.len());
            for i in c.start..c.end {
                out.push(f(i, &items[i]));
            }
            out
        });
        let mut merged = Vec::with_capacity(items.len());
        for part in parts {
            merged.extend(part);
        }
        merged
    }

    /// Deterministic ordered reduction: `map` turns each chunk into a
    /// partial, `fold` combines partials **strictly in chunk order**.
    /// Returns `None` for an empty index space.
    ///
    /// The float-determinism contract: for fixed `(len, chunk_len)` the
    /// accumulation tree is fixed, so results are bit-identical at every
    /// thread count — including 1. Callers must treat `chunk_len` as part of
    /// the algorithm definition (use a named constant, e.g.
    /// [`REDUCE_CHUNK`]), never derive it from the machine.
    pub fn par_reduce_ordered<A, M, F>(
        &self,
        len: usize,
        chunk_len: usize,
        map: M,
        mut fold: F,
    ) -> Option<A>
    where
        A: Send,
        M: Fn(Chunk) -> A + Sync,
        F: FnMut(A, A) -> A,
    {
        self.run_chunks(len, chunk_len, map)
            .into_iter()
            .reduce(|a, b| fold(a, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_bounds_cover_the_index_space() {
        for len in [0usize, 1, 5, 64, 65, 1000] {
            for chunk in [1usize, 7, 64, 4096] {
                let chunks = chunk_bounds(len, chunk);
                let covered: usize = chunks.iter().map(Chunk::len).sum();
                assert_eq!(covered, len, "len={len} chunk={chunk}");
                for (i, c) in chunks.iter().enumerate() {
                    assert_eq!(c.index, i);
                    assert!(!c.is_empty());
                    if i > 0 {
                        assert_eq!(chunks[i - 1].end, c.start, "contiguous");
                    }
                }
            }
        }
        assert!(chunk_bounds(0, 8).is_empty());
    }

    #[test]
    fn chunk_bounds_ignore_zero_chunk_len() {
        let chunks = chunk_bounds(3, 0);
        assert_eq!(chunks.len(), 3, "clamped to 1");
    }

    #[test]
    fn map_preserves_order_at_every_thread_count() {
        let items: Vec<usize> = (0..997).collect();
        let expect: Vec<usize> = items.iter().map(|&x| x * 3 + 1).collect();
        for threads in [1usize, 2, 3, 8] {
            let pool = WorkerPool::new(threads);
            let got = pool.par_map_chunks(&items, 10, |i, &x| {
                assert_eq!(i, x, "index matches item position");
                x * 3 + 1
            });
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn float_reduction_is_bit_identical_across_thread_counts() {
        // A sum designed to be order-sensitive: wildly varying magnitudes.
        let xs: Vec<f64> = (0..2000)
            .map(|i| (i as f64 * 0.731).sin() * 10f64.powi((i % 13) as i32 - 6))
            .collect();
        let sum_chunk =
            |c: Chunk| -> f64 { xs[c.start..c.end].iter().sum() };
        let reference = WorkerPool::serial()
            .par_reduce_ordered(xs.len(), REDUCE_CHUNK, sum_chunk, |a, b| a + b)
            .unwrap();
        for threads in [2usize, 3, 8] {
            let got = WorkerPool::new(threads)
                .par_reduce_ordered(xs.len(), REDUCE_CHUNK, sum_chunk, |a, b| a + b)
                .unwrap();
            assert_eq!(got.to_bits(), reference.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn single_chunk_reduction_equals_sequential_loop() {
        // At or below the chunk length the chunked reduction *is* the plain
        // sequential loop — no semantic change for small datasets.
        let xs: Vec<f64> = (0..200).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let sequential: f64 = xs.iter().sum();
        let chunked = WorkerPool::new(8)
            .par_reduce_ordered(xs.len(), REDUCE_CHUNK, |c| xs[c.start..c.end].iter().sum::<f64>(), |a, b| {
                a + b
            })
            .unwrap();
        assert_eq!(sequential.to_bits(), chunked.to_bits());
    }

    #[test]
    fn empty_inputs() {
        let pool = WorkerPool::new(4);
        let mapped: Vec<i32> = pool.par_map_chunks(&[] as &[i32], 8, |_, &x| x);
        assert!(mapped.is_empty());
        let reduced: Option<i32> = pool.par_reduce_ordered(0, 8, |_| 1, |a, b| a + b);
        assert!(reduced.is_none());
    }

    #[test]
    fn more_threads_than_chunks_is_fine() {
        let items = [1.0f64, 2.0, 3.0];
        let got = WorkerPool::new(64).par_map_chunks(&items, 1, |_, &x| x * 2.0);
        assert_eq!(got, vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn pool_constructors() {
        assert_eq!(WorkerPool::new(0).threads(), 1);
        assert_eq!(WorkerPool::serial().threads(), 1);
        assert_eq!(WorkerPool::default().threads(), 1);
        assert!(WorkerPool::auto().threads() >= 1);
    }

    #[test]
    fn run_chunks_returns_chunk_order() {
        let parts = WorkerPool::new(3).run_chunks(10, 3, |c| c.index * 100 + c.start);
        assert_eq!(parts, vec![0, 103, 206, 309]);
    }
}
