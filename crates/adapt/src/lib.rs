//! # cqm-adapt — online adaptation for the Context Quality Measure
//!
//! The paper trains the quality measure once, offline (§2.2), and the §5
//! outlook asks for the obvious next step: keep it honest as the
//! environment changes. This crate closes that training loop *online*:
//!
//! * [`window`] — a bounded sliding window of labeled observations with
//!   deterministic oldest-first eviction; the only sample store the
//!   adaptation loop ever reads, so memory is O(capacity) forever.
//! * [`drift`] — a Page–Hinkley detector over the quality margin `q − s`
//!   (the §2.3 threshold signal). Explicit Stable → Warn → Drift states,
//!   seeded + replayable: the statistic is a pure fold over observations.
//! * [`rls`] — recursive least squares for the TSK consequents, layered on
//!   the batch LSE seam in `cqm-anfis`. Streaming updates are bit-identical
//!   to the batch RLS sweep at any worker count; the difference to the SVD
//!   batch solution is bounded and documented (DESIGN.md §14).
//! * [`evolve`] — evolving rule structure: a sample whose subtractive
//!   potential against the window exceeds the accept ratio seeds a new
//!   rule; rules whose centers collapse onto each other are merged.
//! * [`supervisor`] — [`supervisor::AdaptationSupervisor`] wires it all
//!   together: observe → window + detector; on confirmed drift retrain in
//!   the background via `cqm-parallel`, validate the candidate (holdout
//!   RMSE, checkpoint round-trip, replay probe), promote through
//!   `CqmServer::swap_model`, roll back to last-good on regression. The
//!   serve hot path is never blocked.
//!
//! The complementary *accept-rate* monitor (`cqm_core::monitor`) answers
//! "is the filter discarding more than usual"; this crate answers "has the
//! world changed under the model, and can we fix it live".

#![forbid(unsafe_code)]

pub mod drift;
pub mod evolve;
pub mod rls;
pub mod supervisor;
pub mod window;

pub use drift::{DriftConfig, DriftDetector, DriftState};
pub use evolve::{EvolveConfig, RuleEvolution};
pub use rls::StreamingConsequents;
pub use supervisor::{
    holdout_rmse, AdaptationConfig, AdaptationOutcome, AdaptationStats, AdaptationSupervisor,
    Candidate,
};
pub use window::{AdaptSample, SlidingWindow};

/// Errors produced by the adaptation layer.
#[derive(Debug)]
pub enum AdaptError {
    /// A configuration parameter is outside its domain.
    InvalidConfig {
        /// Parameter name.
        name: &'static str,
        /// Offending value (integer parameters are cast).
        value: f64,
    },
    /// The window holds too few samples for the requested operation.
    NotEnoughData {
        /// Samples available.
        have: usize,
        /// Samples required.
        need: usize,
    },
    /// A candidate model failed validation and was not promoted.
    CandidateRejected(String),
    /// Propagated from the CQM core.
    Core(cqm_core::CqmError),
    /// Propagated from ANFIS / least squares.
    Anfis(cqm_anfis::AnfisError),
    /// Propagated from clustering.
    Cluster(cqm_cluster::ClusterError),
    /// Propagated from the statistical analysis.
    Stats(cqm_stats::StatsError),
    /// Propagated from the serving layer.
    Serve(cqm_serve::ServeError),
    /// Propagated from persistence.
    Persist(cqm_persist::PersistError),
}

impl std::fmt::Display for AdaptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdaptError::InvalidConfig { name, value } => {
                write!(f, "invalid config: {name} = {value}")
            }
            AdaptError::NotEnoughData { have, need } => {
                write!(f, "not enough data: have {have}, need {need}")
            }
            AdaptError::CandidateRejected(msg) => write!(f, "candidate rejected: {msg}"),
            AdaptError::Core(e) => write!(f, "core error: {e}"),
            AdaptError::Anfis(e) => write!(f, "anfis error: {e}"),
            AdaptError::Cluster(e) => write!(f, "cluster error: {e}"),
            AdaptError::Stats(e) => write!(f, "stats error: {e}"),
            AdaptError::Serve(e) => write!(f, "serve error: {e}"),
            AdaptError::Persist(e) => write!(f, "persist error: {e}"),
        }
    }
}

impl std::error::Error for AdaptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AdaptError::Core(e) => Some(e),
            AdaptError::Anfis(e) => Some(e),
            AdaptError::Cluster(e) => Some(e),
            AdaptError::Stats(e) => Some(e),
            AdaptError::Serve(e) => Some(e),
            AdaptError::Persist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cqm_core::CqmError> for AdaptError {
    fn from(e: cqm_core::CqmError) -> Self {
        AdaptError::Core(e)
    }
}

impl From<cqm_anfis::AnfisError> for AdaptError {
    fn from(e: cqm_anfis::AnfisError) -> Self {
        AdaptError::Anfis(e)
    }
}

impl From<cqm_cluster::ClusterError> for AdaptError {
    fn from(e: cqm_cluster::ClusterError) -> Self {
        AdaptError::Cluster(e)
    }
}

impl From<cqm_stats::StatsError> for AdaptError {
    fn from(e: cqm_stats::StatsError) -> Self {
        AdaptError::Stats(e)
    }
}

impl From<cqm_serve::ServeError> for AdaptError {
    fn from(e: cqm_serve::ServeError) -> Self {
        AdaptError::Serve(e)
    }
}

impl From<cqm_persist::PersistError> for AdaptError {
    fn from(e: cqm_persist::PersistError) -> Self {
        AdaptError::Persist(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, AdaptError>;
