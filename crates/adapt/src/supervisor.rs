//! The adaptation supervisor: observe → detect → retrain → validate →
//! promote, with rollback to last-good.
//!
//! [`AdaptationSupervisor`] closes the paper's offline training loop
//! online. It rides *beside* the serve hot path, never in it:
//!
//! 1. **observe** — every labeled observation is scored by the live model
//!    (classify + quality), the margin `q − s` feeds the Page–Hinkley
//!    [`DriftDetector`], and the sample enters the [`SlidingWindow`].
//! 2. **detect** — the supervisor does nothing until the detector
//!    *confirms* drift; warnings are surfaced but trigger no retrain, so a
//!    noisy hour cannot thrash the model.
//! 3. **retrain** — on confirmed drift the rule structure is evolved
//!    against the window ([`RuleEvolution`]; the O(n²) potential field
//!    runs on the supervisor's `cqm-parallel` worker pool) and the TSK
//!    consequents are re-estimated by streaming RLS
//!    ([`StreamingConsequents`]) warm-started from the live coefficients
//!    (same structure) or from the evolved structure's zeros. The
//!    operating threshold is re-derived exactly as §2.3 does offline:
//!    Gaussian MLE per outcome group, intersection point.
//! 4. **validate** — the candidate must (a) beat the live model's RMSE on
//!    a deterministic holdout split of the window, and (b) survive a
//!    `cqm-persist` checkpoint round-trip with bit-exact quality replay —
//!    a model that cannot round-trip through the swap machinery is
//!    rejected *before* the swap is attempted.
//! 5. **promote** — through [`CqmServer::swap_model`], the registry's
//!    zero-drop validated swap. A failed swap (registry already rolled
//!    back to last-good) is counted and reported, never propagated as a
//!    panic: the serve path keeps answering on the old model either way.
//!
//! Every stage is a deterministic function of the observation stream, so
//! a seeded replay reproduces the same retrain, the same candidate, and
//! the same promotion decision.

use std::path::PathBuf;

use cqm_core::classifier::{ClassId, Classifier};
use cqm_core::model::{CqmModel, MODEL_VERSION};
use cqm_core::normalize::Quality;
use cqm_core::quality::QualityMeasure;
use cqm_parallel::WorkerPool;
use cqm_persist::CheckpointHandle;
use cqm_serve::{CqmServer, ServeCheckpoint, ServedModel};
use cqm_stats::mle::QualityGroups;
use cqm_stats::threshold::optimal_threshold;

use crate::drift::{DriftConfig, DriftDetector, DriftState};
use crate::evolve::{EvolveConfig, EvolvedRules, RuleEvolution};
use crate::rls::StreamingConsequents;
use crate::window::{AdaptSample, SlidingWindow};
use crate::{AdaptError, Result};

/// Quality value substituted for the ε error state when computing RMSE
/// against the 0/1 rightness target: maximally uninformative, penalizing
/// ε equally against both outcomes.
const EPSILON_QUALITY: f64 = 0.5;

/// Configuration of the adaptation loop.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptationConfig {
    /// Sliding-window capacity (samples retained for retraining).
    pub window_capacity: usize,
    /// Minimum samples in the window before a retrain is attempted.
    pub min_window_fill: usize,
    /// Every k-th window sample goes to the validation holdout.
    pub holdout_every: usize,
    /// Drift detector parameters.
    pub drift: DriftConfig,
    /// Evolving rule-structure parameters.
    pub evolve: EvolveConfig,
    /// RLS covariance initialization `P = γI`.
    pub rls_gamma: f64,
    /// RLS forgetting factor λ ∈ (0, 1].
    pub rls_lambda: f64,
    /// Passes of streaming RLS over the training split.
    pub rls_epochs: usize,
    /// Acceptance bar: candidate holdout RMSE must be at most
    /// `live RMSE × max_holdout_ratio`.
    pub max_holdout_ratio: f64,
    /// Worker threads for the background retrain (0 = serial).
    pub workers: usize,
}

impl Default for AdaptationConfig {
    fn default() -> Self {
        AdaptationConfig {
            window_capacity: 240,
            min_window_fill: 60,
            holdout_every: 5,
            drift: DriftConfig::default(),
            evolve: EvolveConfig::default(),
            rls_gamma: 1e6,
            rls_lambda: 1.0,
            rls_epochs: 2,
            max_holdout_ratio: 1.0,
            workers: 0,
        }
    }
}

impl AdaptationConfig {
    /// Validate the parameter domains.
    ///
    /// # Errors
    ///
    /// Returns [`AdaptError::InvalidConfig`] on the first out-of-domain
    /// parameter; propagates nested config validation.
    pub fn validate(&self) -> Result<()> {
        if self.window_capacity == 0 {
            return Err(AdaptError::InvalidConfig {
                name: "window_capacity",
                value: 0.0,
            });
        }
        if self.min_window_fill < 8 || self.min_window_fill > self.window_capacity {
            return Err(AdaptError::InvalidConfig {
                name: "min_window_fill",
                value: self.min_window_fill as f64,
            });
        }
        if self.holdout_every < 2 {
            return Err(AdaptError::InvalidConfig {
                name: "holdout_every",
                value: self.holdout_every as f64,
            });
        }
        if !(self.rls_gamma > 0.0 && self.rls_gamma.is_finite()) {
            return Err(AdaptError::InvalidConfig {
                name: "rls_gamma",
                value: self.rls_gamma,
            });
        }
        if !(self.rls_lambda > 0.0 && self.rls_lambda <= 1.0) {
            return Err(AdaptError::InvalidConfig {
                name: "rls_lambda",
                value: self.rls_lambda,
            });
        }
        if self.rls_epochs == 0 {
            return Err(AdaptError::InvalidConfig {
                name: "rls_epochs",
                value: 0.0,
            });
        }
        if !(self.max_holdout_ratio > 0.0 && self.max_holdout_ratio.is_finite()) {
            return Err(AdaptError::InvalidConfig {
                name: "max_holdout_ratio",
                value: self.max_holdout_ratio,
            });
        }
        self.drift.validate()?;
        self.evolve.validate()?;
        Ok(())
    }
}

/// Counters the supervisor maintains across its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdaptationStats {
    /// Labeled observations folded in.
    pub observed: u64,
    /// Transitions into [`DriftState::Warn`].
    pub warn_events: u64,
    /// Transitions into [`DriftState::Drift`].
    pub drift_events: u64,
    /// Retrains attempted (candidate builds started).
    pub retrains: u64,
    /// Candidates promoted to live.
    pub promotions: u64,
    /// Candidates rejected (validation failure or failed swap).
    pub rejections: u64,
    /// Swap attempts the registry refused (and rolled back to last-good).
    pub swap_failures: u64,
}

/// A validated candidate model, ready to promote.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The candidate served artifact (same classifier, adapted quality
    /// model).
    pub model: ServedModel,
    /// Live model's RMSE on the holdout split.
    pub live_holdout_rmse: f64,
    /// Candidate's RMSE on the same holdout.
    pub holdout_rmse: f64,
    /// Structure-evolution outcome.
    pub structure: EvolvedRules,
    /// Re-derived operating threshold.
    pub threshold: f64,
    /// Rule count before adaptation.
    pub rules_before: usize,
    /// Rule count after adaptation.
    pub rules_after: usize,
}

/// What one supervision step did.
#[derive(Debug, Clone)]
pub enum AdaptationOutcome {
    /// No drift: nothing to do.
    Stable,
    /// Detector warns; no retrain yet.
    Warning,
    /// A candidate was validated and swapped in.
    Promoted {
        /// Registry swap sequence number.
        swap_seq: u64,
        /// The promoted candidate (now live).
        candidate: Box<Candidate>,
    },
    /// Drift confirmed but no candidate landed; the live model stays.
    Rejected {
        /// Why (validation failure, or a failed swap the registry rolled
        /// back).
        reason: String,
    },
}

/// The online adaptation supervisor.
#[derive(Debug)]
pub struct AdaptationSupervisor {
    config: AdaptationConfig,
    window: SlidingWindow,
    detector: DriftDetector,
    evolution: RuleEvolution,
    pool: WorkerPool,
    live: ServedModel,
    tenant: String,
    validate_path: PathBuf,
    stats: AdaptationStats,
}

impl AdaptationSupervisor {
    /// Create a supervisor for `tenant`, starting from the currently
    /// served `live` model. `validate_dir` hosts the throwaway checkpoint
    /// used for the round-trip validation probe.
    ///
    /// # Errors
    ///
    /// Propagates [`AdaptationConfig::validate`] and worker-pool
    /// construction failures.
    pub fn new(
        config: AdaptationConfig,
        live: ServedModel,
        tenant: impl Into<String>,
        validate_dir: impl Into<PathBuf>,
    ) -> Result<Self> {
        config.validate()?;
        let window = SlidingWindow::new(config.window_capacity)?;
        let detector = DriftDetector::new(config.drift)?;
        let evolution = RuleEvolution::new(config.evolve)?;
        let pool = if config.workers == 0 {
            WorkerPool::serial()
        } else {
            WorkerPool::new(config.workers)
        };
        Ok(AdaptationSupervisor {
            config,
            window,
            detector,
            evolution,
            pool,
            live,
            tenant: tenant.into(),
            validate_path: validate_dir.into().join("adapt_candidate.ckpt"),
            stats: AdaptationStats::default(),
        })
    }

    /// The model the supervisor believes is live (last promoted, or the
    /// initial one).
    pub fn live(&self) -> &ServedModel {
        &self.live
    }

    /// Lifetime counters.
    pub fn stats(&self) -> AdaptationStats {
        self.stats
    }

    /// Current detector state.
    pub fn drift_state(&self) -> DriftState {
        self.detector.state()
    }

    /// The sample window.
    pub fn window(&self) -> &SlidingWindow {
        &self.window
    }

    /// Fold in one labeled observation: score it with the live model, feed
    /// the drift detector, store it in the window. Returns the detector
    /// state after the observation.
    ///
    /// # Errors
    ///
    /// Propagates classification/measurement failures from the live model
    /// (dimension mismatches — a healthy stream never hits these).
    pub fn observe(&mut self, cues: &[f64], truth: ClassId) -> Result<DriftState> {
        let predicted = self.live.classifier().classify(cues)?;
        let quality = self.live.model().measure.measure(cues, predicted)?;
        let before = self.detector.state();
        let after = self.detector.observe(quality, self.live.model().threshold);
        if after != before {
            match after {
                DriftState::Warn => self.stats.warn_events += 1,
                DriftState::Drift => self.stats.drift_events += 1,
                DriftState::Stable => {}
            }
        }
        self.window.push(AdaptSample {
            cues: cues.to_vec(),
            truth,
        });
        self.stats.observed += 1;
        Ok(after)
    }

    /// One supervision step against a live server: retrain + validate +
    /// promote if drift is confirmed, otherwise report the detector state.
    /// Rejections (including a failed swap, which the registry rolls back)
    /// are outcomes, not errors — the serve path is never poisoned by a
    /// bad candidate.
    ///
    /// # Errors
    ///
    /// Only infrastructure failures (e.g. a broken live model). All
    /// validation failures come back as [`AdaptationOutcome::Rejected`].
    pub fn step(&mut self, server: &CqmServer) -> Result<AdaptationOutcome> {
        let tenant = self.tenant.clone();
        self.step_with(|model| {
            server
                .swap_model(&tenant, model.clone())
                .map_err(AdaptError::from)
        })
    }

    /// [`AdaptationSupervisor::step`] with an explicit promotion function
    /// (exposed for tests and custom deployment topologies). `swap` is
    /// called at most once, with the validated candidate.
    ///
    /// # Errors
    ///
    /// Same contract as [`AdaptationSupervisor::step`].
    pub fn step_with<F>(&mut self, mut swap: F) -> Result<AdaptationOutcome>
    where
        F: FnMut(&ServedModel) -> Result<u64>,
    {
        match self.detector.state() {
            DriftState::Stable => return Ok(AdaptationOutcome::Stable),
            DriftState::Warn => return Ok(AdaptationOutcome::Warning),
            DriftState::Drift => {}
        }
        self.stats.retrains += 1;
        let candidate = match self.try_candidate() {
            Ok(c) => c,
            Err(AdaptError::CandidateRejected(reason)) => {
                self.stats.rejections += 1;
                return Ok(AdaptationOutcome::Rejected { reason });
            }
            Err(e) => return Err(e),
        };
        match swap(&candidate.model) {
            Ok(swap_seq) => {
                self.live = candidate.model.clone();
                self.detector.reset();
                self.stats.promotions += 1;
                Ok(AdaptationOutcome::Promoted {
                    swap_seq,
                    candidate: Box::new(candidate),
                })
            }
            Err(e) => {
                self.stats.swap_failures += 1;
                self.stats.rejections += 1;
                Ok(AdaptationOutcome::Rejected {
                    reason: format!("swap failed, registry kept last-good: {e}"),
                })
            }
        }
    }

    /// Build and validate a candidate from the current window, without
    /// promoting it. The classifier is kept fixed (the CQM treats it as a
    /// black box); only the quality measure and threshold adapt.
    ///
    /// # Errors
    ///
    /// * [`AdaptError::CandidateRejected`] for every *soft* failure: short
    ///   window, one-sided outcomes, unordered quality groups, holdout
    ///   regression, round-trip mismatch.
    /// * Other variants only for infrastructure failures.
    pub fn try_candidate(&mut self) -> Result<Candidate> {
        if self.window.len() < self.config.min_window_fill {
            return Err(AdaptError::CandidateRejected(format!(
                "window holds {} samples, retrain needs {}",
                self.window.len(),
                self.config.min_window_fill
            )));
        }
        let (train, holdout) = match self.window.split(self.config.holdout_every) {
            Ok(parts) => parts,
            Err(e) => return Err(AdaptError::CandidateRejected(format!("split failed: {e}"))),
        };

        // Joint rows + rightness targets under the fixed black-box
        // classifier.
        let measure = &self.live.model().measure;
        let classifier = self.live.classifier();
        let mut train_rows: Vec<Vec<f64>> = Vec::with_capacity(train.len());
        let mut train_targets: Vec<f64> = Vec::with_capacity(train.len());
        let mut train_predicted: Vec<ClassId> = Vec::with_capacity(train.len());
        for s in &train {
            let predicted = classifier.classify(&s.cues)?;
            train_rows.push(measure.joint_input(&s.cues, predicted));
            train_targets.push(if predicted == s.truth { 1.0 } else { 0.0 });
            train_predicted.push(predicted);
        }
        let rights = train_targets.iter().filter(|&&t| t > 0.5).count();
        if rights == 0 || rights == train_targets.len() {
            return Err(AdaptError::CandidateRejected(format!(
                "window is one-sided ({rights}/{} right): threshold underivable",
                train_targets.len()
            )));
        }

        // Evolve the rule structure against the window.
        let rules_before = measure.fis().rule_count();
        let current_centers = RuleEvolution::centers_of(measure.fis());
        let structure = self
            .evolution
            .evolve(&current_centers, &train_rows, &self.pool)?;
        let mut fis = if structure.changed() {
            self.evolution.structure_for(&structure.centers, &train_rows)?
        } else {
            measure.fis().clone()
        };

        // Streaming RLS over the training split: warm-started from the
        // live coefficients when the structure is unchanged (covariance
        // reset re-opens the gain), from the structure's zeros otherwise.
        let mut rls = StreamingConsequents::new(&fis, self.config.rls_gamma, self.config.rls_lambda)?;
        for epoch in 0..self.config.rls_epochs {
            if epoch > 0 {
                rls.reset_covariance(self.config.rls_gamma)?;
            }
            for (row, &target) in train_rows.iter().zip(&train_targets) {
                rls.observe(&fis, row, target)?;
            }
        }
        if rls.updates() == 0 {
            return Err(AdaptError::CandidateRejected(
                "no training sample fires any rule".into(),
            ));
        }
        rls.apply(&mut fis);
        let candidate_measure = QualityMeasure::new(fis)
            .map_err(|e| AdaptError::CandidateRejected(format!("measure rebuild: {e}")))?;

        // Threshold re-derivation (§2.3 on the adapted measure): Gaussian
        // MLE per outcome group over the training split, intersection.
        let mut right = Vec::new();
        let mut wrong = Vec::new();
        for ((s, predicted), &target) in train.iter().zip(&train_predicted).zip(&train_targets) {
            if let Quality::Value(q) = candidate_measure.measure(&s.cues, *predicted)? {
                if target > 0.5 {
                    right.push(q);
                } else {
                    wrong.push(q);
                }
            }
        }
        let groups = QualityGroups::fit_with_floor(&right, &wrong, cqm_stats::mle::DEFAULT_SIGMA_FLOOR)
            .map_err(|e| AdaptError::CandidateRejected(format!("quality groups: {e}")))?;
        let threshold = optimal_threshold(&groups)
            .map_err(|e| AdaptError::CandidateRejected(format!("threshold: {e}")))?
            .value
            .clamp(0.0, 1.0);

        let model = CqmModel {
            version: MODEL_VERSION,
            measure: candidate_measure,
            threshold,
            note: format!(
                "adapted online at observation {} (window {}, {} rules)",
                self.window.observed(),
                self.window.len(),
                structure.centers.len()
            ),
        };
        let candidate = ServedModel::new(classifier.clone(), model)
            .map_err(|e| AdaptError::CandidateRejected(format!("served-model validation: {e}")))?;

        // Holdout gate: the candidate must not regress against the live
        // model on data neither was fitted on.
        let live_holdout_rmse = holdout_rmse(&self.live, &holdout)?;
        let cand_holdout_rmse = holdout_rmse(&candidate, &holdout)?;
        if cand_holdout_rmse > live_holdout_rmse * self.config.max_holdout_ratio {
            return Err(AdaptError::CandidateRejected(format!(
                "holdout regression: candidate RMSE {cand_holdout_rmse:.4} vs live {live_holdout_rmse:.4} (ratio bar {})",
                self.config.max_holdout_ratio
            )));
        }

        // Round-trip gate: the candidate must survive the same checkpoint
        // machinery the swap path uses, with bit-exact quality replay.
        self.roundtrip_probe(&candidate, &holdout)?;

        let rules_after = candidate.model().measure.fis().rule_count();
        Ok(Candidate {
            model: candidate,
            live_holdout_rmse,
            holdout_rmse: cand_holdout_rmse,
            structure,
            threshold,
            rules_before,
            rules_after,
        })
    }

    /// Save + reload the candidate through `cqm-persist` and replay the
    /// holdout bit-exactly on the reloaded copy.
    fn roundtrip_probe(&self, candidate: &ServedModel, holdout: &[&AdaptSample]) -> Result<()> {
        if let Some(dir) = self.validate_path.parent() {
            std::fs::create_dir_all(dir).ok();
        }
        let handle = CheckpointHandle::new(&self.validate_path);
        let reject = |msg: String| AdaptError::CandidateRejected(msg);
        handle
            .save(&ServeCheckpoint {
                seq: self.stats.retrains,
                model: candidate.clone(),
            })
            .map_err(|e| reject(format!("checkpoint save: {e}")))?;
        let reloaded: ServeCheckpoint = handle
            .load()
            .map_err(|e| reject(format!("checkpoint reload: {e}")))?;
        for s in holdout {
            let predicted = candidate.classifier().classify(&s.cues)?;
            let a = candidate.model().measure.measure(&s.cues, predicted)?;
            let b = reloaded.model.model().measure.measure(&s.cues, predicted)?;
            let same = match (a, b) {
                (Quality::Value(x), Quality::Value(y)) => x.to_bits() == y.to_bits(),
                (Quality::Epsilon, Quality::Epsilon) => true,
                _ => false,
            };
            if !same {
                return Err(reject(
                    "round-trip probe: reloaded candidate answers differently".into(),
                ));
            }
        }
        Ok(())
    }
}

/// RMSE of a model's quality output against the 0/1 rightness target over
/// holdout samples (ε scored as 0.5, the maximally uninformative quality).
/// This is the metric the supervisor's holdout gate compares candidates
/// with; it is public so external harnesses (the `adaptbench` baseline)
/// can score stale, adapted and from-scratch models on the same holdout.
///
/// # Errors
///
/// Returns [`AdaptError::NotEnoughData`] on an empty holdout and
/// propagates classification/measure failures.
pub fn holdout_rmse(model: &ServedModel, holdout: &[&AdaptSample]) -> Result<f64> {
    if holdout.is_empty() {
        return Err(AdaptError::NotEnoughData { have: 0, need: 1 });
    }
    let mut acc = 0.0f64;
    for s in holdout {
        let predicted = model.classifier().classify(&s.cues)?;
        let target = if predicted == s.truth { 1.0 } else { 0.0 };
        let q = match model.model().measure.measure(&s.cues, predicted)? {
            Quality::Value(v) => v,
            Quality::Epsilon => EPSILON_QUALITY,
        };
        acc += (q - target) * (q - target);
    }
    Ok((acc / holdout.len() as f64).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqm_classify::FisClassifier;
    use cqm_fuzzy::{MembershipFunction, TskFis, TskRule};

    /// Hand-built 1-cue 2-class model: class 0 near cue 0, class 1 near
    /// cue 1; quality high on the diagonal (cue and class agree).
    fn tiny_model(threshold: f64) -> ServedModel {
        let g = |mu: f64, s: f64| MembershipFunction::gaussian(mu, s).unwrap();
        let class_fis = TskFis::new(vec![
            TskRule::new(vec![g(0.0, 0.3)], vec![0.0, 0.0]).unwrap(),
            TskRule::new(vec![g(1.0, 0.3)], vec![0.0, 1.0]).unwrap(),
        ])
        .unwrap();
        let classifier = FisClassifier::from_fis(class_fis, 2).unwrap();
        let quality_fis = TskFis::new(vec![
            TskRule::new(vec![g(0.0, 0.25), g(0.0, 0.25)], vec![0.0, 0.0, 1.0]).unwrap(),
            TskRule::new(vec![g(1.0, 0.25), g(1.0, 0.25)], vec![0.0, 0.0, 1.0]).unwrap(),
            TskRule::new(vec![g(0.0, 0.25), g(1.0, 0.25)], vec![0.0, 0.0, 0.0]).unwrap(),
            TskRule::new(vec![g(1.0, 0.25), g(0.0, 0.25)], vec![0.0, 0.0, 0.0]).unwrap(),
        ])
        .unwrap();
        let model = CqmModel {
            version: MODEL_VERSION,
            measure: QualityMeasure::new(quality_fis).unwrap(),
            threshold,
            note: "tiny".into(),
        };
        ServedModel::new(classifier, model).unwrap()
    }

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("cqm_adapt_sup_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn supervisor(tag: &str, config: AdaptationConfig) -> AdaptationSupervisor {
        AdaptationSupervisor::new(config, tiny_model(0.5), "default", scratch_dir(tag)).unwrap()
    }

    /// A deterministic labeled stream. `flip_band` misclassifies cues in
    /// [0.35, 0.65): the classifier says one thing, truth says another.
    fn feed(sup: &mut AdaptationSupervisor, n: usize, phase: u64) {
        for i in 0..n {
            let r = ((i as u64).wrapping_mul(2654435761).wrapping_add(phase) % 1000) as f64 / 1000.0;
            // Mostly easy samples near the poles, some ambiguous ones.
            let cue = if i % 4 == 0 { 0.3 + r * 0.4 } else if i % 2 == 0 { r * 0.25 } else { 0.75 + r * 0.25 };
            let truth = ClassId(usize::from(cue > 0.45));
            sup.observe(&[cue], truth).unwrap();
        }
    }

    #[test]
    fn config_validation() {
        assert!(AdaptationConfig::default().validate().is_ok());
        let mut c = AdaptationConfig::default();
        c.window_capacity = 0;
        assert!(c.validate().is_err());
        let mut c = AdaptationConfig::default();
        c.min_window_fill = 4;
        assert!(c.validate().is_err());
        let mut c = AdaptationConfig::default();
        c.min_window_fill = c.window_capacity + 1;
        assert!(c.validate().is_err());
        let mut c = AdaptationConfig::default();
        c.holdout_every = 1;
        assert!(c.validate().is_err());
        let mut c = AdaptationConfig::default();
        c.rls_lambda = 0.0;
        assert!(c.validate().is_err());
        let mut c = AdaptationConfig::default();
        c.rls_epochs = 0;
        assert!(c.validate().is_err());
        let mut c = AdaptationConfig::default();
        c.max_holdout_ratio = 0.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn stationary_stream_stays_stable_and_never_swaps() {
        let mut sup = supervisor("stable", AdaptationConfig::default());
        feed(&mut sup, 400, 1);
        assert_eq!(sup.drift_state(), DriftState::Stable);
        let mut swaps = 0;
        let out = sup
            .step_with(|_| {
                swaps += 1;
                Ok(0)
            })
            .unwrap();
        assert!(matches!(out, AdaptationOutcome::Stable));
        assert_eq!(swaps, 0, "stable stream must not touch the server");
        assert_eq!(sup.stats().retrains, 0);
        assert_eq!(sup.stats().drift_events, 0);
    }

    #[test]
    fn short_window_rejects_candidate() {
        let mut sup = supervisor("short", AdaptationConfig::default());
        feed(&mut sup, 10, 1);
        let err = sup.try_candidate().unwrap_err();
        assert!(matches!(err, AdaptError::CandidateRejected(_)), "{err:?}");
    }

    /// Drive the supervisor into confirmed drift: the live model's quality
    /// collapses because traffic concentrates where classifier and truth
    /// disagree.
    fn drive_to_drift(sup: &mut AdaptationSupervisor) {
        // Healthy warm-up.
        feed(sup, 150, 1);
        // Regime change: half the traffic lands in a band where the
        // classifier is *wrong* (cue slightly above its 0.5 boundary,
        // truth says class 0 — supervision disagrees).
        let mut i = 0u64;
        while sup.drift_state() != DriftState::Drift {
            let r = (i.wrapping_mul(2654435761) % 1000) as f64 / 1000.0;
            let cue = 0.5 + r * 0.1;
            let truth = ClassId(0); // classifier says 1 -> wrong
            sup.observe(&[cue], truth).unwrap();
            // Interleave easy, *right* samples so the window keeps both
            // outcomes.
            let easy = if i % 2 == 0 { 0.05 + r * 0.1 } else { 0.85 + r * 0.1 };
            sup.observe(&[easy], ClassId(usize::from(easy > 0.45)))
                .unwrap();
            i += 1;
            assert!(i < 5000, "drift never confirmed");
        }
    }

    #[test]
    fn drift_produces_a_validated_candidate_and_promotes() {
        let mut sup = supervisor("promote", AdaptationConfig::default());
        drive_to_drift(&mut sup);
        // The PH statistic can oscillate around the drift threshold while
        // the regime change develops; at least one confirmed transition.
        assert!(sup.stats().drift_events >= 1);
        let mut swapped = false;
        let out = sup
            .step_with(|m| {
                swapped = true;
                assert_eq!(m.cue_dim(), 1);
                Ok(7)
            })
            .unwrap();
        match out {
            AdaptationOutcome::Promoted {
                swap_seq,
                candidate,
            } => {
                assert!(swapped);
                assert_eq!(swap_seq, 7);
                assert!(candidate.threshold >= 0.0 && candidate.threshold <= 1.0);
                assert!(
                    candidate.holdout_rmse <= candidate.live_holdout_rmse,
                    "candidate {} vs live {}",
                    candidate.holdout_rmse,
                    candidate.live_holdout_rmse
                );
            }
            other => panic!("expected promotion, got {other:?}"),
        }
        // Promotion resets the detector and installs the candidate.
        assert_eq!(sup.drift_state(), DriftState::Stable);
        assert_eq!(sup.stats().promotions, 1);
        assert!(sup.live().model().note.contains("adapted online"));
    }

    #[test]
    fn failed_swap_keeps_last_good_and_counts_rollback() {
        let mut sup = supervisor("rollback", AdaptationConfig::default());
        drive_to_drift(&mut sup);
        let before = sup.live().clone();
        let out = sup
            .step_with(|_| {
                Err(AdaptError::CandidateRejected(
                    "injected swap failure".into(),
                ))
            })
            .unwrap();
        match out {
            AdaptationOutcome::Rejected { reason } => {
                assert!(reason.contains("kept last-good"), "{reason}");
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        assert_eq!(sup.stats().swap_failures, 1);
        assert_eq!(sup.stats().promotions, 0);
        assert_eq!(sup.live(), &before, "live model must be untouched");
        // Detector NOT reset: the next step retries the adaptation.
        assert_eq!(sup.drift_state(), DriftState::Drift);
    }

    #[test]
    fn candidate_build_is_deterministic() {
        let build = |tag: &str| {
            let mut sup = supervisor(tag, AdaptationConfig::default());
            drive_to_drift(&mut sup);
            let c = sup.try_candidate().unwrap();
            (
                c.holdout_rmse.to_bits(),
                c.threshold.to_bits(),
                c.rules_after,
            )
        };
        assert_eq!(build("det_a"), build("det_b"));
    }
}
