//! Streaming consequent updates via recursive least squares.
//!
//! [`StreamingConsequents`] layers on the LSE seam in `cqm-anfis`: each
//! observation's design row is the same rule-major block
//! `[w̄_j x_1, …, w̄_j x_n, w̄_j]` that `design_matrix_with` assembles, so a
//! streaming replay of a dataset is **bit-identical** to the batch RLS
//! sweep [`cqm_anfis::lse::fit_consequents_rls_with`] at any worker count
//! (the parallel batch path only parallelizes row assembly, which is
//! bit-deterministic; the recursion itself is serial in both). The
//! difference to the batch SVD solution is *bounded*, not zero — see
//! DESIGN.md §14 for the documented bound and why it is the best a
//! rank-one recursion can promise.
//!
//! The forgetting factor `λ ∈ (0, 1]` down-weights old evidence; a
//! covariance reset (`P = γI`) after a structural change (rule insertion,
//! regime change) restarts the gain without discarding the coefficient
//! estimate.

use cqm_anfis::lse::{apply_theta, extract_theta, RecursiveLse};
use cqm_fuzzy::TskFis;

use crate::{AdaptError, Result};

/// A recursive least-squares estimator warm-started from a TSK FIS's
/// consequents, consuming one `(input, target)` observation at a time.
#[derive(Debug, Clone)]
pub struct StreamingConsequents {
    rls: RecursiveLse,
    input_dim: usize,
    rule_count: usize,
    /// Observations folded into the estimate.
    updates: u64,
    /// Observations skipped because no rule fired.
    skipped: u64,
    /// Scratch row, reused across updates (no steady-state allocation).
    row: Vec<f64>,
}

impl StreamingConsequents {
    /// Warm-start from the consequents of `fis` with covariance `γI` and
    /// forgetting factor `λ`.
    ///
    /// # Errors
    ///
    /// Propagates [`RecursiveLse::from_theta`] domain checks (γ, λ) and
    /// rejects a FIS with no rules.
    pub fn new(fis: &TskFis, gamma: f64, lambda: f64) -> Result<Self> {
        let theta = extract_theta(fis);
        if theta.is_empty() {
            return Err(AdaptError::InvalidConfig {
                name: "rule_count",
                value: 0.0,
            });
        }
        let cols = theta.len();
        let rls = RecursiveLse::from_theta(theta, gamma, lambda)?;
        let input_dim = fis.input_dim();
        let rule_count = fis.rule_count();
        debug_assert_eq!(cols, rule_count * (input_dim + 1));
        Ok(StreamingConsequents {
            rls,
            input_dim,
            rule_count,
            updates: 0,
            skipped: 0,
            row: vec![0.0; cols],
        })
    }

    /// Observations folded into the estimate so far.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Observations skipped because no rule fired on them.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// The current coefficient estimate (rule-major blocks).
    pub fn theta(&self) -> &[f64] {
        self.rls.theta()
    }

    /// Fold in one observation. The design row is computed against the
    /// premises of `fis` exactly as the batch path does; `fis` consequents
    /// are not read, so the caller may defer [`Self::apply`] indefinitely.
    /// Returns `false` (and counts a skip) when no rule fires on `input`.
    ///
    /// # Errors
    ///
    /// Returns [`AdaptError::InvalidConfig`] on input-dimension mismatch
    /// and propagates RLS update failures (non-finite values).
    pub fn observe(&mut self, fis: &TskFis, input: &[f64], target: f64) -> Result<bool> {
        if input.len() != self.input_dim || fis.rule_count() != self.rule_count {
            return Err(AdaptError::InvalidConfig {
                name: "input_dim",
                value: input.len() as f64,
            });
        }
        let eval = match fis.eval_detailed(input) {
            Ok(e) => e,
            Err(_) => {
                self.skipped += 1;
                return Ok(false);
            }
        };
        let block = self.input_dim + 1;
        for j in 0..self.rule_count {
            // lint: allow(PANIC_IN_LIB) -- eval_detailed yields one normalized firing per rule, checked against rule_count above
            let wbar = eval.normalized_firing[j];
            let base = j * block;
            for (i, &xi) in input.iter().enumerate() {
                self.row[base + i] = wbar * xi;
            }
            self.row[base + self.input_dim] = wbar;
        }
        self.rls.update(&self.row, target)?;
        self.updates += 1;
        Ok(true)
    }

    /// Reset the covariance to `γI`, keeping the coefficient estimate —
    /// call after a structural change so the gain re-opens.
    ///
    /// # Errors
    ///
    /// Propagates [`RecursiveLse::reset_covariance`] domain checks.
    pub fn reset_covariance(&mut self, gamma: f64) -> Result<()> {
        self.rls.reset_covariance(gamma)?;
        Ok(())
    }

    /// Write the current estimate into the consequents of `fis`.
    pub fn apply(&self, fis: &mut TskFis) {
        apply_theta(fis, self.rls.theta());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqm_anfis::lse::fit_consequents_rls_with;
    use cqm_anfis::{genfis, Dataset, GenfisParams};
    use cqm_parallel::WorkerPool;

    const GAMMA: f64 = 1e6;

    fn curve_data() -> Dataset {
        let mut d = Dataset::new(2);
        for i in 0..60 {
            let x = i as f64 / 59.0;
            let y = (1.0 - x) * 0.3;
            d.push(vec![x, y], (2.5 * x - 1.2 * y).sin() * 0.5 + 0.5)
                .unwrap();
        }
        d
    }

    fn fis_for(data: &Dataset) -> TskFis {
        genfis(data, &GenfisParams::default()).unwrap()
    }

    #[test]
    fn rejects_bad_domains() {
        let data = curve_data();
        let fis = fis_for(&data);
        assert!(StreamingConsequents::new(&fis, 0.0, 1.0).is_err());
        assert!(StreamingConsequents::new(&fis, GAMMA, 0.0).is_err());
        assert!(StreamingConsequents::new(&fis, GAMMA, 1.5).is_err());
        let mut s = StreamingConsequents::new(&fis, GAMMA, 1.0).unwrap();
        assert!(s.observe(&fis, &[0.5], 0.0).is_err());
        assert!(s.reset_covariance(-1.0).is_err());
    }

    #[test]
    fn streaming_replay_is_bit_identical_to_batch_sweep_at_any_worker_count() {
        let data = curve_data();
        let base = fis_for(&data);
        for threads in [1usize, 2, 3, 8] {
            let pool = if threads == 1 {
                WorkerPool::serial()
            } else {
                WorkerPool::new(threads)
            };
            // Batch sweep on a worker pool.
            let mut batch_fis = base.clone();
            fit_consequents_rls_with(&mut batch_fis, &data, GAMMA, 1.0, &pool).unwrap();
            // Streaming replay, strictly serial, one observation at a time.
            let mut stream_fis = base.clone();
            let mut s = StreamingConsequents::new(&stream_fis, GAMMA, 1.0).unwrap();
            for (x, y) in data.iter() {
                s.observe(&stream_fis, x, y).unwrap();
            }
            s.apply(&mut stream_fis);
            let batch_bits: Vec<u64> = cqm_anfis::lse::extract_theta(&batch_fis)
                .iter()
                .map(|c| c.to_bits())
                .collect();
            let stream_bits: Vec<u64> = s.theta().iter().map(|c| c.to_bits()).collect();
            assert_eq!(batch_bits, stream_bits, "threads = {threads}");
        }
    }

    #[test]
    fn forgetting_tracks_a_regime_change() {
        // y flips from +x to -x mid-stream; λ < 1 must track the new
        // regime, λ = 1 stays anchored to the average.
        let mut d = Dataset::new(1);
        for i in 0..40 {
            d.push(vec![i as f64 / 39.0], i as f64 / 39.0).unwrap();
        }
        let fis = fis_for(&d);
        let run = |lambda: f64| {
            let mut s = StreamingConsequents::new(&fis, GAMMA, lambda).unwrap();
            for (x, y) in d.iter() {
                s.observe(&fis, x, y).unwrap();
            }
            // Regime change: same inputs, negated targets.
            for (x, y) in d.iter() {
                for _ in 0..3 {
                    s.observe(&fis, x, -y).unwrap();
                }
            }
            let mut f = fis.clone();
            s.apply(&mut f);
            // Error against the *new* regime.
            let mut err = 0.0;
            for (x, y) in d.iter() {
                let out = f.eval(x).unwrap();
                err += (out - (-y)).powi(2);
            }
            (err / d.len() as f64).sqrt()
        };
        let anchored = run(1.0);
        let tracking = run(0.9);
        assert!(
            tracking < anchored * 0.5,
            "λ=0.9 rmse {tracking} vs λ=1 rmse {anchored}"
        );
    }

    #[test]
    fn covariance_reset_reopens_the_gain() {
        let mut d = Dataset::new(1);
        for i in 0..50 {
            d.push(vec![i as f64 / 49.0], 0.5).unwrap();
        }
        let fis = fis_for(&d);
        let mut s = StreamingConsequents::new(&fis, GAMMA, 1.0).unwrap();
        for (x, y) in d.iter() {
            s.observe(&fis, x, y).unwrap();
        }
        // The data contradicts the settled estimate at x near 0: target
        // jumps from 0.5 to 1.5. A settled gain barely follows in 5
        // updates; a reset gain snaps to the new target.
        let probes: Vec<Vec<f64>> = d.inputs().iter().take(5).cloned().collect();
        let output_err = |s: &StreamingConsequents| {
            let mut f = fis.clone();
            s.apply(&mut f);
            probes
                .iter()
                .map(|x| (f.eval(x).unwrap() - 1.5).abs())
                .fold(0.0f64, f64::max)
        };
        let mut frozen = s.clone();
        for x in &probes {
            frozen.observe(&fis, x, 1.5).unwrap();
        }
        s.reset_covariance(GAMMA).unwrap();
        for x in &probes {
            s.observe(&fis, x, 1.5).unwrap();
        }
        let err_frozen = output_err(&frozen);
        let err_reset = output_err(&s);
        assert!(
            err_reset < err_frozen * 0.5,
            "reset err {err_reset} vs frozen err {err_frozen}"
        );
    }

    #[test]
    fn unfired_samples_are_skipped_not_fatal() {
        let data = curve_data();
        let fis = fis_for(&data);
        let mut s = StreamingConsequents::new(&fis, GAMMA, 1.0).unwrap();
        // A point absurdly far outside the data support: every Gaussian
        // underflows to zero firing and the sample is skipped.
        let fired = s.observe(&fis, &[1e9, -1e9], 0.0).unwrap();
        assert!(!fired);
        assert_eq!(s.skipped(), 1);
        assert_eq!(s.updates(), 0);
    }
}
