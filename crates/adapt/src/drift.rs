//! Drift detection on the CQM tail statistics (Page–Hinkley).
//!
//! The paper's threshold `s` (§2.3) is the operating point of the quality
//! measure: a healthy deployment produces quality values whose mean margin
//! above `s` is stationary. When the context model rots — the environment
//! shifted under a fixed model — the margin's mean falls. The detector runs
//! the one-sided Page–Hinkley test on the margin signal `x_t = q_t − s`
//! (with the ε error state contributing its worst case, `q = 0`):
//!
//! ```text
//! m_t = Σ_{i≤t} (x̄_i − x_i − δ)      (cumulative negative deviation)
//! PH_t = m_t − min_{i≤t} m_i
//! ```
//!
//! `PH_t` exceeding the warn threshold yields [`DriftState::Warn`]; the
//! drift threshold yields [`DriftState::Drift`] — the signal the
//! [`crate::supervisor::AdaptationSupervisor`] treats as confirmed drift.
//! The statistic is a pure fold over the observation sequence: no clock, no
//! randomness, so any seeded traffic replay reproduces the same alarm at
//! the same observation index (the adversary's seed is the only seed).

use cqm_core::normalize::Quality;

use crate::{AdaptError, Result};

/// Detector state after an observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftState {
    /// The margin signal is stationary.
    Stable,
    /// The Page–Hinkley statistic crossed the warn threshold.
    Warn,
    /// The statistic crossed the drift threshold: confirmed drift.
    Drift,
}

/// Page–Hinkley configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftConfig {
    /// Magnitude tolerance δ: mean shifts smaller than this are noise and
    /// accumulate nothing.
    pub delta: f64,
    /// `PH` level that raises [`DriftState::Warn`].
    pub warn_threshold: f64,
    /// `PH` level that confirms [`DriftState::Drift`]; must be at or above
    /// the warn threshold.
    pub drift_threshold: f64,
    /// Observations before any alarm may fire (the running mean needs to
    /// settle before deviations from it are meaningful).
    pub min_samples: u64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        // Tuned for the quality-margin signal in [−1, 1]: a sustained mean
        // drop of ~0.1 confirms within ~60 observations, while seeded
        // stationary office traffic stays silent (tests/adapt.rs soaks
        // this).
        DriftConfig {
            delta: 0.02,
            warn_threshold: 2.5,
            drift_threshold: 5.0,
            min_samples: 30,
        }
    }
}

impl DriftConfig {
    /// Validate the parameter domains.
    ///
    /// # Errors
    ///
    /// Returns [`AdaptError::InvalidConfig`] for non-finite or negative
    /// values, or thresholds out of order.
    pub fn validate(&self) -> Result<()> {
        if !(self.delta >= 0.0 && self.delta.is_finite()) {
            return Err(AdaptError::InvalidConfig {
                name: "delta",
                value: self.delta,
            });
        }
        if !(self.warn_threshold > 0.0 && self.warn_threshold.is_finite()) {
            return Err(AdaptError::InvalidConfig {
                name: "warn_threshold",
                value: self.warn_threshold,
            });
        }
        if !(self.drift_threshold >= self.warn_threshold && self.drift_threshold.is_finite()) {
            return Err(AdaptError::InvalidConfig {
                name: "drift_threshold",
                value: self.drift_threshold,
            });
        }
        Ok(())
    }
}

/// The Page–Hinkley detector over the quality margin `q − s`.
#[derive(Debug, Clone)]
pub struct DriftDetector {
    config: DriftConfig,
    /// Observations folded in since the last reset.
    count: u64,
    /// Running mean of the margin signal.
    mean: f64,
    /// Cumulative deviation `m_t`.
    cumulative: f64,
    /// Running minimum of `m_t`.
    minimum: f64,
    state: DriftState,
}

impl DriftDetector {
    /// Create a detector.
    ///
    /// # Errors
    ///
    /// Propagates [`DriftConfig::validate`].
    pub fn new(config: DriftConfig) -> Result<Self> {
        config.validate()?;
        Ok(DriftDetector {
            config,
            count: 0,
            mean: 0.0,
            cumulative: 0.0,
            minimum: 0.0,
            state: DriftState::Stable,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &DriftConfig {
        &self.config
    }

    /// Current state.
    pub fn state(&self) -> DriftState {
        self.state
    }

    /// Observations folded in since the last reset.
    pub fn observed(&self) -> u64 {
        self.count
    }

    /// The current Page–Hinkley statistic `PH_t`.
    pub fn statistic(&self) -> f64 {
        self.cumulative - self.minimum
    }

    /// Fold in one quality observation against the threshold `s` and
    /// return the new state. ε contributes its worst case (`q = 0`).
    pub fn observe(&mut self, quality: Quality, threshold: f64) -> DriftState {
        let q = match quality {
            Quality::Value(v) => v,
            Quality::Epsilon => 0.0,
        };
        self.observe_margin(q - threshold)
    }

    /// Fold in one raw margin observation `x_t` and return the new state.
    pub fn observe_margin(&mut self, margin: f64) -> DriftState {
        self.count += 1;
        // Incremental running mean, then the deviation of this observation
        // below it (one-sided: only mean *drops* accumulate).
        self.mean += (margin - self.mean) / self.count as f64;
        self.cumulative += self.mean - margin - self.config.delta;
        if self.cumulative < self.minimum {
            self.minimum = self.cumulative;
        }
        if self.count >= self.config.min_samples {
            let ph = self.statistic();
            self.state = if ph > self.config.drift_threshold {
                DriftState::Drift
            } else if ph > self.config.warn_threshold {
                DriftState::Warn
            } else {
                DriftState::Stable
            };
        }
        self.state
    }

    /// Forget all accumulated evidence (after an adaptation landed, or was
    /// explicitly rejected): the detector restarts on the post-adaptation
    /// distribution.
    pub fn reset(&mut self) {
        self.count = 0;
        self.mean = 0.0;
        self.cumulative = 0.0;
        self.minimum = 0.0;
        self.state = DriftState::Stable;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        assert!(DriftConfig::default().validate().is_ok());
        let mut c = DriftConfig::default();
        c.delta = -0.1;
        assert!(c.validate().is_err());
        let mut c = DriftConfig::default();
        c.warn_threshold = 0.0;
        assert!(c.validate().is_err());
        let mut c = DriftConfig::default();
        c.drift_threshold = c.warn_threshold / 2.0;
        assert!(c.validate().is_err());
        let mut c = DriftConfig::default();
        c.drift_threshold = f64::INFINITY;
        assert!(c.validate().is_err());
    }

    #[test]
    fn stationary_signal_stays_stable() {
        let mut d = DriftDetector::new(DriftConfig::default()).unwrap();
        // A deterministic oscillation around a constant mean.
        for i in 0..2000 {
            let x = 0.3 + 0.05 * ((i % 7) as f64 - 3.0) / 3.0;
            let state = d.observe_margin(x);
            assert_eq!(state, DriftState::Stable, "false alarm at {i}");
        }
    }

    #[test]
    fn sustained_mean_drop_warns_then_confirms() {
        let mut d = DriftDetector::new(DriftConfig::default()).unwrap();
        for _ in 0..200 {
            d.observe_margin(0.3);
        }
        assert_eq!(d.state(), DriftState::Stable);
        let mut saw_warn = false;
        let mut confirmed_at = None;
        for i in 0..400 {
            match d.observe_margin(0.1) {
                DriftState::Warn => saw_warn = true,
                DriftState::Drift => {
                    confirmed_at = Some(i);
                    break;
                }
                DriftState::Stable => {}
            }
        }
        assert!(saw_warn, "warn state should precede drift");
        let at = confirmed_at.expect("a 0.2 mean drop must confirm drift");
        assert!(at < 200, "confirmation took {at} observations");
    }

    #[test]
    fn no_alarm_before_min_samples() {
        let config = DriftConfig {
            min_samples: 50,
            ..DriftConfig::default()
        };
        let mut d = DriftDetector::new(config).unwrap();
        // A violent level shift inside the settling window must not alarm.
        for i in 0..49 {
            let x = if i < 10 { 1.0 } else { -1.0 };
            assert_eq!(d.observe_margin(x), DriftState::Stable, "i={i}");
        }
    }

    #[test]
    fn epsilon_counts_as_worst_case() {
        let mut d = DriftDetector::new(DriftConfig::default()).unwrap();
        for _ in 0..100 {
            d.observe(Quality::Value(0.9), 0.6);
        }
        assert_eq!(d.state(), DriftState::Stable);
        for _ in 0..300 {
            if d.observe(Quality::Epsilon, 0.6) == DriftState::Drift {
                break;
            }
        }
        assert_eq!(d.state(), DriftState::Drift);
    }

    #[test]
    fn replay_is_bit_identical() {
        let trace: Vec<f64> = (0..500)
            .map(|i| 0.25 + 0.1 * ((i * 37 % 17) as f64 / 17.0) - if i > 300 { 0.2 } else { 0.0 })
            .collect();
        let run = |_: ()| {
            let mut d = DriftDetector::new(DriftConfig::default()).unwrap();
            let mut states = Vec::new();
            for &x in &trace {
                states.push(d.observe_margin(x));
            }
            (states, d.statistic().to_bits())
        };
        let (s1, ph1) = run(());
        let (s2, ph2) = run(());
        assert_eq!(s1, s2);
        assert_eq!(ph1, ph2);
    }

    #[test]
    fn reset_restarts_cleanly() {
        let mut d = DriftDetector::new(DriftConfig::default()).unwrap();
        for _ in 0..100 {
            d.observe_margin(0.3);
        }
        for _ in 0..300 {
            if d.observe_margin(0.0) == DriftState::Drift {
                break;
            }
        }
        assert_eq!(d.state(), DriftState::Drift);
        d.reset();
        assert_eq!(d.state(), DriftState::Stable);
        assert_eq!(d.observed(), 0);
        assert_eq!(d.statistic(), 0.0);
        // The new regime is its new normal.
        for i in 0..200 {
            assert_eq!(d.observe_margin(0.0), DriftState::Stable, "i={i}");
        }
    }
}
