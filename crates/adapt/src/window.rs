//! The sliding-window sample store feeding online adaptation.
//!
//! A bounded FIFO of labeled observations: every push beyond the capacity
//! deterministically evicts the oldest sample, so the window's contents are
//! a pure function of the observation sequence — replaying the same stream
//! reproduces the same window (and therefore the same retrain) bit for bit.
//! Monotonic sequence numbers record how much history has scrolled past,
//! and deterministic train/holdout splits are derived from position in the
//! window, never from randomness.

// analyze: streaming

use std::collections::VecDeque;

use cqm_core::classifier::ClassId;

use crate::{AdaptError, Result};

/// One labeled observation entering the adaptation loop.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptSample {
    /// Cue vector as seen by the classifier.
    pub cues: Vec<f64>,
    /// Ground-truth context of the window (the supervision signal; in a
    /// deployment this is user feedback or delayed labeling).
    pub truth: ClassId,
}

/// Bounded FIFO over [`AdaptSample`] with deterministic oldest-first
/// eviction.
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    samples: VecDeque<AdaptSample>,
    capacity: usize,
    /// Sequence number of the next push (total samples ever observed).
    next_seq: u64,
    /// Samples evicted so far.
    evicted: u64,
}

impl SlidingWindow {
    /// Create a window holding at most `capacity` samples.
    ///
    /// # Errors
    ///
    /// Returns [`AdaptError::InvalidConfig`] if `capacity == 0`.
    pub fn new(capacity: usize) -> Result<Self> {
        if capacity == 0 {
            return Err(AdaptError::InvalidConfig {
                name: "capacity",
                value: 0.0,
            });
        }
        Ok(SlidingWindow {
            samples: VecDeque::with_capacity(capacity),
            capacity,
            next_seq: 0,
            evicted: 0,
        })
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Samples currently held.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the window holds nothing yet.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Whether the window has reached its capacity (every further push
    /// evicts).
    pub fn is_full(&self) -> bool {
        self.samples.len() == self.capacity
    }

    /// Total samples ever pushed.
    pub fn observed(&self) -> u64 {
        self.next_seq
    }

    /// Samples evicted by the capacity bound so far.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Push one sample, evicting the oldest if the window is full. Returns
    /// the sample's sequence number.
    pub fn push(&mut self, sample: AdaptSample) -> u64 {
        while self.samples.len() >= self.capacity {
            self.samples.pop_front();
            self.evicted += 1;
        }
        self.samples.push_back(sample);
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// Iterate oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = &AdaptSample> {
        self.samples.iter()
    }

    /// Deterministic train/holdout split: every `holdout_every`-th sample
    /// (by window position, starting at index `holdout_every - 1`) goes to
    /// the holdout, the rest to training. Position-based, so the split is a
    /// pure function of the window contents — no randomness, replayable.
    ///
    /// # Errors
    ///
    /// Returns [`AdaptError::InvalidConfig`] if `holdout_every < 2` (the
    /// holdout would swallow everything) and [`AdaptError::NotEnoughData`]
    /// if either side of the split would be empty.
    pub fn split(&self, holdout_every: usize) -> Result<(Vec<&AdaptSample>, Vec<&AdaptSample>)> {
        if holdout_every < 2 {
            return Err(AdaptError::InvalidConfig {
                name: "holdout_every",
                value: holdout_every as f64,
            });
        }
        let mut train = Vec::new();
        let mut holdout = Vec::new();
        for (i, s) in self.samples.iter().enumerate() {
            if (i + 1) % holdout_every == 0 {
                holdout.push(s);
            } else {
                train.push(s);
            }
        }
        if train.is_empty() || holdout.is_empty() {
            return Err(AdaptError::NotEnoughData {
                have: self.samples.len(),
                need: holdout_every,
            });
        }
        Ok((train, holdout))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(v: f64) -> AdaptSample {
        AdaptSample {
            cues: vec![v],
            truth: ClassId(0),
        }
    }

    #[test]
    fn zero_capacity_rejected() {
        assert!(SlidingWindow::new(0).is_err());
    }

    #[test]
    fn eviction_is_oldest_first_and_counted() {
        let mut w = SlidingWindow::new(3).unwrap();
        for i in 0..5 {
            let seq = w.push(sample(i as f64));
            assert_eq!(seq, i);
        }
        assert_eq!(w.len(), 3);
        assert!(w.is_full());
        assert_eq!(w.observed(), 5);
        assert_eq!(w.evicted(), 2);
        let held: Vec<f64> = w.iter().map(|s| s.cues[0]).collect();
        assert_eq!(held, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn window_contents_are_a_pure_function_of_the_stream() {
        let mut a = SlidingWindow::new(4).unwrap();
        let mut b = SlidingWindow::new(4).unwrap();
        for i in 0..13 {
            a.push(sample(i as f64 * 0.1));
            b.push(sample(i as f64 * 0.1));
        }
        let xa: Vec<u64> = a.iter().map(|s| s.cues[0].to_bits()).collect();
        let xb: Vec<u64> = b.iter().map(|s| s.cues[0].to_bits()).collect();
        assert_eq!(xa, xb);
    }

    #[test]
    fn split_is_deterministic_and_disjoint() {
        let mut w = SlidingWindow::new(10).unwrap();
        for i in 0..10 {
            w.push(sample(i as f64));
        }
        let (train, holdout) = w.split(5).unwrap();
        assert_eq!(train.len(), 8);
        assert_eq!(holdout.len(), 2);
        let hv: Vec<f64> = holdout.iter().map(|s| s.cues[0]).collect();
        assert_eq!(hv, vec![4.0, 9.0]);
        // Split again: identical.
        let (_, holdout2) = w.split(5).unwrap();
        let hv2: Vec<f64> = holdout2.iter().map(|s| s.cues[0]).collect();
        assert_eq!(hv, hv2);
    }

    #[test]
    fn split_validation() {
        let mut w = SlidingWindow::new(4).unwrap();
        w.push(sample(0.0));
        assert!(w.split(1).is_err());
        // One sample: holdout side would be empty.
        assert!(w.split(2).is_err());
    }
}
