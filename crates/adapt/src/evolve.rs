//! Evolving rule structure for online adaptation.
//!
//! Batch genfis re-clusters the whole dataset from scratch; the evolving
//! variant (in the spirit of eTS/DENFIS) edits the *existing* rule base
//! against the current window instead:
//!
//! * **insert** — a window sample whose subtractive potential against the
//!   window reaches the accept ratio of the window's peak potential, and
//!   which lies more than one cluster radius from every retained center,
//!   seeds a new rule (candidates are visited in descending potential, the
//!   same greedy order batch subtractive clustering uses);
//! * **merge** — of two retained centers closer than `merge_fraction ×
//!   radius` (unit space), only the first survives;
//! * **prune** — a center whose own potential against the window falls
//!   below the reject ratio of the peak has lost its support (the regime
//!   that justified it scrolled out of the window) and is dropped.
//!
//! Evolution operates in the FIS **input** space (for the quality measure
//! that is the joint `(cues, class)` vector), normalized to the unit cube
//! by the window's own ranges. Everything is a deterministic function of
//! `(current centers, window rows)`: no randomness, no iteration-order
//! dependence, so a replay evolves bit-identically.

// lint: allow(PANIC_IN_LIB, file) -- potentials/rows_unit are parallel vectors by construction, and per-dim loops are bounded by the row dimension checked at entry

use cqm_cluster::normalize::UnitScaler;
use cqm_cluster::subtractive::{SubtractiveClustering, SubtractiveParams};
use cqm_fuzzy::{MembershipFunction, TskFis, TskRule};
use cqm_parallel::WorkerPool;

use crate::{AdaptError, Result};

/// Parameters of the evolving rule structure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvolveConfig {
    /// Subtractive parameters: radius and accept/reject ratios carry the
    /// same meaning as in batch clustering; `max_centers` caps the rule
    /// count.
    pub clustering: SubtractiveParams,
    /// Fraction of the cluster radius (unit space) below which two centers
    /// are considered the same rule and merged.
    pub merge_fraction: f64,
    /// Lower bound on membership widths as a fraction of the dimension
    /// range (same guard as genfis).
    pub min_sigma_fraction: f64,
}

impl Default for EvolveConfig {
    fn default() -> Self {
        EvolveConfig {
            clustering: SubtractiveParams::default(),
            merge_fraction: 0.5,
            min_sigma_fraction: 1e-3,
        }
    }
}

impl EvolveConfig {
    /// Validate the parameter domains.
    ///
    /// # Errors
    ///
    /// Returns [`AdaptError::InvalidConfig`] (or a propagated cluster
    /// validation error) on out-of-domain parameters.
    pub fn validate(&self) -> Result<()> {
        self.clustering.validate()?;
        if !(self.merge_fraction > 0.0 && self.merge_fraction <= 1.0) {
            return Err(AdaptError::InvalidConfig {
                name: "merge_fraction",
                value: self.merge_fraction,
            });
        }
        if !(self.min_sigma_fraction > 0.0 && self.min_sigma_fraction < 1.0) {
            return Err(AdaptError::InvalidConfig {
                name: "min_sigma_fraction",
                value: self.min_sigma_fraction,
            });
        }
        Ok(())
    }
}

/// Outcome of one evolution step.
#[derive(Debug, Clone, PartialEq)]
pub struct EvolvedRules {
    /// Rule centers after evolution, in the original coordinate system.
    pub centers: Vec<Vec<f64>>,
    /// Prior centers retained unchanged.
    pub kept: usize,
    /// Prior centers merged into an earlier near-duplicate.
    pub merged: usize,
    /// Prior centers dropped for lost support.
    pub pruned: usize,
    /// New centers seeded from window samples.
    pub inserted: usize,
}

impl EvolvedRules {
    /// Whether the structure differs from the prior rule base.
    pub fn changed(&self) -> bool {
        self.merged + self.pruned + self.inserted > 0
    }
}

/// The evolution operator.
#[derive(Debug, Clone)]
pub struct RuleEvolution {
    config: EvolveConfig,
}

impl RuleEvolution {
    /// Create an operator.
    ///
    /// # Errors
    ///
    /// Propagates [`EvolveConfig::validate`].
    pub fn new(config: EvolveConfig) -> Result<Self> {
        config.validate()?;
        Ok(RuleEvolution { config })
    }

    /// The configuration.
    pub fn config(&self) -> &EvolveConfig {
        &self.config
    }

    /// The rule centers of a FIS in its input space (the antecedent
    /// Gaussian centers, rule-major) — the `current` argument for
    /// [`RuleEvolution::evolve`].
    pub fn centers_of(fis: &TskFis) -> Vec<Vec<f64>> {
        fis.rules()
            .iter()
            .map(|r| r.antecedents().iter().map(|m| m.center()).collect())
            .collect()
    }

    /// Evolve `current` rule centers against the window's input `rows`
    /// (original coordinates). Always yields at least one center.
    ///
    /// # Errors
    ///
    /// * [`AdaptError::NotEnoughData`] for an empty window.
    /// * Propagated cluster errors on ragged/non-finite rows or centers of
    ///   the wrong dimension.
    pub fn evolve(
        &self,
        current: &[Vec<f64>],
        rows: &[Vec<f64>],
        pool: &WorkerPool,
    ) -> Result<EvolvedRules> {
        self.config.validate()?;
        if rows.is_empty() {
            return Err(AdaptError::NotEnoughData { have: 0, need: 1 });
        }
        let clustering = SubtractiveClustering::new(self.config.clustering);
        let scaler = UnitScaler::fit(rows)?;
        let rows_unit = scaler.transform_all(rows)?;
        // The initial potential field over the window (computed in the same
        // unit space — initial_potentials refits the identical scaler).
        let potentials = clustering.initial_potentials(rows, pool)?;
        let reference = potentials.iter().fold(0.0f64, |a, &p| a.max(p));
        let radius = self.config.clustering.radius;
        let merge_d2 = (self.config.merge_fraction * radius).powi(2);
        let insert_d2 = radius * radius;

        // Merge pass: a center closer than the merge distance to an
        // earlier survivor is the same rule.
        let current_unit: Vec<Vec<f64>> = current
            .iter()
            .map(|c| scaler.transform(c))
            .collect::<cqm_cluster::Result<_>>()?;
        let mut survivors: Vec<Vec<f64>> = Vec::new();
        let mut merged = 0usize;
        for c in &current_unit {
            if survivors.iter().any(|s| dist_sq(s, c) < merge_d2) {
                merged += 1;
            } else {
                survivors.push(c.clone());
            }
        }

        // Prune pass: a survivor the window no longer supports is dropped.
        let prune_floor = self.config.clustering.reject_ratio * reference;
        let mut kept_unit: Vec<Vec<f64>> = Vec::new();
        let mut pruned = 0usize;
        for s in survivors {
            if clustering.potential_of(&s, &rows_unit)? < prune_floor {
                pruned += 1;
            } else {
                kept_unit.push(s);
            }
        }
        let kept = kept_unit.len();

        // Insertion pass: visit samples in descending potential (greedy,
        // ties broken by index — fully deterministic) and seed a rule from
        // every sample that clears the accept bar and sits outside one
        // radius of everything retained so far.
        let accept_floor = self.config.clustering.accept_ratio * reference;
        let mut order: Vec<usize> = (0..rows_unit.len()).collect();
        order.sort_by(|&i, &j| potentials[j].total_cmp(&potentials[i]).then(i.cmp(&j)));
        let mut inserted = 0usize;
        for i in order {
            if kept_unit.len() >= self.config.clustering.max_centers {
                break;
            }
            if potentials[i] < accept_floor {
                break;
            }
            let cand = &rows_unit[i];
            if kept_unit.iter().all(|c| dist_sq(c, cand) >= insert_d2) {
                kept_unit.push(cand.clone());
                inserted += 1;
            }
        }

        // A window that supports nothing old and accepts nothing new still
        // yields its peak-potential sample as the single rule seed.
        if kept_unit.is_empty() {
            if let Some((best, _)) = potentials
                .iter()
                .enumerate()
                .max_by(|(i, a), (j, b)| a.total_cmp(b).then(j.cmp(i)))
            {
                kept_unit.push(rows_unit[best].clone());
                inserted += 1;
            }
        }

        let centers = kept_unit
            .iter()
            .map(|c| scaler.inverse(c))
            .collect::<cqm_cluster::Result<_>>()?;
        Ok(EvolvedRules {
            centers,
            kept,
            merged,
            pruned,
            inserted,
        })
    }

    /// Build a TSK structure (zero consequents — the streaming RLS fills
    /// them in) from evolved centers, with Chiu's width heuristic computed
    /// over the window `rows`.
    ///
    /// # Errors
    ///
    /// * [`AdaptError::InvalidConfig`] for no centers.
    /// * Propagated fuzzy construction errors (via the core wrapper) on
    ///   dimension mismatches.
    pub fn structure_for(&self, centers: &[Vec<f64>], rows: &[Vec<f64>]) -> Result<TskFis> {
        if centers.is_empty() {
            return Err(AdaptError::InvalidConfig {
                name: "centers",
                value: 0.0,
            });
        }
        if rows.is_empty() {
            return Err(AdaptError::NotEnoughData { have: 0, need: 1 });
        }
        let n = rows[0].len();
        let mut lo = vec![f64::INFINITY; n];
        let mut hi = vec![f64::NEG_INFINITY; n];
        for r in rows {
            if r.len() != n {
                return Err(AdaptError::InvalidConfig {
                    name: "row_dim",
                    value: r.len() as f64,
                });
            }
            for d in 0..n {
                lo[d] = lo[d].min(r[d]);
                hi[d] = hi[d].max(r[d]);
            }
        }
        let radius = self.config.clustering.radius;
        let mut rules = Vec::with_capacity(centers.len());
        for center in centers {
            if center.len() != n {
                return Err(AdaptError::InvalidConfig {
                    name: "center_dim",
                    value: center.len() as f64,
                });
            }
            let mut antecedents = Vec::with_capacity(n);
            for d in 0..n {
                let range = (hi[d] - lo[d]).max(f64::MIN_POSITIVE.sqrt());
                let sigma = (radius * range / 8.0f64.sqrt())
                    .max(self.config.min_sigma_fraction * range)
                    .max(f64::MIN_POSITIVE.sqrt());
                antecedents.push(
                    MembershipFunction::gaussian(center[d], sigma)
                        .map_err(cqm_core::CqmError::Fuzzy)?,
                );
            }
            rules
                .push(TskRule::new(antecedents, vec![0.0; n + 1]).map_err(cqm_core::CqmError::Fuzzy)?);
        }
        TskFis::new(rules)
            .map_err(cqm_core::CqmError::Fuzzy)
            .map_err(AdaptError::from)
    }
}

fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two tight, well-separated blobs in 2-D.
    fn two_blobs() -> Vec<Vec<f64>> {
        let mut rows = Vec::new();
        for i in 0..20 {
            let t = i as f64 / 19.0 * 0.1;
            rows.push(vec![0.1 + t, 0.1 + t * 0.5]);
            rows.push(vec![0.8 + t, 0.9 - t * 0.5]);
        }
        rows
    }

    #[test]
    fn config_validation() {
        assert!(EvolveConfig::default().validate().is_ok());
        let mut c = EvolveConfig::default();
        c.merge_fraction = 0.0;
        assert!(c.validate().is_err());
        let mut c = EvolveConfig::default();
        c.min_sigma_fraction = 1.0;
        assert!(c.validate().is_err());
        let mut c = EvolveConfig::default();
        c.clustering.radius = 0.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn empty_window_rejected() {
        let ev = RuleEvolution::new(EvolveConfig::default()).unwrap();
        assert!(ev
            .evolve(&[], &[], &WorkerPool::serial())
            .is_err());
    }

    #[test]
    fn bootstrap_from_no_centers_seeds_both_blobs() {
        let ev = RuleEvolution::new(EvolveConfig::default()).unwrap();
        let out = ev.evolve(&[], &two_blobs(), &WorkerPool::serial()).unwrap();
        assert_eq!(out.kept, 0);
        assert!(out.inserted >= 2, "{out:?}");
        assert_eq!(out.centers.len(), out.inserted);
    }

    #[test]
    fn matching_centers_are_a_no_op() {
        let rows = two_blobs();
        let ev = RuleEvolution::new(EvolveConfig::default()).unwrap();
        // Centers sitting on the blob cores.
        let current = vec![vec![0.15, 0.125], vec![0.85, 0.875]];
        let out = ev.evolve(&current, &rows, &WorkerPool::serial()).unwrap();
        assert_eq!(out.kept, 2);
        assert_eq!(out.merged, 0);
        assert_eq!(out.pruned, 0);
        assert_eq!(out.inserted, 0, "{out:?}");
        assert!(!out.changed());
    }

    #[test]
    fn shifted_window_inserts_a_rule_for_the_new_regime() {
        let rows = two_blobs();
        let ev = RuleEvolution::new(EvolveConfig::default()).unwrap();
        // Only the first blob is covered; the second must be discovered.
        let current = vec![vec![0.15, 0.125]];
        let out = ev.evolve(&current, &rows, &WorkerPool::serial()).unwrap();
        assert_eq!(out.kept, 1);
        assert!(out.inserted >= 1, "{out:?}");
        // The inserted center lands in the uncovered blob.
        let news = &out.centers[out.kept..];
        assert!(
            news.iter().any(|c| c[0] > 0.7 && c[1] > 0.7),
            "inserted centers {news:?}"
        );
    }

    #[test]
    fn near_duplicate_centers_merge() {
        let rows = two_blobs();
        let ev = RuleEvolution::new(EvolveConfig::default()).unwrap();
        let current = vec![
            vec![0.15, 0.125],
            vec![0.16, 0.13], // ~same rule
            vec![0.85, 0.875],
        ];
        let out = ev.evolve(&current, &rows, &WorkerPool::serial()).unwrap();
        assert_eq!(out.merged, 1, "{out:?}");
        assert_eq!(out.kept, 2);
    }

    #[test]
    fn unsupported_center_is_pruned() {
        let rows = two_blobs();
        let ev = RuleEvolution::new(EvolveConfig::default()).unwrap();
        // Third center in a region the window never visits.
        let current = vec![vec![0.15, 0.125], vec![0.85, 0.875], vec![0.9, 0.1]];
        let out = ev.evolve(&current, &rows, &WorkerPool::serial()).unwrap();
        assert_eq!(out.pruned, 1, "{out:?}");
        assert_eq!(out.kept, 2);
    }

    #[test]
    fn evolution_is_deterministic_at_any_worker_count() {
        let rows = two_blobs();
        let ev = RuleEvolution::new(EvolveConfig::default()).unwrap();
        let current = vec![vec![0.15, 0.125]];
        let mut snapshots: Vec<Vec<Vec<u64>>> = Vec::new();
        for threads in [1usize, 2, 3, 8] {
            let pool = if threads == 1 {
                WorkerPool::serial()
            } else {
                WorkerPool::new(threads)
            };
            let out = ev.evolve(&current, &rows, &pool).unwrap();
            snapshots.push(
                out.centers
                    .iter()
                    .map(|c| c.iter().map(|v| v.to_bits()).collect())
                    .collect(),
            );
        }
        for s in &snapshots[1..] {
            assert_eq!(s, &snapshots[0]);
        }
    }

    #[test]
    fn structure_builds_a_usable_fis() {
        let rows = two_blobs();
        let ev = RuleEvolution::new(EvolveConfig::default()).unwrap();
        let out = ev.evolve(&[], &rows, &WorkerPool::serial()).unwrap();
        let fis = ev.structure_for(&out.centers, &rows).unwrap();
        assert_eq!(fis.rule_count(), out.centers.len());
        assert_eq!(fis.input_dim(), 2);
        // Zero consequents: output is 0 everywhere a rule fires.
        let y = fis.eval(&rows[0]).unwrap();
        assert_eq!(y, 0.0);
        assert!(ev.structure_for(&[], &rows).is_err());
        assert!(ev.structure_for(&out.centers, &[]).is_err());
    }

    #[test]
    fn centers_of_reads_antecedents() {
        let rows = two_blobs();
        let ev = RuleEvolution::new(EvolveConfig::default()).unwrap();
        let out = ev.evolve(&[], &rows, &WorkerPool::serial()).unwrap();
        let fis = ev.structure_for(&out.centers, &rows).unwrap();
        let back = RuleEvolution::centers_of(&fis);
        let a: Vec<Vec<u64>> = out
            .centers
            .iter()
            .map(|c| c.iter().map(|v| v.to_bits()).collect())
            .collect();
        let b: Vec<Vec<u64>> = back
            .iter()
            .map(|c| c.iter().map(|v| v.to_bits()).collect())
            .collect();
        assert_eq!(a, b);
    }
}
