//! Property-based tests for the statistical analysis layer.

use cqm_stats::confusion::FilterOutcome;
use cqm_stats::mle::QualityGroups;
use cqm_stats::probabilities::TailProbabilities;
use cqm_stats::separation::{auc, roc_curve};
use cqm_stats::threshold::optimal_threshold;
use proptest::prelude::*;

fn ordered_groups() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    // Right group above wrong group on average, both inside [0, 1].
    (
        prop::collection::vec(0.6f64..1.0, 3..30),
        prop::collection::vec(0.0f64..0.55, 3..30),
    )
}

proptest! {
    #[test]
    fn threshold_lies_between_extreme_means((right, wrong) in ordered_groups()) {
        let groups = QualityGroups::fit(&right, &wrong).unwrap();
        prop_assume!(groups.is_ordered());
        let t = optimal_threshold(&groups).unwrap();
        // The threshold is a crossing where right-dominance begins; it must
        // sit below the right mean (else nothing would be accepted).
        prop_assert!(t.value < groups.right.mu() + 1e-9);
        // And the densities really cross there.
        prop_assert!(
            (groups.right.pdf(t.value) - groups.wrong.pdf(t.value)).abs()
                < 1e-6 * groups.right.pdf(t.value).max(1e-12)
        );
    }

    #[test]
    fn selection_identity_holds_at_threshold((right, wrong) in ordered_groups()) {
        let groups = QualityGroups::fit(&right, &wrong).unwrap();
        prop_assume!(groups.is_ordered());
        let t = optimal_threshold(&groups).unwrap();
        let p = TailProbabilities::at(&groups, &t);
        prop_assert!((p.selection_right - p.selection_wrong).abs() < 1e-9);
        for v in [p.selection_right, p.false_negative, p.false_positive,
                  p.posterior_right_given_accept, p.posterior_wrong_given_discard] {
            prop_assert!((-1e-12..=1.0 + 1e-12).contains(&v), "{v}");
        }
    }

    #[test]
    fn auc_flip_symmetry(samples in prop::collection::vec((0.0f64..=1.0, any::<bool>()), 4..60)) {
        let has_both = samples.iter().any(|(_, r)| *r) && samples.iter().any(|(_, r)| !*r);
        prop_assume!(has_both);
        let a = auc(&samples).unwrap();
        // Inverting the measure inverts the ranking: AUC -> 1 - AUC.
        let flipped: Vec<(f64, bool)> = samples.iter().map(|&(q, r)| (1.0 - q, r)).collect();
        let b = auc(&flipped).unwrap();
        prop_assert!((a + b - 1.0).abs() < 1e-9, "{a} + {b}");
        prop_assert!((0.0..=1.0).contains(&a));
    }

    #[test]
    fn roc_is_monotone_staircase(samples in prop::collection::vec((0.0f64..=1.0, any::<bool>()), 4..60)) {
        let has_both = samples.iter().any(|(_, r)| *r) && samples.iter().any(|(_, r)| !*r);
        prop_assume!(has_both);
        let curve = roc_curve(&samples).unwrap();
        prop_assert_eq!(curve.first().map(|p| (p.tpr, p.fpr)), Some((0.0, 0.0)));
        prop_assert_eq!(curve.last().map(|p| (p.tpr, p.fpr)), Some((1.0, 1.0)));
        for w in curve.windows(2) {
            prop_assert!(w[1].tpr >= w[0].tpr - 1e-12);
            prop_assert!(w[1].fpr >= w[0].fpr - 1e-12);
            prop_assert!(w[1].threshold <= w[0].threshold);
        }
    }

    #[test]
    fn filter_outcome_metrics_consistent(
        ar in 0u64..50, aw in 0u64..50, dr in 0u64..50, dw in 0u64..50, eps in 0u64..20,
    ) {
        let o = FilterOutcome {
            accepted_right: ar,
            accepted_wrong: aw,
            discarded_right: dr,
            discarded_wrong: dw,
            epsilon: eps,
        };
        prop_assert_eq!(o.total(), ar + aw + dr + dw + eps);
        prop_assert!((0.0..=1.0).contains(&o.discard_rate()));
        prop_assert!((0.0..=1.0).contains(&o.accuracy_before()));
        prop_assert!((0.0..=1.0).contains(&o.accuracy_after()));
        // Accuracy definitions agree on the degenerate all-accepted case.
        if dr == 0 && dw == 0 && eps == 0 && ar + aw > 0 {
            prop_assert!((o.accuracy_before() - o.accuracy_after()).abs() < 1e-12);
        }
    }

    #[test]
    fn mle_groups_reflect_sample_means((right, wrong) in ordered_groups()) {
        let groups = QualityGroups::fit(&right, &wrong).unwrap();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        prop_assert!((groups.right.mu() - mean(&right)).abs() < 1e-9);
        prop_assert!((groups.wrong.mu() - mean(&wrong)).abs() < 1e-9);
        prop_assert!(groups.prior_right() > 0.0 && groups.prior_right() < 1.0);
    }
}
