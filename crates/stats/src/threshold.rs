//! Optimal threshold determination (§2.32).
//!
//! "The threshold s is now determined through the intersection of the two
//! Gaussian density functions." The closed-form quadratic from
//! [`cqm_math::gaussian::Gaussian::intersections`] is used first; if it
//! yields no crossing between the means (extreme σ ratios), a bisection on
//! the density difference provides the fallback. The module also implements
//! the paper's remark that an MLE over the *pooled unlabeled* measures
//! converges to the same threshold for large data.

use cqm_math::roots::bisect;

use crate::mle::QualityGroups;
use crate::{Result, StatsError};

/// How a threshold was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThresholdMethod {
    /// Closed-form intersection of the two fitted densities.
    DensityIntersection,
    /// Bisection fallback on the density difference.
    Bisection,
    /// Mean of the pooled, unlabeled measures (§2.32's "MLE for a data set
    /// without secondary knowledge").
    PooledMean,
}

/// A separation threshold on the quality measure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Threshold {
    /// The threshold value `s`.
    pub value: f64,
    /// How it was computed.
    pub method: ThresholdMethod,
}

impl std::fmt::Display for Threshold {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s = {:.4} ({:?})", self.value, self.method)
    }
}

/// Compute the optimal threshold as the density intersection between the two
/// group means.
///
/// # Errors
///
/// * [`StatsError::InvalidData`] if the groups are unordered (right mean not
///   above wrong mean) — thresholding a non-informative measure is
///   meaningless and the caller must know.
/// * [`StatsError::NoThreshold`] if no crossing exists between the means
///   even by bisection (identical densities).
pub fn optimal_threshold(groups: &QualityGroups) -> Result<Threshold> {
    if !groups.is_ordered() {
        return Err(StatsError::InvalidData(format!(
            "right mean {:.4} does not exceed wrong mean {:.4}; quality measure is uninformative",
            groups.right.mu(),
            groups.wrong.mu()
        )));
    }
    let lo = groups.wrong.mu();
    let hi = groups.right.mu();
    let mid = 0.5 * (lo + hi);
    // Closed form first. A valid separation threshold is a crossing where
    // density dominance switches from wrong (below) to right (above) — with
    // unequal sigmas the crossing between the means may not exist (a wide
    // wrong density can dominate on both sides of its own mean), but a
    // wrong→right switch always does when the densities cross at all.
    let crossings = groups.right.intersections(&groups.wrong);
    let eps = 1e-6 * (groups.right.sigma() + groups.wrong.sigma());
    let switches_to_right = |x: f64| {
        groups.wrong.pdf(x - eps) >= groups.right.pdf(x - eps)
            && groups.right.pdf(x + eps) >= groups.wrong.pdf(x + eps)
    };
    let candidates: Vec<f64> = crossings
        .iter()
        .copied()
        .filter(|&x| switches_to_right(x))
        .collect();
    // Prefer a switch between the means; otherwise the one nearest their
    // midpoint.
    if let Some(&s) = candidates
        .iter()
        .find(|&&x| x >= lo - 1e-12 && x <= hi + 1e-12)
    {
        return Ok(Threshold {
            value: s,
            method: ThresholdMethod::DensityIntersection,
        });
    }
    if let Some(&s) = candidates
        .iter()
        .min_by(|a, b| (*a - mid).abs().total_cmp(&(*b - mid).abs()))
    {
        return Ok(Threshold {
            value: s,
            method: ThresholdMethod::DensityIntersection,
        });
    }
    // Fallback: bisect φ_w − φ_r over [µ_w, µ_r].
    let f = |x: f64| groups.wrong.pdf(x) - groups.right.pdf(x);
    match bisect(f, lo, hi, 1e-12) {
        Ok(s) => Ok(Threshold {
            value: s,
            method: ThresholdMethod::Bisection,
        }),
        Err(_) => Err(StatsError::NoThreshold(
            "densities do not cross between the group means".into(),
        )),
    }
}

/// The paper's unlabeled alternative: the mean of the pooled measures. For
/// balanced groups and an infinite sample this converges to the intersection
/// threshold.
///
/// # Errors
///
/// Returns [`StatsError::InvalidData`] for an empty or non-finite pool.
pub fn pooled_mean_threshold(all_measures: &[f64]) -> Result<Threshold> {
    if all_measures.is_empty() {
        return Err(StatsError::InvalidData("empty measure pool".into()));
    }
    if all_measures.iter().any(|x| !x.is_finite()) {
        return Err(StatsError::InvalidData(
            "non-finite value in measure pool".into(),
        ));
    }
    let mean = all_measures.iter().sum::<f64>() / all_measures.len() as f64;
    Ok(Threshold {
        value: mean,
        method: ThresholdMethod::PooledMean,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mle::QualityGroups;

    #[test]
    fn equal_sigma_threshold_is_midpoint() {
        let g = QualityGroups::fit_with_floor(&[0.9, 1.0, 0.8], &[0.0, 0.1, 0.2], 0.1).unwrap();
        // Force equal sigmas by construction: both groups have the same
        // spread (0.9 +- 0.1 vs 0.1 +- 0.1), so intersection = midpoint 0.5.
        let t = optimal_threshold(&g).unwrap();
        assert!((t.value - 0.5).abs() < 1e-9, "{t}");
        assert_eq!(t.method, ThresholdMethod::DensityIntersection);
    }

    #[test]
    fn threshold_between_means() {
        let right = [0.7, 0.8, 0.85, 0.9, 0.95, 1.0];
        let wrong = [0.1, 0.25, 0.4, 0.3];
        let g = QualityGroups::fit(&right, &wrong).unwrap();
        let t = optimal_threshold(&g).unwrap();
        assert!(t.value > g.wrong.mu() && t.value < g.right.mu(), "{t}");
        // The threshold is a density crossing.
        assert!((g.right.pdf(t.value) - g.wrong.pdf(t.value)).abs() < 1e-9);
    }

    #[test]
    fn tight_right_group_pushes_threshold_high() {
        // The paper's situation: wrong samples rare and spread, right
        // samples tight near 1 -> threshold close to the high end (0.81 in
        // the paper's example).
        let right = [0.95, 0.97, 0.99, 1.0, 0.98, 0.96, 0.97, 0.99];
        let wrong = [0.2, 0.5, 0.35, 0.6];
        let g = QualityGroups::fit(&right, &wrong).unwrap();
        let t = optimal_threshold(&g).unwrap();
        assert!(t.value > 0.7, "{t}");
    }

    #[test]
    fn unordered_groups_rejected() {
        let g = QualityGroups::fit(&[0.1, 0.2], &[0.8, 0.9]).unwrap();
        let err = optimal_threshold(&g).unwrap_err();
        assert!(err.to_string().contains("uninformative"));
    }

    #[test]
    fn pooled_mean_threshold_basic() {
        let t = pooled_mean_threshold(&[0.0, 1.0, 0.5, 0.5]).unwrap();
        assert!((t.value - 0.5).abs() < 1e-12);
        assert_eq!(t.method, ThresholdMethod::PooledMean);
        assert!(pooled_mean_threshold(&[]).is_err());
        assert!(pooled_mean_threshold(&[f64::NAN]).is_err());
    }

    #[test]
    fn pooled_mean_approaches_intersection_for_balanced_groups() {
        // Balanced, symmetric groups: intersection = 0.5 = pooled mean.
        let right: Vec<f64> = (0..500).map(|i| 0.8 + 0.1 * ((i % 10) as f64 / 10.0)).collect();
        let wrong: Vec<f64> = (0..500).map(|i| 0.1 + 0.1 * ((i % 10) as f64 / 10.0)).collect();
        let g = QualityGroups::fit(&right, &wrong).unwrap();
        let ti = optimal_threshold(&g).unwrap();
        let pool: Vec<f64> = right.iter().chain(&wrong).copied().collect();
        let tp = pooled_mean_threshold(&pool).unwrap();
        assert!((ti.value - tp.value).abs() < 0.05, "{ti} vs {tp}");
    }

    #[test]
    fn display_contains_value() {
        let t = Threshold {
            value: 0.81,
            method: ThresholdMethod::DensityIntersection,
        };
        assert!(t.to_string().contains("0.81"));
    }
}
