//! # cqm-stats — statistical analysis of the quality measure (§2.3)
//!
//! After the quality FIS is trained, the paper analyses "how the
//! probabilistic odds are to separate the correct from the wrong
//! classifications through the measure":
//!
//! * [`mle`] — Gaussian maximum-likelihood fits of the quality values of
//!   right and wrong classifications (§2.31);
//! * [`threshold`] — the optimal threshold `s` at the **intersection of the
//!   two density functions** (§2.32; the paper's example finds `s = 0.81`);
//! * [`probabilities`] — the four tail integrals ("median cuts") and the
//!   separation/selection quantities built from them (§2.33);
//! * [`separation`] — ROC curve and AUC over the quality measure, used by
//!   the LARGE experiment ("for a large set of data the odds for separating
//!   the data are worse");
//! * [`confusion`] — plain confusion-matrix accounting for classifier and
//!   filter evaluation.
//!
//! ```
//! use cqm_stats::mle::QualityGroups;
//! use cqm_stats::threshold::optimal_threshold;
//!
//! let right = vec![0.95, 0.9, 1.0, 0.97, 0.92];
//! let wrong = vec![0.1, 0.3, 0.2, 0.15, 0.4];
//! let groups = QualityGroups::fit(&right, &wrong).unwrap();
//! let s = optimal_threshold(&groups).unwrap();
//! assert!(s.value > 0.4 && s.value < 0.9);
//! ```

#![forbid(unsafe_code)]

pub mod bootstrap;
pub mod confusion;
pub mod mle;
pub mod probabilities;
pub mod separation;
pub mod threshold;

pub use mle::QualityGroups;
pub use probabilities::TailProbabilities;
pub use threshold::{optimal_threshold, Threshold};

/// Errors produced by the statistical analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// Propagated from the math substrate.
    Math(cqm_math::MathError),
    /// A group of quality values was too small or degenerate.
    InvalidData(String),
    /// No usable threshold exists (e.g. identical densities).
    NoThreshold(String),
}

impl std::fmt::Display for StatsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StatsError::Math(e) => write!(f, "math error: {e}"),
            StatsError::InvalidData(msg) => write!(f, "invalid data: {msg}"),
            StatsError::NoThreshold(msg) => write!(f, "no threshold: {msg}"),
        }
    }
}

impl std::error::Error for StatsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StatsError::Math(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cqm_math::MathError> for StatsError {
    fn from(e: cqm_math::MathError) -> Self {
        StatsError::Math(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StatsError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_source() {
        let e: StatsError = cqm_math::MathError::EmptyInput("x").into();
        assert!(e.to_string().contains("math"));
        assert!(std::error::Error::source(&e).is_some());
        let e = StatsError::NoThreshold("identical".into());
        assert!(e.to_string().contains("identical"));
        assert!(std::error::Error::source(&e).is_none());
    }
}
