//! Bootstrap confidence intervals for the separation statistics.
//!
//! The paper draws its conclusions from 24 samples; resampling quantifies
//! how much such small-set numbers can be trusted (directly relevant to the
//! LARGE experiment's "the odds … are worse" observation). Percentile
//! bootstrap over labeled `(quality, right)` samples.

use crate::separation::auc;
use crate::threshold::optimal_threshold;
use crate::{mle::QualityGroups, Result, StatsError};

/// A two-sided percentile confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate on the full sample.
    pub estimate: f64,
    /// Lower percentile bound.
    pub lo: f64,
    /// Upper percentile bound.
    pub hi: f64,
    /// Confidence level (e.g. 0.95).
    pub level: f64,
}

impl std::fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.4} [{:.4}, {:.4}] @ {:.0}%",
            self.estimate,
            self.lo,
            self.hi,
            100.0 * self.level
        )
    }
}

/// Deterministic xorshift resampler (no external RNG dependency here).
struct Resampler {
    state: u64,
}

impl Resampler {
    fn new(seed: u64) -> Self {
        Resampler {
            state: seed.wrapping_mul(0x9E3779B97F4A7C15).max(1),
        }
    }

    fn next_index(&mut self, n: usize) -> usize {
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        (self.state % n as u64) as usize
    }

    fn resample<T: Copy>(&mut self, data: &[T]) -> Vec<T> {
        (0..data.len())
            .map(|_| data[self.next_index(data.len())])
            .collect()
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Generic percentile bootstrap over labeled samples: `statistic` maps a
/// resample to a value; resamples where it fails (e.g. single-outcome
/// draws) are skipped.
///
/// # Errors
///
/// * [`StatsError::InvalidData`] if the base statistic fails, fewer than 8
///   samples are given, or too few resamples succeed.
pub fn bootstrap_ci<F>(
    samples: &[(f64, bool)],
    statistic: F,
    replicates: usize,
    level: f64,
    seed: u64,
) -> Result<ConfidenceInterval>
where
    F: Fn(&[(f64, bool)]) -> Result<f64>,
{
    if samples.len() < 8 {
        return Err(StatsError::InvalidData(format!(
            "bootstrap needs >= 8 samples, got {}",
            samples.len()
        )));
    }
    if !(0.5..1.0).contains(&level) {
        return Err(StatsError::InvalidData(format!(
            "confidence level {level} outside [0.5, 1)"
        )));
    }
    let estimate = statistic(samples)?;
    let mut resampler = Resampler::new(seed);
    let mut values = Vec::with_capacity(replicates);
    for _ in 0..replicates {
        let draw = resampler.resample(samples);
        if let Ok(v) = statistic(&draw) {
            values.push(v);
        }
    }
    if values.len() < replicates / 2 {
        return Err(StatsError::InvalidData(format!(
            "only {}/{replicates} bootstrap resamples were valid",
            values.len()
        )));
    }
    values.sort_by(|a, b| a.total_cmp(b));
    let alpha = (1.0 - level) / 2.0;
    Ok(ConfidenceInterval {
        estimate,
        lo: percentile(&values, alpha),
        hi: percentile(&values, 1.0 - alpha),
        level,
    })
}

/// Bootstrap CI for the AUC of the quality measure.
///
/// # Errors
///
/// Propagates [`bootstrap_ci`] failures.
pub fn auc_ci(
    samples: &[(f64, bool)],
    replicates: usize,
    level: f64,
    seed: u64,
) -> Result<ConfidenceInterval> {
    bootstrap_ci(samples, auc, replicates, level, seed)
}

/// Bootstrap CI for the optimal threshold.
///
/// # Errors
///
/// Propagates [`bootstrap_ci`] failures.
pub fn threshold_ci(
    samples: &[(f64, bool)],
    replicates: usize,
    level: f64,
    seed: u64,
) -> Result<ConfidenceInterval> {
    bootstrap_ci(
        samples,
        |s| {
            let groups = QualityGroups::fit_labeled(s)?;
            if !groups.is_ordered() {
                return Err(StatsError::InvalidData("unordered resample".into()));
            }
            optimal_threshold(&groups).map(|t| t.value)
        },
        replicates,
        level,
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separated_samples(n_right: usize, n_wrong: usize) -> Vec<(f64, bool)> {
        let mut v = Vec::new();
        for i in 0..n_right {
            v.push((0.85 + 0.1 * (i as f64 / n_right as f64), true));
        }
        for i in 0..n_wrong {
            v.push((0.2 + 0.3 * (i as f64 / n_wrong as f64), false));
        }
        v
    }

    #[test]
    fn auc_ci_brackets_estimate() {
        let samples = separated_samples(30, 15);
        let ci = auc_ci(&samples, 300, 0.95, 7).unwrap();
        assert!(ci.lo <= ci.estimate + 1e-12);
        assert!(ci.hi >= ci.estimate - 1e-12);
        assert!(ci.estimate > 0.95); // well separated
        assert!(ci.level == 0.95);
    }

    #[test]
    fn threshold_ci_contains_point_estimate() {
        let samples = separated_samples(24, 12);
        let ci = threshold_ci(&samples, 300, 0.9, 11).unwrap();
        assert!(ci.lo <= ci.estimate && ci.estimate <= ci.hi);
        assert!(ci.lo > 0.0 && ci.hi < 1.0);
    }

    #[test]
    fn small_sets_have_wider_intervals() {
        // The LARGE experiment's message in bootstrap form.
        let small = separated_samples(10, 6);
        let large = separated_samples(200, 120);
        let ci_small = auc_ci(&small, 400, 0.95, 3).unwrap();
        let ci_large = auc_ci(&large, 400, 0.95, 3).unwrap();
        assert!(
            ci_small.hi - ci_small.lo >= ci_large.hi - ci_large.lo,
            "small {} vs large {}",
            ci_small.hi - ci_small.lo,
            ci_large.hi - ci_large.lo
        );
    }

    #[test]
    fn validation() {
        let tiny = separated_samples(3, 2);
        assert!(auc_ci(&tiny, 100, 0.95, 1).is_err());
        let ok = separated_samples(20, 10);
        assert!(auc_ci(&ok, 100, 0.3, 1).is_err());
        assert!(auc_ci(&ok, 100, 1.0, 1).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let samples = separated_samples(20, 10);
        let a = auc_ci(&samples, 200, 0.95, 5).unwrap();
        let b = auc_ci(&samples, 200, 0.95, 5).unwrap();
        assert_eq!(a, b);
        let c = auc_ci(&samples, 200, 0.95, 6).unwrap();
        assert!(a != c || a.estimate == c.estimate);
    }

    #[test]
    fn display_format() {
        let ci = ConfidenceInterval {
            estimate: 0.88,
            lo: 0.8,
            hi: 0.95,
            level: 0.95,
        };
        let s = ci.to_string();
        assert!(s.contains("0.8800"));
        assert!(s.contains("95%"));
    }
}
