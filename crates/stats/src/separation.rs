//! Empirical separability analysis: ROC curve, AUC and the full-separation
//! check used by the paper's evaluation ("In the test data set the correct
//! classifications are fully separable from the wrong contextual
//! classifications", §3.2).

// lint: allow(PANIC_IN_LIB, file) -- parallel score/label vectors are built in lockstep in this module

use crate::{Result, StatsError};

/// One point of an ROC curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RocPoint {
    /// Decision threshold that produced this point.
    pub threshold: f64,
    /// True-positive rate: fraction of right classifications accepted.
    pub tpr: f64,
    /// False-positive rate: fraction of wrong classifications accepted.
    pub fpr: f64,
}

/// Empirical ROC over labeled quality samples `(q, was_right)`, treating
/// "accept (q >= t)" as the positive decision.
///
/// Returns points sorted by descending threshold, from (0,0) to (1,1).
///
/// # Errors
///
/// Returns [`StatsError::InvalidData`] unless both outcomes are present.
pub fn roc_curve(samples: &[(f64, bool)]) -> Result<Vec<RocPoint>> {
    let n_pos = samples.iter().filter(|(_, r)| *r).count();
    let n_neg = samples.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return Err(StatsError::InvalidData(
            "roc needs both right and wrong samples".into(),
        ));
    }
    if samples.iter().any(|(q, _)| !q.is_finite()) {
        return Err(StatsError::InvalidData(
            "non-finite quality value in roc input".into(),
        ));
    }
    let mut sorted: Vec<(f64, bool)> = samples.to_vec();
    sorted.sort_by(|a, b| b.0.total_cmp(&a.0));
    let mut points = vec![RocPoint {
        threshold: f64::INFINITY,
        tpr: 0.0,
        fpr: 0.0,
    }];
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut i = 0;
    while i < sorted.len() {
        // Consume ties together so the curve is well defined.
        let q = sorted[i].0;
        while i < sorted.len() && sorted[i].0 == q {
            if sorted[i].1 {
                tp += 1;
            } else {
                fp += 1;
            }
            i += 1;
        }
        points.push(RocPoint {
            threshold: q,
            tpr: tp as f64 / n_pos as f64,
            fpr: fp as f64 / n_neg as f64,
        });
    }
    Ok(points)
}

/// Area under the empirical ROC curve by trapezoidal integration.
///
/// 1.0 means the measure fully separates right from wrong; 0.5 means it is
/// uninformative.
///
/// # Errors
///
/// Propagates [`roc_curve`] failures.
pub fn auc(samples: &[(f64, bool)]) -> Result<f64> {
    let curve = roc_curve(samples)?;
    let mut area = 0.0;
    for w in curve.windows(2) {
        area += (w[1].fpr - w[0].fpr) * 0.5 * (w[0].tpr + w[1].tpr);
    }
    Ok(area)
}

/// Whether a single threshold perfectly separates the groups (every right
/// sample strictly above every wrong one) — the paper's 24-point test set
/// has this property.
///
/// # Errors
///
/// Returns [`StatsError::InvalidData`] unless both outcomes are present.
pub fn fully_separable(samples: &[(f64, bool)]) -> Result<bool> {
    let min_right = samples
        .iter()
        .filter(|(_, r)| *r)
        .map(|(q, _)| *q)
        .fold(f64::INFINITY, f64::min);
    let max_wrong = samples
        .iter()
        .filter(|(_, r)| !*r)
        .map(|(q, _)| *q)
        .fold(f64::NEG_INFINITY, f64::max);
    if min_right.is_infinite() || max_wrong.is_infinite() {
        return Err(StatsError::InvalidData(
            "separability needs both right and wrong samples".into(),
        ));
    }
    Ok(min_right > max_wrong)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separated() -> Vec<(f64, bool)> {
        vec![
            (0.9, true),
            (0.95, true),
            (1.0, true),
            (0.85, true),
            (0.2, false),
            (0.3, false),
            (0.1, false),
        ]
    }

    fn mixed() -> Vec<(f64, bool)> {
        vec![
            (0.9, true),
            (0.4, true),
            (0.6, false),
            (0.2, false),
            (0.8, true),
            (0.7, false),
        ]
    }

    #[test]
    fn perfect_separation_auc_one() {
        assert!((auc(&separated()).unwrap() - 1.0).abs() < 1e-12);
        assert!(fully_separable(&separated()).unwrap());
    }

    #[test]
    fn mixed_data_auc_below_one() {
        let a = auc(&mixed()).unwrap();
        assert!(a < 1.0 && a > 0.5, "auc = {a}");
        assert!(!fully_separable(&mixed()).unwrap());
    }

    #[test]
    fn inverted_measure_auc_below_half() {
        let inverted: Vec<(f64, bool)> =
            separated().iter().map(|&(q, r)| (1.0 - q, r)).collect();
        assert!(auc(&inverted).unwrap() < 0.5);
    }

    #[test]
    fn roc_endpoints() {
        let curve = roc_curve(&mixed()).unwrap();
        let first = curve.first().unwrap();
        let last = curve.last().unwrap();
        assert_eq!((first.tpr, first.fpr), (0.0, 0.0));
        assert_eq!((last.tpr, last.fpr), (1.0, 1.0));
        // Monotone non-decreasing in both coordinates.
        for w in curve.windows(2) {
            assert!(w[1].tpr >= w[0].tpr);
            assert!(w[1].fpr >= w[0].fpr);
        }
    }

    #[test]
    fn ties_handled_together() {
        let samples = vec![(0.5, true), (0.5, false), (0.9, true), (0.1, false)];
        let curve = roc_curve(&samples).unwrap();
        // The tie at 0.5 must move tpr and fpr in a single step.
        let tie_point = curve.iter().find(|p| p.threshold == 0.5).unwrap();
        assert_eq!(tie_point.tpr, 1.0);
        assert_eq!(tie_point.fpr, 0.5);
    }

    #[test]
    fn single_class_rejected() {
        assert!(roc_curve(&[(0.5, true)]).is_err());
        assert!(auc(&[(0.5, false)]).is_err());
        assert!(fully_separable(&[(0.5, true)]).is_err());
        assert!(roc_curve(&[(f64::NAN, true), (0.2, false)]).is_err());
    }
}
