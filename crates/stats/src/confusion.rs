//! Confusion-matrix accounting for multi-class context classifiers and for
//! the binary accept/discard filter decision.

// lint: allow(PANIC_IN_LIB, file) -- class indices are bounded by the num_classes check at entry

use crate::{Result, StatsError};

/// A `k × k` confusion matrix: `counts[truth][predicted]`.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<u64>>,
}

impl ConfusionMatrix {
    /// Empty matrix for `k` classes.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidData`] if `k == 0`.
    pub fn new(k: usize) -> Result<Self> {
        if k == 0 {
            return Err(StatsError::InvalidData("zero classes".into()));
        }
        Ok(ConfusionMatrix {
            counts: vec![vec![0; k]; k],
        })
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.counts.len()
    }

    /// Record one observation.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidData`] if either index is out of range.
    pub fn record(&mut self, truth: usize, predicted: usize) -> Result<()> {
        let k = self.classes();
        if truth >= k || predicted >= k {
            return Err(StatsError::InvalidData(format!(
                "class index out of range: truth {truth}, predicted {predicted}, k {k}"
            )));
        }
        self.counts[truth][predicted] += 1;
        Ok(())
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }

    /// Raw count cell.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn count(&self, truth: usize, predicted: usize) -> u64 {
        self.counts[truth][predicted]
    }

    /// Overall accuracy (0 for an empty matrix).
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: u64 = (0..self.classes()).map(|i| self.counts[i][i]).sum();
        correct as f64 / total as f64
    }

    /// Precision of class `c` (`None` if nothing was predicted as `c`).
    pub fn precision(&self, c: usize) -> Option<f64> {
        let predicted: u64 = (0..self.classes()).map(|t| self.counts[t][c]).sum();
        if predicted == 0 {
            None
        } else {
            Some(self.counts[c][c] as f64 / predicted as f64)
        }
    }

    /// Recall of class `c` (`None` if class `c` never occurred).
    pub fn recall(&self, c: usize) -> Option<f64> {
        let occurred: u64 = self.counts[c].iter().sum();
        if occurred == 0 {
            None
        } else {
            Some(self.counts[c][c] as f64 / occurred as f64)
        }
    }

    /// Macro-averaged F1 over classes that occurred.
    pub fn macro_f1(&self) -> f64 {
        let mut sum = 0.0;
        let mut n = 0;
        for c in 0..self.classes() {
            if let (Some(p), Some(r)) = (self.precision(c), self.recall(c)) {
                if p + r > 0.0 {
                    sum += 2.0 * p * r / (p + r);
                }
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }
}

impl std::fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "truth \\ predicted")?;
        for row in &self.counts {
            for c in row {
                write!(f, "{c:8}")?;
            }
            writeln!(f)?;
        }
        write!(f, "accuracy = {:.4}", self.accuracy())
    }
}

/// Outcome counts of the accept/discard quality filter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FilterOutcome {
    /// Right classifications that were accepted (good).
    pub accepted_right: u64,
    /// Wrong classifications that were accepted (bad — slipped through).
    pub accepted_wrong: u64,
    /// Right classifications that were discarded (cost of filtering).
    pub discarded_right: u64,
    /// Wrong classifications that were discarded (the filter's purpose).
    pub discarded_wrong: u64,
    /// Samples whose measure was the error state ε (always discarded).
    pub epsilon: u64,
}

impl FilterOutcome {
    /// Total samples seen.
    pub fn total(&self) -> u64 {
        self.accepted_right
            + self.accepted_wrong
            + self.discarded_right
            + self.discarded_wrong
            + self.epsilon
    }

    /// Fraction of classifications discarded (the paper's headline is 33 %).
    pub fn discard_rate(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            return 0.0;
        }
        (self.discarded_right + self.discarded_wrong + self.epsilon) as f64 / t as f64
    }

    /// Accuracy of the raw classifications, before filtering.
    pub fn accuracy_before(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            return 0.0;
        }
        (self.accepted_right + self.discarded_right) as f64 / t as f64
    }

    /// Accuracy among accepted classifications, after filtering.
    pub fn accuracy_after(&self) -> f64 {
        let accepted = self.accepted_right + self.accepted_wrong;
        if accepted == 0 {
            return 0.0;
        }
        self.accepted_right as f64 / accepted as f64
    }

    /// Absolute improvement in accuracy gained by filtering.
    pub fn improvement(&self) -> f64 {
        self.accuracy_after() - self.accuracy_before()
    }
}

impl std::fmt::Display for FilterOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "accepted {}R/{}W, discarded {}R/{}W, eps {}; discard rate {:.1}%, accuracy {:.1}% -> {:.1}%",
            self.accepted_right,
            self.accepted_wrong,
            self.discarded_right,
            self.discarded_wrong,
            self.epsilon,
            100.0 * self.discard_rate(),
            100.0 * self.accuracy_before(),
            100.0 * self.accuracy_after()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_accuracy() {
        let mut m = ConfusionMatrix::new(3).unwrap();
        m.record(0, 0).unwrap();
        m.record(0, 0).unwrap();
        m.record(1, 1).unwrap();
        m.record(2, 1).unwrap();
        assert_eq!(m.total(), 4);
        assert_eq!(m.count(2, 1), 1);
        assert!((m.accuracy() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn precision_recall() {
        let mut m = ConfusionMatrix::new(2).unwrap();
        // truth 0 predicted 0 twice; truth 1 predicted 0 once; truth 1 predicted 1 once.
        m.record(0, 0).unwrap();
        m.record(0, 0).unwrap();
        m.record(1, 0).unwrap();
        m.record(1, 1).unwrap();
        assert!((m.precision(0).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.recall(0).unwrap() - 1.0).abs() < 1e-12);
        assert!((m.precision(1).unwrap() - 1.0).abs() < 1e-12);
        assert!((m.recall(1).unwrap() - 0.5).abs() < 1e-12);
        assert!(m.macro_f1() > 0.0);
    }

    #[test]
    fn absent_class_yields_none() {
        let mut m = ConfusionMatrix::new(3).unwrap();
        m.record(0, 0).unwrap();
        assert!(m.precision(1).is_none());
        assert!(m.recall(2).is_none());
    }

    #[test]
    fn bounds_checked() {
        let mut m = ConfusionMatrix::new(2).unwrap();
        assert!(m.record(2, 0).is_err());
        assert!(m.record(0, 5).is_err());
        assert!(ConfusionMatrix::new(0).is_err());
    }

    #[test]
    fn empty_matrix_metrics() {
        let m = ConfusionMatrix::new(2).unwrap();
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.macro_f1(), 0.0);
    }

    #[test]
    fn filter_outcome_paper_scenario() {
        // The paper's 24-point example: 16 right, 8 wrong, filter discards
        // exactly the 8 wrong ones -> 33% discard, accuracy 66.7% -> 100%.
        let o = FilterOutcome {
            accepted_right: 16,
            accepted_wrong: 0,
            discarded_right: 0,
            discarded_wrong: 8,
            epsilon: 0,
        };
        assert_eq!(o.total(), 24);
        assert!((o.discard_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert!((o.accuracy_before() - 2.0 / 3.0).abs() < 1e-12);
        assert!((o.accuracy_after() - 1.0).abs() < 1e-12);
        assert!((o.improvement() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn filter_outcome_empty() {
        let o = FilterOutcome::default();
        assert_eq!(o.discard_rate(), 0.0);
        assert_eq!(o.accuracy_after(), 0.0);
    }

    #[test]
    fn epsilon_counts_as_discard() {
        let o = FilterOutcome {
            accepted_right: 2,
            accepted_wrong: 0,
            discarded_right: 0,
            discarded_wrong: 1,
            epsilon: 1,
        };
        assert!((o.discard_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn displays_render() {
        let mut m = ConfusionMatrix::new(2).unwrap();
        m.record(0, 0).unwrap();
        assert!(m.to_string().contains("accuracy"));
        let o = FilterOutcome::default();
        assert!(o.to_string().contains("discard rate"));
    }
}
