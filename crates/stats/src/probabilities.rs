//! Tail probabilities over the fitted densities (§2.33).
//!
//! The paper defines the "median cuts"
//! `Φ(s) = ∫_{−∞}^{s} ϕ(x) dx` and `Φ̄(s) = ∫_{s}^{∞} ϕ(x) dx` for both
//! densities and reports four quantities at the optimal threshold. The
//! single-term ones print unambiguously in the source text:
//!
//! * `P(c = right | q < s) = Φ_{µ_r,σ_r}(s)` — false negative,
//! * `P(c = wrong | q > s) = Φ̄_{µ_w,σ_w}(s)` — false positive.
//!
//! For the two-term quantities the PDF-to-text conversion dropped the
//! operator. The only reading consistent with the paper's reported identity
//! `P(c = right|q > s) = P(c = wrong|q < s)` *exactly at the density
//! intersection* is the difference
//!
//! * `selection_right = Φ̄_r(s) − Φ̄_w(s)`
//! * `selection_wrong = Φ_w(s) − Φ_r(s)`
//!
//! (both equal `1 − Φ_r(s) − Φ̄_w(s)` — a Youden-J-style separation index).
//! We implement exactly that, and additionally expose proper Bayesian
//! posteriors under the empirical priors for the extended analysis. See
//! DESIGN.md §2 for the full reconstruction argument.

use crate::mle::QualityGroups;
use crate::threshold::Threshold;

/// The §2.33 quantities evaluated at a threshold `s`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TailProbabilities {
    /// Threshold the quantities were computed at.
    pub threshold: f64,
    /// `Φ̄_r(s) − Φ̄_w(s)`: the paper's `P(c = right | q > s)`.
    pub selection_right: f64,
    /// `Φ_w(s) − Φ_r(s)`: the paper's `P(c = wrong | q < s)`.
    pub selection_wrong: f64,
    /// `Φ_r(s)`: the paper's `P(c = right | q < s)` (false negative mass).
    pub false_negative: f64,
    /// `Φ̄_w(s)`: the paper's `P(c = wrong | q > s)` (false positive mass).
    pub false_positive: f64,
    /// Bayesian posterior `P(right | q > s)` under empirical priors
    /// (extended analysis, clearly distinguished from the paper's figures).
    pub posterior_right_given_accept: f64,
    /// Bayesian posterior `P(wrong | q < s)` under empirical priors.
    pub posterior_wrong_given_discard: f64,
}

impl TailProbabilities {
    /// Evaluate all quantities for `groups` at `threshold`.
    pub fn at(groups: &QualityGroups, threshold: &Threshold) -> Self {
        let s = threshold.value;
        let phi_r = groups.right.cdf(s); // Φ_r(s)
        let phi_r_bar = groups.right.tail(s); // Φ̄_r(s)
        let phi_w = groups.wrong.cdf(s); // Φ_w(s)
        let phi_w_bar = groups.wrong.tail(s); // Φ̄_w(s)

        let pr = groups.prior_right();
        let pw = 1.0 - pr;
        let accept_mass = pr * phi_r_bar + pw * phi_w_bar;
        let discard_mass = pr * phi_r + pw * phi_w;

        TailProbabilities {
            threshold: s,
            selection_right: phi_r_bar - phi_w_bar,
            selection_wrong: phi_w - phi_r,
            false_negative: phi_r,
            false_positive: phi_w_bar,
            posterior_right_given_accept: if accept_mass > 0.0 {
                pr * phi_r_bar / accept_mass
            } else {
                0.0
            },
            posterior_wrong_given_discard: if discard_mass > 0.0 {
                pw * phi_w / discard_mass
            } else {
                0.0
            },
        }
    }
}

impl std::fmt::Display for TailProbabilities {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "at threshold s = {:.4}:", self.threshold)?;
        writeln!(
            f,
            "  P(c = right | q > s) = {:.4}   (paper Fig.6 example: 0.8112)",
            self.selection_right
        )?;
        writeln!(
            f,
            "  P(c = wrong | q < s) = {:.4}   (paper Fig.6 example: 0.8112)",
            self.selection_wrong
        )?;
        writeln!(
            f,
            "  P(c = right | q < s) = {:.4}   (paper Fig.6 example: 0.0846)",
            self.false_negative
        )?;
        writeln!(
            f,
            "  P(c = wrong | q > s) = {:.4}   (paper Fig.6 example: 0.0217)",
            self.false_positive
        )?;
        write!(
            f,
            "  posterior P(right|accept) = {:.4}, P(wrong|discard) = {:.4}",
            self.posterior_right_given_accept, self.posterior_wrong_given_discard
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threshold::optimal_threshold;

    fn example_groups() -> QualityGroups {
        let right = [0.9, 0.95, 1.0, 0.92, 0.97, 0.88, 0.99, 0.93];
        let wrong = [0.2, 0.4, 0.3, 0.5];
        QualityGroups::fit(&right, &wrong).unwrap()
    }

    #[test]
    fn selection_identity_holds_at_intersection() {
        // The paper's P(right|q>s) = P(wrong|q<s) identity must hold exactly
        // at the density-intersection threshold under the difference
        // reading.
        let g = example_groups();
        let t = optimal_threshold(&g).unwrap();
        let p = TailProbabilities::at(&g, &t);
        assert!(
            (p.selection_right - p.selection_wrong).abs() < 1e-12,
            "identity violated: {} vs {}",
            p.selection_right,
            p.selection_wrong
        );
    }

    #[test]
    fn components_are_complementary() {
        // selection_right = 1 - Φ_r - Φ̄_w = 1 - fn - fp.
        let g = example_groups();
        let t = optimal_threshold(&g).unwrap();
        let p = TailProbabilities::at(&g, &t);
        assert!(
            (p.selection_right - (1.0 - p.false_negative - p.false_positive)).abs() < 1e-12
        );
    }

    #[test]
    fn well_separated_groups_high_selection() {
        let right = [0.97, 0.98, 0.99, 1.0];
        let wrong = [0.05, 0.1, 0.15, 0.08];
        let g = QualityGroups::fit(&right, &wrong).unwrap();
        let t = optimal_threshold(&g).unwrap();
        let p = TailProbabilities::at(&g, &t);
        assert!(p.selection_right > 0.95, "{p}");
        assert!(p.false_negative < 0.05);
        assert!(p.false_positive < 0.05);
        assert!(p.posterior_right_given_accept > 0.9);
        assert!(p.posterior_wrong_given_discard > 0.9);
    }

    #[test]
    fn overlapping_groups_low_selection() {
        let right = [0.5, 0.6, 0.7, 0.55];
        let wrong = [0.4, 0.5, 0.6, 0.45];
        let g = QualityGroups::fit(&right, &wrong).unwrap();
        let t = optimal_threshold(&g).unwrap();
        let p = TailProbabilities::at(&g, &t);
        assert!(p.selection_right < 0.6, "{p}");
        assert!(p.false_negative > 0.1);
    }

    #[test]
    fn all_quantities_in_unit_interval() {
        let g = example_groups();
        let t = optimal_threshold(&g).unwrap();
        let p = TailProbabilities::at(&g, &t);
        for v in [
            p.selection_right,
            p.selection_wrong,
            p.false_negative,
            p.false_positive,
            p.posterior_right_given_accept,
            p.posterior_wrong_given_discard,
        ] {
            assert!((0.0..=1.0).contains(&v), "{v} out of range\n{p}");
        }
    }

    #[test]
    fn display_mentions_paper_reference_values() {
        let g = example_groups();
        let t = optimal_threshold(&g).unwrap();
        let s = TailProbabilities::at(&g, &t).to_string();
        assert!(s.contains("0.8112"));
        assert!(s.contains("0.0217"));
    }
}
