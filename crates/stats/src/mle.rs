//! Gaussian MLE fits of the quality values per correctness class (§2.31).
//!
//! "With a maximum likelihood method the normal distributions of the measure
//! for right and wrong classified data points are estimated." The fit needs
//! a *second* labeled data set, different from the CQM training set — the
//! pipeline layer in `cqm-core` enforces that split.

use cqm_math::gaussian::Gaussian;

use crate::{Result, StatsError};

/// Default standard-deviation floor for degenerate groups. A perfectly
/// separating quality measure can put every right classification at exactly
/// 1.0; a zero-width density would make the threshold construction
/// meaningless, so a small floor (on the quality scale `[0, 1]`) is applied.
pub const DEFAULT_SIGMA_FLOOR: f64 = 0.01;

/// The two fitted densities `ϕ_{µ_r,σ_r}` (right) and `ϕ_{µ_w,σ_w}` (wrong).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityGroups {
    /// Density of quality values for **right** classifications.
    pub right: Gaussian,
    /// Density of quality values for **wrong** classifications.
    pub wrong: Gaussian,
    /// Number of right samples used in the fit.
    pub n_right: usize,
    /// Number of wrong samples used in the fit.
    pub n_wrong: usize,
}

impl QualityGroups {
    /// Fit both densities with the default sigma floor.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidData`] if either group is empty or
    /// contains non-finite values.
    pub fn fit(right: &[f64], wrong: &[f64]) -> Result<Self> {
        Self::fit_with_floor(right, wrong, DEFAULT_SIGMA_FLOOR)
    }

    /// Fit both densities with an explicit sigma floor.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidData`] if either group is empty,
    /// contains non-finite values, or the floor is non-positive.
    pub fn fit_with_floor(right: &[f64], wrong: &[f64], sigma_floor: f64) -> Result<Self> {
        for (name, group) in [("right", right), ("wrong", wrong)] {
            if group.is_empty() {
                return Err(StatsError::InvalidData(format!(
                    "{name} group is empty; the analysis set must contain both outcomes"
                )));
            }
            if group.iter().any(|x| !x.is_finite()) {
                return Err(StatsError::InvalidData(format!(
                    "{name} group contains non-finite quality values"
                )));
            }
        }
        let right_g = Gaussian::mle_with_floor(right, sigma_floor)?;
        let wrong_g = Gaussian::mle_with_floor(wrong, sigma_floor)?;
        Ok(QualityGroups {
            right: right_g,
            wrong: wrong_g,
            n_right: right.len(),
            n_wrong: wrong.len(),
        })
    }

    /// Split labeled quality values into groups and fit: `samples` pairs a
    /// quality value with whether the classification was right.
    ///
    /// # Errors
    ///
    /// Same conditions as [`QualityGroups::fit`].
    pub fn fit_labeled(samples: &[(f64, bool)]) -> Result<Self> {
        let right: Vec<f64> = samples.iter().filter(|(_, r)| *r).map(|(q, _)| *q).collect();
        let wrong: Vec<f64> = samples
            .iter()
            .filter(|(_, r)| !*r)
            .map(|(q, _)| *q)
            .collect();
        Self::fit(&right, &wrong)
    }

    /// Whether the fit is *sane* for thresholding: right-classification
    /// quality should exceed wrong-classification quality on average. A
    /// violation means the quality FIS failed to learn anything useful.
    pub fn is_ordered(&self) -> bool {
        self.right.mu() > self.wrong.mu()
    }

    /// Empirical prior of a right classification from the group sizes.
    pub fn prior_right(&self) -> f64 {
        self.n_right as f64 / (self.n_right + self.n_wrong) as f64
    }
}

impl std::fmt::Display for QualityGroups {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "right ~ {} (n={}), wrong ~ {} (n={})",
            self.right, self.n_right, self.wrong, self.n_wrong
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_recovers_group_statistics() {
        let right = [0.8, 0.9, 1.0];
        let wrong = [0.1, 0.2, 0.3];
        let g = QualityGroups::fit(&right, &wrong).unwrap();
        assert!((g.right.mu() - 0.9).abs() < 1e-12);
        assert!((g.wrong.mu() - 0.2).abs() < 1e-12);
        assert_eq!(g.n_right, 3);
        assert_eq!(g.n_wrong, 3);
        assert!(g.is_ordered());
        assert!((g.prior_right() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_group_rejected_with_useful_message() {
        let err = QualityGroups::fit(&[], &[0.1]).unwrap_err();
        assert!(err.to_string().contains("right group is empty"));
        let err = QualityGroups::fit(&[0.9], &[]).unwrap_err();
        assert!(err.to_string().contains("wrong group is empty"));
    }

    #[test]
    fn non_finite_rejected() {
        assert!(QualityGroups::fit(&[0.9, f64::NAN], &[0.1]).is_err());
        assert!(QualityGroups::fit(&[0.9], &[f64::INFINITY]).is_err());
    }

    #[test]
    fn degenerate_group_uses_floor() {
        let g = QualityGroups::fit(&[1.0, 1.0, 1.0], &[0.0, 0.0]).unwrap();
        assert_eq!(g.right.sigma(), DEFAULT_SIGMA_FLOOR);
        assert_eq!(g.wrong.sigma(), DEFAULT_SIGMA_FLOOR);
        assert!(g.is_ordered());
    }

    #[test]
    fn fit_labeled_partitions() {
        let samples = [(0.9, true), (0.1, false), (0.8, true), (0.2, false)];
        let g = QualityGroups::fit_labeled(&samples).unwrap();
        assert_eq!(g.n_right, 2);
        assert_eq!(g.n_wrong, 2);
        assert!((g.right.mu() - 0.85).abs() < 1e-12);
    }

    #[test]
    fn single_outcome_labeled_set_rejected() {
        let samples = [(0.9, true), (0.8, true)];
        assert!(QualityGroups::fit_labeled(&samples).is_err());
    }

    #[test]
    fn unordered_fit_detected() {
        let g = QualityGroups::fit(&[0.1, 0.2], &[0.8, 0.9]).unwrap();
        assert!(!g.is_ordered());
    }

    #[test]
    fn display_mentions_both_groups() {
        let g = QualityGroups::fit(&[0.9, 1.0], &[0.1, 0.2]).unwrap();
        let s = g.to_string();
        assert!(s.contains("right"));
        assert!(s.contains("wrong"));
        assert!(s.contains("n=2"));
    }
}
