//! Shared experiment sections over one trained testbed.
//!
//! Historically every experiment binary (`summary`, `fig5`, `fig6`,
//! `improvement`) retrained the AwarePen testbed and regenerated the
//! evaluation pool from scratch — four identical multi-second training runs
//! to print four views of the same model. The sections now take a
//! [`Testbed`] and a prebuilt [`PaperEval`] so a process trains **once** and
//! reuses it: `summary` runs every section off a single testbed, and the
//! per-experiment binaries stay as thin wrappers for focused output.

// lint: allow(PANIC_IN_LIB, file) -- experiment driver: abort loudly on setup failure instead of degrading

use cqm_appliance::office::{run_office, OfficeConfig};
use cqm_core::filter::QualityFilter;
use cqm_math::histogram::Histogram;
use cqm_stats::bootstrap::auc_ci;
use cqm_stats::mle::QualityGroups;
use cqm_stats::probabilities::TailProbabilities;
use cqm_stats::separation::auc;
use cqm_stats::threshold::optimal_threshold;

use crate::{
    evaluation_pool, labeled_qualities, render_quality_scatter, select_test_set, EvalSample,
    Testbed,
};

/// The standard evaluation data shared by the paper experiments: the full
/// unseen-seed pool and the hard 24-point test set (16 right / 8 wrong).
pub struct PaperEval {
    /// Full evaluation pool (unseen seeds, novel user style, transitions).
    pub pool: Vec<EvalSample>,
    /// The paper's 24-point hard test set drawn from the pool.
    pub set: Vec<EvalSample>,
}

/// Build the standard evaluation data once (pool seed 550, two sessions,
/// 16 + 8 selection — the fixed configuration every experiment binary used).
///
/// # Panics
///
/// Panics if the pool cannot supply the 24-point composition.
pub fn paper_eval(testbed: &Testbed) -> PaperEval {
    let pool = evaluation_pool(testbed, 550, 2);
    let set = select_test_set(&pool, 16, 8);
    assert_eq!(set.len(), 24, "pool must supply 16 right + 8 wrong samples");
    PaperEval { pool, set }
}

/// The `summary` section: the paper-vs-measured table.
pub fn run_summary(eval: &PaperEval) {
    let labeled = labeled_qualities(&eval.set);
    let groups = QualityGroups::fit_labeled(&labeled).expect("both outcomes");
    let threshold = optimal_threshold(&groups).expect("informative measure");
    let probs = TailProbabilities::at(&groups, &threshold);
    let filter = QualityFilter::new(threshold.value.clamp(0.0, 1.0)).expect("filter");
    let outcome = filter.evaluate(
        &eval
            .set
            .iter()
            .map(|s| (s.quality, s.right))
            .collect::<Vec<_>>(),
    );
    let set_auc = auc(&labeled).expect("auc");
    let ci = auc_ci(&labeled, 400, 0.95, 42).expect("bootstrap");

    println!("\n{:38} {:>10} {:>12}", "quantity", "paper", "measured");
    println!("{}", "-".repeat(64));
    let row = |name: &str, paper: &str, measured: String| {
        println!("{name:38} {paper:>10} {measured:>12}");
    };
    row("optimal threshold s", "0.81", format!("{:.3}", threshold.value));
    row("right-group mean", "~0.95", format!("{:.3}", groups.right.mu()));
    row("wrong-group mean", "~0.3", format!("{:.3}", groups.wrong.mu()));
    row(
        "P(right|q>s) = P(wrong|q<s)",
        "0.8112",
        format!("{:.3}", probs.selection_right),
    );
    row("P(right|q<s)", "0.0846", format!("{:.3}", probs.false_negative));
    row("P(wrong|q>s)", "0.0217", format!("{:.3}", probs.false_positive));
    row(
        "discard rate (24-pt set)",
        "33%",
        format!("{:.1}%", 100.0 * outcome.discard_rate()),
    );
    row(
        "accuracy before -> after",
        "67->100%",
        format!(
            "{:.0}->{:.0}%",
            100.0 * outcome.accuracy_before(),
            100.0 * outcome.accuracy_after()
        ),
    );
    row("24-pt AUC", "1.0 impl.", format!("{set_auc:.3}"));
    row(
        "24-pt AUC 95% bootstrap CI",
        "n/a",
        format!("[{:.2},{:.2}]", ci.lo, ci.hi),
    );
}

/// The `fig5` section: quality scatter of the 24-point test set plus the
/// dashed-line group means.
pub fn run_fig5(eval: &PaperEval) {
    println!("{}", render_quality_scatter(&eval.set));

    let labeled = labeled_qualities(&eval.set);
    let groups = QualityGroups::fit_labeled(&labeled).expect("both outcomes present");
    println!("\nstatistical mean values (the dashed lines of Fig. 5):");
    println!(
        "  right mean = {:.4} (sigma {:.4}, n={})",
        groups.right.mu(),
        groups.right.sigma(),
        groups.n_right
    );
    println!(
        "  wrong mean = {:.4} (sigma {:.4}, n={})",
        groups.wrong.mu(),
        groups.wrong.sigma(),
        groups.n_wrong
    );

    let separable = cqm_stats::separation::fully_separable(&labeled).expect("both outcomes");
    println!("\nfully separable by a single threshold: {separable}   (paper: true)");
    let set_auc = cqm_stats::separation::auc(&labeled).expect("both outcomes");
    println!("empirical AUC over the test set     : {set_auc:.4} (paper: 1.0 implied)");
}

/// The `fig6` section: fitted densities, optimal threshold and the §2.33
/// probability table.
pub fn run_fig6(eval: &PaperEval) {
    let labeled = labeled_qualities(&eval.set);
    let groups = QualityGroups::fit_labeled(&labeled).expect("both outcomes present");
    let threshold = optimal_threshold(&groups).expect("informative measure");

    println!("fitted densities (MLE, §2.31):");
    println!("  right: {}", groups.right);
    println!("  wrong: {}", groups.wrong);
    println!("\noptimal threshold (density intersection, §2.32):");
    println!("  {threshold}   (paper example: s = 0.81)\n");

    // Density series over the measure axis — the Fig. 6 curves — alongside
    // the empirical histogram densities of the underlying samples.
    let mut hist_r = Histogram::new(0.0, 1.0, 20).expect("valid histogram");
    let mut hist_w = Histogram::new(0.0, 1.0, 20).expect("valid histogram");
    for &(q, right) in &labeled {
        if right {
            hist_r.add(q);
        } else {
            hist_w.add(q);
        }
    }
    println!("density series (q, fitted phi vs empirical histogram density):");
    println!("   q     phi_r    emp_r    phi_w    emp_w");
    for bin in 0..20 {
        let q = hist_r.bin_center(bin);
        let marker = if (q - threshold.value).abs() < 0.025 {
            "  <-- threshold"
        } else {
            ""
        };
        println!(
            "  {q:.3}  {:8.4} {:8.4} {:8.4} {:8.4}{marker}",
            groups.right.pdf(q),
            hist_r.density(bin),
            groups.wrong.pdf(q),
            hist_w.density(bin)
        );
    }

    let probs = TailProbabilities::at(&groups, &threshold);
    println!("\nprobability table (§2.33 median cuts):");
    println!("{probs}");

    // The identity the paper reports at the optimal threshold.
    let identity_gap = (probs.selection_right - probs.selection_wrong).abs();
    println!(
        "\nidentity P(right|q>s) == P(wrong|q<s): gap = {identity_gap:.2e} (paper: exact equality)"
    );
}

/// The `improvement` section: 24-point accounting, whole-pool accounting and
/// the aggregated whiteboard-camera decision.
pub fn run_improvement(testbed: &Testbed, eval: &PaperEval) {
    // --- Part 1: the paper's 24-point accounting. §3.2 derives the optimal
    // threshold from the statistical analysis of the test set itself (the
    // Fig. 6 densities), then filters that same set.
    let groups =
        QualityGroups::fit_labeled(&labeled_qualities(&eval.set)).expect("both outcomes");
    let threshold = optimal_threshold(&groups)
        .expect("informative measure")
        .value
        .clamp(0.0, 1.0);
    let filter = QualityFilter::new(threshold).expect("valid threshold");
    let labeled: Vec<_> = eval.set.iter().map(|s| (s.quality, s.right)).collect();
    let outcome = filter.evaluate(&labeled);
    println!(
        "-- 24-point test set (16 right / 8 wrong), threshold s = {threshold:.3} (paper: 0.81) --"
    );
    println!("  {outcome}");
    println!(
        "  discard rate            : {:5.1}%   (paper: 33% = all wrong ones)",
        100.0 * outcome.discard_rate()
    );
    println!(
        "  accuracy before filter  : {:5.1}%   (paper: 66.7%)",
        100.0 * outcome.accuracy_before()
    );
    println!(
        "  accuracy after filter   : {:5.1}%   (paper: 100%)",
        100.0 * outcome.accuracy_after()
    );
    println!(
        "  improvement             : {:+5.1} percentage points (paper: +33.3)",
        100.0 * outcome.improvement()
    );

    // --- Part 2: whole-pool accounting (honest large-sample version) at
    // the *deployment* threshold learned during training.
    let deploy_threshold = testbed.build.trained_cqm.threshold.value.clamp(0.0, 1.0);
    let deploy_filter = QualityFilter::new(deploy_threshold).expect("valid threshold");
    let labeled_pool: Vec<_> = eval.pool.iter().map(|s| (s.quality, s.right)).collect();
    let pool_outcome = deploy_filter.evaluate(&labeled_pool);
    println!(
        "\n-- full evaluation pool ({} windows), deployment threshold s = {deploy_threshold:.3} --",
        eval.pool.len()
    );
    println!("  {pool_outcome}");

    // --- Part 3: application-level camera decision, aggregated.
    println!("\n-- whiteboard camera decision (aggregate over 6 office runs) --");
    let mut agg = [[0usize; 3]; 2];
    for seed in 0..6u64 {
        let config = OfficeConfig {
            seed: seed * 131 + 11,
            ..OfficeConfig::default()
        };
        let report = run_office(&config).expect("office run");
        for (i, s) in [&report.with_quality, &report.without_quality]
            .iter()
            .enumerate()
        {
            agg[i][0] += s.camera.correct;
            agg[i][1] += s.camera.false_triggers;
            agg[i][2] += s.camera.missed;
        }
    }
    for (label, row) in [("with CQM   ", agg[0]), ("without CQM", agg[1])] {
        let acc = row[0] as f64 / (row[0] + row[1] + row[2]) as f64;
        println!(
            "  {label}: {} correct, {} false, {} missed  -> decision accuracy {:.1}%",
            row[0],
            row[1],
            row[2],
            100.0 * acc
        );
    }
    let with_acc = agg[0][0] as f64 / (agg[0][0] + agg[0][1] + agg[0][2]) as f64;
    let without_acc = agg[1][0] as f64 / (agg[1][0] + agg[1][1] + agg[1][2]) as f64;
    println!(
        "  improvement: {:+.1} percentage points (paper: +33 on their example)",
        100.0 * (with_acc - without_acc)
    );
}
