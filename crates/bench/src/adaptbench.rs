//! Online-adaptation drift-recovery baseline behind the `adaptbench`
//! binary.
//!
//! Drives a live [`cqm_serve::CqmServer`] plus a `cqm_adapt`
//! `AdaptationSupervisor` through a two-phase labeled stream — a seeded
//! stationary phase (the detector must stay silent) followed by a context
//! shift (the detector must confirm, the supervisor must retrain, validate
//! and promote through a live swap) — with client traffic running across
//! every swap and a seeded disk-fault plan under the server's checkpoint
//! store forcing at least one validated-swap rollback. The accounting is
//! recorded as `BENCH_PR10.json`.
//!
//! # `BENCH_PR10.json` schema (`cqm-bench/adaptbase/v1`)
//!
//! ```json
//! {
//!   "schema": "cqm-bench/adaptbase/v1",
//!   "smoke": true,
//!   "available_parallelism": 8,
//!   "seed": 2989,
//!   "workers": 2,
//!   "window_capacity": 240,
//!   "holdout_every": 5,
//!   "disk_plan": { "warmup_ops": 24, "corrupt_p": 0.25, "torn_p": 0.0,
//!                  "delay_p": 0.0, "delay_micros": 0 },
//!   "stationary_samples": 400,
//!   "stationary_false_alarms": 0,
//!   "shifted_samples": 180,
//!   "drift_detected_at": 505,
//!   "warn_events": 1,
//!   "drift_events": 1,
//!   "retrains": 2,
//!   "promotions": 1,
//!   "rejections": 1,
//!   "swap_failures": 1,
//!   "rollback_drill_attempts": 3,
//!   "rollback_drill_failures": 1,
//!   "server_swaps": 3,
//!   "server_swap_rollbacks": 2,
//!   "stale_rmse": 0.62,
//!   "adapted_rmse": 0.21,
//!   "scratch_rmse": 0.19,
//!   "recovery_bound": 1.25,
//!   "issued": 1200,
//!   "delivered": 1200,
//!   "typed_failures": 0,
//!   "dropped": 0
//! }
//! ```
//!
//! * `schema` — exact constant [`SCHEMA`]; bump on layout changes.
//! * `seed` — drives the labeled stream *and* the disk-fault schedule; the
//!   whole scenario replays from it (traffic counters are the only
//!   timing-dependent fields, and the gate constrains only their identity).
//! * `stationary_false_alarms` — drift confirmations during the stationary
//!   phase; the detector's false-positive budget is **zero**.
//! * `drift_detected_at` — supervisor observation index of the first
//!   confirmed drift after the context shift.
//! * `rollback_drill_*` — deliberate swap attempts against the disk-fault
//!   schedule before the adaptation phase; at least one must fail so the
//!   server-side rollback path (`server_swap_rollbacks`) is exercised.
//! * `stale_rmse` / `adapted_rmse` / `scratch_rmse` — quality-vs-rightness
//!   RMSE of the pre-drift model, the promoted candidate and a from-scratch
//!   `train_cqm_with` retrain, all scored on the **same** deterministic
//!   holdout from the post-shift window.
//! * `recovery_bound` — the documented bound: the online-adapted model must
//!   land within `recovery_bound ×` the from-scratch retrain's RMSE.
//! * `issued` / `delivered` / `typed_failures` / `dropped` — client traffic
//!   accounting across every live swap; `dropped` must be zero.

use serde::{Deserialize, Serialize};

pub use crate::fleetbench::DiskPlanRecord;
pub use crate::perf::available_cores;

/// Schema identifier written to and expected in `BENCH_PR10.json`.
pub const SCHEMA: &str = "cqm-bench/adaptbase/v1";

/// The documented drift-recovery bound: the online-adapted model's holdout
/// RMSE must be within this factor of the from-scratch retrain's.
pub const RECOVERY_BOUND: f64 = 1.25;

/// The complete `BENCH_PR10.json` document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptBaseline {
    /// Schema identifier ([`SCHEMA`]).
    pub schema: String,
    /// Whether smoke (CI-sized) load was used.
    pub smoke: bool,
    /// Cores visible to the process at measurement time.
    pub available_parallelism: usize,
    /// Seed for the labeled stream and the disk-fault schedule.
    pub seed: u64,
    /// Server-side worker threads.
    pub workers: usize,
    /// Supervisor sliding-window capacity.
    pub window_capacity: usize,
    /// Every k-th window position goes to the holdout split.
    pub holdout_every: usize,
    /// Checkpoint-store fault schedule (the swap validation read path).
    pub disk_plan: DiskPlanRecord,
    /// Labeled observations fed during the stationary phase.
    pub stationary_samples: u64,
    /// Drift confirmations during the stationary phase; must be zero.
    pub stationary_false_alarms: u64,
    /// Labeled observations fed after the context shift (up to promotion).
    pub shifted_samples: u64,
    /// Supervisor observation index of the first confirmed drift.
    pub drift_detected_at: u64,
    /// Stable→Warn transitions observed by the supervisor.
    pub warn_events: u64,
    /// Confirmed drift transitions observed by the supervisor.
    pub drift_events: u64,
    /// Retrain attempts triggered by confirmed drift.
    pub retrains: u64,
    /// Candidates promoted through a live swap.
    pub promotions: u64,
    /// Candidates rejected by validation (holdout/round-trip/derivation).
    pub rejections: u64,
    /// Promotions aborted because the server-side swap failed (the server
    /// rolled back to last-good; the supervisor retried on a later step).
    pub swap_failures: u64,
    /// Deliberate same-model swap attempts against the disk-fault schedule.
    pub rollback_drill_attempts: u64,
    /// Drill attempts that failed (each one is a server-side rollback).
    pub rollback_drill_failures: u64,
    /// Server-side swaps that landed (drill + adaptation).
    pub server_swaps: u64,
    /// Server-side swaps that failed validation and rolled back.
    pub server_swap_rollbacks: u64,
    /// Pre-drift model's RMSE on the post-shift holdout.
    pub stale_rmse: f64,
    /// Promoted (online-adapted) model's RMSE on the same holdout.
    pub adapted_rmse: f64,
    /// From-scratch `train_cqm_with` retrain's RMSE on the same holdout.
    pub scratch_rmse: f64,
    /// The documented recovery bound ([`RECOVERY_BOUND`]).
    pub recovery_bound: f64,
    /// Client requests issued while the scenario (and its swaps) ran.
    pub issued: u64,
    /// Requests answered with a classification.
    pub delivered: u64,
    /// Requests that failed with a typed error (never a panic or hang).
    pub typed_failures: u64,
    /// Requests neither delivered nor typed-failed; must be zero.
    pub dropped: u64,
}

impl AdaptBaseline {
    /// Validate the document against the schema contract: identifier, plan
    /// probabilities, internally consistent counters, and finite
    /// non-negative RMSE fields.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema != SCHEMA {
            return Err(format!("schema is {:?}, expected {SCHEMA:?}", self.schema));
        }
        if self.available_parallelism == 0 {
            return Err("available_parallelism must be >= 1".into());
        }
        if self.workers == 0 {
            return Err("workers must be >= 1".into());
        }
        if self.window_capacity == 0 {
            return Err("window_capacity must be >= 1".into());
        }
        if self.holdout_every < 2 {
            return Err(format!(
                "holdout_every {} must be >= 2",
                self.holdout_every
            ));
        }
        for (name, p) in [
            ("disk_plan.corrupt_p", self.disk_plan.corrupt_p),
            ("disk_plan.torn_p", self.disk_plan.torn_p),
            ("disk_plan.delay_p", self.disk_plan.delay_p),
        ] {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} {p} is not a probability in [0, 1]"));
            }
        }
        if self.stationary_samples == 0 {
            return Err("stationary_samples must be >= 1".into());
        }
        for (field, value) in [
            ("stale_rmse", self.stale_rmse),
            ("adapted_rmse", self.adapted_rmse),
            ("scratch_rmse", self.scratch_rmse),
        ] {
            if !(value.is_finite() && value >= 0.0) {
                return Err(format!("{field} {value} not finite and non-negative"));
            }
        }
        if !(self.recovery_bound.is_finite() && self.recovery_bound >= 1.0) {
            return Err(format!(
                "recovery_bound {} must be finite and >= 1",
                self.recovery_bound
            ));
        }
        if self.promotions > self.retrains {
            return Err(format!(
                "promotions {} exceed retrains {}",
                self.promotions, self.retrains
            ));
        }
        if self.rollback_drill_failures > self.rollback_drill_attempts {
            return Err(format!(
                "rollback_drill_failures {} exceed attempts {}",
                self.rollback_drill_failures, self.rollback_drill_attempts
            ));
        }
        let accounted = self.delivered + self.typed_failures + self.dropped;
        if accounted != self.issued {
            return Err(format!(
                "delivered {} + typed_failures {} + dropped {} != issued {}",
                self.delivered, self.typed_failures, self.dropped, self.issued
            ));
        }
        Ok(())
    }

    /// The CI gate — drift recovery with zero collateral damage:
    ///
    /// * the stationary phase raised no false alarm
    ///   (`stationary_false_alarms == 0`);
    /// * the context shift was detected (`drift_events >= 1`) and a
    ///   validated candidate was promoted through a live swap
    ///   (`promotions >= 1`);
    /// * the seeded disk-fault drill exercised the server-side rollback
    ///   path (`server_swap_rollbacks >= 1`);
    /// * the adapted model recovered: better than the stale model on the
    ///   post-shift holdout, and within [`RECOVERY_BOUND`] of the
    ///   from-scratch retrain;
    /// * client traffic ran across every swap with zero dropped requests
    ///   (`dropped == 0`, `delivered > 0`).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the violation.
    pub fn gate(&self) -> Result<(), String> {
        if self.stationary_false_alarms != 0 {
            return Err(format!(
                "{} false drift alarm(s) on stationary traffic",
                self.stationary_false_alarms
            ));
        }
        if self.drift_events == 0 {
            return Err("the context shift was never detected".into());
        }
        if self.promotions == 0 {
            return Err("no validated candidate was promoted".into());
        }
        if self.server_swap_rollbacks == 0 {
            return Err("the swap rollback path was never exercised".into());
        }
        if self.adapted_rmse >= self.stale_rmse {
            return Err(format!(
                "adapted rmse {} did not improve on stale rmse {}",
                self.adapted_rmse, self.stale_rmse
            ));
        }
        let ceiling = self.scratch_rmse * self.recovery_bound;
        if self.adapted_rmse > ceiling {
            return Err(format!(
                "adapted rmse {} above {} (from-scratch {} x bound {})",
                self.adapted_rmse, ceiling, self.scratch_rmse, self.recovery_bound
            ));
        }
        if self.dropped != 0 {
            return Err(format!("{} request(s) went unaccounted", self.dropped));
        }
        if self.delivered == 0 {
            return Err("no request was delivered across the swaps".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline() -> AdaptBaseline {
        AdaptBaseline {
            schema: SCHEMA.into(),
            smoke: true,
            available_parallelism: 4,
            seed: 0xADA7,
            workers: 2,
            window_capacity: 240,
            holdout_every: 5,
            disk_plan: DiskPlanRecord {
                warmup_ops: 24,
                corrupt_p: 0.25,
                torn_p: 0.0,
                delay_p: 0.0,
                delay_micros: 0,
            },
            stationary_samples: 400,
            stationary_false_alarms: 0,
            shifted_samples: 180,
            drift_detected_at: 505,
            warn_events: 1,
            drift_events: 1,
            retrains: 2,
            promotions: 1,
            rejections: 1,
            swap_failures: 1,
            rollback_drill_attempts: 3,
            rollback_drill_failures: 1,
            server_swaps: 3,
            server_swap_rollbacks: 2,
            stale_rmse: 0.62,
            adapted_rmse: 0.21,
            scratch_rmse: 0.19,
            recovery_bound: RECOVERY_BOUND,
            issued: 1200,
            delivered: 1200,
            typed_failures: 0,
            dropped: 0,
        }
    }

    #[test]
    fn valid_baseline_passes_validate_and_gate() {
        let b = baseline();
        b.validate().unwrap();
        b.gate().unwrap();
    }

    #[test]
    fn validation_catches_schema_and_accounting_drift() {
        let mut b = baseline();
        b.schema = "other/v0".into();
        assert!(b.validate().is_err());

        let mut b = baseline();
        b.holdout_every = 1;
        assert!(b.validate().unwrap_err().contains("holdout_every"));

        let mut b = baseline();
        b.disk_plan.corrupt_p = 1.5;
        assert!(b.validate().unwrap_err().contains("corrupt_p"));

        let mut b = baseline();
        b.adapted_rmse = f64::NAN;
        assert!(b.validate().unwrap_err().contains("adapted_rmse"));

        let mut b = baseline();
        b.recovery_bound = 0.5;
        assert!(b.validate().unwrap_err().contains("recovery_bound"));

        let mut b = baseline();
        b.promotions = b.retrains + 1;
        assert!(b.validate().unwrap_err().contains("promotions"));

        let mut b = baseline();
        b.delivered = 100; // 100 + 0 + 0 != 1200
        assert!(b.validate().unwrap_err().contains("delivered"));
    }

    #[test]
    fn gate_enforces_recovery_silence_and_zero_drop() {
        let mut b = baseline();
        b.stationary_false_alarms = 1;
        assert!(b.gate().unwrap_err().contains("false drift alarm"));

        let mut b = baseline();
        b.drift_events = 0;
        assert!(b.gate().unwrap_err().contains("never detected"));

        let mut b = baseline();
        b.promotions = 0;
        assert!(b.gate().unwrap_err().contains("promoted"));

        let mut b = baseline();
        b.server_swap_rollbacks = 0;
        assert!(b.gate().unwrap_err().contains("rollback"));

        let mut b = baseline();
        b.adapted_rmse = b.stale_rmse + 0.1;
        assert!(b.gate().unwrap_err().contains("did not improve"));

        let mut b = baseline();
        b.adapted_rmse = b.scratch_rmse * RECOVERY_BOUND + 0.1;
        b.stale_rmse = 2.0;
        assert!(b.gate().unwrap_err().contains("bound"));

        let mut b = baseline();
        b.dropped = 1;
        b.delivered -= 1;
        assert!(b.gate().unwrap_err().contains("unaccounted"));

        let mut b = baseline();
        b.delivered = 0;
        b.typed_failures = b.issued;
        assert!(b.gate().unwrap_err().contains("delivered"));
    }

    #[test]
    fn json_round_trip() {
        let b = baseline();
        let json = serde_json::to_string_pretty(&b).expect("serialize");
        let back: AdaptBaseline = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, b);
        back.validate().unwrap();
    }
}
