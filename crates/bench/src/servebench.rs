//! Service load baseline harness behind the `loadgen` binary.
//!
//! Drives a live [`cqm_serve::CqmServer`] over real TCP connections with
//! concurrent client threads and records throughput and latency
//! percentiles for the two request shapes, writing the results as
//! `BENCH_PR5.json`.
//!
//! # `BENCH_PR5.json` schema (`cqm-bench/servebase/v1`)
//!
//! ```json
//! {
//!   "schema": "cqm-bench/servebase/v1",
//!   "smoke": true,
//!   "available_parallelism": 8,
//!   "workers": 2,
//!   "connections": 4,
//!   "requests_per_connection": 64,
//!   "sections": [
//!     {
//!       "name": "classify",
//!       "workload": "4 connections x 64 single-classify requests",
//!       "requests": 256,
//!       "ok": 256,
//!       "overloaded_retries": 0,
//!       "elapsed_millis": 41.7,
//!       "throughput_rps": 6139.1,
//!       "p50_micros": 580.0,
//!       "p99_micros": 1890.0,
//!       "max_micros": 2410.0
//!     }
//!   ]
//! }
//! ```
//!
//! * `schema` — exact constant [`SCHEMA`]; bump on layout changes.
//! * `smoke` — whether the fast CI workload sizes were used.
//! * `available_parallelism` — cores visible to the process; single-core
//!   containers serialize client and worker threads, so absolute numbers
//!   must be read alongside this field.
//! * `workers` / `connections` / `requests_per_connection` — the load
//!   shape the sections were measured under.
//! * `sections[*].name` — one of `classify`, `classify_batch` (both
//!   required; `requests` counts wire requests in both — the batch
//!   section's per-request row count is recorded in its `workload`).
//! * `sections[*].ok` — answered requests; the gate requires every
//!   request to be answered (`ok == requests`), overload is absorbed by
//!   client retries and surfaced in `overloaded_retries`.
//! * latency fields are wall-clock microseconds per request/response
//!   round trip as observed by the client, including retries.

use serde::{Deserialize, Serialize};

pub use crate::perf::available_cores;

/// Schema identifier written to and expected in `BENCH_PR5.json`.
pub const SCHEMA: &str = "cqm-bench/servebase/v1";

/// Section names that must be present in a valid baseline.
pub const SECTION_NAMES: [&str; 2] = ["classify", "classify_batch"];

/// One measured request shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeSection {
    /// Section name (see [`SECTION_NAMES`]).
    pub name: String,
    /// Human-readable load description (connections, request counts).
    pub workload: String,
    /// Requests issued across all connections.
    pub requests: u64,
    /// Requests answered with a classification (after retries).
    pub ok: u64,
    /// `Overloaded` answers absorbed by client-side retries.
    pub overloaded_retries: u64,
    /// Wall-clock milliseconds from first request to last response.
    pub elapsed_millis: f64,
    /// `requests / elapsed` in requests per second.
    pub throughput_rps: f64,
    /// Median per-request round-trip latency in microseconds.
    pub p50_micros: f64,
    /// 99th-percentile per-request round-trip latency in microseconds.
    pub p99_micros: f64,
    /// Worst per-request round-trip latency in microseconds.
    pub max_micros: f64,
}

/// The complete `BENCH_PR5.json` document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeBaseline {
    /// Schema identifier ([`SCHEMA`]).
    pub schema: String,
    /// Whether smoke (CI-sized) load was used.
    pub smoke: bool,
    /// Cores visible to the process at measurement time.
    pub available_parallelism: usize,
    /// Server-side worker threads.
    pub workers: usize,
    /// Concurrent client connections.
    pub connections: usize,
    /// Requests issued per connection.
    pub requests_per_connection: usize,
    /// The measured request shapes.
    pub sections: Vec<ServeSection>,
}

impl ServeBaseline {
    /// Look up a section by name.
    pub fn section(&self, name: &str) -> Option<&ServeSection> {
        self.sections.iter().find(|s| s.name == name)
    }

    /// Validate the document against the schema contract: identifier,
    /// required sections, consistent counters, positive finite timings
    /// and ordered percentiles.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema != SCHEMA {
            return Err(format!("schema is {:?}, expected {SCHEMA:?}", self.schema));
        }
        if self.available_parallelism == 0 {
            return Err("available_parallelism must be >= 1".into());
        }
        if self.workers == 0 || self.connections == 0 || self.requests_per_connection == 0 {
            return Err("workers, connections and requests_per_connection must be >= 1".into());
        }
        for name in SECTION_NAMES {
            let section = self
                .section(name)
                .ok_or_else(|| format!("missing section {name:?}"))?;
            if section.workload.is_empty() {
                return Err(format!("section {name:?}: empty workload description"));
            }
            if section.requests == 0 {
                return Err(format!("section {name:?}: zero requests"));
            }
            if section.ok > section.requests {
                return Err(format!(
                    "section {name:?}: ok {} exceeds requests {}",
                    section.ok, section.requests
                ));
            }
            for (field, value) in [
                ("elapsed_millis", section.elapsed_millis),
                ("throughput_rps", section.throughput_rps),
                ("p50_micros", section.p50_micros),
                ("p99_micros", section.p99_micros),
                ("max_micros", section.max_micros),
            ] {
                if !(value > 0.0 && value.is_finite()) {
                    return Err(format!(
                        "section {name:?}: {field} {value} not positive finite"
                    ));
                }
            }
            if section.p50_micros > section.p99_micros
                || section.p99_micros > section.max_micros
            {
                return Err(format!(
                    "section {name:?}: percentiles out of order \
                     (p50 {} / p99 {} / max {})",
                    section.p50_micros, section.p99_micros, section.max_micros
                ));
            }
        }
        Ok(())
    }

    /// The CI gate: the service must have answered *every* request in both
    /// sections (overload is allowed only as absorbed retries) and measured
    /// nonzero throughput. No absolute latency floor — CI machines vary too
    /// much for one — the regression signal is "requests went unanswered".
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the violation.
    pub fn gate(&self) -> Result<(), String> {
        for name in SECTION_NAMES {
            let section = self
                .section(name)
                .ok_or_else(|| format!("missing section {name:?}"))?;
            if section.ok != section.requests {
                return Err(format!(
                    "section {name:?}: only {}/{} requests answered",
                    section.ok, section.requests
                ));
            }
            if !(section.throughput_rps > 0.0 && section.throughput_rps.is_finite()) {
                return Err(format!(
                    "section {name:?}: throughput {} rps is not positive finite",
                    section.throughput_rps
                ));
            }
        }
        Ok(())
    }
}

/// Nearest-rank percentile (`q` in `[0, 1]`) of a latency sample in
/// microseconds. Sorts a copy; fine at load-generator sample sizes.
///
/// # Panics
///
/// Panics on an empty sample or a `q` outside `[0, 1]` — both are harness
/// bugs, not measurement outcomes.
pub fn percentile_micros(samples: &[f64], q: f64) -> f64 {
    assert!(!samples.is_empty(), "percentile of empty sample");
    assert!((0.0..=1.0).contains(&q), "percentile rank {q} outside [0, 1]");
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn section(name: &str) -> ServeSection {
        ServeSection {
            name: name.into(),
            workload: "test".into(),
            requests: 128,
            ok: 128,
            overloaded_retries: 2,
            elapsed_millis: 20.0,
            throughput_rps: 6400.0,
            p50_micros: 500.0,
            p99_micros: 1500.0,
            max_micros: 2000.0,
        }
    }

    fn baseline() -> ServeBaseline {
        ServeBaseline {
            schema: SCHEMA.into(),
            smoke: true,
            available_parallelism: 4,
            workers: 2,
            connections: 4,
            requests_per_connection: 32,
            sections: vec![section("classify"), section("classify_batch")],
        }
    }

    #[test]
    fn valid_baseline_passes_validate_and_gate() {
        let b = baseline();
        b.validate().unwrap();
        b.gate().unwrap();
    }

    #[test]
    fn validation_catches_schema_drift() {
        let mut b = baseline();
        b.schema = "other/v0".into();
        assert!(b.validate().is_err());

        let mut b = baseline();
        b.sections.retain(|s| s.name != "classify_batch");
        assert!(b.validate().unwrap_err().contains("classify_batch"));

        let mut b = baseline();
        b.sections[0].throughput_rps = f64::NAN;
        assert!(b.validate().is_err());

        let mut b = baseline();
        b.sections[0].p50_micros = 1800.0; // above p99
        assert!(b.validate().unwrap_err().contains("percentiles"));
    }

    #[test]
    fn gate_requires_every_request_answered() {
        let mut b = baseline();
        b.sections[1].ok = 127;
        assert!(b.gate().unwrap_err().contains("127/128"));
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let samples = [5.0, 1.0, 4.0, 2.0, 3.0];
        assert_eq!(percentile_micros(&samples, 0.5), 3.0);
        assert_eq!(percentile_micros(&samples, 0.0), 1.0);
        assert_eq!(percentile_micros(&samples, 1.0), 5.0);
        assert_eq!(percentile_micros(&samples, 0.99), 5.0);
        assert_eq!(percentile_micros(&[7.5], 0.5), 7.5);
    }

    #[test]
    fn json_round_trip() {
        let b = baseline();
        let json = serde_json::to_string_pretty(&b).expect("serialize");
        let back: ServeBaseline = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, b);
        back.validate().unwrap();
    }
}
