//! Performance baseline harness behind the `perfbase` binary.
//!
//! Times the six hot paths of the runtime — subtractive clustering, one
//! ANFIS training run, single-sample FIS evaluation, batch FIS evaluation,
//! the blocked exact batch kernel, and the bounded-ULP SIMD batch kernel —
//! serial and (where pooling applies) on worker pools of 1/2/4/8 threads,
//! and writes the results as `BENCH_PR9.json`.
//!
//! # `BENCH_PR9.json` schema (`cqm-bench/perfbase/v2`)
//!
//! ```json
//! {
//!   "schema": "cqm-bench/perfbase/v2",
//!   "smoke": false,
//!   "available_parallelism": 8,
//!   "sections": [
//!     {
//!       "name": "clustering",
//!       "workload": "subtractive clustering, n=2000 points, d=3",
//!       "serial_millis": 123.4,
//!       "threaded": [
//!         { "threads": 1, "millis": 124.0 },
//!         { "threads": 2, "millis": 63.1 },
//!         { "threads": 4, "millis": 33.0 },
//!         { "threads": 8, "millis": 30.9 }
//!       ]
//!     }
//!   ]
//! }
//! ```
//!
//! * `schema` — exact constant [`SCHEMA`]; bump on layout changes.
//! * `smoke` — whether the fast CI workload sizes were used.
//! * `available_parallelism` — cores visible to the process when the
//!   numbers were taken; timings from a 1-core container show ≈1.0×
//!   "speedups" by construction and must be read alongside this field.
//! * `sections[*].name` — one of `clustering`, `anfis_epoch`,
//!   `eval_single`, `eval_batch`, `eval_batch_blocked`, `eval_batch_simd`
//!   (all six required; v2 added the last two).
//! * `sections[*].serial_millis` — wall-clock milliseconds of the plain
//!   serial API (`cluster`, `train_hybrid`, `eval`, `eval_batch`).
//! * `sections[*].threaded` — wall-clock milliseconds of the pooled API at
//!   each thread count; `clustering`, `anfis_epoch` and `eval_batch` carry
//!   all of 1/2/4/8, while the single-thread sections carry one
//!   `threads: 1` entry each: `eval_single` times the allocation-free
//!   kernel path, `eval_batch_blocked` times the rule-major blocked kernel
//!   at default (bit-identical) precision against a row-wise serial
//!   baseline, and `eval_batch_simd` times the blocked kernel under
//!   `EvalPrecision::BoundedUlp` (lane-unrolled fast-exp path) against the
//!   same row-wise exact baseline. The latter two are per-core throughput
//!   measurements, so their `serial / t1` speedups are meaningful on any
//!   machine, 1-core CI containers included.
//!
//! Every pooled path is bit-identical to its serial counterpart at any
//! thread count (the property the runtime is built around), so timings on
//! multi-core machines measure the same computation, not a numerically
//! different one.

use std::time::Instant;

use serde::{Deserialize, Serialize};

/// Schema identifier written to and expected in `BENCH_PR9.json`.
pub const SCHEMA: &str = "cqm-bench/perfbase/v2";

/// Thread counts every multi-threaded section must cover.
pub const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Section names that must be present in a valid baseline.
pub const SECTION_NAMES: [&str; 6] = [
    "clustering",
    "anfis_epoch",
    "eval_single",
    "eval_batch",
    "eval_batch_blocked",
    "eval_batch_simd",
];

/// Sections that carry a single `threads: 1` timing instead of the full
/// 1/2/4/8 ladder (single-sample or per-core throughput measurements).
pub const SINGLE_THREAD_SECTIONS: [&str; 3] =
    ["eval_single", "eval_batch_blocked", "eval_batch_simd"];

/// Minimum `serial / t1` speedup the bounded-ULP SIMD batch path must show
/// over the row-wise scalar baseline. Both sides are single-threaded, so
/// the gate is immune to the container's core count.
pub const SIMD_MIN_SPEEDUP: f64 = 1.8;

/// Wall-clock timing of one pooled run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThreadTiming {
    /// Worker-pool thread count.
    pub threads: usize,
    /// Best-of-reps wall-clock milliseconds.
    pub millis: f64,
}

/// One timed hot path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Section {
    /// Section name (see [`SECTION_NAMES`]).
    pub name: String,
    /// Human-readable workload description (sizes, dimensions).
    pub workload: String,
    /// Best-of-reps wall-clock milliseconds of the serial API.
    pub serial_millis: f64,
    /// Pooled timings per thread count.
    pub threaded: Vec<ThreadTiming>,
}

impl Section {
    /// Pooled milliseconds at `threads`, if that count was measured.
    pub fn millis_at(&self, threads: usize) -> Option<f64> {
        self.threaded
            .iter()
            .find(|t| t.threads == threads)
            .map(|t| t.millis)
    }

    /// `serial / threaded` speedup factor at `threads`.
    pub fn speedup_at(&self, threads: usize) -> Option<f64> {
        self.millis_at(threads).map(|m| self.serial_millis / m)
    }
}

/// The complete `BENCH_PR4.json` document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfBaseline {
    /// Schema identifier ([`SCHEMA`]).
    pub schema: String,
    /// Whether smoke (CI-sized) workloads were used.
    pub smoke: bool,
    /// Cores visible to the process at measurement time.
    pub available_parallelism: usize,
    /// The timed hot paths.
    pub sections: Vec<Section>,
}

impl PerfBaseline {
    /// Look up a section by name.
    pub fn section(&self, name: &str) -> Option<&Section> {
        self.sections.iter().find(|s| s.name == name)
    }

    /// Validate the document against the schema contract: identifier,
    /// required sections, required thread counts, positive finite timings.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema != SCHEMA {
            return Err(format!("schema is {:?}, expected {SCHEMA:?}", self.schema));
        }
        if self.available_parallelism == 0 {
            return Err("available_parallelism must be >= 1".into());
        }
        for name in SECTION_NAMES {
            let section = self
                .section(name)
                .ok_or_else(|| format!("missing section {name:?}"))?;
            if !(section.serial_millis > 0.0 && section.serial_millis.is_finite()) {
                return Err(format!(
                    "section {name:?}: serial_millis {} not positive finite",
                    section.serial_millis
                ));
            }
            if section.workload.is_empty() {
                return Err(format!("section {name:?}: empty workload description"));
            }
            for t in &section.threaded {
                if !(t.millis > 0.0 && t.millis.is_finite()) {
                    return Err(format!(
                        "section {name:?}: threads={} millis {} not positive finite",
                        t.threads, t.millis
                    ));
                }
            }
            let required: &[usize] = if SINGLE_THREAD_SECTIONS.contains(&name) {
                &[1]
            } else {
                &THREAD_COUNTS
            };
            for &threads in required {
                if section.millis_at(threads).is_none() {
                    return Err(format!(
                        "section {name:?}: missing timing for {threads} threads"
                    ));
                }
            }
        }
        Ok(())
    }

    /// The CI performance gate, in two halves.
    ///
    /// **SIMD gate** (always applied): the bounded-ULP blocked batch path
    /// must be at least [`SIMD_MIN_SPEEDUP`]× faster than the row-wise
    /// scalar baseline. Both measurements are single-threaded, so the gate
    /// holds on a 1-core container exactly as it does on a workstation.
    ///
    /// **Thread-scaling gate**: the pooled clustering path at 4 threads
    /// must not be slower than the serial path. The tolerance is
    /// core-aware — with at least 4 cores the pool must genuinely win
    /// (ratio ≤ 1.0 with a small noise margin); on 2–3 cores only bounded
    /// dispatch overhead is accepted. On a **single core** the gate is
    /// skipped entirely and [`GateOutcome::ThreadGateSkipped`] is returned
    /// so the caller can warn loudly: a 4-thread pool time-slicing one
    /// core measures the scheduler, not the runtime, and a baseline
    /// regenerated there must not silently "pass" thread scaling.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn gate(&self) -> Result<GateOutcome, String> {
        let simd = self
            .section("eval_batch_simd")
            .ok_or_else(|| "missing eval_batch_simd section".to_string())?;
        let speedup = simd
            .speedup_at(1)
            .ok_or_else(|| "eval_batch_simd: no 1-thread timing".to_string())?;
        if speedup < SIMD_MIN_SPEEDUP {
            return Err(format!(
                "bounded-ULP SIMD batch path is only {speedup:.2}x the scalar \
                 baseline (gate {SIMD_MIN_SPEEDUP:.1}x): serial {:.2} ms vs \
                 blocked t1 {:.2} ms",
                simd.serial_millis,
                simd.millis_at(1).unwrap_or(f64::NAN)
            ));
        }

        let section = self
            .section("clustering")
            .ok_or_else(|| "missing clustering section".to_string())?;
        let t4 = section
            .millis_at(4)
            .ok_or_else(|| "clustering: no 4-thread timing".to_string())?;
        if self.available_parallelism == 1 {
            return Ok(GateOutcome::ThreadGateSkipped {
                cores: self.available_parallelism,
            });
        }
        let ratio = t4 / section.serial_millis;
        let limit = if self.available_parallelism >= 4 {
            1.05
        } else {
            // On 2-3 cores the 4 threads time-slice one another; allow
            // scheduling overhead but still catch pathological slowdowns.
            1.5
        };
        if ratio > limit {
            return Err(format!(
                "clustering at 4 threads is {ratio:.2}x the serial time \
                 (limit {limit:.2} on {} cores): serial {:.2} ms vs pooled {:.2} ms",
                self.available_parallelism, section.serial_millis, t4
            ));
        }
        Ok(GateOutcome::Passed)
    }
}

/// What [`PerfBaseline::gate`] concluded when no limit was violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateOutcome {
    /// Both the SIMD gate and the thread-scaling gate were applied and held.
    Passed,
    /// The SIMD gate held, but the thread-scaling gate was skipped because
    /// the baseline was taken on a single core — the caller must surface
    /// this loudly, because 4-thread timings from one core are meaningless.
    ThreadGateSkipped {
        /// Cores visible when the baseline was taken (always 1 today).
        cores: usize,
    },
}

/// Cores visible to this process (1 if the runtime cannot tell).
pub fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Best-of-`reps` wall-clock milliseconds of `f`.
pub fn time_best<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn single(name: &str, serial: f64, t1: f64) -> Section {
        Section {
            name: name.into(),
            workload: "test".into(),
            serial_millis: serial,
            threaded: vec![ThreadTiming {
                threads: 1,
                millis: t1,
            }],
        }
    }

    fn baseline(cores: usize, clustering_t4: f64) -> PerfBaseline {
        baseline_with_simd(cores, clustering_t4, 2.0)
    }

    fn baseline_with_simd(cores: usize, clustering_t4: f64, simd_speedup: f64) -> PerfBaseline {
        let full = |name: &str, t4: f64| Section {
            name: name.into(),
            workload: "test".into(),
            serial_millis: 100.0,
            threaded: THREAD_COUNTS
                .iter()
                .map(|&threads| ThreadTiming {
                    threads,
                    millis: if threads == 4 { t4 } else { 100.0 },
                })
                .collect(),
        };
        PerfBaseline {
            schema: SCHEMA.into(),
            smoke: true,
            available_parallelism: cores,
            sections: vec![
                full("clustering", clustering_t4),
                full("anfis_epoch", 100.0),
                single("eval_single", 1.0, 0.8),
                full("eval_batch", 100.0),
                single("eval_batch_blocked", 100.0, 90.0),
                single("eval_batch_simd", 100.0, 100.0 / simd_speedup),
            ],
        }
    }

    #[test]
    fn valid_baseline_passes() {
        let b = baseline(1, 110.0);
        b.validate().unwrap();
        assert!(b.section("clustering").is_some());
        assert!((b.section("eval_single").unwrap().speedup_at(1).unwrap() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn validation_catches_schema_drift() {
        let mut b = baseline(1, 100.0);
        b.schema = "other/v0".into();
        assert!(b.validate().is_err());

        let mut b = baseline(1, 100.0);
        b.sections.retain(|s| s.name != "anfis_epoch");
        assert!(b.validate().unwrap_err().contains("anfis_epoch"));

        let mut b = baseline(1, 100.0);
        b.sections[0].threaded.retain(|t| t.threads != 8);
        assert!(b.validate().unwrap_err().contains("8 threads"));

        let mut b = baseline(1, 100.0);
        b.sections[0].serial_millis = 0.0;
        assert!(b.validate().is_err());
    }

    #[test]
    fn gate_is_core_aware() {
        // 1 core: the thread-scaling half is skipped (and reported as such)
        // no matter how bad the time-sliced 4-thread number looks.
        assert_eq!(
            baseline(1, 145.0).gate().unwrap(),
            GateOutcome::ThreadGateSkipped { cores: 1 }
        );
        assert_eq!(
            baseline(1, 500.0).gate().unwrap(),
            GateOutcome::ThreadGateSkipped { cores: 1 }
        );
        // 2-3 cores: bounded dispatch overhead accepted, not more.
        assert_eq!(baseline(2, 145.0).gate().unwrap(), GateOutcome::Passed);
        assert!(baseline(2, 160.0).gate().is_err());
        // >= 4 cores: the pool must not be slower than serial.
        assert_eq!(baseline(8, 100.0).gate().unwrap(), GateOutcome::Passed);
        assert!(baseline(8, 120.0).gate().is_err());
    }

    #[test]
    fn simd_gate_is_core_count_immune() {
        // The SIMD gate compares two single-threaded timings, so it is
        // applied even where the thread gate is skipped.
        let err = baseline_with_simd(1, 100.0, 1.2).gate().unwrap_err();
        assert!(err.contains("1.8"), "{err}");
        assert!(baseline_with_simd(8, 100.0, 1.2).gate().is_err());
        // Exactly at the gate passes.
        assert_eq!(
            baseline_with_simd(8, 100.0, SIMD_MIN_SPEEDUP).gate().unwrap(),
            GateOutcome::Passed
        );
    }

    #[test]
    fn validation_requires_the_v2_sections() {
        let mut b = baseline(1, 100.0);
        b.sections.retain(|s| s.name != "eval_batch_simd");
        assert!(b.validate().unwrap_err().contains("eval_batch_simd"));

        let mut b = baseline(1, 100.0);
        b.sections.retain(|s| s.name != "eval_batch_blocked");
        assert!(b.validate().unwrap_err().contains("eval_batch_blocked"));
    }

    #[test]
    fn json_round_trip() {
        let b = baseline(2, 100.0);
        let json = serde_json::to_string_pretty(&b).expect("serialize");
        let back: PerfBaseline = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, b);
        back.validate().unwrap();
    }

    #[test]
    fn time_best_measures_something() {
        let ms = time_best(3, || {
            let mut acc = 0.0f64;
            for i in 0..10_000 {
                acc += (i as f64).sqrt();
            }
            assert!(acc > 0.0);
        });
        assert!(ms > 0.0 && ms.is_finite());
    }
}
