//! Performance baseline harness behind the `perfbase` binary.
//!
//! Times the four hot paths of the runtime — subtractive clustering, one
//! ANFIS training run, single-sample FIS evaluation and batch FIS
//! evaluation — serial and on worker pools of 1/2/4/8 threads, and writes
//! the results as `BENCH_PR4.json`.
//!
//! # `BENCH_PR4.json` schema (`cqm-bench/perfbase/v1`)
//!
//! ```json
//! {
//!   "schema": "cqm-bench/perfbase/v1",
//!   "smoke": false,
//!   "available_parallelism": 8,
//!   "sections": [
//!     {
//!       "name": "clustering",
//!       "workload": "subtractive clustering, n=2000 points, d=3",
//!       "serial_millis": 123.4,
//!       "threaded": [
//!         { "threads": 1, "millis": 124.0 },
//!         { "threads": 2, "millis": 63.1 },
//!         { "threads": 4, "millis": 33.0 },
//!         { "threads": 8, "millis": 30.9 }
//!       ]
//!     }
//!   ]
//! }
//! ```
//!
//! * `schema` — exact constant [`SCHEMA`]; bump on layout changes.
//! * `smoke` — whether the fast CI workload sizes were used.
//! * `available_parallelism` — cores visible to the process when the
//!   numbers were taken; timings from a 1-core container show ≈1.0×
//!   "speedups" by construction and must be read alongside this field.
//! * `sections[*].name` — one of `clustering`, `anfis_epoch`,
//!   `eval_single`, `eval_batch` (all four required).
//! * `sections[*].serial_millis` — wall-clock milliseconds of the plain
//!   serial API (`cluster`, `train_hybrid`, `eval`, `eval_batch`).
//! * `sections[*].threaded` — wall-clock milliseconds of the pooled API at
//!   each thread count; `clustering`, `anfis_epoch` and `eval_batch` carry
//!   all of 1/2/4/8, `eval_single` carries a single `threads: 1` entry
//!   timing the allocation-free kernel path (thread pools do not apply to
//!   one sample).
//!
//! Every pooled path is bit-identical to its serial counterpart at any
//! thread count (the property the runtime is built around), so timings on
//! multi-core machines measure the same computation, not a numerically
//! different one.

use std::time::Instant;

use serde::{Deserialize, Serialize};

/// Schema identifier written to and expected in `BENCH_PR4.json`.
pub const SCHEMA: &str = "cqm-bench/perfbase/v1";

/// Thread counts every multi-threaded section must cover.
pub const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Section names that must be present in a valid baseline.
pub const SECTION_NAMES: [&str; 4] = ["clustering", "anfis_epoch", "eval_single", "eval_batch"];

/// Wall-clock timing of one pooled run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThreadTiming {
    /// Worker-pool thread count.
    pub threads: usize,
    /// Best-of-reps wall-clock milliseconds.
    pub millis: f64,
}

/// One timed hot path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Section {
    /// Section name (see [`SECTION_NAMES`]).
    pub name: String,
    /// Human-readable workload description (sizes, dimensions).
    pub workload: String,
    /// Best-of-reps wall-clock milliseconds of the serial API.
    pub serial_millis: f64,
    /// Pooled timings per thread count.
    pub threaded: Vec<ThreadTiming>,
}

impl Section {
    /// Pooled milliseconds at `threads`, if that count was measured.
    pub fn millis_at(&self, threads: usize) -> Option<f64> {
        self.threaded
            .iter()
            .find(|t| t.threads == threads)
            .map(|t| t.millis)
    }

    /// `serial / threaded` speedup factor at `threads`.
    pub fn speedup_at(&self, threads: usize) -> Option<f64> {
        self.millis_at(threads).map(|m| self.serial_millis / m)
    }
}

/// The complete `BENCH_PR4.json` document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfBaseline {
    /// Schema identifier ([`SCHEMA`]).
    pub schema: String,
    /// Whether smoke (CI-sized) workloads were used.
    pub smoke: bool,
    /// Cores visible to the process at measurement time.
    pub available_parallelism: usize,
    /// The timed hot paths.
    pub sections: Vec<Section>,
}

impl PerfBaseline {
    /// Look up a section by name.
    pub fn section(&self, name: &str) -> Option<&Section> {
        self.sections.iter().find(|s| s.name == name)
    }

    /// Validate the document against the schema contract: identifier,
    /// required sections, required thread counts, positive finite timings.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema != SCHEMA {
            return Err(format!("schema is {:?}, expected {SCHEMA:?}", self.schema));
        }
        if self.available_parallelism == 0 {
            return Err("available_parallelism must be >= 1".into());
        }
        for name in SECTION_NAMES {
            let section = self
                .section(name)
                .ok_or_else(|| format!("missing section {name:?}"))?;
            if !(section.serial_millis > 0.0 && section.serial_millis.is_finite()) {
                return Err(format!(
                    "section {name:?}: serial_millis {} not positive finite",
                    section.serial_millis
                ));
            }
            if section.workload.is_empty() {
                return Err(format!("section {name:?}: empty workload description"));
            }
            for t in &section.threaded {
                if !(t.millis > 0.0 && t.millis.is_finite()) {
                    return Err(format!(
                        "section {name:?}: threads={} millis {} not positive finite",
                        t.threads, t.millis
                    ));
                }
            }
            let required: &[usize] = if name == "eval_single" {
                &[1]
            } else {
                &THREAD_COUNTS
            };
            for &threads in required {
                if section.millis_at(threads).is_none() {
                    return Err(format!(
                        "section {name:?}: missing timing for {threads} threads"
                    ));
                }
            }
        }
        Ok(())
    }

    /// The CI performance gate: the pooled clustering path at 4 threads must
    /// not be slower than the serial path. The tolerance is core-aware —
    /// with at least 4 cores the pool must genuinely win (ratio ≤ 1.0 with a
    /// small noise margin); on fewer cores a 4-thread pool cannot physically
    /// beat serial, so only bounded dispatch overhead is accepted (the
    /// determinism guarantee means the speedup materialises unchanged on
    /// multicore hardware).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the violation.
    pub fn gate(&self) -> Result<(), String> {
        let section = self
            .section("clustering")
            .ok_or_else(|| "missing clustering section".to_string())?;
        let t4 = section
            .millis_at(4)
            .ok_or_else(|| "clustering: no 4-thread timing".to_string())?;
        let ratio = t4 / section.serial_millis;
        let limit = if self.available_parallelism >= 4 {
            1.05
        } else {
            // On fewer cores the 4 threads time-slice one another; allow
            // scheduling overhead but still catch pathological slowdowns.
            1.5
        };
        if ratio > limit {
            return Err(format!(
                "clustering at 4 threads is {ratio:.2}x the serial time \
                 (limit {limit:.2} on {} cores): serial {:.2} ms vs pooled {:.2} ms",
                self.available_parallelism, section.serial_millis, t4
            ));
        }
        Ok(())
    }
}

/// Cores visible to this process (1 if the runtime cannot tell).
pub fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Best-of-`reps` wall-clock milliseconds of `f`.
pub fn time_best<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline(cores: usize, clustering_t4: f64) -> PerfBaseline {
        let full = |name: &str, t4: f64| Section {
            name: name.into(),
            workload: "test".into(),
            serial_millis: 100.0,
            threaded: THREAD_COUNTS
                .iter()
                .map(|&threads| ThreadTiming {
                    threads,
                    millis: if threads == 4 { t4 } else { 100.0 },
                })
                .collect(),
        };
        PerfBaseline {
            schema: SCHEMA.into(),
            smoke: true,
            available_parallelism: cores,
            sections: vec![
                full("clustering", clustering_t4),
                full("anfis_epoch", 100.0),
                Section {
                    name: "eval_single".into(),
                    workload: "test".into(),
                    serial_millis: 1.0,
                    threaded: vec![ThreadTiming {
                        threads: 1,
                        millis: 0.8,
                    }],
                },
                full("eval_batch", 100.0),
            ],
        }
    }

    #[test]
    fn valid_baseline_passes() {
        let b = baseline(1, 110.0);
        b.validate().unwrap();
        assert!(b.section("clustering").is_some());
        assert!((b.section("eval_single").unwrap().speedup_at(1).unwrap() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn validation_catches_schema_drift() {
        let mut b = baseline(1, 100.0);
        b.schema = "other/v0".into();
        assert!(b.validate().is_err());

        let mut b = baseline(1, 100.0);
        b.sections.retain(|s| s.name != "anfis_epoch");
        assert!(b.validate().unwrap_err().contains("anfis_epoch"));

        let mut b = baseline(1, 100.0);
        b.sections[0].threaded.retain(|t| t.threads != 8);
        assert!(b.validate().unwrap_err().contains("8 threads"));

        let mut b = baseline(1, 100.0);
        b.sections[0].serial_millis = 0.0;
        assert!(b.validate().is_err());
    }

    #[test]
    fn gate_is_core_aware() {
        // 1 core: 4-thread pool may cost bounded overhead but not more.
        assert!(baseline(1, 145.0).gate().is_ok());
        assert!(baseline(1, 160.0).gate().is_err());
        // >= 4 cores: the pool must not be slower than serial.
        assert!(baseline(8, 100.0).gate().is_ok());
        assert!(baseline(8, 120.0).gate().is_err());
    }

    #[test]
    fn json_round_trip() {
        let b = baseline(2, 100.0);
        let json = serde_json::to_string_pretty(&b).expect("serialize");
        let back: PerfBaseline = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, b);
        back.validate().unwrap();
    }

    #[test]
    fn time_best_measures_something() {
        let ms = time_best(3, || {
            let mut acc = 0.0f64;
            for i in 0..10_000 {
                acc += (i as f64).sqrt();
            }
            assert!(acc > 0.0);
        });
        assert!(ms > 0.0 && ms.is_finite());
    }
}
