//! ABL-CUES — the AwarePen uses three per-axis standard-deviation cues
//! (§3.1). Does a richer cue vector (std-dev + range + zero-crossing rate,
//! 9 cues) change the classifier's accuracy or the CQM's separation power?
//!
//! ```sh
//! cargo run --release -p cqm-bench --bin ablation_cues
//! ```

// lint: allow(PANIC_IN_LIB, file) -- experiment driver: abort loudly on setup failure instead of degrading

use cqm_classify::dataset::ClassifiedDataset;
use cqm_classify::tsk::{FisClassifier, FisClassifierConfig};
use cqm_core::classifier::{ClassId, Classifier};
use cqm_core::training::{train_cqm, CqmTrainingConfig};
use cqm_sensors::cues::CueSet;
use cqm_sensors::node::{NodeConfig, SensorNode};
use cqm_sensors::synth::Scenario;
use cqm_sensors::user::UserStyle;
use cqm_stats::separation::auc;

fn corpus(cue_set: CueSet, seed: u64) -> Vec<cqm_sensors::node::LabeledCues> {
    let scenario = Scenario::balanced_session()
        .expect("scenario")
        .then(&Scenario::write_think_write().expect("scenario"));
    let mut out = Vec::new();
    for rep in 0..2 {
        for (si, style) in UserStyle::population().into_iter().enumerate() {
            let config = NodeConfig {
                cue_set,
                ..NodeConfig::default()
            };
            let node_seed = seed
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add((rep * 31 + si) as u64);
            let mut node = SensorNode::new(config, style, node_seed).expect("node");
            out.extend(node.run_scenario(&scenario).expect("run"));
        }
    }
    out
}

fn main() {
    println!("== ABL-CUES: std-dev cues (paper) vs extended cue vector ==\n");
    println!("cue set    dim   classifier acc   CQM threshold   selection   eval AUC");
    println!("--------   ---   --------------   -------------   ---------   --------");
    for (name, cue_set) in [("std-dev ", CueSet::StdDev), ("extended", CueSet::Extended)] {
        let train = corpus(cue_set, 2007);
        let data = ClassifiedDataset::from_labeled_cues(&train).expect("dataset");
        let classifier =
            FisClassifier::train(&data, &FisClassifierConfig::default()).expect("classifier");
        let acc = classifier.accuracy(&data);
        let truth: Vec<ClassId> = data.labels().to_vec();
        let trained = train_cqm(
            &classifier,
            data.cues(),
            &truth,
            &CqmTrainingConfig::default(),
        )
        .expect("cqm");
        // Fresh evaluation corpus with the same cue set.
        let eval = corpus(cue_set, 7331);
        let labeled: Vec<(f64, bool)> = eval
            .iter()
            .filter_map(|w| {
                let class = classifier.classify(&w.cues).ok()?;
                let right = class.0 == w.truth.index();
                trained
                    .measure
                    .measure(&w.cues, class)
                    .ok()?
                    .value()
                    .map(|q| (q, right))
            })
            .collect();
        let a = auc(&labeled).unwrap_or(f64::NAN);
        println!(
            "{name}   {:3}   {:14.3}   {:13.3}   {:9.3}   {a:8.3}",
            cue_set.dim(),
            acc,
            trained.threshold.value,
            trained.probabilities.selection_right,
        );
    }
    println!("\nexpected shape: extended cues may lift the classifier; the CQM add-on");
    println!("works over either cue vector without modification (black-box property)");
}
