//! ABL-CLUST — §2.2.1: "A mountain clustering could be suitable, but is
//! highly dependent on the grid structure. We opt for a subtractive
//! clustering instead."
//!
//! This ablation runs structure identification for the quality FIS with
//! both density methods (mountain at two grid resolutions) and fuzzy
//! c-means, then compares the resulting reliability fit.
//!
//! ```sh
//! cargo run --release -p cqm-bench --bin ablation_cluster
//! ```

// lint: allow(PANIC_IN_LIB, file) -- experiment driver: abort loudly on setup failure instead of degrading

use cqm_anfis::dataset::Dataset;
use cqm_anfis::genfis::{genfis, genfis_from_centers, GenfisParams};
use cqm_anfis::rmse;
use cqm_bench::paper_testbed;
use cqm_classify::dataset::ClassifiedDataset;
use cqm_anfis::grid::{genfis_grid, GridParams};
use cqm_cluster::fcm::fuzzy_c_means;
use cqm_cluster::mountain::{MountainClustering, MountainParams};
use cqm_core::classifier::Classifier;
use cqm_sensors::node::training_corpus;
use std::time::Instant;

fn main() {
    println!("== ABL-CLUST: structure identification method ==\n");
    let testbed = paper_testbed(2007);
    let corpus = training_corpus(31, 2).expect("corpus");
    let data = ClassifiedDataset::from_labeled_cues(&corpus).expect("dataset");
    let mut joint = Dataset::new(data.dim() + 1);
    for (cues, label) in data.iter() {
        let predicted = testbed.build.classifier.classify(cues).expect("classify");
        let mut row = cues.to_vec();
        row.push(predicted.as_f64());
        joint
            .push(row, if predicted == label { 1.0 } else { 0.0 })
            .expect("valid sample");
    }
    let mut params = GenfisParams::with_radius(0.15);
    params.clustering.accept_ratio = 0.2;
    params.clustering.reject_ratio = 0.03;

    println!("method                   rules   fit RMSE   time");
    println!("----------------------   -----   --------   --------");

    // Subtractive (the paper's choice).
    let t = Instant::now();
    let fis = genfis(&joint, &params).expect("subtractive genfis");
    println!(
        "subtractive (paper)      {:5}   {:8.4}   {:6.2?}",
        fis.rule_count(),
        rmse(&fis, &joint),
        t.elapsed()
    );

    // Mountain at two grid resolutions — the documented grid dependence.
    let joint_rows = joint.joint_rows();
    for grid in [4usize, 7] {
        let t = Instant::now();
        let mp = MountainParams {
            grid,
            stop_ratio: 0.2,
            ..MountainParams::default()
        };
        match MountainClustering::new(mp).cluster(&joint_rows) {
            Ok(result) => match genfis_from_centers(&joint, &result.centers, &params) {
                Ok(fis) => println!(
                    "mountain grid={grid}          {:5}   {:8.4}   {:6.2?}",
                    fis.rule_count(),
                    rmse(&fis, &joint),
                    t.elapsed()
                ),
                Err(e) => println!("mountain grid={grid}          genfis failed: {e}"),
            },
            Err(e) => println!("mountain grid={grid}          clustering failed: {e}"),
        }
    }

    // Fuzzy c-means with the subtractive rule count (needs c a priori —
    // exactly the drawback §2.2.1 cites).
    let c = fis.rule_count();
    let t = Instant::now();
    match fuzzy_c_means(&joint_rows, c, 2.0, 7) {
        Ok(result) => match genfis_from_centers(&joint, &result.centers, &params) {
            Ok(fis) => println!(
                "fcm (c={c} given!)        {:5}   {:8.4}   {:6.2?}",
                fis.rule_count(),
                rmse(&fis, &joint),
                t.elapsed()
            ),
            Err(e) => println!("fcm                      genfis failed: {e}"),
        },
        Err(e) => println!("fcm                      clustering failed: {e}"),
    }

    // Grid partition (genfis1-style): 2 MFs per input over the 4-D joint
    // space already means 16 rules — the dimensional blow-up §2.2.1's
    // clustering approach avoids.
    let t = Instant::now();
    match genfis_grid(
        &joint,
        &GridParams {
            mfs_per_input: 2,
            ..GridParams::default()
        },
    ) {
        Ok(fis) => println!(
            "grid partition (2/in)    {:5}   {:8.4}   {:6.2?}",
            fis.rule_count(),
            rmse(&fis, &joint),
            t.elapsed()
        ),
        Err(e) => println!("grid partition (2/in)    failed: {e}"),
    }

    println!("\nexpected shape: subtractive competitive without any prior cluster count;");
    println!("mountain's fit moves with the grid resolution (its §2.2.1 drawback);");
    println!("fcm needs the cluster count handed to it");
}
