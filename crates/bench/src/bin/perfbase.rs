//! PERFBASE — the performance baseline harness (PR 4).
//!
//! Times the four hot paths (subtractive clustering, ANFIS training,
//! single-sample FIS evaluation, batch FIS evaluation) serially and on
//! worker pools of 1/2/4/8 threads, asserts serial/parallel bit-identity
//! on the way, and writes the results as `BENCH_PR4.json` (schema
//! documented in `cqm_bench::perf`).
//!
//! ```sh
//! cargo run --release -p cqm-bench --bin perfbase            # full sizes
//! cargo run --release -p cqm-bench --bin perfbase -- --smoke # CI gate
//! cargo run --release -p cqm-bench --bin perfbase -- --out /tmp/perf.json
//! ```
//!
//! `--smoke` shrinks the workloads to CI size and applies the core-aware
//! performance gate (`PerfBaseline::gate`): on a ≥4-core machine the pooled
//! clustering path must not be slower than serial; on fewer cores only
//! bounded dispatch overhead is accepted, because a 4-thread pool cannot
//! physically beat serial there (determinism guarantees the speedup carries
//! over unchanged to multicore hardware).

// lint: allow(PANIC_IN_LIB, file) -- perf driver: abort loudly on setup failure instead of degrading

use std::process::ExitCode;

use cqm_anfis::{train_hybrid_with, Dataset, HybridConfig};
use cqm_fuzzy::TskFis;
use cqm_bench::perf::{available_cores, time_best, PerfBaseline, Section, ThreadTiming, SCHEMA, THREAD_COUNTS};
use cqm_cluster::subtractive::{SubtractiveClustering, SubtractiveParams};
use cqm_parallel::WorkerPool;

/// Deterministic synthetic points: a plain LCG so the workload is identical
/// on every run and machine (no RNG crate, no wall-clock seeding).
struct Lcg(u64);

impl Lcg {
    fn next_unit(&mut self) -> f64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        // Top 53 bits -> [0, 1).
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn synth_points(n: usize, dim: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = Lcg(seed);
    (0..n)
        .map(|_| (0..dim).map(|_| rng.next_unit() * 4.0 - 2.0).collect())
        .collect()
}

/// A smooth nonlinear target over 2 inputs for the training workload.
fn synth_dataset(n: usize, seed: u64) -> Dataset {
    let mut rng = Lcg(seed);
    let mut data = Dataset::new(2);
    for _ in 0..n {
        let a = rng.next_unit() * 2.0 - 1.0;
        let b = rng.next_unit() * 2.0 - 1.0;
        let y = (3.0 * a).sin() * 0.5 + b * b - 0.3 * a * b;
        data.push(vec![a, b], y).expect("finite sample");
    }
    data
}

fn pools() -> Vec<(usize, WorkerPool)> {
    THREAD_COUNTS
        .iter()
        .map(|&t| (t, WorkerPool::new(t)))
        .collect()
}

fn section_clustering(smoke: bool, reps: usize) -> Section {
    let n = if smoke { 400 } else { 2000 };
    let data = synth_points(n, 3, 0xC1);
    let clustering = SubtractiveClustering::new(SubtractiveParams {
        radius: 0.4,
        ..SubtractiveParams::default()
    });

    let reference = clustering.cluster(&data).expect("clustering");
    let serial_millis = time_best(reps, || {
        let r = clustering.cluster(&data).expect("clustering");
        assert_eq!(r.centers.len(), reference.centers.len());
    });
    let threaded = pools()
        .iter()
        .map(|(t, pool)| {
            let r = clustering.cluster_with(&data, pool).expect("clustering");
            // Bit-identity between serial and every pooled run — the
            // property the whole runtime is built on.
            assert_eq!(r.centers.len(), reference.centers.len(), "threads={t}");
            for (a, b) in r.centers.iter().zip(&reference.centers) {
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(x.to_bits(), y.to_bits(), "threads={t}");
                }
            }
            ThreadTiming {
                threads: *t,
                millis: time_best(reps, || {
                    clustering.cluster_with(&data, pool).expect("clustering");
                }),
            }
        })
        .collect();
    Section {
        name: "clustering".into(),
        workload: format!("subtractive clustering, n={n} points, d=3, radius 0.4"),
        serial_millis,
        threaded,
    }
}

fn section_anfis(smoke: bool, reps: usize) -> Section {
    let n = if smoke { 200 } else { 600 };
    let data = synth_dataset(n, 0xA2);
    let params = cqm_anfis::GenfisParams::with_radius(0.5);
    let base = cqm_anfis::genfis(&data, &params).expect("genfis");
    let epochs = 3usize;
    let config = HybridConfig {
        epochs,
        patience: epochs,
        ..HybridConfig::default()
    };

    let mut reference: Option<TskFis> = None;
    let serial_millis = time_best(reps, || {
        let mut fis = base.clone();
        train_hybrid_with(&mut fis, &data, None, &config, &WorkerPool::serial()).expect("training");
        reference = Some(fis);
    });
    let reference = reference.expect("at least one rep");
    let threaded = pools()
        .iter()
        .map(|(t, pool)| ThreadTiming {
            threads: *t,
            millis: time_best(reps, || {
                let mut fis = base.clone();
                train_hybrid_with(&mut fis, &data, None, &config, pool).expect("training");
                assert_eq!(fis.rules().len(), reference.rules().len(), "threads={t}");
            }),
        })
        .collect();
    Section {
        name: "anfis_epoch".into(),
        workload: format!("hybrid training, n={n} samples, dim=2, {epochs} epochs"),
        serial_millis,
        threaded,
    }
}

fn section_eval_single(fis: &TskFis, reps: usize) -> Section {
    let inputs = synth_points(2000, fis.input_dim(), 0xE5)
        .into_iter()
        .map(|v| v.into_iter().map(|x| x * 0.4).collect::<Vec<f64>>())
        .collect::<Vec<_>>();

    let serial_millis = time_best(reps, || {
        let mut acc = 0.0f64;
        for v in &inputs {
            acc += fis.eval(v).expect("eval");
        }
        assert!(acc.is_finite());
    });
    let kernel = fis.kernel();
    let mut scratch = cqm_fuzzy::TskScratch::with_rules(kernel.rule_count());
    let kernel_millis = time_best(reps, || {
        let mut acc = 0.0f64;
        for v in &inputs {
            acc += kernel.eval_into(v, &mut scratch).expect("eval");
        }
        assert!(acc.is_finite());
    });
    Section {
        name: "eval_single".into(),
        workload: format!(
            "2000 single-sample evals, {} rules, dim={} (threaded[0] = allocation-free kernel)",
            fis.rules().len(),
            fis.input_dim()
        ),
        serial_millis,
        threaded: vec![ThreadTiming {
            threads: 1,
            millis: kernel_millis,
        }],
    }
}

fn section_eval_batch(fis: &TskFis, smoke: bool, reps: usize) -> Section {
    let n = if smoke { 1000 } else { 5000 };
    let inputs = synth_points(n, fis.input_dim(), 0xB7)
        .into_iter()
        .map(|v| v.into_iter().map(|x| x * 0.4).collect::<Vec<f64>>())
        .collect::<Vec<_>>();

    let reference = fis.eval_batch(&inputs).expect("batch eval");
    let serial_millis = time_best(reps, || {
        let out = fis.eval_batch(&inputs).expect("batch eval");
        assert_eq!(out.len(), inputs.len());
    });
    let threaded = pools()
        .iter()
        .map(|(t, pool)| {
            let out = fis.eval_batch_with(&inputs, pool).expect("batch eval");
            for (a, b) in out.iter().zip(&reference) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={t}");
            }
            ThreadTiming {
                threads: *t,
                millis: time_best(reps, || {
                    fis.eval_batch_with(&inputs, pool).expect("batch eval");
                }),
            }
        })
        .collect();
    Section {
        name: "eval_batch".into(),
        workload: format!("batch eval, n={n} rows, {} rules", fis.rules().len()),
        serial_millis,
        threaded,
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR4.json".to_string());
    let reps = if smoke { 4 } else { 3 };

    println!("== perfbase: performance baseline ({}) ==", if smoke { "smoke" } else { "full" });
    let cores = available_cores();
    println!("available parallelism: {cores} core(s)\n");

    println!("[1/4] clustering ...");
    let clustering = section_clustering(smoke, reps);
    println!("[2/4] anfis training ...");
    let anfis = section_anfis(smoke, reps);

    // Reuse a trained FIS for the evaluation sections.
    let data = synth_dataset(if smoke { 200 } else { 600 }, 0xA2);
    let mut fis = cqm_anfis::genfis(&data, &cqm_anfis::GenfisParams::with_radius(0.5)).expect("genfis");
    train_hybrid_with(
        &mut fis,
        &data,
        None,
        &HybridConfig {
            epochs: 3,
            patience: 3,
            ..HybridConfig::default()
        },
        &WorkerPool::auto(),
    )
    .expect("training");

    println!("[3/4] single-sample eval ...");
    let eval_single = section_eval_single(&fis, reps);
    println!("[4/4] batch eval ...");
    let eval_batch = section_eval_batch(&fis, smoke, reps);

    let baseline = PerfBaseline {
        schema: SCHEMA.to_string(),
        smoke,
        available_parallelism: cores,
        sections: vec![clustering, anfis, eval_single, eval_batch],
    };

    println!("\n{:14} {:>10} {:>8} {:>8} {:>8} {:>8}", "section", "serial", "t=1", "t=2", "t=4", "t=8");
    for s in &baseline.sections {
        let cell = |t: usize| {
            s.millis_at(t)
                .map_or_else(|| "-".to_string(), |m| format!("{m:.2}"))
        };
        println!(
            "{:14} {:>10.2} {:>8} {:>8} {:>8} {:>8}",
            s.name,
            s.serial_millis,
            cell(1),
            cell(2),
            cell(4),
            cell(8)
        );
    }
    if let Some(speedup) = baseline
        .section("clustering")
        .and_then(|s| s.speedup_at(4))
    {
        println!("\nclustering speedup at 4 threads: {speedup:.2}x (on {cores} core(s))");
    }

    let json = serde_json::to_string_pretty(&baseline).expect("serialize baseline");
    std::fs::write(&out_path, &json).expect("write baseline file");
    println!("wrote {out_path}");

    // Validate by re-parsing what was actually written.
    let written = std::fs::read_to_string(&out_path).expect("read baseline back");
    let parsed: PerfBaseline = match serde_json::from_str(&written) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("perfbase: written JSON does not parse: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = parsed.validate() {
        eprintln!("perfbase: schema validation failed: {e}");
        return ExitCode::FAILURE;
    }
    println!("schema validation: ok ({SCHEMA})");

    if smoke {
        match parsed.gate() {
            Ok(()) => println!("perf gate: ok"),
            Err(e) => {
                eprintln!("perfbase: perf gate failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
