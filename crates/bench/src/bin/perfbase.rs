//! PERFBASE — the performance baseline harness (PR 4, extended in PR 9).
//!
//! Times the six hot paths (subtractive clustering, ANFIS training,
//! single-sample FIS evaluation, batch FIS evaluation, the rule-major
//! blocked batch kernel, and the bounded-ULP SIMD batch kernel) serially
//! and — where pooling applies — on worker pools of 1/2/4/8 threads,
//! asserts serial/parallel bit-identity on the way, and writes the results
//! as `BENCH_PR9.json` (schema `cqm-bench/perfbase/v2`, documented in
//! `cqm_bench::perf`).
//!
//! ```sh
//! cargo run --release -p cqm-bench --bin perfbase            # full sizes
//! cargo run --release -p cqm-bench --bin perfbase -- --smoke # CI gate
//! cargo run --release -p cqm-bench --bin perfbase -- --out /tmp/perf.json
//! cargo run --release -p cqm-bench --bin perfbase -- \
//!     --section eval_batch_simd --section eval_batch_blocked
//! ```
//!
//! `--smoke` shrinks the workloads to CI size and applies the two-part
//! performance gate (`PerfBaseline::gate`): the single-thread SIMD gate
//! (bounded-ULP blocked batch ≥ 1.8× the scalar baseline, core-count
//! immune) always applies; the clustering thread-scaling gate is
//! core-aware, and on a 1-core container it is **skipped with a loud
//! warning** instead of pretending time-sliced numbers mean anything.
//!
//! `--section NAME` (repeatable) restricts the run to the named sections so
//! the simd/blocking kernels can be iterated on without re-running the
//! clustering/ANFIS workloads. A partial baseline is still written to
//! `--out`, but schema validation and the gate are skipped (with a notice)
//! because required sections are absent by construction.

// lint: allow(PANIC_IN_LIB, file) -- perf driver: abort loudly on setup failure instead of degrading

use std::process::ExitCode;

use cqm_anfis::{train_hybrid_with, Dataset, HybridConfig};
use cqm_bench::perf::{
    available_cores, time_best, GateOutcome, PerfBaseline, Section, ThreadTiming, SCHEMA,
    SECTION_NAMES, THREAD_COUNTS,
};
use cqm_cluster::subtractive::{SubtractiveClustering, SubtractiveParams};
use cqm_fuzzy::{EvalPrecision, MembershipFunction, TskFis, TskRule};
use cqm_math::fastexp::ulp_diff;
use cqm_parallel::WorkerPool;

/// Deterministic synthetic points: a plain LCG so the workload is identical
/// on every run and machine (no RNG crate, no wall-clock seeding).
struct Lcg(u64);

impl Lcg {
    fn next_unit(&mut self) -> f64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        // Top 53 bits -> [0, 1).
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn synth_points(n: usize, dim: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = Lcg(seed);
    (0..n)
        .map(|_| (0..dim).map(|_| rng.next_unit() * 4.0 - 2.0).collect())
        .collect()
}

/// A smooth nonlinear target over 2 inputs for the training workload.
fn synth_dataset(n: usize, seed: u64) -> Dataset {
    let mut rng = Lcg(seed);
    let mut data = Dataset::new(2);
    for _ in 0..n {
        let a = rng.next_unit() * 2.0 - 1.0;
        let b = rng.next_unit() * 2.0 - 1.0;
        let y = (3.0 * a).sin() * 0.5 + b * b - 0.3 * a * b;
        data.push(vec![a, b], y).expect("finite sample");
    }
    data
}

fn pools() -> Vec<(usize, WorkerPool)> {
    THREAD_COUNTS
        .iter()
        .map(|&t| (t, WorkerPool::new(t)))
        .collect()
}

fn section_clustering(smoke: bool, reps: usize) -> Section {
    let n = if smoke { 400 } else { 2000 };
    let data = synth_points(n, 3, 0xC1);
    let clustering = SubtractiveClustering::new(SubtractiveParams {
        radius: 0.4,
        ..SubtractiveParams::default()
    });

    let reference = clustering.cluster(&data).expect("clustering");
    let serial_millis = time_best(reps, || {
        let r = clustering.cluster(&data).expect("clustering");
        assert_eq!(r.centers.len(), reference.centers.len());
    });
    let threaded = pools()
        .iter()
        .map(|(t, pool)| {
            let r = clustering.cluster_with(&data, pool).expect("clustering");
            // Bit-identity between serial and every pooled run — the
            // property the whole runtime is built on.
            assert_eq!(r.centers.len(), reference.centers.len(), "threads={t}");
            for (a, b) in r.centers.iter().zip(&reference.centers) {
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(x.to_bits(), y.to_bits(), "threads={t}");
                }
            }
            ThreadTiming {
                threads: *t,
                millis: time_best(reps, || {
                    clustering.cluster_with(&data, pool).expect("clustering");
                }),
            }
        })
        .collect();
    Section {
        name: "clustering".into(),
        workload: format!("subtractive clustering, n={n} points, d=3, radius 0.4"),
        serial_millis,
        threaded,
    }
}

fn section_anfis(smoke: bool, reps: usize) -> Section {
    let n = if smoke { 200 } else { 600 };
    let data = synth_dataset(n, 0xA2);
    let params = cqm_anfis::GenfisParams::with_radius(0.5);
    let base = cqm_anfis::genfis(&data, &params).expect("genfis");
    let epochs = 3usize;
    let config = HybridConfig {
        epochs,
        patience: epochs,
        ..HybridConfig::default()
    };

    let mut reference: Option<TskFis> = None;
    let serial_millis = time_best(reps, || {
        let mut fis = base.clone();
        train_hybrid_with(&mut fis, &data, None, &config, &WorkerPool::serial()).expect("training");
        reference = Some(fis);
    });
    let reference = reference.expect("at least one rep");
    let threaded = pools()
        .iter()
        .map(|(t, pool)| ThreadTiming {
            threads: *t,
            millis: time_best(reps, || {
                let mut fis = base.clone();
                train_hybrid_with(&mut fis, &data, None, &config, pool).expect("training");
                assert_eq!(fis.rules().len(), reference.rules().len(), "threads={t}");
            }),
        })
        .collect();
    Section {
        name: "anfis_epoch".into(),
        workload: format!("hybrid training, n={n} samples, dim=2, {epochs} epochs"),
        serial_millis,
        threaded,
    }
}

fn section_eval_single(fis: &TskFis, reps: usize) -> Section {
    let inputs = synth_points(2000, fis.input_dim(), 0xE5)
        .into_iter()
        .map(|v| v.into_iter().map(|x| x * 0.4).collect::<Vec<f64>>())
        .collect::<Vec<_>>();

    let serial_millis = time_best(reps, || {
        let mut acc = 0.0f64;
        for v in &inputs {
            acc += fis.eval(v).expect("eval");
        }
        assert!(acc.is_finite());
    });
    let kernel = fis.kernel();
    let mut scratch = cqm_fuzzy::TskScratch::with_rules(kernel.rule_count());
    let kernel_millis = time_best(reps, || {
        let mut acc = 0.0f64;
        for v in &inputs {
            acc += kernel.eval_into(v, &mut scratch).expect("eval");
        }
        assert!(acc.is_finite());
    });
    Section {
        name: "eval_single".into(),
        workload: format!(
            "2000 single-sample evals, {} rules, dim={} (threaded[0] = allocation-free kernel)",
            fis.rules().len(),
            fis.input_dim()
        ),
        serial_millis,
        threaded: vec![ThreadTiming {
            threads: 1,
            millis: kernel_millis,
        }],
    }
}

fn section_eval_batch(fis: &TskFis, smoke: bool, reps: usize) -> Section {
    let n = if smoke { 1000 } else { 5000 };
    let inputs = synth_points(n, fis.input_dim(), 0xB7)
        .into_iter()
        .map(|v| v.into_iter().map(|x| x * 0.4).collect::<Vec<f64>>())
        .collect::<Vec<_>>();

    let reference = fis.eval_batch(&inputs).expect("batch eval");
    let serial_millis = time_best(reps, || {
        let out = fis.eval_batch(&inputs).expect("batch eval");
        assert_eq!(out.len(), inputs.len());
    });
    let threaded = pools()
        .iter()
        .map(|(t, pool)| {
            let out = fis.eval_batch_with(&inputs, pool).expect("batch eval");
            for (a, b) in out.iter().zip(&reference) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={t}");
            }
            ThreadTiming {
                threads: *t,
                millis: time_best(reps, || {
                    fis.eval_batch_with(&inputs, pool).expect("batch eval");
                }),
            }
        })
        .collect();
    Section {
        name: "eval_batch".into(),
        workload: format!("batch eval, n={n} rows, {} rules", fis.rules().len()),
        serial_millis,
        threaded,
    }
}


/// A deterministic Gaussian-only TSK rule base sized like an appliance
/// context model (the trained demo FIS is too small — 6 rules over 2
/// inputs — for blocking effects to show; the paper's context models carry
/// more cues and finer rule coverage). Seeded LCG parameters, identical on
/// every machine.
fn synth_gaussian_fis(rules: usize, dim: usize, seed: u64) -> TskFis {
    let mut rng = Lcg(seed);
    let rule = |rng: &mut Lcg| {
        let antecedents = (0..dim)
            .map(|_| {
                let mu = rng.next_unit() * 2.0 - 1.0;
                let sigma = 0.3 + rng.next_unit() * 0.5;
                MembershipFunction::gaussian(mu, sigma).expect("valid mf")
            })
            .collect();
        let consequent = (0..=dim).map(|_| rng.next_unit() * 2.0 - 1.0).collect();
        TskRule::new(antecedents, consequent).expect("valid rule")
    };
    TskFis::new((0..rules).map(|_| rule(&mut rng)).collect()).expect("valid fis")
}

/// Row-wise exact outputs of `kernel` over `inputs` — the scalar baseline
/// both blocked sections compare and race against.
fn rowwise_exact(fis: &TskFis, inputs: &[Vec<f64>]) -> Vec<f64> {
    let kernel = fis.kernel();
    let mut scratch = kernel.scratch();
    inputs
        .iter()
        .map(|v| kernel.eval_into(v, &mut scratch).expect("eval"))
        .collect()
}

/// Rule-major blocked batch kernel at default (bit-identical) precision vs
/// the row-wise scalar loop. Same math, same bits — the speedup isolates
/// what rule-major blocking and lane-structured loads buy on their own.
fn section_eval_batch_blocked(smoke: bool, reps: usize) -> Section {
    let n = if smoke { 1000 } else { 5000 };
    let fis = &synth_gaussian_fis(16, 4, 0x9B);
    let inputs = synth_points(n, fis.input_dim(), 0xB7)
        .into_iter()
        .map(|v| v.into_iter().map(|x| x * 0.4).collect::<Vec<f64>>())
        .collect::<Vec<_>>();
    let kernel = fis.kernel();
    assert!(kernel.is_gaussian_only(), "trained FIS must be Gaussian-only");

    let reference = rowwise_exact(fis, &inputs);
    let mut scratch = kernel.scratch();
    let serial_millis = time_best(reps, || {
        let mut acc = 0.0f64;
        for v in &inputs {
            acc += kernel.eval_into(v, &mut scratch).expect("eval");
        }
        assert!(acc.is_finite());
    });

    let mut out = Vec::with_capacity(n);
    kernel
        .eval_batch_into(&inputs, &mut scratch, &mut out)
        .expect("blocked batch eval");
    // The default-precision contract: blocked bits == row-wise bits.
    for (i, (a, b)) in out.iter().zip(&reference).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "blocked row {i} diverged");
    }
    let blocked_millis = time_best(reps, || {
        kernel
            .eval_batch_into(&inputs, &mut scratch, &mut out)
            .expect("blocked batch eval");
    });
    Section {
        name: "eval_batch_blocked".into(),
        workload: format!(
            "blocked exact batch, n={n} rows, {} rules, dim={} (bit-identical to row-wise)",
            fis.rules().len(),
            fis.input_dim()
        ),
        serial_millis,
        threaded: vec![ThreadTiming {
            threads: 1,
            millis: blocked_millis,
        }],
    }
}

/// Bounded-ULP SIMD batch kernel (`EvalPrecision::BoundedUlp`: rule-major
/// blocking + f64x4 lanes + the polynomial fast exp) vs the same row-wise
/// exact baseline. The max observed output ULP distance from exact is
/// recorded in the workload string and sanity-bounded here; the tight
/// per-call primitive bound lives in `cqm-math::fastexp` and its tests.
fn section_eval_batch_simd(smoke: bool, reps: usize) -> Section {
    let n = if smoke { 1000 } else { 5000 };
    let fis = &synth_gaussian_fis(16, 4, 0x9B);
    let inputs = synth_points(n, fis.input_dim(), 0xB7)
        .into_iter()
        .map(|v| v.into_iter().map(|x| x * 0.4).collect::<Vec<f64>>())
        .collect::<Vec<_>>();
    let kernel = fis.kernel();
    assert!(kernel.is_gaussian_only(), "trained FIS must be Gaussian-only");

    let reference = rowwise_exact(fis, &inputs);
    let mut scratch = kernel.scratch();
    let serial_millis = time_best(reps, || {
        let mut acc = 0.0f64;
        for v in &inputs {
            acc += kernel.eval_into(v, &mut scratch).expect("eval");
        }
        assert!(acc.is_finite());
    });

    let mut out = Vec::with_capacity(n);
    kernel
        .eval_batch_into_prec(&inputs, EvalPrecision::BoundedUlp, &mut scratch, &mut out)
        .expect("bounded batch eval");
    let max_ulp = out
        .iter()
        .zip(&reference)
        .map(|(a, b)| ulp_diff(*a, *b))
        .max()
        .unwrap_or(0);
    // Generous sanity ceiling only: the tight, asserted bounds live in the
    // tests (<= 2 ULP per exp primitive, <= 256 output ULP on the
    // well-conditioned kernel testbed). Output ULP here is workload-
    // conditioned — rows whose defuzzified output lands near zero turn a
    // tiny fixed absolute error into a large ULP distance — so this guard
    // only catches a broken fast path, not normal conditioning.
    assert!(
        max_ulp <= 1 << 17,
        "bounded outputs drifted {max_ulp} ULP from exact"
    );
    let simd_millis = time_best(reps, || {
        kernel
            .eval_batch_into_prec(&inputs, EvalPrecision::BoundedUlp, &mut scratch, &mut out)
            .expect("bounded batch eval");
    });
    Section {
        name: "eval_batch_simd".into(),
        workload: format!(
            "bounded-ULP simd batch, n={n} rows, {} rules, dim={}, max observed output ULP {max_ulp}",
            fis.rules().len(),
            fis.input_dim()
        ),
        serial_millis,
        threaded: vec![ThreadTiming {
            threads: 1,
            millis: simd_millis,
        }],
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage();
        return ExitCode::SUCCESS;
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR9.json".to_string());
    let mut selected: Vec<String> = Vec::new();
    for (i, a) in args.iter().enumerate() {
        if a == "--section" {
            match args.get(i + 1) {
                Some(name) if SECTION_NAMES.contains(&name.as_str()) => {
                    selected.push(name.clone());
                }
                Some(name) => {
                    eprintln!(
                        "perfbase: unknown section {name:?}; valid sections: {}",
                        SECTION_NAMES.join(", ")
                    );
                    return ExitCode::from(2);
                }
                None => {
                    eprintln!("perfbase: --section needs a name");
                    return ExitCode::from(2);
                }
            }
        }
    }
    let run_all = selected.is_empty();
    let want = |name: &str| run_all || selected.iter().any(|s| s == name);
    let reps = if smoke { 4 } else { 3 };

    println!("== perfbase: performance baseline ({}) ==", if smoke { "smoke" } else { "full" });
    let cores = available_cores();
    println!("available parallelism: {cores} core(s)");
    if cores == 1 {
        println!(
            "perfbase: WARNING: running on 1 core — multi-thread timings \
             time-slice a single CPU and the thread-scaling gate will be \
             SKIPPED; regenerate the committed baseline on real cores"
        );
    }
    println!();

    let total = SECTION_NAMES.iter().filter(|n| want(n)).count();
    let mut step = 0usize;
    let mut progress = |name: &str| {
        step += 1;
        println!("[{step}/{total}] {name} ...");
    };

    let mut sections: Vec<Section> = Vec::new();
    if want("clustering") {
        progress("clustering");
        sections.push(section_clustering(smoke, reps));
    }
    if want("anfis_epoch") {
        progress("anfis training");
        sections.push(section_anfis(smoke, reps));
    }

    let needs_fis = ["eval_single", "eval_batch"].iter().any(|n| want(n));
    let fis = needs_fis.then(|| {
        // Reuse one trained FIS for every evaluation section.
        let data = synth_dataset(if smoke { 200 } else { 600 }, 0xA2);
        let mut fis =
            cqm_anfis::genfis(&data, &cqm_anfis::GenfisParams::with_radius(0.5)).expect("genfis");
        train_hybrid_with(
            &mut fis,
            &data,
            None,
            &HybridConfig {
                epochs: 3,
                patience: 3,
                ..HybridConfig::default()
            },
            &WorkerPool::auto(),
        )
        .expect("training");
        fis
    });

    if let Some(fis) = &fis {
        if want("eval_single") {
            progress("single-sample eval");
            sections.push(section_eval_single(fis, reps));
        }
        if want("eval_batch") {
            progress("batch eval");
            sections.push(section_eval_batch(fis, smoke, reps));
        }
    }
    if want("eval_batch_blocked") {
        progress("blocked exact batch eval");
        sections.push(section_eval_batch_blocked(smoke, reps));
    }
    if want("eval_batch_simd") {
        progress("bounded-ULP simd batch eval");
        sections.push(section_eval_batch_simd(smoke, reps));
    }

    let baseline = PerfBaseline {
        schema: SCHEMA.to_string(),
        smoke,
        available_parallelism: cores,
        sections,
    };

    println!("\n{:20} {:>10} {:>8} {:>8} {:>8} {:>8}", "section", "serial", "t=1", "t=2", "t=4", "t=8");
    for s in &baseline.sections {
        let cell = |t: usize| {
            s.millis_at(t)
                .map_or_else(|| "-".to_string(), |m| format!("{m:.2}"))
        };
        println!(
            "{:20} {:>10.2} {:>8} {:>8} {:>8} {:>8}",
            s.name,
            s.serial_millis,
            cell(1),
            cell(2),
            cell(4),
            cell(8)
        );
    }
    if let Some(speedup) = baseline
        .section("clustering")
        .and_then(|s| s.speedup_at(4))
    {
        println!("\nclustering speedup at 4 threads: {speedup:.2}x (on {cores} core(s))");
    }
    if let Some(speedup) = baseline
        .section("eval_batch_blocked")
        .and_then(|s| s.speedup_at(1))
    {
        println!("blocked exact batch speedup (single thread): {speedup:.2}x");
    }
    if let Some(speedup) = baseline
        .section("eval_batch_simd")
        .and_then(|s| s.speedup_at(1))
    {
        println!("bounded-ULP simd batch speedup (single thread): {speedup:.2}x");
    }

    let json = serde_json::to_string_pretty(&baseline).expect("serialize baseline");
    std::fs::write(&out_path, &json).expect("write baseline file");
    println!("wrote {out_path}");

    if !run_all {
        println!(
            "perfbase: partial run (--section): schema validation and the \
             perf gate need the full section set, skipping both"
        );
        return ExitCode::SUCCESS;
    }

    // Validate by re-parsing what was actually written.
    let written = std::fs::read_to_string(&out_path).expect("read baseline back");
    let parsed: PerfBaseline = match serde_json::from_str(&written) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("perfbase: written JSON does not parse: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = parsed.validate() {
        eprintln!("perfbase: schema validation failed: {e}");
        return ExitCode::FAILURE;
    }
    println!("schema validation: ok ({SCHEMA})");

    if smoke {
        match parsed.gate() {
            Ok(GateOutcome::Passed) => println!("perf gate: ok (simd + thread scaling)"),
            Ok(GateOutcome::ThreadGateSkipped { cores }) => {
                println!("perf gate: simd ok");
                println!(
                    "perfbase: WARNING: thread-scaling gate SKIPPED — baseline \
                     taken on {cores} core(s); multi-thread numbers in this file \
                     are time-sliced and must not be read as scaling evidence"
                );
            }
            Err(e) => {
                eprintln!("perfbase: perf gate failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn print_usage() {
    println!(
        "usage: perfbase [--smoke] [--out FILE] [--section NAME]...\n\n\
         --smoke          CI-sized workloads + the perf gate\n\
         --out FILE       output path (default BENCH_PR9.json)\n\
         --section NAME   run only the named section(s); repeatable.\n\
         \x20                valid: {}\n\
         \x20                partial runs skip schema validation and the gate",
        SECTION_NAMES.join(", ")
    );
}
