//! LOADGEN — the service load baseline harness (PR 5).
//!
//! Starts an in-process [`cqm_serve::CqmServer`] on an ephemeral port with
//! the trained AwarePen model, drives it over real TCP with concurrent
//! client connections (single-classify and batch request shapes), and
//! writes throughput + latency percentiles as `BENCH_PR5.json` (schema
//! documented in `cqm_bench::servebench`).
//!
//! ```sh
//! cargo run --release -p cqm-bench --bin loadgen            # full load
//! cargo run --release -p cqm-bench --bin loadgen -- --smoke # CI gate
//! cargo run --release -p cqm-bench --bin loadgen -- --out /tmp/serve.json
//! cargo run --release -p cqm-bench --bin loadgen -- --connections 8 --requests 100
//! ```
//!
//! `--smoke` shrinks the load to CI size and applies the service gate
//! (`ServeBaseline::gate`): every issued request must be answered (overload
//! is absorbed by bounded client retries and reported, never dropped) and
//! the measured throughput must be positive.

// lint: allow(PANIC_IN_LIB, file) -- perf driver: abort loudly on setup failure instead of degrading

use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::Barrier;
use std::time::{Duration, Instant};

use cqm_appliance::pen::train_pen;
use cqm_bench::servebench::{available_cores, percentile_micros, ServeBaseline, ServeSection, SCHEMA};
use cqm_core::model::CqmModel;
use cqm_serve::{ClientConfig, CqmClient, CqmServer, ModelSource, ServedModel, ServerConfig, ServeError};
use cqm_serve::protocol::WireErrorKind;

/// Rows per batch request in the `classify_batch` section.
const BATCH_ROWS: usize = 8;

/// Overload retries each load-generator client absorbs before declaring a
/// request unanswered.
const MAX_RETRIES: u32 = 50;

/// Deterministic synthetic cue vectors: a plain LCG so the workload is
/// identical on every run and machine (same generator as `perfbase`).
struct Lcg(u64);

impl Lcg {
    fn next_unit(&mut self) -> f64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }

    fn cues(&mut self, dim: usize) -> Vec<f64> {
        (0..dim).map(|_| self.next_unit() * 2.0).collect()
    }
}

/// Per-thread tally of one load run.
#[derive(Default)]
struct Tally {
    ok: u64,
    overloaded_retries: u64,
    latencies_micros: Vec<f64>,
}

/// Issue `request` with bounded overload retries, recording the full
/// round-trip latency (including retries) on success.
fn timed_call<T>(
    tally: &mut Tally,
    mut call: impl FnMut() -> Result<T, ServeError>,
) -> Result<(), ServeError> {
    let start = Instant::now();
    let mut retries_left = MAX_RETRIES;
    loop {
        match call() {
            Ok(_answer) => {
                tally.ok += 1;
                tally
                    .latencies_micros
                    .push(start.elapsed().as_secs_f64() * 1e6);
                return Ok(());
            }
            Err(ServeError::Remote(e)) if e.kind == WireErrorKind::Overloaded && retries_left > 0 => {
                retries_left -= 1;
                tally.overloaded_retries += 1;
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => return Err(e),
        }
    }
}

/// Drive one section: `connections` client threads, barrier-released
/// together, each issuing `requests` calls produced by `shape`.
fn run_section(
    name: &str,
    workload: String,
    addr: SocketAddr,
    connections: usize,
    requests: usize,
    cue_dim: usize,
    batch: bool,
) -> ServeSection {
    let barrier = Barrier::new(connections + 1);
    let (elapsed, tallies) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|c| {
                let barrier = &barrier;
                scope.spawn(move || {
                    // Retries are counted manually, so the client itself
                    // must not retry behind our back.
                    let mut client = CqmClient::connect(
                        addr,
                        ClientConfig {
                            retries: 0,
                            ..ClientConfig::default()
                        },
                    )
                    .expect("connect load client");
                    let mut rng = Lcg(0x5EED_0000 + c as u64);
                    let mut tally = Tally::default();
                    barrier.wait();
                    for _ in 0..requests {
                        if batch {
                            let rows: Vec<Vec<f64>> =
                                (0..BATCH_ROWS).map(|_| rng.cues(cue_dim)).collect();
                            timed_call(&mut tally, || client.classify_batch(&rows))
                                .expect("batch request answered");
                        } else {
                            let cues = rng.cues(cue_dim);
                            timed_call(&mut tally, || client.classify(&cues))
                                .expect("classify request answered");
                        }
                    }
                    tally
                })
            })
            .collect();
        barrier.wait();
        let start = Instant::now();
        let tallies: Vec<Tally> = handles
            .into_iter()
            .map(|h| h.join().expect("load client thread"))
            .collect();
        (start.elapsed(), tallies)
    });

    let total = (connections * requests) as u64;
    let ok: u64 = tallies.iter().map(|t| t.ok).sum();
    let overloaded_retries: u64 = tallies.iter().map(|t| t.overloaded_retries).sum();
    let latencies: Vec<f64> = tallies
        .iter()
        .flat_map(|t| t.latencies_micros.iter().copied())
        .collect();
    let elapsed_millis = (elapsed.as_secs_f64() * 1e3).max(f64::MIN_POSITIVE);
    ServeSection {
        name: name.into(),
        workload,
        requests: total,
        ok,
        overloaded_retries,
        elapsed_millis,
        throughput_rps: total as f64 / (elapsed_millis / 1e3),
        p50_micros: percentile_micros(&latencies, 0.50),
        p99_micros: percentile_micros(&latencies, 0.99),
        max_micros: percentile_micros(&latencies, 1.0),
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<usize> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn usage() {
    println!(
        "loadgen — service load baseline (writes BENCH_PR5.json)\n\
         \n\
         USAGE:\n\
         \x20   loadgen [OPTIONS]\n\
         \n\
         OPTIONS:\n\
         \x20   --smoke              quick CI-sized run (4 connections x 32 requests)\n\
         \x20   --out <PATH>         output JSON path (default: BENCH_PR5.json)\n\
         \x20   --connections <N>    concurrent client connections (default: 8, smoke: 4)\n\
         \x20   --requests <N>       requests per connection per section (default: 200, smoke: 32)\n\
         \x20   -h, --help           print this help and exit\n\
         \n\
         EXIT CODES:\n\
         \x20   0  baseline written and gate passed\n\
         \x20   1  gate failed or the run errored\n\
         \x20   2  unknown flag or malformed invocation"
    );
}

/// Strict flag validation: every token must be a known flag or the value
/// of the preceding value-taking flag. Unknown input is a usage error
/// (exit 2), not a silent ignore.
fn validate_args(args: &[String]) -> Result<(), String> {
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => i += 1,
            "--out" | "--connections" | "--requests" => {
                if args.get(i + 1).is_none() {
                    return Err(format!("flag {} is missing its value", args[i]));
                }
                i += 2;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
        return ExitCode::SUCCESS;
    }
    if let Err(problem) = validate_args(&args) {
        eprintln!("loadgen: {problem}\n");
        usage();
        return ExitCode::from(2);
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR5.json".to_string());
    let connections = flag_value(&args, "--connections").unwrap_or(if smoke { 4 } else { 8 });
    let requests = flag_value(&args, "--requests").unwrap_or(if smoke { 32 } else { 200 });
    let workers = 2usize;

    println!("== loadgen: service load baseline ({}) ==", if smoke { "smoke" } else { "full" });
    let cores = available_cores();
    println!("available parallelism: {cores} core(s)");
    println!("{connections} connection(s) x {requests} request(s), {workers} worker(s)\n");

    println!("[1/3] training the AwarePen model ...");
    let build = train_pen(7, 1).expect("train_pen");
    let model = ServedModel::new(
        build.classifier,
        CqmModel::from_trained(&build.trained_cqm, "loadgen baseline"),
    )
    .expect("served model");
    let cue_dim = model.cue_dim();

    let server = CqmServer::start(
        ModelSource::Fresh(model),
        ServerConfig {
            workers,
            queue_capacity: (connections * 2).max(8),
            ..ServerConfig::default()
        },
    )
    .expect("start server");
    let addr = server.local_addr();
    println!("serving on {addr}");

    println!("[2/3] single-classify load ...");
    let classify = run_section(
        "classify",
        format!("{connections} connections x {requests} single-classify requests, dim={cue_dim}"),
        addr,
        connections,
        requests,
        cue_dim,
        false,
    );
    println!("[3/3] batch-classify load ...");
    let classify_batch = run_section(
        "classify_batch",
        format!(
            "{connections} connections x {requests} batch requests of {BATCH_ROWS} rows, dim={cue_dim}"
        ),
        addr,
        connections,
        requests,
        cue_dim,
        true,
    );

    let final_health = server.shutdown().expect("server shutdown");
    println!(
        "\nserver: {} requests, {} rows, {} rejected, queue highwater {}",
        final_health.requests,
        final_health.rows_classified,
        final_health.rejected,
        final_health.queue_highwater
    );

    let baseline = ServeBaseline {
        schema: SCHEMA.to_string(),
        smoke,
        available_parallelism: cores,
        workers,
        connections,
        requests_per_connection: requests,
        sections: vec![classify, classify_batch],
    };

    println!(
        "\n{:16} {:>9} {:>7} {:>10} {:>10} {:>10} {:>10}",
        "section", "requests", "retries", "rps", "p50 us", "p99 us", "max us"
    );
    for s in &baseline.sections {
        println!(
            "{:16} {:>9} {:>7} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            s.name, s.requests, s.overloaded_retries, s.throughput_rps, s.p50_micros, s.p99_micros, s.max_micros
        );
    }

    let json = serde_json::to_string_pretty(&baseline).expect("serialize baseline");
    std::fs::write(&out_path, &json).expect("write baseline file");
    println!("\nwrote {out_path}");

    // Validate by re-parsing what was actually written.
    let written = std::fs::read_to_string(&out_path).expect("read baseline back");
    let parsed: ServeBaseline = match serde_json::from_str(&written) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("loadgen: written JSON does not parse: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = parsed.validate() {
        eprintln!("loadgen: schema validation failed: {e}");
        return ExitCode::FAILURE;
    }
    println!("schema validation: ok ({SCHEMA})");

    if smoke {
        match parsed.gate() {
            Ok(()) => println!("serve gate: ok"),
            Err(e) => {
                eprintln!("loadgen: serve gate failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
