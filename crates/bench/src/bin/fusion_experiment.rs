//! EXT-FUSE — the §5 outlook exercised end-to-end: "Our research will also
//! look into how to support fusion and aggregation for higher level
//! contexts … higher level context processors require a measure to decide
//! which of the simpler context information to believe."
//!
//! Two independently trained AwarePens observe the same session; a fusion
//! consumer combines their per-window reports weighted by quality. The CQM
//! is exactly the belief weight the outlook calls for.
//!
//! ```sh
//! cargo run --release -p cqm-bench --bin fusion_experiment
//! ```

// lint: allow(PANIC_IN_LIB, file) -- experiment driver: abort loudly on setup failure instead of degrading

use cqm_appliance::office::run_fused_pens;
use cqm_sensors::synth::Scenario;

fn main() {
    println!("== EXT-FUSE: quality-weighted fusion of two pens ==\n");
    let scenario = Scenario::balanced_session()
        .expect("scenario")
        .then(&Scenario::write_think_write().expect("scenario"));
    println!("seed pair   pen A acc   pen B acc   fused acc   degraded windows");
    println!("---------   ---------   ---------   ---------   ----------------");
    let mut sums = [0.0f64; 3];
    let mut n = 0;
    for (a, b) in [(101u64, 202u64), (303, 404), (505, 606), (707, 808)] {
        let r = run_fused_pens(&scenario, a, b).expect("fusion run");
        println!(
            "{a:4}/{b:4}   {:9.3}   {:9.3}   {:9.3}   {:7} of {}",
            r.pen_a_accuracy,
            r.pen_b_accuracy,
            r.fused_accuracy,
            r.degraded_windows,
            r.fused_windows
        );
        sums[0] += r.pen_a_accuracy;
        sums[1] += r.pen_b_accuracy;
        sums[2] += r.fused_accuracy;
        n += 1;
    }
    let nf = n as f64;
    println!(
        "\nmean        {:9.3}   {:9.3}   {:9.3}",
        sums[0] / nf,
        sums[1] / nf,
        sums[2] / nf
    );
    println!("\nexpected shape: fused accuracy at or above the better single pen on");
    println!("average — the quality weight resolves disagreements in favour of the");
    println!("more reliable report");
}
