//! FIG6 + PROB — reproduces Figure 6 ("Gaussian density functions for right
//! and wrong classified data with marked threshold value and hatched median
//! cuts") and the §3.2 probability table:
//!
//! * paper threshold: `s = 0.81`;
//! * `P(right|q>s) = P(wrong|q<s) = 0.8112`;
//! * `P(wrong|q>s) = 0.0217`, `P(right|q<s) = 0.0846`.
//!
//! ```sh
//! cargo run -p cqm-bench --bin fig6
//! ```

// lint: allow(PANIC_IN_LIB, file) -- experiment driver: abort loudly on setup failure instead of degrading

use cqm_bench::{evaluation_pool, labeled_qualities, paper_testbed, select_test_set};
use cqm_math::histogram::Histogram;
use cqm_stats::mle::QualityGroups;
use cqm_stats::probabilities::TailProbabilities;
use cqm_stats::threshold::optimal_threshold;

fn main() {
    println!("== FIG6: densities, optimal threshold, probabilities ==\n");
    let testbed = paper_testbed(2007);
    let pool = evaluation_pool(&testbed, 550, 2);
    let set = select_test_set(&pool, 16, 8);
    let labeled = labeled_qualities(&set);
    let groups = QualityGroups::fit_labeled(&labeled).expect("both outcomes present");
    let threshold = optimal_threshold(&groups).expect("informative measure");

    println!("fitted densities (MLE, §2.31):");
    println!("  right: {}", groups.right);
    println!("  wrong: {}", groups.wrong);
    println!("\noptimal threshold (density intersection, §2.32):");
    println!("  {threshold}   (paper example: s = 0.81)\n");

    // Density series over the measure axis — the Fig. 6 curves — alongside
    // the empirical histogram densities of the underlying samples.
    let mut hist_r = Histogram::new(0.0, 1.0, 20).expect("valid histogram");
    let mut hist_w = Histogram::new(0.0, 1.0, 20).expect("valid histogram");
    for &(q, right) in &labeled {
        if right {
            hist_r.add(q);
        } else {
            hist_w.add(q);
        }
    }
    println!("density series (q, fitted phi vs empirical histogram density):");
    println!("   q     phi_r    emp_r    phi_w    emp_w");
    for bin in 0..20 {
        let q = hist_r.bin_center(bin);
        let marker = if (q - threshold.value).abs() < 0.025 {
            "  <-- threshold"
        } else {
            ""
        };
        println!(
            "  {q:.3}  {:8.4} {:8.4} {:8.4} {:8.4}{marker}",
            groups.right.pdf(q),
            hist_r.density(bin),
            groups.wrong.pdf(q),
            hist_w.density(bin)
        );
    }

    let probs = TailProbabilities::at(&groups, &threshold);
    println!("\nprobability table (§2.33 median cuts):");
    println!("{probs}");

    // The identity the paper reports at the optimal threshold.
    let identity_gap = (probs.selection_right - probs.selection_wrong).abs();
    println!(
        "\nidentity P(right|q>s) == P(wrong|q<s): gap = {identity_gap:.2e} (paper: exact equality)"
    );
}
