//! FIG6 + PROB — reproduces Figure 6 ("Gaussian density functions for right
//! and wrong classified data with marked threshold value and hatched median
//! cuts") and the §3.2 probability table:
//!
//! * paper threshold: `s = 0.81`;
//! * `P(right|q>s) = P(wrong|q<s) = 0.8112`;
//! * `P(wrong|q>s) = 0.0217`, `P(right|q<s) = 0.0846`.
//!
//! Thin wrapper over `cqm_bench::experiments::run_fig6`; `summary` runs the
//! same section (and all others) off one shared testbed.
//!
//! ```sh
//! cargo run -p cqm-bench --bin fig6
//! ```

use cqm_bench::experiments::{paper_eval, run_fig6};
use cqm_bench::paper_testbed;

fn main() {
    println!("== FIG6: densities, optimal threshold, probabilities ==\n");
    let testbed = paper_testbed(2007);
    let eval = paper_eval(&testbed);
    run_fig6(&eval);
}
