//! One-shot reproduction summary: runs the core experiment pipeline once
//! and prints the paper-vs-measured table (a fast, self-contained
//! cross-check of EXPERIMENTS.md; the per-experiment binaries give the full
//! detail).
//!
//! ```sh
//! cargo run --release -p cqm-bench --bin summary
//! ```

// lint: allow(PANIC_IN_LIB, file) -- experiment driver: abort loudly on setup failure instead of degrading

use cqm_bench::{evaluation_pool, labeled_qualities, paper_testbed, select_test_set};
use cqm_core::filter::QualityFilter;
use cqm_stats::bootstrap::auc_ci;
use cqm_stats::mle::QualityGroups;
use cqm_stats::probabilities::TailProbabilities;
use cqm_stats::separation::auc;
use cqm_stats::threshold::optimal_threshold;

fn main() {
    println!("== CQM reproduction summary ==\n");
    println!("training the AwarePen testbed (seed 2007)...");
    let testbed = paper_testbed(2007);
    let pool = evaluation_pool(&testbed, 550, 2);
    let set = select_test_set(&pool, 16, 8);
    let labeled = labeled_qualities(&set);
    let groups = QualityGroups::fit_labeled(&labeled).expect("both outcomes");
    let threshold = optimal_threshold(&groups).expect("informative measure");
    let probs = TailProbabilities::at(&groups, &threshold);
    let filter = QualityFilter::new(threshold.value.clamp(0.0, 1.0)).expect("filter");
    let outcome = filter.evaluate(&set.iter().map(|s| (s.quality, s.right)).collect::<Vec<_>>());
    let set_auc = auc(&labeled).expect("auc");
    let ci = auc_ci(&labeled, 400, 0.95, 42).expect("bootstrap");

    println!("\n{:38} {:>10} {:>12}", "quantity", "paper", "measured");
    println!("{}", "-".repeat(64));
    let row = |name: &str, paper: &str, measured: String| {
        println!("{name:38} {paper:>10} {measured:>12}");
    };
    row("optimal threshold s", "0.81", format!("{:.3}", threshold.value));
    row("right-group mean", "~0.95", format!("{:.3}", groups.right.mu()));
    row("wrong-group mean", "~0.3", format!("{:.3}", groups.wrong.mu()));
    row(
        "P(right|q>s) = P(wrong|q<s)",
        "0.8112",
        format!("{:.3}", probs.selection_right),
    );
    row("P(right|q<s)", "0.0846", format!("{:.3}", probs.false_negative));
    row("P(wrong|q>s)", "0.0217", format!("{:.3}", probs.false_positive));
    row(
        "discard rate (24-pt set)",
        "33%",
        format!("{:.1}%", 100.0 * outcome.discard_rate()),
    );
    row(
        "accuracy before -> after",
        "67->100%",
        format!(
            "{:.0}->{:.0}%",
            100.0 * outcome.accuracy_before(),
            100.0 * outcome.accuracy_after()
        ),
    );
    row("24-pt AUC", "1.0 impl.", format!("{set_auc:.3}"));
    row(
        "24-pt AUC 95% bootstrap CI",
        "n/a",
        format!("[{:.2},{:.2}]", ci.lo, ci.hi),
    );
    println!("\nsee EXPERIMENTS.md for the full per-experiment record and deviations");
}
