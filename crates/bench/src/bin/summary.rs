//! One-shot reproduction summary: trains the testbed **once**, builds the
//! evaluation pool **once**, then runs every paper experiment section off
//! the shared state (the per-experiment binaries remain as thin wrappers
//! for focused output; historically each of them retrained the testbed).
//!
//! ```sh
//! cargo run --release -p cqm-bench --bin summary
//! ```

use cqm_bench::experiments::{paper_eval, run_fig5, run_fig6, run_improvement, run_summary};
use cqm_bench::paper_testbed;

fn main() {
    println!("== CQM reproduction summary ==\n");
    println!("training the AwarePen testbed (seed 2007, once for all sections)...");
    let testbed = paper_testbed(2007);
    let eval = paper_eval(&testbed);

    println!("\n---- paper-vs-measured table ----");
    run_summary(&eval);

    println!("\n---- fig. 5: quality scatter ----");
    run_fig5(&eval);

    println!("\n---- fig. 6: densities and threshold ----");
    run_fig6(&eval);

    println!("\n---- improvement accounting ----");
    run_improvement(&testbed, &eval);
}
