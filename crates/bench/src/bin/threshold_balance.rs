//! THRBAL — §3.2 remark: "The threshold in the shown example is not
//! in-between the highest (one) and the lowest (zero) measure but closer to
//! the highest. This reflects the error of the context recognition … If the
//! training set has equal amount of right and wrong samples the measure
//! would lead to a threshold s ≈ 0.5."
//!
//! Sweep the right:wrong composition of the CQM training set and report the
//! fitted optimal threshold for each mix.
//!
//! ```sh
//! cargo run -p cqm-bench --bin threshold_balance
//! ```

// lint: allow(PANIC_IN_LIB, file) -- experiment driver: abort loudly on setup failure instead of degrading

use cqm_classify::dataset::ClassifiedDataset;
use cqm_classify::tsk::{FisClassifier, FisClassifierConfig};
use cqm_core::classifier::{ClassId, Classifier};
use cqm_core::training::{train_cqm, CqmTrainingConfig};
use cqm_sensors::node::training_corpus;

fn main() {
    println!("== THRBAL: training-set balance vs optimal threshold ==");
    println!("(paper: unbalanced set -> s near 1; balanced -> s ≈ 0.5)\n");

    let corpus = training_corpus(2007, 3).expect("corpus");
    let data = ClassifiedDataset::from_labeled_cues(&corpus).expect("dataset");
    let classifier =
        FisClassifier::train(&data, &FisClassifierConfig::default()).expect("classifier");

    // Split the corpus by classification outcome.
    let mut rights = Vec::new();
    let mut wrongs = Vec::new();
    for (cues, label) in data.iter() {
        let predicted = classifier.classify(cues).expect("classify");
        if predicted == label {
            rights.push((cues.to_vec(), label));
        } else {
            wrongs.push((cues.to_vec(), label));
        }
    }
    println!(
        "corpus: {} right / {} wrong classifications available\n",
        rights.len(),
        wrongs.len()
    );
    println!("right:wrong ratio   samples   threshold s   right mean   wrong mean");
    println!("-----------------   -------   -----------   ----------   ----------");

    // Mixes from heavily right-dominated (the natural situation) to
    // balanced (the paper's hypothetical).
    for (r_frac, w_frac) in [(8usize, 1usize), (4, 1), (2, 1), (1, 1)] {
        // Build a subsampled training set with the requested ratio.
        let per_unit = wrongs.len() / w_frac;
        let n_wrong = per_unit * w_frac;
        let n_right = (per_unit * r_frac).min(rights.len());
        let mut cues: Vec<Vec<f64>> = Vec::new();
        let mut truth: Vec<ClassId> = Vec::new();
        let right_step = (rights.len() as f64 / n_right as f64).max(1.0);
        for i in 0..n_right {
            let (c, l) = &rights[(i as f64 * right_step) as usize % rights.len()];
            cues.push(c.clone());
            truth.push(*l);
        }
        for (c, l) in wrongs.iter().take(n_wrong) {
            cues.push(c.clone());
            truth.push(*l);
        }
        match train_cqm(&classifier, &cues, &truth, &CqmTrainingConfig::default()) {
            Ok(trained) => println!(
                "      {r_frac}:{w_frac}           {:6}       {:.4}       {:.4}       {:.4}",
                cues.len(),
                trained.threshold.value,
                trained.groups.right.mu(),
                trained.groups.wrong.mu()
            ),
            Err(e) => println!("      {r_frac}:{w_frac}           {:6}    failed: {e}", cues.len()),
        }
    }
    println!("\nexpected shape: threshold decreases toward ~0.5 as the mix balances");
}
