//! FIG5 — reproduces Figure 5: "Quality measure for test set with 24 data
//! points for right (o) and wrong (+) contextual classifications and
//! statistical mean values (dashed lines)".
//!
//! ```sh
//! cargo run -p cqm-bench --bin fig5
//! ```

// lint: allow(PANIC_IN_LIB, file) -- experiment driver: abort loudly on setup failure instead of degrading

use cqm_bench::{evaluation_pool, labeled_qualities, paper_testbed, render_quality_scatter, select_test_set};
use cqm_stats::mle::QualityGroups;

fn main() {
    println!("== FIG5: quality measure for the 24-point test set ==");
    println!("(paper: 16 right / 8 wrong, fully separable, right mean near 1)\n");

    let testbed = paper_testbed(2007);
    let pool = evaluation_pool(&testbed, 550, 2);
    let set = select_test_set(&pool, 16, 8);
    assert_eq!(set.len(), 24, "pool must supply 16 right + 8 wrong samples");

    println!("{}", render_quality_scatter(&set));

    let labeled = labeled_qualities(&set);
    let groups = QualityGroups::fit_labeled(&labeled).expect("both outcomes present");
    println!("\nstatistical mean values (the dashed lines of Fig. 5):");
    println!("  right mean = {:.4} (sigma {:.4}, n={})",
        groups.right.mu(), groups.right.sigma(), groups.n_right);
    println!("  wrong mean = {:.4} (sigma {:.4}, n={})",
        groups.wrong.mu(), groups.wrong.sigma(), groups.n_wrong);

    let separable = cqm_stats::separation::fully_separable(&labeled).expect("both outcomes");
    println!("\nfully separable by a single threshold: {separable}   (paper: true)");
    let auc = cqm_stats::separation::auc(&labeled).expect("both outcomes");
    println!("empirical AUC over the test set     : {auc:.4} (paper: 1.0 implied)");
}
