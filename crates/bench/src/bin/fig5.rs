//! FIG5 — reproduces Figure 5: "Quality measure for test set with 24 data
//! points for right (o) and wrong (+) contextual classifications and
//! statistical mean values (dashed lines)".
//!
//! Thin wrapper over `cqm_bench::experiments::run_fig5`; `summary` runs the
//! same section (and all others) off one shared testbed.
//!
//! ```sh
//! cargo run -p cqm-bench --bin fig5
//! ```

use cqm_bench::experiments::{paper_eval, run_fig5};
use cqm_bench::paper_testbed;

fn main() {
    println!("== FIG5: quality measure for the 24-point test set ==");
    println!("(paper: 16 right / 8 wrong, fully separable, right mean near 1)\n");

    let testbed = paper_testbed(2007);
    let eval = paper_eval(&testbed);
    run_fig5(&eval);
}
