//! LARGE — §3.2 remark: "The separation has not always to be that clear.
//! For a large set of data the odds for separating the data are worse."
//!
//! Sweep the evaluation-set size from the paper's 24 points up to the full
//! pool and report the separation quality at each size.
//!
//! ```sh
//! cargo run -p cqm-bench --bin large_set
//! ```

use cqm_bench::{evaluation_pool, labeled_qualities, paper_testbed, select_test_set};
use cqm_stats::bootstrap::auc_ci;
use cqm_stats::mle::QualityGroups;
use cqm_stats::probabilities::TailProbabilities;
use cqm_stats::separation::{auc, fully_separable};
use cqm_stats::threshold::optimal_threshold;

fn main() {
    println!("== LARGE: separation odds vs evaluation-set size ==\n");
    let testbed = paper_testbed(2007);
    let pool = evaluation_pool(&testbed, 550, 6);
    let total_wrong = pool.iter().filter(|s| !s.right).count();
    println!(
        "evaluation pool: {} windows, {} wrong ({:.1}%)\n",
        pool.len(),
        total_wrong,
        100.0 * total_wrong as f64 / pool.len() as f64
    );
    println!("   size   separable   AUC [95% bootstrap CI]   selection   threshold");
    println!("   ----   ---------   ----------------------   ---------   ---------");
    for &size in &[24usize, 48, 96, 192, 384, 768, 1536] {
        if size * 2 / 3 > pool.len() {
            break;
        }
        // Keep the paper's 2:1 right:wrong composition at every size.
        let set = select_test_set(&pool, size * 2 / 3, size / 3);
        if set.len() < size * 9 / 10 {
            println!("   {size:4}   (pool exhausted)");
            break;
        }
        let labeled = labeled_qualities(&set);
        let sep = fully_separable(&labeled).unwrap_or(false);
        let a = auc(&labeled).unwrap_or(f64::NAN);
        let ci = auc_ci(&labeled, 400, 0.95, 42).ok();
        let (sel, thr) = match QualityGroups::fit_labeled(&labeled)
            .and_then(|g| optimal_threshold(&g).map(|t| (g, t)))
        {
            Ok((g, t)) => (TailProbabilities::at(&g, &t).selection_right, t.value),
            Err(_) => (f64::NAN, f64::NAN),
        };
        let ci_text = ci
            .map(|c| format!("[{:.3}, {:.3}]", c.lo, c.hi))
            .unwrap_or_else(|| "[  n/a  ]".into());
        println!("   {size:4}   {sep:9}   {a:.3} {ci_text:16}   {sel:9.3}   {thr:9.3}");
    }
    println!("\nexpected shape: AUC / selection decline (or plateau below 1) as size grows;");
    println!("full separability, if it appears at all, only survives on small sets");
}
