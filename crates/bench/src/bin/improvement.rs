//! IMP33 — the headline claim: "Results indicate that the appliance can
//! discard 33% of the classifications, which equals all wrong contextual
//! classifications, when using the measure" and the abstract's "gain of 33%
//! in context detection".
//!
//! Two reproductions:
//! 1. the paper's 24-point accounting (16 right / 8 wrong, filter at the
//!    optimal threshold);
//! 2. the application-level whiteboard-camera decision improvement,
//!    aggregated over several office runs.
//!
//! ```sh
//! cargo run -p cqm-bench --bin improvement
//! ```

// lint: allow(PANIC_IN_LIB, file) -- experiment driver: abort loudly on setup failure instead of degrading

use cqm_appliance::office::{run_office, OfficeConfig};
use cqm_bench::{evaluation_pool, labeled_qualities, paper_testbed, select_test_set};
use cqm_core::filter::QualityFilter;
use cqm_stats::mle::QualityGroups;
use cqm_stats::threshold::optimal_threshold;

fn main() {
    println!("== IMP33: discard rate and decision improvement ==\n");
    let testbed = paper_testbed(2007);

    // --- Part 1: the paper's 24-point accounting. §3.2 derives the optimal
    // threshold from the statistical analysis of the test set itself (the
    // Fig. 6 densities), then filters that same set.
    let pool = evaluation_pool(&testbed, 550, 2);
    let set = select_test_set(&pool, 16, 8);
    let groups = QualityGroups::fit_labeled(&labeled_qualities(&set)).expect("both outcomes");
    let threshold = optimal_threshold(&groups)
        .expect("informative measure")
        .value
        .clamp(0.0, 1.0);
    let filter = QualityFilter::new(threshold).expect("valid threshold");
    let labeled: Vec<_> = set.iter().map(|s| (s.quality, s.right)).collect();
    let outcome = filter.evaluate(&labeled);
    println!("-- 24-point test set (16 right / 8 wrong), threshold s = {threshold:.3} (paper: 0.81) --");
    println!("  {outcome}");
    println!(
        "  discard rate            : {:5.1}%   (paper: 33% = all wrong ones)",
        100.0 * outcome.discard_rate()
    );
    println!(
        "  accuracy before filter  : {:5.1}%   (paper: 66.7%)",
        100.0 * outcome.accuracy_before()
    );
    println!(
        "  accuracy after filter   : {:5.1}%   (paper: 100%)",
        100.0 * outcome.accuracy_after()
    );
    println!(
        "  improvement             : {:+5.1} percentage points (paper: +33.3)",
        100.0 * outcome.improvement()
    );

    // --- Part 2: whole-pool accounting (honest large-sample version) at
    // the *deployment* threshold learned during training.
    let deploy_threshold = testbed.build.trained_cqm.threshold.value.clamp(0.0, 1.0);
    let deploy_filter = QualityFilter::new(deploy_threshold).expect("valid threshold");
    let labeled_pool: Vec<_> = pool.iter().map(|s| (s.quality, s.right)).collect();
    let pool_outcome = deploy_filter.evaluate(&labeled_pool);
    println!(
        "\n-- full evaluation pool ({} windows), deployment threshold s = {deploy_threshold:.3} --",
        pool.len()
    );
    println!("  {pool_outcome}");

    // --- Part 3: application-level camera decision, aggregated.
    println!("\n-- whiteboard camera decision (aggregate over 6 office runs) --");
    let mut agg = [[0usize; 3]; 2];
    for seed in 0..6u64 {
        let config = OfficeConfig {
            seed: seed * 131 + 11,
            ..OfficeConfig::default()
        };
        let report = run_office(&config).expect("office run");
        for (i, s) in [&report.with_quality, &report.without_quality]
            .iter()
            .enumerate()
        {
            agg[i][0] += s.camera.correct;
            agg[i][1] += s.camera.false_triggers;
            agg[i][2] += s.camera.missed;
        }
    }
    for (label, row) in [("with CQM   ", agg[0]), ("without CQM", agg[1])] {
        let acc = row[0] as f64 / (row[0] + row[1] + row[2]) as f64;
        println!(
            "  {label}: {} correct, {} false, {} missed  -> decision accuracy {:.1}%",
            row[0],
            row[1],
            row[2],
            100.0 * acc
        );
    }
    let with_acc = agg[0][0] as f64 / (agg[0][0] + agg[0][1] + agg[0][2]) as f64;
    let without_acc = agg[1][0] as f64 / (agg[1][0] + agg[1][1] + agg[1][2]) as f64;
    println!(
        "  improvement: {:+.1} percentage points (paper: +33 on their example)",
        100.0 * (with_acc - without_acc)
    );
}
