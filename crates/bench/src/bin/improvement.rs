//! IMP33 — the headline claim: "Results indicate that the appliance can
//! discard 33% of the classifications, which equals all wrong contextual
//! classifications, when using the measure" and the abstract's "gain of 33%
//! in context detection".
//!
//! Three reproductions (see `cqm_bench::experiments::run_improvement`):
//! 1. the paper's 24-point accounting (16 right / 8 wrong, filter at the
//!    optimal threshold);
//! 2. whole-pool accounting at the deployment threshold;
//! 3. the application-level whiteboard-camera decision improvement,
//!    aggregated over several office runs.
//!
//! Thin wrapper over the shared experiments module; `summary` runs the same
//! section (and all others) off one shared testbed.
//!
//! ```sh
//! cargo run -p cqm-bench --bin improvement
//! ```

use cqm_bench::experiments::{paper_eval, run_improvement};
use cqm_bench::paper_testbed;

fn main() {
    println!("== IMP33: discard rate and decision improvement ==\n");
    let testbed = paper_testbed(2007);
    let eval = paper_eval(&testbed);
    run_improvement(&testbed, &eval);
}
