//! ABL-LSQ — the paper solves the consequent least-squares system with SVD
//! (§2.2.2). This ablation swaps the backend (SVD / QR / normal equations)
//! in the full CQM training pipeline and reports fit quality, robustness and
//! wall-clock time.
//!
//! ```sh
//! cargo run --release -p cqm-bench --bin ablation_lsq
//! ```

// lint: allow(PANIC_IN_LIB, file) -- experiment driver: abort loudly on setup failure instead of degrading

use cqm_classify::dataset::ClassifiedDataset;
use cqm_classify::tsk::{FisClassifier, FisClassifierConfig};
use cqm_core::classifier::ClassId;
use cqm_core::training::{train_cqm, CqmTrainingConfig};
use cqm_math::linsolve::LstsqMethod;
use cqm_sensors::node::training_corpus;
use std::time::Instant;

fn main() {
    println!("== ABL-LSQ: least-squares backend in the CQM pipeline ==\n");
    let corpus = training_corpus(2007, 2).expect("corpus");
    let data = ClassifiedDataset::from_labeled_cues(&corpus).expect("dataset");
    let classifier =
        FisClassifier::train(&data, &FisClassifierConfig::default()).expect("classifier");
    let truth: Vec<ClassId> = data.labels().to_vec();

    println!("backend            status   threshold   selection   train-time");
    println!("----------------   ------   ---------   ---------   ----------");
    for method in [
        LstsqMethod::Svd,
        LstsqMethod::Qr,
        LstsqMethod::NormalEquations,
    ] {
        let mut config = CqmTrainingConfig::default();
        config.genfis.lstsq = method;
        config.hybrid.lstsq = method;
        let start = Instant::now();
        match train_cqm(&classifier, data.cues(), &truth, &config) {
            Ok(trained) => {
                println!(
                    "{:16}   ok       {:9.4}   {:9.4}   {:8.2?}",
                    method.to_string(),
                    trained.threshold.value,
                    trained.probabilities.selection_right,
                    start.elapsed()
                );
            }
            Err(e) => {
                println!(
                    "{:16}   FAILED after {:.2?}: {e}",
                    method.to_string(),
                    start.elapsed()
                );
            }
        }
    }
    println!("\nexpected shape: SVD always succeeds (rank-deficient rule activations are");
    println!("truncated); QR/normal equations may fail or lose accuracy on collinear rules");
}
