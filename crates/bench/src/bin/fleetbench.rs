//! FLEETBENCH — the multi-tenant isolation soak harness (PR 8).
//!
//! Starts an in-process [`cqm_serve::CqmServer`] with a model registry
//! whose LRU (`max_active 4`) is half the tenant count, puts a seeded
//! [`cqm_resilience::ChaosProxy`] in front of it *and* a seeded disk-fault
//! injector under its checkpoint store, drives one retrying client per
//! tenant plus a prober against a deliberately corrupt tenant, performs
//! live hot swaps mid-traffic, and writes the isolation accounting as
//! `BENCH_PR8.json` (schema documented in `cqm_bench::fleetbench`).
//!
//! ```sh
//! cargo run --release -p cqm-bench --bin fleetbench            # full soak
//! cargo run --release -p cqm-bench --bin fleetbench -- --smoke # CI gate
//! cargo run --release -p cqm-bench --bin fleetbench -- --out /tmp/fleet.json
//! cargo run --release -p cqm-bench --bin fleetbench -- --tenants 12 --requests 100
//! cargo run --release -p cqm-bench --bin fleetbench -- --seed 99
//! ```
//!
//! Every delivered answer is checked bit-for-bit against the issuing
//! tenant's own in-process reference — both its boot generation and (for
//! swapped tenants) the post-swap generation. An answer matching another
//! tenant's model but not its own is a **cross-tenant leak**; an answer
//! matching no generation at all is a **mismatch** (half-loaded or stale
//! engine). The gate (`FleetBaseline::gate`, always applied): zero drops,
//! zero leaks, zero mismatches, at least 8 tenants and at least 3 live
//! swaps.

// lint: allow(PANIC_IN_LIB, file) -- perf driver: abort loudly on setup failure instead of degrading

use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Barrier;
use std::time::{Duration, Instant};

use cqm_bench::chaosbench::ChaosPlanRecord;
use cqm_bench::fleetbench::{
    available_cores, percentile_micros, DiskPlanRecord, FleetBaseline, SCHEMA,
};
use cqm_classify::FisClassifier;
use cqm_core::model::{CqmModel, MODEL_VERSION};
use cqm_core::normalize::Quality;
use cqm_core::pipeline::{CqmSystem, QualifiedClassification};
use cqm_core::QualityMeasure;
use cqm_fuzzy::{MembershipFunction, TskFis, TskRule};
use cqm_resilience::{ChaosProxy, DiskFaultPlan, NetFaultPlan};
use cqm_serve::{
    ClientConfig, CqmClient, CqmServer, FleetConfig, ModelSource, ServeError, ServedModel,
    ServerConfig,
};

/// Probe cues reused cyclically by every tenant's traffic (same sweep as
/// `chaosbench`): 16 deterministic points over and slightly past the
/// covered range, including the x = 0.5 decision boundary.
const CUE_COUNT: usize = 16;

/// Quality thresholds sitting *between* the quality levels the 16 probe
/// cues produce (0.5, 0.768, 0.917, 0.973, 0.992, 0.997, 0.9989, 0.9994),
/// so each rung accepts a strictly different subset of the cues — eight
/// pairwise bit-distinct decision patterns for leak detection.
const THRESHOLD_LADDER: [f64; 8] = [0.45, 0.60, 0.80, 0.93, 0.98, 0.995, 0.998, 0.999];

/// Tenants that receive a live hot swap mid-traffic.
const SWAP_TENANTS: usize = 4;

/// Ladder offset between a swapped tenant's boot and post-swap
/// generations (two rungs guarantees the decision pattern changes).
const SWAP_SHIFT: usize = 2;

fn probe_cue(i: usize) -> Vec<f64> {
    vec![-0.1 + 1.2 * (i % CUE_COUNT) as f64 / CUE_COUNT as f64]
}

/// Hand-built two-class model over one cue in [0, 1]; the threshold is
/// the tenant-distinguishing knob (the soak measures routing and swap
/// machinery, not kernels).
fn model_with_threshold(threshold: f64, note: &str) -> ServedModel {
    let g = |mu: f64, s: f64| MembershipFunction::gaussian(mu, s).expect("gaussian");
    let class_fis = TskFis::new(vec![
        TskRule::new(vec![g(0.0, 0.3)], vec![0.0, 0.0]).expect("rule"),
        TskRule::new(vec![g(1.0, 0.3)], vec![0.0, 1.0]).expect("rule"),
    ])
    .expect("class fis");
    let classifier = FisClassifier::from_fis(class_fis, 2).expect("classifier");
    let quality_fis = TskFis::new(vec![
        TskRule::new(vec![g(0.0, 0.25), g(0.0, 0.25)], vec![0.0, 0.0, 1.0]).expect("rule"),
        TskRule::new(vec![g(1.0, 0.25), g(1.0, 0.25)], vec![0.0, 0.0, 1.0]).expect("rule"),
        TskRule::new(vec![g(0.0, 0.25), g(1.0, 0.25)], vec![0.0, 0.0, 0.0]).expect("rule"),
        TskRule::new(vec![g(1.0, 0.25), g(0.0, 0.25)], vec![0.0, 0.0, 0.0]).expect("rule"),
    ])
    .expect("quality fis");
    let model = CqmModel {
        version: MODEL_VERSION,
        measure: QualityMeasure::new(quality_fis).expect("measure"),
        threshold,
        note: note.into(),
    };
    ServedModel::new(classifier, model).expect("served model")
}

/// A tenant's expected answers: one row of 16 per generation (boot, and
/// post-swap for swapped tenants), computed on an in-process `CqmSystem`.
struct TenantRef {
    key: String,
    gens: Vec<Vec<QualifiedClassification>>,
}

fn reference_answers(model: &ServedModel) -> Vec<QualifiedClassification> {
    let system = CqmSystem::new(
        model.classifier().clone(),
        model.model().measure.clone(),
        model.model().filter().expect("threshold"),
    )
    .expect("reference system");
    (0..CUE_COUNT)
        .map(|i| system.classify_with_quality(&probe_cue(i)).expect("reference"))
        .collect()
}

fn same_answer(a: &QualifiedClassification, b: &QualifiedClassification) -> bool {
    a.class == b.class
        && a.decision == b.decision
        && match (a.quality, b.quality) {
            (Quality::Value(x), Quality::Value(y)) => x.to_bits() == y.to_bits(),
            (x, y) => x == y,
        }
}

/// Per-thread tally of one soak run.
#[derive(Default)]
struct Tally {
    delivered: u64,
    typed_failures: u64,
    mismatched: u64,
    cross_tenant_leaks: u64,
    latencies_micros: Vec<f64>,
}

/// Sort one delivered answer: own tenant's generations first, then every
/// other tenant's (a match there and not at home is a leak), else a
/// mismatch.
fn judge(tally: &mut Tally, refs: &[TenantRef], own: usize, cue: usize, got: &QualifiedClassification) {
    if refs[own].gens.iter().any(|gen| same_answer(got, &gen[cue])) {
        return;
    }
    let foreign = refs
        .iter()
        .enumerate()
        .filter(|(t, _)| *t != own)
        .any(|(_, r)| r.gens.iter().any(|gen| same_answer(got, &gen[cue])));
    if foreign {
        tally.cross_tenant_leaks += 1;
    } else {
        tally.mismatched += 1;
    }
}

fn soak_client(addr: SocketAddr, session: u64) -> CqmClient {
    CqmClient::connect(
        addr,
        ClientConfig {
            connect_timeout: Duration::from_secs(1),
            io_timeout: Duration::from_millis(300),
            retries: 8,
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(40),
            call_deadline: Duration::from_secs(20),
            session_id: Some(session),
            seed: 7,
            ..ClientConfig::default()
        },
    )
    .expect("connect through chaos proxy")
}

/// Drive one tenant's retrying client. Every outcome must be a delivered
/// classification (judged against the references) or a typed error; a
/// panic here fails the run.
fn drive(
    addr: SocketAddr,
    refs: &[TenantRef],
    tenant: usize,
    requests: usize,
    barrier: &Barrier,
) -> Tally {
    let mut client = soak_client(addr, 0xF1E0 + tenant as u64);
    let mut tally = Tally::default();
    barrier.wait();
    for i in 0..requests {
        let cue_idx = i % CUE_COUNT;
        let start = Instant::now();
        match client.classify_for(Some(&refs[tenant].key), &probe_cue(cue_idx)) {
            Ok(answer) => {
                tally.delivered += 1;
                tally
                    .latencies_micros
                    .push(start.elapsed().as_secs_f64() * 1e6);
                judge(&mut tally, refs, tenant, cue_idx, &answer);
            }
            Err(
                ServeError::Remote(_)
                | ServeError::RetriesExhausted { .. }
                | ServeError::Io { .. }
                | ServeError::Timeout(_)
                | ServeError::Protocol(_)
                | ServeError::ConnectionClosed
                | ServeError::Decode(_),
            ) => {
                tally.typed_failures += 1;
                tally
                    .latencies_micros
                    .push(start.elapsed().as_secs_f64() * 1e6);
            }
            Err(other) => panic!("fleet soak produced an untyped failure: {other}"),
        }
    }
    tally
}

/// Probe the deliberately corrupt tenant. Its checkpoint never decodes,
/// so every probe must come back typed (`TenantQuarantined`, or a
/// transport error under chaos) — a delivered answer is judged against
/// the healthy references, where it can only score as a leak or mismatch.
fn probe_sick(addr: SocketAddr, refs: &[TenantRef], probes: u64, barrier: &Barrier) -> Tally {
    let mut client = soak_client(addr, 0x51C4);
    let mut tally = Tally::default();
    barrier.wait();
    for i in 0..probes as usize {
        let cue_idx = i % CUE_COUNT;
        let start = Instant::now();
        match client.classify_for(Some("sick"), &probe_cue(cue_idx)) {
            Ok(answer) => {
                tally.delivered += 1;
                tally
                    .latencies_micros
                    .push(start.elapsed().as_secs_f64() * 1e6);
                // No healthy generation belongs to "sick": anything
                // delivered is a leak or a half-loaded mismatch.
                let foreign = refs
                    .iter()
                    .any(|r| r.gens.iter().any(|gen| same_answer(&answer, &gen[cue_idx])));
                if foreign {
                    tally.cross_tenant_leaks += 1;
                } else {
                    tally.mismatched += 1;
                }
            }
            Err(
                ServeError::Remote(_)
                | ServeError::RetriesExhausted { .. }
                | ServeError::Io { .. }
                | ServeError::Timeout(_)
                | ServeError::Protocol(_)
                | ServeError::ConnectionClosed
                | ServeError::Decode(_),
            ) => {
                tally.typed_failures += 1;
                tally
                    .latencies_micros
                    .push(start.elapsed().as_secs_f64() * 1e6);
            }
            Err(other) => panic!("sick probe produced an untyped failure: {other}"),
        }
    }
    tally
}

fn net_plan(seed: u64) -> NetFaultPlan {
    NetFaultPlan {
        warmup_ops: 6,
        partial_p: 0.08,
        latency_p: 0.02,
        latency: Duration::from_millis(2),
        corrupt_p: 0.01,
        reset_p: 0.005,
        ..NetFaultPlan::clean(seed)
    }
}

fn disk_plan(seed: u64) -> DiskFaultPlan {
    DiskFaultPlan {
        warmup_ops: 6,
        corrupt_p: 0.02,
        torn_p: 0.02,
        delay_p: 0.10,
        delay: Duration::from_millis(1),
        ..DiskFaultPlan::clean(seed.wrapping_add(1))
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn usage() {
    println!(
        "fleetbench — multi-tenant isolation under combined chaos (writes BENCH_PR8.json)\n\
         \n\
         USAGE:\n\
         \x20   fleetbench [OPTIONS]\n\
         \n\
         OPTIONS:\n\
         \x20   --smoke           quick CI-sized run (8 tenants x 40 requests)\n\
         \x20   --out <PATH>      output JSON path (default: BENCH_PR8.json)\n\
         \x20   --tenants <N>     healthy tenants to drive (default: 8, minimum the gate accepts)\n\
         \x20   --requests <N>    requests per tenant (default: 120, smoke: 40)\n\
         \x20   --seed <N>        fault schedule seed (default: 0xF1EE7)\n\
         \x20   -h, --help        print this help and exit\n\
         \n\
         EXIT CODES:\n\
         \x20   0  baseline written and the isolation gate passed\n\
         \x20   1  gate failed or the run errored\n\
         \x20   2  unknown flag or malformed invocation"
    );
}

/// Strict flag validation: every token must be a known flag or the value
/// of the preceding value-taking flag. Unknown input is a usage error
/// (exit 2), not a silent ignore.
fn validate_args(args: &[String]) -> Result<(), String> {
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => i += 1,
            "--out" | "--tenants" | "--requests" | "--seed" => {
                if args.get(i + 1).is_none() {
                    return Err(format!("flag {} is missing its value", args[i]));
                }
                i += 2;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
        return ExitCode::SUCCESS;
    }
    if let Err(problem) = validate_args(&args) {
        eprintln!("fleetbench: {problem}\n");
        usage();
        return ExitCode::from(2);
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR8.json".to_string());
    let tenants = flag_value(&args, "--tenants").unwrap_or(8).max(1) as usize;
    let requests =
        flag_value(&args, "--requests").unwrap_or(if smoke { 40 } else { 120 }) as usize;
    let seed = flag_value(&args, "--seed").unwrap_or(0xF1EE7);
    let sick_probes = (requests as u64 / 4).max(1);
    let workers = 2usize;
    let max_active = 4usize;
    let net = net_plan(seed);
    let disk = disk_plan(seed);

    println!(
        "== fleetbench: multi-tenant isolation under combined chaos ({}) ==",
        if smoke { "smoke" } else { "full" }
    );
    let cores = available_cores();
    println!("available parallelism: {cores} core(s)");
    println!(
        "{tenants} tenant(s) x {requests} request(s) + {sick_probes} sick probe(s), \
         LRU {max_active}, {workers} worker(s), seed {seed}\n"
    );

    println!("[1/5] building {tenants} tenant models and their references ...");
    let swap_count = SWAP_TENANTS.min(tenants);
    let refs: Vec<TenantRef> = (0..tenants)
        .map(|i| {
            let key = format!("t{i}");
            let boot = model_with_threshold(THRESHOLD_LADDER[i % 8], &key);
            let mut gens = vec![reference_answers(&boot)];
            if i < swap_count {
                let next =
                    model_with_threshold(THRESHOLD_LADDER[(i + SWAP_SHIFT) % 8], &format!("{key}+"));
                gens.push(reference_answers(&next));
            }
            TenantRef { key, gens }
        })
        .collect();
    for r in refs.iter().take(swap_count) {
        let differs = (0..CUE_COUNT).any(|c| !same_answer(&r.gens[0][c], &r.gens[1][c]));
        assert!(differs, "swap generations of {} must be bit-distinct", r.key);
    }

    println!("[2/5] seeding the checkpoint store (one corrupt tenant) ...");
    let dir: PathBuf =
        std::env::temp_dir().join(format!("cqm_fleetbench_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("store dir");
    {
        let seeder = CqmServer::start(
            ModelSource::Fresh(model_with_threshold(0.5, "default")),
            ServerConfig {
                fleet: FleetConfig {
                    store_dir: Some(dir.clone()),
                    ..FleetConfig::default()
                },
                ..ServerConfig::default()
            },
        )
        .expect("seed server");
        seeder
            .install_model("sick", model_with_threshold(0.7, "sick"))
            .expect("install sick");
        seeder.shutdown().expect("seed shutdown");
    }
    let sick_path = dir.join("sick.ckpt");
    let mut bytes = std::fs::read(&sick_path).expect("read sick.ckpt");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&sick_path, &bytes).expect("corrupt sick.ckpt");

    println!("[3/5] starting server, disk-fault injector and chaos proxy ...");
    let server = CqmServer::start(
        ModelSource::Fresh(model_with_threshold(0.5, "default")),
        ServerConfig {
            workers,
            micro_batch: 4,
            frame_deadline: Some(Duration::from_millis(500)),
            fleet: FleetConfig {
                max_active,
                store_dir: Some(dir.clone()),
                disk_faults: Some(disk),
                probe_cues: (0..4).map(|i| probe_cue(2 + 3 * i)).collect(),
                ..FleetConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("start server");
    for (i, r) in refs.iter().enumerate() {
        let model = model_with_threshold(THRESHOLD_LADDER[i % 8], &r.key);
        server.install_model(&r.key, model).expect("install tenant");
    }
    let mut proxy = ChaosProxy::start(server.local_addr(), net).expect("start chaos proxy");
    let addr = proxy.local_addr();
    println!("serving on {} via chaos proxy {addr}", server.local_addr());

    println!("[4/5] soaking with live hot swaps ...");
    let started = Instant::now();
    let barrier = Barrier::new(tenants + 2); // tenants + sick prober + swap driver
    let (tallies, swaps_done) = std::thread::scope(|scope| {
        let refs = &refs;
        let barrier = &barrier;
        let mut handles: Vec<_> = (0..tenants)
            .map(|t| scope.spawn(move || drive(addr, refs, t, requests, barrier)))
            .collect();
        handles.push(scope.spawn(move || probe_sick(addr, refs, sick_probes, barrier)));

        // The swap driver: flip the first SWAP_TENANTS routing slots live,
        // mid-traffic, retrying each swap through transient disk faults
        // (every failed attempt is a recorded rollback, never a dropped or
        // wrong answer).
        barrier.wait();
        std::thread::sleep(Duration::from_millis(20));
        let mut swaps_done = 0u64;
        for (i, r) in refs.iter().enumerate().take(swap_count) {
            let mut landed = false;
            let mut last_err = String::new();
            for _attempt in 0..25 {
                let next =
                    model_with_threshold(THRESHOLD_LADDER[(i + SWAP_SHIFT) % 8], &format!("{}+", r.key));
                match server.swap_model(&r.key, next) {
                    Ok(_seq) => {
                        swaps_done += 1;
                        landed = true;
                        break;
                    }
                    Err(rolled_back) => {
                        last_err = rolled_back.to_string();
                        std::thread::sleep(Duration::from_millis(5));
                    }
                }
            }
            if !landed {
                eprintln!("fleetbench: swap of {:?} never landed: {last_err}", r.key);
            }
            std::thread::sleep(Duration::from_millis(10));
        }

        let tallies: Vec<Tally> = handles
            .into_iter()
            .map(|h| h.join().expect("soak thread"))
            .collect();
        (tallies, swaps_done)
    });
    let elapsed = started.elapsed();

    println!("[5/5] draining ...");
    proxy.stop();
    let health = server.shutdown().expect("server shutdown");
    std::fs::remove_dir_all(&dir).ok();

    let issued = (tenants * requests) as u64 + sick_probes;
    let delivered: u64 = tallies.iter().map(|t| t.delivered).sum();
    let typed_failures: u64 = tallies.iter().map(|t| t.typed_failures).sum();
    let dropped = issued.saturating_sub(delivered + typed_failures);
    let mismatched: u64 = tallies.iter().map(|t| t.mismatched).sum();
    let cross_tenant_leaks: u64 = tallies.iter().map(|t| t.cross_tenant_leaks).sum();
    let latencies: Vec<f64> = tallies
        .iter()
        .flat_map(|t| t.latencies_micros.iter().copied())
        .collect();

    let baseline = FleetBaseline {
        schema: SCHEMA.to_string(),
        smoke,
        available_parallelism: cores,
        seed,
        workers,
        max_active,
        tenants: tenants as u64,
        requests_per_tenant: requests,
        sick_probes,
        net_plan: ChaosPlanRecord {
            warmup_ops: net.warmup_ops,
            partial_p: net.partial_p,
            latency_p: net.latency_p,
            latency_micros: net.latency.as_micros() as u64,
            corrupt_p: net.corrupt_p,
            reset_p: net.reset_p,
        },
        disk_plan: DiskPlanRecord {
            warmup_ops: disk.warmup_ops,
            corrupt_p: disk.corrupt_p,
            torn_p: disk.torn_p,
            delay_p: disk.delay_p,
            delay_micros: disk.delay.as_micros() as u64,
        },
        issued,
        delivered,
        typed_failures,
        dropped,
        mismatched,
        cross_tenant_leaks,
        swaps: health.swaps,
        swap_rollbacks: health.swap_rollbacks,
        warm_loads: health.warm_loads,
        evictions: health.evictions,
        tenants_quarantined: health.tenants_quarantined,
        quarantined_answers: health.quarantined_answers,
        p50_micros: percentile_micros(&latencies, 0.50),
        p99_micros: percentile_micros(&latencies, 0.99),
    };

    println!(
        "\nissued {issued}, delivered {delivered}, typed failures {typed_failures}, dropped {dropped}"
    );
    println!(
        "isolation: {mismatched} mismatched, {cross_tenant_leaks} cross-tenant leak(s)"
    );
    println!(
        "fleet: {} swap(s) done live ({} reported, {} rollback(s)), {} warm load(s), {} eviction(s)",
        swaps_done, health.swaps, health.swap_rollbacks, health.warm_loads, health.evictions
    );
    println!(
        "quarantine: {} tenant(s) at shutdown, {} quarantined answer(s)",
        health.tenants_quarantined, health.quarantined_answers
    );
    println!(
        "latency: p50 {:.1} us, p99 {:.1} us over {:.1} ms wall",
        baseline.p50_micros,
        baseline.p99_micros,
        elapsed.as_secs_f64() * 1e3
    );

    let json = serde_json::to_string_pretty(&baseline).expect("serialize baseline");
    std::fs::write(&out_path, &json).expect("write baseline file");
    println!("\nwrote {out_path}");

    // Validate and gate by re-parsing what was actually written.
    let written = std::fs::read_to_string(&out_path).expect("read baseline back");
    let parsed: FleetBaseline = match serde_json::from_str(&written) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("fleetbench: written JSON does not parse: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = parsed.validate() {
        eprintln!("fleetbench: schema validation failed: {e}");
        return ExitCode::FAILURE;
    }
    println!("schema validation: ok ({SCHEMA})");
    match parsed.gate() {
        Ok(()) => {
            println!(
                "fleet gate: ok (zero drops, zero leaks, zero mismatches, \
                 {} tenants, {} live swaps)",
                parsed.tenants, parsed.swaps
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("fleetbench: fleet gate failed: {e}");
            ExitCode::FAILURE
        }
    }
}
