//! ABL-CONSEQ — §2.1.2: "With the TSK-FIS the consequence of the
//! implication is not a functional membership to a fuzzy set but a constant
//! or a linear function. In our system the linear functional consequence is
//! used, since the results for the reliability determination are better."
//!
//! This ablation trains the quality FIS both ways (identical structure and
//! data) and compares the reliability determination quality.
//!
//! ```sh
//! cargo run --release -p cqm-bench --bin ablation_consequent
//! ```

// lint: allow(PANIC_IN_LIB, file) -- experiment driver: abort loudly on setup failure instead of degrading

use cqm_anfis::dataset::Dataset;
use cqm_anfis::genfis::genfis;
use cqm_anfis::lse::fit_constant_consequents;
use cqm_anfis::rmse;
use cqm_bench::{evaluation_pool, labeled_qualities, paper_testbed, Testbed};
use cqm_classify::dataset::ClassifiedDataset;
use cqm_core::classifier::Classifier;
use cqm_core::quality::QualityMeasure;
use cqm_core::training::CqmTrainingConfig;
use cqm_math::linsolve::LstsqMethod;
use cqm_sensors::node::training_corpus;
use cqm_stats::separation::auc;

fn main() {
    println!("== ABL-CONSEQ: linear vs constant TSK consequents ==\n");
    let testbed = paper_testbed(2007);
    let corpus = training_corpus(31, 2).expect("corpus");
    let data = ClassifiedDataset::from_labeled_cues(&corpus).expect("dataset");

    // Build the joint (cues, class) -> rightness dataset with the testbed's
    // own black box.
    let mut joint = Dataset::new(data.dim() + 1);
    for (cues, label) in data.iter() {
        let predicted = testbed.build.classifier.classify(cues).expect("classify");
        let mut row = cues.to_vec();
        row.push(predicted.as_f64());
        let target = if predicted == label { 1.0 } else { 0.0 };
        joint.push(row, target).expect("valid sample");
    }

    let config = CqmTrainingConfig::default();
    let mut linear = genfis(&joint, &config.genfis).expect("genfis");
    let linear_rmse = rmse(&linear, &joint);
    let _ = &mut linear;

    let mut constant = linear.clone();
    let constant_rmse_fit =
        fit_constant_consequents(&mut constant, &joint, LstsqMethod::Svd).expect("constant fit");

    println!("training fit (RMSE against designated 0/1 output):");
    println!("  linear consequents   : {linear_rmse:.4}");
    println!("  constant consequents : {constant_rmse_fit:.4}\n");

    // Compare end-to-end separation on a fresh pool.
    for (label, fis) in [("linear  ", linear), ("constant", constant)] {
        let measure = QualityMeasure::new(fis).expect("measure");
        let build = cqm_appliance::pen::PenBuild {
            classifier: testbed.build.classifier.clone(),
            trained_cqm: cqm_core::training::TrainedCqm {
                measure,
                ..testbed.build.trained_cqm.clone()
            },
            train_accuracy: testbed.build.train_accuracy,
        };
        let tb = Testbed { build };
        let pool = evaluation_pool(&tb, 909, 2);
        let labeled = labeled_qualities(&pool);
        let a = auc(&labeled).unwrap_or(f64::NAN);
        println!("{label} consequents: evaluation AUC = {a:.4}");
    }
    println!("\nexpected shape: linear >= constant (the paper's stated reason)");
}
