//! ABL-HYBRID — does the ANFIS hybrid learning (§2.2.3–2.2.4) improve the
//! quality measure over the pure genfis initialisation (clustering + one
//! least-squares fit)?
//!
//! ```sh
//! cargo run --release -p cqm-bench --bin ablation_hybrid
//! ```

// lint: allow(PANIC_IN_LIB, file) -- experiment driver: abort loudly on setup failure instead of degrading

use cqm_anfis::hybrid::HybridConfig;
use cqm_bench::{evaluation_pool, labeled_qualities, paper_testbed, Testbed};
use cqm_classify::dataset::ClassifiedDataset;
use cqm_classify::tsk::{FisClassifier, FisClassifierConfig};
use cqm_core::classifier::ClassId;
use cqm_core::training::{train_cqm, CqmTrainingConfig};
use cqm_sensors::node::training_corpus;
use cqm_stats::separation::auc;
use std::time::Instant;

fn main() {
    println!("== ABL-HYBRID: hybrid learning vs pure LSE initialisation ==\n");
    let base = paper_testbed(2007);
    let corpus = training_corpus(2007, 2).expect("corpus");
    let data = ClassifiedDataset::from_labeled_cues(&corpus).expect("dataset");
    let classifier =
        FisClassifier::train(&data, &FisClassifierConfig::default()).expect("classifier");
    let truth: Vec<ClassId> = data.labels().to_vec();

    println!("epochs   stopped-early   best-epoch   check-RMSE   selection   AUC     time");
    println!("------   -------------   ----------   ----------   ---------   -----   ------");
    for epochs in [1usize, 5, 20, 40, 80] {
        let config = CqmTrainingConfig {
            hybrid: HybridConfig {
                epochs,
                ..HybridConfig::default()
            },
            ..CqmTrainingConfig::default()
        };
        let start = Instant::now();
        let trained = train_cqm(&classifier, data.cues(), &truth, &config).expect("training");
        let elapsed = start.elapsed();
        let check = trained.report.final_check_error().unwrap_or(f64::NAN);
        let build = cqm_appliance::pen::PenBuild {
            classifier: classifier.clone(),
            trained_cqm: trained.clone(),
            train_accuracy: base.build.train_accuracy,
        };
        let tb = Testbed { build };
        let pool = evaluation_pool(&tb, 909, 2);
        let a = auc(&labeled_qualities(&pool)).unwrap_or(f64::NAN);
        println!(
            "{epochs:6}   {:13}   {:10}   {check:10.4}   {:9.3}   {a:.3}   {elapsed:5.1?}",
            trained.report.stopped_early,
            trained.report.best_epoch,
            trained.probabilities.selection_right,
        );
    }
    println!("\nexpected shape: a few hybrid epochs refine the premises over pure LSE;");
    println!("the checking-set early stop (§2.2.4) prevents degradation at high budgets");
}
