//! ADAPTBENCH — the online-adaptation drift-recovery harness (PR 10).
//!
//! Starts an in-process [`cqm_serve::CqmServer`] with a seeded disk-fault
//! plan under its checkpoint store, keeps client traffic running against it
//! for the whole scenario, and drives a `cqm_adapt::AdaptationSupervisor`
//! through a two-phase labeled stream:
//!
//! 1. **stationary** — seeded healthy traffic; the Page–Hinkley detector
//!    must stay silent (zero false alarms, zero retrains, zero swaps);
//! 2. **context shift** — traffic concentrates where the live classifier
//!    is wrong; the detector must confirm drift, the supervisor must
//!    retrain from its window, validate the candidate and promote it
//!    through a live `swap_model` — with a deliberate rollback drill
//!    against the disk-fault schedule proving failed swaps keep last-good.
//!
//! The promoted model, the stale pre-drift model and a from-scratch
//! `train_cqm_with` retrain are all scored on the **same** deterministic
//! holdout; the gate (`AdaptBaseline::gate`, always applied) requires the
//! adapted model to beat the stale one and land within the documented
//! recovery bound of the from-scratch retrain, with zero requests dropped
//! across every swap. The accounting is written as `BENCH_PR10.json`
//! (schema documented in `cqm_bench::adaptbench`).
//!
//! ```sh
//! cargo run --release -p cqm-bench --bin adaptbench            # full run
//! cargo run --release -p cqm-bench --bin adaptbench -- --smoke # CI gate
//! cargo run --release -p cqm-bench --bin adaptbench -- --out /tmp/adapt.json
//! cargo run --release -p cqm-bench --bin adaptbench -- --seed 99 --stationary 800
//! ```

// lint: allow(PANIC_IN_LIB, file) -- perf driver: abort loudly on setup failure instead of degrading

use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use cqm_adapt::supervisor::holdout_rmse;
use cqm_adapt::{
    AdaptSample, AdaptationConfig, AdaptationOutcome, AdaptationSupervisor, DriftState,
    SlidingWindow,
};
use cqm_bench::adaptbench::{
    available_cores, AdaptBaseline, DiskPlanRecord, RECOVERY_BOUND, SCHEMA,
};
use cqm_classify::FisClassifier;
use cqm_core::classifier::ClassId;
use cqm_core::model::{CqmModel, MODEL_VERSION};
use cqm_core::training::{train_cqm_with, CqmTrainingConfig};
use cqm_fuzzy::{MembershipFunction, TskFis, TskRule};
use cqm_parallel::WorkerPool;
use cqm_resilience::DiskFaultPlan;
use cqm_serve::{
    ClientConfig, CqmClient, CqmServer, FleetConfig, ModelSource, ServeError, ServedModel,
    ServerConfig, DEFAULT_TENANT,
};

/// Hand-built 1-cue 2-class model (the same shape the serve and adapt test
/// suites use): class 0 near cue 0, class 1 near cue 1, quality high on the
/// diagonal. The scenario measures the adaptation machinery, not kernels.
fn tiny_model(threshold: f64, note: &str) -> ServedModel {
    let g = |mu: f64, s: f64| MembershipFunction::gaussian(mu, s).expect("gaussian");
    let class_fis = TskFis::new(vec![
        TskRule::new(vec![g(0.0, 0.3)], vec![0.0, 0.0]).expect("rule"),
        TskRule::new(vec![g(1.0, 0.3)], vec![0.0, 1.0]).expect("rule"),
    ])
    .expect("class fis");
    let classifier = FisClassifier::from_fis(class_fis, 2).expect("classifier");
    let quality_fis = TskFis::new(vec![
        TskRule::new(vec![g(0.0, 0.25), g(0.0, 0.25)], vec![0.0, 0.0, 1.0]).expect("rule"),
        TskRule::new(vec![g(1.0, 0.25), g(1.0, 0.25)], vec![0.0, 0.0, 1.0]).expect("rule"),
        TskRule::new(vec![g(0.0, 0.25), g(1.0, 0.25)], vec![0.0, 0.0, 0.0]).expect("rule"),
        TskRule::new(vec![g(1.0, 0.25), g(0.0, 0.25)], vec![0.0, 0.0, 0.0]).expect("rule"),
    ])
    .expect("quality fis");
    let model = CqmModel {
        version: MODEL_VERSION,
        measure: cqm_core::QualityMeasure::new(quality_fis).expect("measure"),
        threshold,
        note: note.into(),
    };
    ServedModel::new(classifier, model).expect("served model")
}

/// The seeded stationary sample at stream position `i`: mostly easy cues
/// near the poles, some ambiguous ones — the same Weyl-sequence pattern the
/// supervisor's own stationary soak uses.
fn stationary_sample(i: u64, phase: u64) -> (f64, ClassId) {
    let r = (i.wrapping_mul(2654435761).wrapping_add(phase) % 1000) as f64 / 1000.0;
    let cue = if i % 4 == 0 {
        0.3 + r * 0.4
    } else if i % 2 == 0 {
        r * 0.25
    } else {
        0.75 + r * 0.25
    };
    (cue, ClassId(usize::from(cue > 0.45)))
}

/// Per-thread tally of the traffic soak.
#[derive(Default)]
struct Tally {
    issued: u64,
    delivered: u64,
    typed_failures: u64,
}

/// Hammer the server with classification requests until `stop` flips.
/// Every outcome must be a delivered answer or a typed error; a panic
/// here fails the run. Swaps happen live under this traffic.
fn drive_traffic(addr: SocketAddr, session: u64, stop: &AtomicBool) -> Tally {
    let mut client = CqmClient::connect(
        addr,
        ClientConfig {
            connect_timeout: Duration::from_secs(1),
            io_timeout: Duration::from_millis(500),
            retries: 4,
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(20),
            call_deadline: Duration::from_secs(10),
            session_id: Some(session),
            seed: 7,
            ..ClientConfig::default()
        },
    )
    .expect("connect traffic client");
    let mut tally = Tally::default();
    let mut i = 0usize;
    while !stop.load(Ordering::Relaxed) {
        let cue = vec![-0.1 + 1.2 * (i % 16) as f64 / 16.0];
        i += 1;
        tally.issued += 1;
        match client.classify(&cue) {
            Ok(_answer) => tally.delivered += 1,
            Err(
                ServeError::Remote(_)
                | ServeError::RetriesExhausted { .. }
                | ServeError::Io { .. }
                | ServeError::Timeout(_)
                | ServeError::Protocol(_)
                | ServeError::ConnectionClosed
                | ServeError::Decode(_),
            ) => tally.typed_failures += 1,
            Err(other) => panic!("traffic produced an untyped failure: {other}"),
        }
    }
    tally
}

fn disk_plan(seed: u64) -> DiskFaultPlan {
    DiskFaultPlan {
        // Boot and the initial checkpoint write/read must land cleanly;
        // everything after runs against a one-in-four corrupt-read rate.
        warmup_ops: 24,
        corrupt_p: 0.25,
        ..DiskFaultPlan::clean(seed.wrapping_add(1))
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn usage() {
    println!(
        "adaptbench — online adaptation: drift recovery with validated live swap (writes BENCH_PR10.json)\n\
         \n\
         USAGE:\n\
         \x20   adaptbench [OPTIONS]\n\
         \n\
         OPTIONS:\n\
         \x20   --smoke           quick CI-sized run (400 stationary samples)\n\
         \x20   --out <PATH>      output JSON path (default: BENCH_PR10.json)\n\
         \x20   --stationary <N>  stationary-phase samples (default: 1200, smoke: 400)\n\
         \x20   --seed <N>        stream + disk-fault seed (default: 0xADA7)\n\
         \x20   -h, --help        print this help and exit\n\
         \n\
         EXIT CODES:\n\
         \x20   0  baseline written and the drift-recovery gate passed\n\
         \x20   1  gate failed or the run errored\n\
         \x20   2  unknown flag or malformed invocation"
    );
}

/// Strict flag validation: every token must be a known flag or the value
/// of the preceding value-taking flag. Unknown input is a usage error
/// (exit 2), not a silent ignore.
fn validate_args(args: &[String]) -> Result<(), String> {
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => i += 1,
            "--out" | "--stationary" | "--seed" => {
                if args.get(i + 1).is_none() {
                    return Err(format!("flag {} is missing its value", args[i]));
                }
                i += 2;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
        return ExitCode::SUCCESS;
    }
    if let Err(problem) = validate_args(&args) {
        eprintln!("adaptbench: {problem}\n");
        usage();
        return ExitCode::from(2);
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR10.json".to_string());
    let stationary =
        flag_value(&args, "--stationary").unwrap_or(if smoke { 400 } else { 1200 });
    let seed = flag_value(&args, "--seed").unwrap_or(0xADA7);
    let workers = 2usize;
    let disk = disk_plan(seed);
    let adapt_config = AdaptationConfig::default();

    println!(
        "== adaptbench: drift recovery with validated live swap ({}) ==",
        if smoke { "smoke" } else { "full" }
    );
    let cores = available_cores();
    println!("available parallelism: {cores} core(s)");
    println!(
        "{stationary} stationary sample(s), window {} (holdout every {}), seed {seed}\n",
        adapt_config.window_capacity, adapt_config.holdout_every
    );

    println!("[1/6] starting server with seeded disk faults under the store ...");
    let dir: PathBuf =
        std::env::temp_dir().join(format!("cqm_adaptbench_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("store dir");
    let stale = tiny_model(0.5, "boot");
    let server = CqmServer::start(
        ModelSource::Fresh(stale.clone()),
        ServerConfig {
            workers,
            fleet: FleetConfig {
                store_dir: Some(dir.clone()),
                disk_faults: Some(disk),
                probe_cues: (0..4).map(|i| vec![0.1 + 0.25 * i as f64]).collect(),
                ..FleetConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("start server");
    let addr = server.local_addr();
    println!("serving on {addr}");

    let stop = AtomicBool::new(false);
    let scenario = std::thread::scope(|scope| {
        let traffic: Vec<_> = (0..2)
            .map(|t| {
                let stop = &stop;
                scope.spawn(move || drive_traffic(addr, 0xADA0 + t, stop))
            })
            .collect();

        println!("[2/6] stationary phase: {stationary} samples, detector must stay silent ...");
        let mut sup = AdaptationSupervisor::new(
            adapt_config.clone(),
            stale.clone(),
            DEFAULT_TENANT,
            dir.join("validate"),
        )
        .expect("supervisor");
        let mut mirror =
            SlidingWindow::new(adapt_config.window_capacity).expect("mirror window");
        for i in 0..stationary {
            let (cue, truth) = stationary_sample(i, 1);
            sup.observe(&[cue], truth).expect("observe");
            mirror.push(AdaptSample {
                cues: vec![cue],
                truth,
            });
        }
        let stationary_false_alarms = sup.stats().drift_events;
        println!(
            "    state {:?}, {} false alarm(s), {} retrain(s)",
            sup.drift_state(),
            stationary_false_alarms,
            sup.stats().retrains
        );

        println!("[3/6] rollback drill: swapping against the disk-fault schedule ...");
        let mut drill_attempts = 0u64;
        let mut drill_failures = 0u64;
        while drill_failures == 0 && drill_attempts < 64 {
            drill_attempts += 1;
            match server.swap_model(DEFAULT_TENANT, tiny_model(0.5, "drill")) {
                Ok(_seq) => {}
                Err(rolled_back) => {
                    drill_failures += 1;
                    println!("    drill swap rolled back as designed: {rolled_back}");
                }
            }
        }
        println!("    {drill_failures} rollback(s) in {drill_attempts} attempt(s)");

        println!("[4/6] context shift: driving to confirmed drift and promotion ...");
        let mut shifted_samples = 0u64;
        let mut drift_detected_at = 0u64;
        let mut promoted: Option<ServedModel> = None;
        let mut i = 0u64;
        while promoted.is_none() && i < 20_000 {
            // Traffic concentrates where the classifier is wrong (cue just
            // above its 0.5 boundary, truth says class 0), interleaved with
            // easy right samples so the window keeps both outcomes.
            let r = (i.wrapping_mul(2654435761) % 1000) as f64 / 1000.0;
            let wrong = 0.5 + r * 0.1;
            sup.observe(&[wrong], ClassId(0)).expect("observe");
            mirror.push(AdaptSample {
                cues: vec![wrong],
                truth: ClassId(0),
            });
            let easy = if i % 2 == 0 { 0.05 + r * 0.1 } else { 0.85 + r * 0.1 };
            let easy_truth = ClassId(usize::from(easy > 0.45));
            sup.observe(&[easy], easy_truth).expect("observe");
            mirror.push(AdaptSample {
                cues: vec![easy],
                truth: easy_truth,
            });
            shifted_samples += 2;
            i += 1;
            if sup.drift_state() == DriftState::Drift {
                if drift_detected_at == 0 {
                    drift_detected_at = sup.stats().observed;
                    println!("    drift confirmed at observation {drift_detected_at}");
                }
                match sup.step(&server).expect("step") {
                    AdaptationOutcome::Promoted {
                        swap_seq,
                        candidate,
                    } => {
                        println!(
                            "    promoted at swap seq {swap_seq}: holdout rmse {:.4} \
                             (live was {:.4}), {} -> {} rule(s)",
                            candidate.holdout_rmse,
                            candidate.live_holdout_rmse,
                            candidate.rules_before,
                            candidate.rules_after
                        );
                        promoted = Some(sup.live().clone());
                    }
                    AdaptationOutcome::Rejected { reason } => {
                        println!("    candidate rejected, retrying: {reason}");
                    }
                    other => {
                        println!("    unexpected outcome {other:?}, continuing");
                    }
                }
            }
        }
        let promoted = promoted.expect("context shift never produced a promotion");

        println!("[5/6] from-scratch retrain on the same window for the recovery bound ...");
        let (train, holdout) = mirror
            .split(adapt_config.holdout_every)
            .expect("mirror split");
        let cues: Vec<Vec<f64>> = train.iter().map(|s| s.cues.clone()).collect();
        let truth: Vec<ClassId> = train.iter().map(|s| s.truth).collect();
        let pool = WorkerPool::new(workers);
        let trained = train_cqm_with(
            stale.classifier(),
            &cues,
            &truth,
            &CqmTrainingConfig::fast(),
            &pool,
        )
        .expect("from-scratch retrain");
        let scratch = ServedModel::new(
            stale.classifier().clone(),
            CqmModel {
                version: MODEL_VERSION,
                measure: trained.measure,
                threshold: trained.threshold.value.clamp(0.0, 1.0),
                note: "from-scratch retrain".into(),
            },
        )
        .expect("scratch model");
        let stale_rmse = holdout_rmse(&stale, &holdout).expect("stale rmse");
        let adapted_rmse = holdout_rmse(&promoted, &holdout).expect("adapted rmse");
        let scratch_rmse = holdout_rmse(&scratch, &holdout).expect("scratch rmse");
        println!(
            "    rmse on the shared holdout: stale {stale_rmse:.4}, adapted {adapted_rmse:.4}, \
             from-scratch {scratch_rmse:.4} (bound {RECOVERY_BOUND}x)"
        );

        stop.store(true, Ordering::Relaxed);
        let tallies: Vec<Tally> = traffic
            .into_iter()
            .map(|h| h.join().expect("traffic thread"))
            .collect();
        (
            sup.stats(),
            stationary_false_alarms,
            shifted_samples,
            drift_detected_at,
            drill_attempts,
            drill_failures,
            stale_rmse,
            adapted_rmse,
            scratch_rmse,
            tallies,
        )
    });
    let (
        stats,
        stationary_false_alarms,
        shifted_samples,
        drift_detected_at,
        drill_attempts,
        drill_failures,
        stale_rmse,
        adapted_rmse,
        scratch_rmse,
        tallies,
    ) = scenario;

    println!("[6/6] draining ...");
    let health = server.shutdown().expect("server shutdown");
    std::fs::remove_dir_all(&dir).ok();

    let issued: u64 = tallies.iter().map(|t| t.issued).sum();
    let delivered: u64 = tallies.iter().map(|t| t.delivered).sum();
    let typed_failures: u64 = tallies.iter().map(|t| t.typed_failures).sum();
    let dropped = issued.saturating_sub(delivered + typed_failures);

    let baseline = AdaptBaseline {
        schema: SCHEMA.to_string(),
        smoke,
        available_parallelism: cores,
        seed,
        workers,
        window_capacity: adapt_config.window_capacity,
        holdout_every: adapt_config.holdout_every,
        disk_plan: DiskPlanRecord {
            warmup_ops: disk.warmup_ops,
            corrupt_p: disk.corrupt_p,
            torn_p: disk.torn_p,
            delay_p: disk.delay_p,
            delay_micros: disk.delay.as_micros() as u64,
        },
        stationary_samples: stationary,
        stationary_false_alarms,
        shifted_samples,
        drift_detected_at,
        warn_events: stats.warn_events,
        drift_events: stats.drift_events,
        retrains: stats.retrains,
        promotions: stats.promotions,
        rejections: stats.rejections,
        swap_failures: stats.swap_failures,
        rollback_drill_attempts: drill_attempts,
        rollback_drill_failures: drill_failures,
        server_swaps: health.swaps,
        server_swap_rollbacks: health.swap_rollbacks,
        stale_rmse,
        adapted_rmse,
        scratch_rmse,
        recovery_bound: RECOVERY_BOUND,
        issued,
        delivered,
        typed_failures,
        dropped,
    };

    println!(
        "\nsupervisor: {} observation(s), {} warn / {} drift event(s), \
         {} retrain(s), {} promotion(s), {} rejection(s), {} swap failure(s)",
        stats.observed,
        stats.warn_events,
        stats.drift_events,
        stats.retrains,
        stats.promotions,
        stats.rejections,
        stats.swap_failures
    );
    println!(
        "server: {} swap(s), {} rollback(s); traffic: issued {issued}, delivered {delivered}, \
         typed failures {typed_failures}, dropped {dropped}",
        health.swaps, health.swap_rollbacks
    );

    let json = serde_json::to_string_pretty(&baseline).expect("serialize baseline");
    std::fs::write(&out_path, &json).expect("write baseline file");
    println!("\nwrote {out_path}");

    // Validate and gate by re-parsing what was actually written.
    let written = std::fs::read_to_string(&out_path).expect("read baseline back");
    let parsed: AdaptBaseline = match serde_json::from_str(&written) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("adaptbench: written JSON does not parse: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = parsed.validate() {
        eprintln!("adaptbench: schema validation failed: {e}");
        return ExitCode::FAILURE;
    }
    println!("schema validation: ok ({SCHEMA})");
    match parsed.gate() {
        Ok(()) => {
            println!(
                "adapt gate: ok (silent stationary phase, drift detected at {}, \
                 {} promotion(s), {} rollback(s), adapted rmse {:.4} within {}x of \
                 from-scratch {:.4}, zero drops)",
                parsed.drift_detected_at,
                parsed.promotions,
                parsed.server_swap_rollbacks,
                parsed.adapted_rmse,
                parsed.recovery_bound,
                parsed.scratch_rmse
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("adaptbench: drift-recovery gate failed: {e}");
            ExitCode::FAILURE
        }
    }
}
