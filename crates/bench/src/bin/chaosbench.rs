//! CHAOSBENCH — the exactly-once-under-chaos baseline harness (PR 7).
//!
//! Starts an in-process [`cqm_serve::CqmServer`], puts a seeded
//! [`cqm_resilience::ChaosProxy`] in front of it (torn chunks, injected
//! delays, bit flips, connection resets on a replayable schedule), drives
//! it with concurrent retrying clients, and writes the exactly-once
//! accounting as `BENCH_PR7.json` (schema documented in
//! `cqm_bench::chaosbench`).
//!
//! ```sh
//! cargo run --release -p cqm-bench --bin chaosbench            # full soak
//! cargo run --release -p cqm-bench --bin chaosbench -- --smoke # CI gate
//! cargo run --release -p cqm-bench --bin chaosbench -- --out /tmp/chaos.json
//! cargo run --release -p cqm-bench --bin chaosbench -- --clients 8 --requests 100
//! cargo run --release -p cqm-bench --bin chaosbench -- --seed 99
//! ```
//!
//! The gate (`ChaosBaseline::gate`, always applied): every issued request
//! is delivered or fails typed (`lost == 0`), the server never executed a
//! request twice (`duplicated == 0`), and the soak delivered answers.

// lint: allow(PANIC_IN_LIB, file) -- perf driver: abort loudly on setup failure instead of degrading

use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::Barrier;
use std::time::{Duration, Instant};

use cqm_bench::chaosbench::{
    available_cores, percentile_micros, ChaosBaseline, ChaosPlanRecord, SCHEMA,
};
use cqm_classify::FisClassifier;
use cqm_core::model::{CqmModel, MODEL_VERSION};
use cqm_core::QualityMeasure;
use cqm_fuzzy::{MembershipFunction, TskFis, TskRule};
use cqm_resilience::{ChaosProxy, DegradationPolicy, NetFaultPlan};
use cqm_serve::{
    ClientConfig, CqmClient, CqmServer, ModelSource, ServeError, ServedModel, ServerConfig,
};

/// Hand-built two-class model over one cue in [0, 1] — the soak measures
/// the transport, not the kernels, so no ANFIS training here.
fn tiny_model() -> ServedModel {
    let g = |mu: f64, s: f64| MembershipFunction::gaussian(mu, s).expect("gaussian");
    let class_fis = TskFis::new(vec![
        TskRule::new(vec![g(0.0, 0.3)], vec![0.0, 0.0]).expect("rule"),
        TskRule::new(vec![g(1.0, 0.3)], vec![0.0, 1.0]).expect("rule"),
    ])
    .expect("class fis");
    let classifier = FisClassifier::from_fis(class_fis, 2).expect("classifier");
    let quality_fis = TskFis::new(vec![
        TskRule::new(vec![g(0.0, 0.25), g(0.0, 0.25)], vec![0.0, 0.0, 1.0]).expect("rule"),
        TskRule::new(vec![g(1.0, 0.25), g(1.0, 0.25)], vec![0.0, 0.0, 1.0]).expect("rule"),
        TskRule::new(vec![g(0.0, 0.25), g(1.0, 0.25)], vec![0.0, 0.0, 0.0]).expect("rule"),
        TskRule::new(vec![g(1.0, 0.25), g(0.0, 0.25)], vec![0.0, 0.0, 0.0]).expect("rule"),
    ])
    .expect("quality fis");
    let model = CqmModel {
        version: MODEL_VERSION,
        measure: QualityMeasure::new(quality_fis).expect("measure"),
        threshold: 0.5,
        note: "chaosbench".into(),
    };
    ServedModel::new(classifier, model).expect("served model")
}

/// The measured fault schedule: hostile enough to exercise retries,
/// dedup replays and torn frames, survivable enough that the soak
/// delivers the vast majority of requests.
fn soak_plan(seed: u64) -> NetFaultPlan {
    NetFaultPlan {
        warmup_ops: 6,
        partial_p: 0.12,
        latency_p: 0.02,
        latency: Duration::from_millis(2),
        corrupt_p: 0.015,
        reset_p: 0.008,
        ..NetFaultPlan::clean(seed)
    }
}

/// Per-client tally of one soak run.
#[derive(Default)]
struct Tally {
    delivered: u64,
    typed_failures: u64,
    /// `attempts[i]` = logical calls that took `i + 1` transport attempts.
    attempts: Vec<u64>,
    latencies_micros: Vec<f64>,
}

impl Tally {
    fn bump_attempts(&mut self, attempts: u32) {
        let slot = attempts.max(1) as usize - 1;
        if self.attempts.len() <= slot {
            self.attempts.resize(slot + 1, 0);
        }
        self.attempts[slot] += 1;
    }
}

/// Drive one retrying client through the proxy. Every outcome must be a
/// delivered classification or a typed error; a panic here fails the run.
fn drive(addr: SocketAddr, session: u64, requests: usize, barrier: &Barrier) -> Tally {
    let mut client = CqmClient::connect(
        addr,
        ClientConfig {
            connect_timeout: Duration::from_secs(1),
            io_timeout: Duration::from_millis(300),
            retries: 8,
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(40),
            call_deadline: Duration::from_secs(20),
            session_id: Some(session),
            seed: 7,
            ..ClientConfig::default()
        },
    )
    .expect("connect through chaos proxy");
    let mut tally = Tally::default();
    barrier.wait();
    for i in 0..requests {
        // Deterministic cues over (and slightly past) the covered range.
        let cue = -0.1 + 1.2 * (i % 16) as f64 / 16.0;
        let start = Instant::now();
        match client.classify(&[cue]) {
            Ok(_answer) => {
                tally.delivered += 1;
                tally
                    .latencies_micros
                    .push(start.elapsed().as_secs_f64() * 1e6);
            }
            Err(
                ServeError::Remote(_)
                | ServeError::RetriesExhausted { .. }
                | ServeError::Io { .. }
                | ServeError::Timeout(_)
                | ServeError::Protocol(_)
                | ServeError::ConnectionClosed
                | ServeError::Decode(_),
            ) => {
                tally.typed_failures += 1;
                tally
                    .latencies_micros
                    .push(start.elapsed().as_secs_f64() * 1e6);
            }
            Err(other) => panic!("chaos soak produced an untyped failure: {other}"),
        }
        tally.bump_attempts(client.last_attempts());
    }
    tally
}

fn flag_value(args: &[String], flag: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn usage() {
    println!(
        "chaosbench — exactly-once under network chaos (writes BENCH_PR7.json)\n\
         \n\
         USAGE:\n\
         \x20   chaosbench [OPTIONS]\n\
         \n\
         OPTIONS:\n\
         \x20   --smoke           quick CI-sized run (4 clients x 50 requests)\n\
         \x20   --out <PATH>      output JSON path (default: BENCH_PR7.json)\n\
         \x20   --clients <N>     concurrent retrying clients (default: 8, smoke: 4)\n\
         \x20   --requests <N>    requests per client (default: 200, smoke: 50)\n\
         \x20   --seed <N>        chaos schedule seed (default: 0xCA05)\n\
         \x20   -h, --help        print this help and exit\n\
         \n\
         EXIT CODES:\n\
         \x20   0  baseline written and the exactly-once gate passed\n\
         \x20   1  gate failed or the run errored\n\
         \x20   2  unknown flag or malformed invocation"
    );
}

/// Strict flag validation: every token must be a known flag or the value
/// of the preceding value-taking flag. Unknown input is a usage error
/// (exit 2), not a silent ignore.
fn validate_args(args: &[String]) -> Result<(), String> {
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => i += 1,
            "--out" | "--clients" | "--requests" | "--seed" => {
                if args.get(i + 1).is_none() {
                    return Err(format!("flag {} is missing its value", args[i]));
                }
                i += 2;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
        return ExitCode::SUCCESS;
    }
    if let Err(problem) = validate_args(&args) {
        eprintln!("chaosbench: {problem}\n");
        usage();
        return ExitCode::from(2);
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR7.json".to_string());
    let clients = flag_value(&args, "--clients").unwrap_or(if smoke { 4 } else { 8 }) as usize;
    let requests =
        flag_value(&args, "--requests").unwrap_or(if smoke { 50 } else { 200 }) as usize;
    let seed = flag_value(&args, "--seed").unwrap_or(0xCA05);
    let workers = 2usize;
    let plan = soak_plan(seed);

    println!(
        "== chaosbench: exactly-once under network chaos ({}) ==",
        if smoke { "smoke" } else { "full" }
    );
    let cores = available_cores();
    println!("available parallelism: {cores} core(s)");
    println!(
        "{clients} client(s) x {requests} request(s), {workers} worker(s), chaos seed {seed}\n"
    );

    println!("[1/3] starting server and chaos proxy ...");
    let server = CqmServer::start(
        ModelSource::Fresh(tiny_model()),
        ServerConfig {
            workers,
            micro_batch: 4,
            frame_deadline: Some(Duration::from_millis(500)),
            ladder: Some(DegradationPolicy::default()),
            ..ServerConfig::default()
        },
    )
    .expect("start server");
    let mut proxy = ChaosProxy::start(server.local_addr(), plan).expect("start chaos proxy");
    let addr = proxy.local_addr();
    println!("serving on {} via chaos proxy {addr}", server.local_addr());

    println!("[2/3] soaking ...");
    let started = Instant::now();
    let barrier = Barrier::new(clients);
    let tallies: Vec<Tally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|k| {
                let barrier = &barrier;
                scope.spawn(move || drive(addr, 0xBE7C + k as u64, requests, barrier))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("soak client thread"))
            .collect()
    });
    let elapsed = started.elapsed();

    println!("[3/3] draining ...");
    proxy.stop();
    let health = server.shutdown().expect("server shutdown");

    let issued = (clients * requests) as u64;
    let delivered: u64 = tallies.iter().map(|t| t.delivered).sum();
    let typed_failures: u64 = tallies.iter().map(|t| t.typed_failures).sum();
    let lost = issued.saturating_sub(delivered + typed_failures);
    let mut retry_histogram: Vec<u64> = Vec::new();
    for t in &tallies {
        if retry_histogram.len() < t.attempts.len() {
            retry_histogram.resize(t.attempts.len(), 0);
        }
        for (slot, n) in t.attempts.iter().enumerate() {
            retry_histogram[slot] += n;
        }
    }
    let latencies: Vec<f64> = tallies
        .iter()
        .flat_map(|t| t.latencies_micros.iter().copied())
        .collect();

    let baseline = ChaosBaseline {
        schema: SCHEMA.to_string(),
        smoke,
        available_parallelism: cores,
        seed,
        workers,
        clients,
        requests_per_client: requests,
        plan: ChaosPlanRecord {
            warmup_ops: plan.warmup_ops,
            partial_p: plan.partial_p,
            latency_p: plan.latency_p,
            latency_micros: plan.latency.as_micros() as u64,
            corrupt_p: plan.corrupt_p,
            reset_p: plan.reset_p,
        },
        issued,
        delivered,
        typed_failures,
        lost,
        duplicated: health.duplicate_executions,
        dedup_hits: health.dedup_hits,
        degraded_served: health.degraded_served,
        retry_histogram,
        p50_micros: percentile_micros(&latencies, 0.50),
        p99_micros: percentile_micros(&latencies, 0.99),
    };

    println!(
        "\nissued {issued}, delivered {delivered}, typed failures {typed_failures}, lost {lost}"
    );
    println!(
        "server: {} executed, {} dedup hits, {} duplicate executions, {} degraded",
        health.rows_classified, health.dedup_hits, health.duplicate_executions,
        health.degraded_served
    );
    println!(
        "latency: p50 {:.1} us, p99 {:.1} us over {:.1} ms wall",
        baseline.p50_micros,
        baseline.p99_micros,
        elapsed.as_secs_f64() * 1e3
    );
    print!("retry histogram:");
    for (slot, n) in baseline.retry_histogram.iter().enumerate() {
        print!(" {}x{}", slot + 1, n);
    }
    println!();

    let json = serde_json::to_string_pretty(&baseline).expect("serialize baseline");
    std::fs::write(&out_path, &json).expect("write baseline file");
    println!("\nwrote {out_path}");

    // Validate and gate by re-parsing what was actually written.
    let written = std::fs::read_to_string(&out_path).expect("read baseline back");
    let parsed: ChaosBaseline = match serde_json::from_str(&written) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("chaosbench: written JSON does not parse: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = parsed.validate() {
        eprintln!("chaosbench: schema validation failed: {e}");
        return ExitCode::FAILURE;
    }
    println!("schema validation: ok ({SCHEMA})");
    match parsed.gate() {
        Ok(()) => {
            println!("chaos gate: ok (every request accounted, zero duplicate executions)");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("chaosbench: chaos gate failed: {e}");
            ExitCode::FAILURE
        }
    }
}
