//! # cqm-bench — experiment harness
//!
//! Shared infrastructure for the binaries that regenerate every figure and
//! claim of the paper's evaluation (see DESIGN.md §4 for the experiment
//! index and EXPERIMENTS.md for paper-vs-measured numbers):
//!
//! | binary | artifact |
//! |---|---|
//! | `fig5` | Fig. 5 — quality values of the 24-point test set |
//! | `fig6` | Fig. 6 — right/wrong densities, threshold, §2.33 probabilities |
//! | `improvement` | headline 33 % discard / decision improvement |
//! | `threshold_balance` | §3.2 remark: balanced training ⇒ `s ≈ 0.5` |
//! | `large_set` | §3.2 remark: separation odds worsen with set size |
//! | `ablation_lsq` | SVD vs QR vs normal equations in the LSE |
//! | `ablation_consequent` | linear vs constant consequents |
//! | `ablation_cluster` | subtractive vs mountain structure identification |
//! | `ablation_hybrid` | hybrid learning vs pure LSE initialisation |
//!
//! Criterion benches (`cargo bench -p cqm-bench`) back the paper's
//! "real-time" claim with FIS-evaluation and end-to-end latencies.

// lint: allow(PANIC_IN_LIB, file) -- experiment driver: abort loudly on setup failure instead of degrading


#![forbid(unsafe_code)]

pub mod adaptbench;
pub mod chaosbench;
pub mod experiments;
pub mod fleetbench;
pub mod perf;
pub mod servebench;

use cqm_appliance::pen::{train_pen, PenBuild};
use cqm_core::classifier::Classifier;
use cqm_core::normalize::Quality;
use cqm_core::quality::QualityScratch;
use cqm_parallel::WorkerPool;
use cqm_sensors::node::{NodeConfig, SensorNode};
use cqm_sensors::synth::Scenario;
use cqm_sensors::user::UserStyle;
use cqm_sensors::Context;

/// One evaluated sample: the cue vector, what happened, and its quality.
#[derive(Debug, Clone)]
pub struct EvalSample {
    /// Cue vector.
    pub cues: Vec<f64>,
    /// Ground-truth context.
    pub truth: Context,
    /// The black box's classification.
    pub predicted: Context,
    /// Whether the classification was right.
    pub right: bool,
    /// The CQM value.
    pub quality: Quality,
    /// Whether the source window straddled a context change.
    pub is_transition: bool,
}

/// The trained testbed shared by all experiments.
pub struct Testbed {
    /// The trained AwarePen stack.
    pub build: PenBuild,
}

/// Train the standard testbed (fixed seed for reproducible experiment
/// output).
///
/// # Panics
///
/// Panics if training fails — experiments cannot proceed without a testbed,
/// and the fixed-seed pipeline is covered by tests.
pub fn paper_testbed(seed: u64) -> Testbed {
    let build = train_pen(seed, 2).expect("testbed training");
    Testbed { build }
}

/// Generate a fresh evaluation pool on *unseen* seeds, mixing the training
/// user population with a novel style (the paper's "other users having a
/// different style"), including transition windows.
///
/// # Panics
///
/// Panics on simulation failure (fixed configurations, covered by tests).
pub fn evaluation_pool(testbed: &Testbed, seed: u64, sessions: usize) -> Vec<EvalSample> {
    evaluation_pool_with(testbed, seed, sessions, &WorkerPool::serial())
}

/// [`evaluation_pool`] on a worker pool: each (session, style) simulation is
/// an independent work item (its RNG seed is a pure function of the indices,
/// never of scheduling), and the per-item results are concatenated in the
/// same nested order the serial loop uses — so the pool contents are
/// identical at any thread count. Quality values are evaluated through the
/// allocation-free [`cqm_core::QualityKernel`], which is bit-identical to
/// `QualityMeasure::measure`.
///
/// # Panics
///
/// Panics on simulation failure (fixed configurations, covered by tests).
pub fn evaluation_pool_with(
    testbed: &Testbed,
    seed: u64,
    sessions: usize,
    pool: &WorkerPool,
) -> Vec<EvalSample> {
    let mut styles = UserStyle::population();
    // A style outside the training population: very vigorous and quick.
    styles.push(UserStyle::new(2.6, 1.9, 0.3).expect("valid style"));
    let scenario = Scenario::write_think_write()
        .expect("built-in scenario")
        .then(&Scenario::balanced_session().expect("built-in scenario"));
    let mut jobs: Vec<(usize, usize, UserStyle)> = Vec::new();
    for session in 0..sessions {
        for (si, style) in styles.iter().enumerate() {
            jobs.push((session, si, *style));
        }
    }
    let kernel = testbed.build.trained_cqm.measure.kernel();
    let per_job = pool.par_map_chunks(&jobs, 1, |_, &(session, si, style)| {
        let node_seed = seed
            .wrapping_mul(0x100000001B3)
            .wrapping_add((session * 97 + si) as u64);
        let mut node =
            SensorNode::new(NodeConfig::default(), style, node_seed).expect("valid node config");
        let windows = node.run_scenario(&scenario).expect("scenario run");
        let mut scratch = QualityScratch::new();
        let mut out = Vec::with_capacity(windows.len());
        for w in windows {
            let class = testbed
                .build
                .classifier
                .classify(&w.cues)
                .expect("classification");
            let predicted = Context::from_index(class.0).expect("valid class");
            let quality = kernel
                .measure_into(&w.cues, class, &mut scratch)
                .expect("quality");
            out.push(EvalSample {
                cues: w.cues,
                truth: w.truth,
                predicted,
                right: predicted == w.truth,
                quality,
                is_transition: w.is_transition,
            });
        }
        out
    });
    per_job.into_iter().flatten().collect()
}

/// Deterministically select a small hard test set with the paper's
/// composition: `n_right` right and `n_wrong` wrong classifications (the
/// paper's Fig. 5 set has 16 + 8 = 24). Mirrors the paper's choice of a
/// deliberately difficult evaluation set.
///
/// Returns fewer wrong samples only if the pool does not contain enough —
/// callers should check.
pub fn select_test_set(pool: &[EvalSample], n_right: usize, n_wrong: usize) -> Vec<EvalSample> {
    let mut rights: Vec<&EvalSample> = pool.iter().filter(|s| s.right).collect();
    let mut wrongs: Vec<&EvalSample> = pool.iter().filter(|s| !s.right).collect();
    // Deterministic spread: take evenly spaced elements so the selection
    // covers the whole pool rather than one session.
    let spread = |v: &mut Vec<&EvalSample>, n: usize| -> Vec<EvalSample> {
        if v.is_empty() {
            return Vec::new();
        }
        let step = (v.len() as f64 / n as f64).max(1.0);
        (0..n)
            .filter_map(|i| v.get((i as f64 * step) as usize).map(|s| (*s).clone()))
            .collect()
    };
    let mut out = spread(&mut rights, n_right);
    out.extend(spread(&mut wrongs, n_wrong));
    out
}

/// Labeled `(quality, right)` pairs of the non-ε samples.
pub fn labeled_qualities(samples: &[EvalSample]) -> Vec<(f64, bool)> {
    samples
        .iter()
        .filter_map(|s| s.quality.value().map(|q| (q, s.right)))
        .collect()
}

/// Render a crude horizontal text scatter of quality values (o = right,
/// + = wrong), the Fig. 5 visual.
pub fn render_quality_scatter(samples: &[EvalSample]) -> String {
    let mut lines = Vec::new();
    for (i, s) in samples.iter().enumerate() {
        let marker = if s.right { 'o' } else { '+' };
        match s.quality {
            Quality::Value(q) => {
                let pos = (q.clamp(0.0, 1.0) * 60.0).round() as usize;
                let mut bar: Vec<char> = vec![' '; 62];
                bar[pos] = marker;
                lines.push(format!(
                    "{:3} |{}| q={:.4} {}",
                    i + 1,
                    bar.iter().collect::<String>(),
                    q,
                    if s.right { "right" } else { "WRONG" }
                ));
            }
            Quality::Epsilon => {
                lines.push(format!("{:3} | epsilon {:51}  {}", i + 1, "", "WRONG"));
            }
        }
    }
    lines.join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_pool_and_selection() {
        let testbed = paper_testbed(3);
        let pool = evaluation_pool(&testbed, 77, 1);
        assert!(pool.len() > 200, "pool size {}", pool.len());
        let wrongs = pool.iter().filter(|s| !s.right).count();
        assert!(wrongs > 8, "need enough wrong samples, got {wrongs}");
        let set = select_test_set(&pool, 16, 8);
        assert_eq!(set.len(), 24);
        assert_eq!(set.iter().filter(|s| s.right).count(), 16);
        let labeled = labeled_qualities(&set);
        assert!(labeled.len() <= 24);
        let scatter = render_quality_scatter(&set);
        assert_eq!(scatter.lines().count(), 24);
        assert!(scatter.contains('o'));
        assert!(scatter.contains('+') || scatter.contains("epsilon"));

        // The pool contents are a pure function of (seed, sessions) — never
        // of the worker count (reuses the already-trained testbed because
        // training dominates this test's runtime).
        for threads in [2usize, 8] {
            let threaded = evaluation_pool_with(&testbed, 77, 1, &WorkerPool::new(threads));
            assert_eq!(threaded.len(), pool.len(), "threads={threads}");
            for (a, b) in threaded.iter().zip(&pool) {
                assert_eq!(a.truth, b.truth, "threads={threads}");
                assert_eq!(a.predicted, b.predicted, "threads={threads}");
                assert_eq!(a.is_transition, b.is_transition, "threads={threads}");
                match (a.quality, b.quality) {
                    (Quality::Value(va), Quality::Value(vb)) => {
                        assert_eq!(va.to_bits(), vb.to_bits(), "threads={threads}");
                    }
                    (qa, qb) => assert_eq!(qa, qb, "threads={threads}"),
                }
            }
        }
    }
}
