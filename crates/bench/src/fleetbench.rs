//! Multi-tenant fleet soak baseline behind the `fleetbench` binary.
//!
//! Drives a live [`cqm_serve::CqmServer`] fleet — many tenants behind one
//! `ModelRegistry` with an LRU smaller than the tenant count — through a
//! seeded `cqm_resilience::ChaosProxy` *and* a seeded checkpoint-store
//! disk-fault injector, performs live hot swaps mid-traffic, and records
//! the isolation accounting as `BENCH_PR8.json`.
//!
//! # `BENCH_PR8.json` schema (`cqm-bench/fleetbase/v1`)
//!
//! ```json
//! {
//!   "schema": "cqm-bench/fleetbase/v1",
//!   "smoke": true,
//!   "available_parallelism": 8,
//!   "seed": 51966,
//!   "workers": 2,
//!   "max_active": 4,
//!   "tenants": 8,
//!   "requests_per_tenant": 40,
//!   "sick_probes": 10,
//!   "net_plan": { "warmup_ops": 6, "partial_p": 0.08, "latency_p": 0.02,
//!                 "latency_micros": 2000, "corrupt_p": 0.01, "reset_p": 0.005 },
//!   "disk_plan": { "warmup_ops": 6, "corrupt_p": 0.02, "torn_p": 0.02,
//!                  "delay_p": 0.1, "delay_micros": 1000 },
//!   "issued": 330,
//!   "delivered": 318,
//!   "typed_failures": 12,
//!   "dropped": 0,
//!   "mismatched": 0,
//!   "cross_tenant_leaks": 0,
//!   "swaps": 4,
//!   "swap_rollbacks": 1,
//!   "warm_loads": 37,
//!   "evictions": 33,
//!   "tenants_quarantined": 1,
//!   "quarantined_answers": 10,
//!   "p50_micros": 410.0,
//!   "p99_micros": 5200.0
//! }
//! ```
//!
//! * `schema` — exact constant [`SCHEMA`]; bump on layout changes.
//! * `seed` — drives both fault schedules (network and disk); the whole
//!   soak replays from it.
//! * `issued` / `delivered` / `typed_failures` / `dropped` — the
//!   accounting identity: every issued request is either delivered (a
//!   classification, possibly after retries) or failed with a *typed*
//!   error; `dropped` is the remainder and must be zero.
//! * `mismatched` — delivered answers that bit-match **no** generation of
//!   their own tenant's model (half-loaded or stale-engine answers).
//! * `cross_tenant_leaks` — delivered answers that bit-match a *different*
//!   tenant's model but not their own: the bulkhead-isolation failure the
//!   gate exists to catch.
//! * `swaps` / `swap_rollbacks` — server-side counters; the gate requires
//!   at least three swaps to have flipped live routing slots mid-traffic.
//! * `warm_loads` / `evictions` — LRU churn; with `max_active` below the
//!   tenant count these are the proof that answers survived eviction and
//!   reload under disk faults.
//! * `tenants_quarantined` / `quarantined_answers` — the sick tenant
//!   (corrupt checkpoint seeded on disk) plus any transient disk-fault
//!   quarantines; quarantine is per-tenant by construction.

use serde::{Deserialize, Serialize};

pub use crate::chaosbench::ChaosPlanRecord;
pub use crate::perf::available_cores;
pub use crate::servebench::percentile_micros;

/// Schema identifier written to and expected in `BENCH_PR8.json`.
pub const SCHEMA: &str = "cqm-bench/fleetbase/v1";

/// The checkpoint-store disk-fault knobs, mirrored into the document so a
/// baseline is self-describing (as written into the `DiskFaultPlan`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiskPlanRecord {
    /// Fault-free reads at the start of the schedule.
    pub warmup_ops: u64,
    /// Per-read probability of a flipped bit in the returned bytes.
    pub corrupt_p: f64,
    /// Per-read probability of a truncated (torn) read.
    pub torn_p: f64,
    /// Per-read probability of an injected delay.
    pub delay_p: f64,
    /// Injected delay in microseconds when it fires.
    pub delay_micros: u64,
}

/// The complete `BENCH_PR8.json` document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetBaseline {
    /// Schema identifier ([`SCHEMA`]).
    pub schema: String,
    /// Whether smoke (CI-sized) load was used.
    pub smoke: bool,
    /// Cores visible to the process at measurement time.
    pub available_parallelism: usize,
    /// Seed for both fault schedules.
    pub seed: u64,
    /// Server-side worker threads.
    pub workers: usize,
    /// Registry LRU capacity (kept below `tenants` to force churn).
    pub max_active: usize,
    /// Healthy tenants driven with traffic (the sick tenant is extra).
    pub tenants: u64,
    /// Logical requests issued per healthy tenant.
    pub requests_per_tenant: usize,
    /// Probes sent to the deliberately corrupt tenant.
    pub sick_probes: u64,
    /// Network fault schedule (the `ChaosProxy` in front of the server).
    pub net_plan: ChaosPlanRecord,
    /// Checkpoint-store fault schedule (the registry's read path).
    pub disk_plan: DiskPlanRecord,
    /// Logical requests issued (`tenants * requests_per_tenant + sick_probes`).
    pub issued: u64,
    /// Requests answered with a classification (after retries).
    pub delivered: u64,
    /// Requests that failed with a typed error (never a panic or hang).
    pub typed_failures: u64,
    /// Requests neither delivered nor typed-failed; must be zero.
    pub dropped: u64,
    /// Delivered answers bit-matching no generation of their own tenant.
    pub mismatched: u64,
    /// Delivered answers bit-matching a different tenant's model only.
    pub cross_tenant_leaks: u64,
    /// Hot swaps that flipped a live routing slot mid-traffic.
    pub swaps: u64,
    /// Swaps that failed validation and rolled back to last-good.
    pub swap_rollbacks: u64,
    /// Models loaded from the checkpoint store (cold → active).
    pub warm_loads: u64,
    /// Active models evicted back to their checkpoints by the LRU.
    pub evictions: u64,
    /// Tenants quarantined at shutdown.
    pub tenants_quarantined: u64,
    /// Requests answered with a typed `TenantQuarantined`.
    pub quarantined_answers: u64,
    /// Median round-trip latency per logical call, microseconds.
    pub p50_micros: f64,
    /// 99th-percentile round-trip latency per logical call, microseconds.
    pub p99_micros: f64,
}

impl FleetBaseline {
    /// Validate the document against the schema contract: identifier,
    /// plan probabilities, internally consistent counters, and positive
    /// finite ordered percentiles.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema != SCHEMA {
            return Err(format!("schema is {:?}, expected {SCHEMA:?}", self.schema));
        }
        if self.available_parallelism == 0 {
            return Err("available_parallelism must be >= 1".into());
        }
        if self.workers == 0 || self.max_active == 0 {
            return Err("workers and max_active must be >= 1".into());
        }
        if self.tenants == 0 || self.requests_per_tenant == 0 {
            return Err("tenants and requests_per_tenant must be >= 1".into());
        }
        for (name, p) in [
            ("net_plan.partial_p", self.net_plan.partial_p),
            ("net_plan.latency_p", self.net_plan.latency_p),
            ("net_plan.corrupt_p", self.net_plan.corrupt_p),
            ("net_plan.reset_p", self.net_plan.reset_p),
            ("disk_plan.corrupt_p", self.disk_plan.corrupt_p),
            ("disk_plan.torn_p", self.disk_plan.torn_p),
            ("disk_plan.delay_p", self.disk_plan.delay_p),
        ] {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} {p} is not a probability in [0, 1]"));
            }
        }
        let expected = self.tenants * self.requests_per_tenant as u64 + self.sick_probes;
        if self.issued != expected {
            return Err(format!(
                "issued {} != tenants {} * requests_per_tenant {} + sick_probes {}",
                self.issued, self.tenants, self.requests_per_tenant, self.sick_probes
            ));
        }
        let accounted = self.delivered + self.typed_failures + self.dropped;
        if accounted != self.issued {
            return Err(format!(
                "delivered {} + typed_failures {} + dropped {} != issued {}",
                self.delivered, self.typed_failures, self.dropped, self.issued
            ));
        }
        if self.mismatched + self.cross_tenant_leaks > self.delivered {
            return Err(format!(
                "mismatched {} + cross_tenant_leaks {} exceed delivered {}",
                self.mismatched, self.cross_tenant_leaks, self.delivered
            ));
        }
        for (field, value) in [("p50_micros", self.p50_micros), ("p99_micros", self.p99_micros)] {
            if !(value > 0.0 && value.is_finite()) {
                return Err(format!("{field} {value} not positive finite"));
            }
        }
        if self.p50_micros > self.p99_micros {
            return Err(format!(
                "percentiles out of order (p50 {} / p99 {})",
                self.p50_micros, self.p99_micros
            ));
        }
        Ok(())
    }

    /// The CI gate — bulkhead isolation and zero-drop hot swap under
    /// combined network and disk chaos:
    ///
    /// * every issued request is accounted for (`dropped == 0`);
    /// * no answer crossed a tenant boundary (`cross_tenant_leaks == 0`);
    /// * no answer came from a half-loaded or stale engine
    ///   (`mismatched == 0`);
    /// * the soak was a real fleet (`tenants >= 8`) with real churn
    ///   (`swaps >= 3` live mid-traffic swaps);
    /// * the soak actually delivered answers (`delivered > 0`).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the violation.
    pub fn gate(&self) -> Result<(), String> {
        if self.dropped != 0 {
            return Err(format!("{} request(s) went unaccounted", self.dropped));
        }
        if self.cross_tenant_leaks != 0 {
            return Err(format!(
                "{} answer(s) leaked across a tenant boundary",
                self.cross_tenant_leaks
            ));
        }
        if self.mismatched != 0 {
            return Err(format!(
                "{} answer(s) matched no generation of their own tenant",
                self.mismatched
            ));
        }
        if self.tenants < 8 {
            return Err(format!("fleet too small: {} tenant(s), need >= 8", self.tenants));
        }
        if self.swaps < 3 {
            return Err(format!("only {} live swap(s), need >= 3", self.swaps));
        }
        if self.delivered == 0 {
            return Err("no request was delivered through the chaos".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline() -> FleetBaseline {
        FleetBaseline {
            schema: SCHEMA.into(),
            smoke: true,
            available_parallelism: 4,
            seed: 0xF1EE7,
            workers: 2,
            max_active: 4,
            tenants: 8,
            requests_per_tenant: 40,
            sick_probes: 10,
            net_plan: ChaosPlanRecord {
                warmup_ops: 6,
                partial_p: 0.08,
                latency_p: 0.02,
                latency_micros: 2000,
                corrupt_p: 0.01,
                reset_p: 0.005,
            },
            disk_plan: DiskPlanRecord {
                warmup_ops: 6,
                corrupt_p: 0.02,
                torn_p: 0.02,
                delay_p: 0.1,
                delay_micros: 1000,
            },
            issued: 330,
            delivered: 318,
            typed_failures: 12,
            dropped: 0,
            mismatched: 0,
            cross_tenant_leaks: 0,
            swaps: 4,
            swap_rollbacks: 1,
            warm_loads: 37,
            evictions: 33,
            tenants_quarantined: 1,
            quarantined_answers: 10,
            p50_micros: 410.0,
            p99_micros: 5200.0,
        }
    }

    #[test]
    fn valid_baseline_passes_validate_and_gate() {
        let b = baseline();
        b.validate().unwrap();
        b.gate().unwrap();
    }

    #[test]
    fn validation_catches_schema_and_accounting_drift() {
        let mut b = baseline();
        b.schema = "other/v0".into();
        assert!(b.validate().is_err());

        let mut b = baseline();
        b.issued = 999;
        assert!(b.validate().unwrap_err().contains("issued"));

        let mut b = baseline();
        b.delivered = 100; // 100 + 12 + 0 != 330
        assert!(b.validate().unwrap_err().contains("delivered"));

        let mut b = baseline();
        b.mismatched = 400; // exceeds delivered
        assert!(b.validate().unwrap_err().contains("exceed"));

        let mut b = baseline();
        b.disk_plan.torn_p = -0.1;
        assert!(b.validate().unwrap_err().contains("torn_p"));

        let mut b = baseline();
        b.p50_micros = 10_000.0; // above p99
        assert!(b.validate().unwrap_err().contains("percentiles"));
    }

    #[test]
    fn gate_enforces_isolation_and_swap_liveness() {
        let mut b = baseline();
        b.dropped = 1;
        assert!(b.gate().unwrap_err().contains("unaccounted"));

        let mut b = baseline();
        b.cross_tenant_leaks = 1;
        assert!(b.gate().unwrap_err().contains("leaked"));

        let mut b = baseline();
        b.mismatched = 2;
        assert!(b.gate().unwrap_err().contains("generation"));

        let mut b = baseline();
        b.tenants = 4;
        assert!(b.gate().unwrap_err().contains("fleet too small"));

        let mut b = baseline();
        b.swaps = 2;
        assert!(b.gate().unwrap_err().contains("swap"));

        let mut b = baseline();
        b.delivered = 0;
        b.typed_failures = 330;
        b.mismatched = 0;
        b.cross_tenant_leaks = 0;
        assert!(b.gate().unwrap_err().contains("delivered"));
    }

    #[test]
    fn json_round_trip() {
        let b = baseline();
        let json = serde_json::to_string_pretty(&b).expect("serialize");
        let back: FleetBaseline = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, b);
        back.validate().unwrap();
    }
}
