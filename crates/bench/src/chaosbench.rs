//! Chaos soak baseline behind the `chaosbench` binary.
//!
//! Drives a live [`cqm_serve::CqmServer`] through a seeded
//! `cqm_resilience::ChaosProxy` (torn chunks, delays, bit flips,
//! connection resets on a replayable schedule) with retrying clients and
//! records the exactly-once accounting as `BENCH_PR7.json`.
//!
//! # `BENCH_PR7.json` schema (`cqm-bench/chaosbase/v1`)
//!
//! ```json
//! {
//!   "schema": "cqm-bench/chaosbase/v1",
//!   "smoke": true,
//!   "available_parallelism": 8,
//!   "seed": 51966,
//!   "workers": 2,
//!   "clients": 6,
//!   "requests_per_client": 80,
//!   "plan": { "warmup_ops": 6, "partial_p": 0.12, "latency_p": 0.02,
//!             "latency_micros": 2000, "corrupt_p": 0.015, "reset_p": 0.008 },
//!   "issued": 480,
//!   "delivered": 472,
//!   "typed_failures": 8,
//!   "lost": 0,
//!   "duplicated": 0,
//!   "dedup_hits": 10,
//!   "degraded_served": 0,
//!   "retry_histogram": [463, 7, 2],
//!   "p50_micros": 310.0,
//!   "p99_micros": 4800.0
//! }
//! ```
//!
//! * `schema` — exact constant [`SCHEMA`]; bump on layout changes.
//! * `seed` — the chaos plan seed; the whole fault schedule replays from
//!   it (same seed, same workload → same schedule).
//! * `issued` / `delivered` / `typed_failures` / `lost` — the accounting
//!   identity: every issued request is either delivered (a classification,
//!   possibly after retries) or failed with a *typed* error; `lost` is the
//!   remainder and must be zero.
//! * `duplicated` — server-side `duplicate_executions`; the exactly-once
//!   invariant is precisely "this stays 0 under retries".
//! * `dedup_hits` — retried requests answered from the dedup window
//!   instead of being re-executed.
//! * `retry_histogram[i]` — delivered or typed-failed requests whose call
//!   took `i + 1` transport attempts.
//! * `p50_micros` / `p99_micros` — full round-trip latency per logical
//!   call as seen by the client, retries and backoff included.

use serde::{Deserialize, Serialize};

pub use crate::perf::available_cores;
pub use crate::servebench::percentile_micros;

/// Schema identifier written to and expected in `BENCH_PR7.json`.
pub const SCHEMA: &str = "cqm-bench/chaosbase/v1";

/// The chaos plan knobs, mirrored into the document so a baseline is
/// self-describing (probabilities as written into the `NetFaultPlan`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosPlanRecord {
    /// Fault-free operations at the start of every stream.
    pub warmup_ops: u64,
    /// Per-operation probability of a short read/write.
    pub partial_p: f64,
    /// Per-operation probability of an injected delay.
    pub latency_p: f64,
    /// Injected delay in microseconds when latency fires.
    pub latency_micros: u64,
    /// Per-operation probability of a flipped bit.
    pub corrupt_p: f64,
    /// Per-operation probability of a connection reset.
    pub reset_p: f64,
}

/// The complete `BENCH_PR7.json` document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosBaseline {
    /// Schema identifier ([`SCHEMA`]).
    pub schema: String,
    /// Whether smoke (CI-sized) load was used.
    pub smoke: bool,
    /// Cores visible to the process at measurement time.
    pub available_parallelism: usize,
    /// Chaos plan seed; the fault schedule is a pure function of it.
    pub seed: u64,
    /// Server-side worker threads.
    pub workers: usize,
    /// Concurrent retrying clients.
    pub clients: usize,
    /// Logical requests issued per client.
    pub requests_per_client: usize,
    /// The fault schedule parameters.
    pub plan: ChaosPlanRecord,
    /// Logical requests issued (`clients * requests_per_client`).
    pub issued: u64,
    /// Requests answered with a classification (after retries).
    pub delivered: u64,
    /// Requests that failed with a typed error (never a panic or hang).
    pub typed_failures: u64,
    /// Requests neither delivered nor typed-failed; must be zero.
    pub lost: u64,
    /// Server-side duplicate executions; must be zero (exactly-once).
    pub duplicated: u64,
    /// Retried requests answered from the dedup window.
    pub dedup_hits: u64,
    /// Failsafe last-good answers served (degraded, typed as such).
    pub degraded_served: u64,
    /// `retry_histogram[i]` = logical calls that took `i + 1` attempts.
    pub retry_histogram: Vec<u64>,
    /// Median round-trip latency per logical call, microseconds.
    pub p50_micros: f64,
    /// 99th-percentile round-trip latency per logical call, microseconds.
    pub p99_micros: f64,
}

impl ChaosBaseline {
    /// Validate the document against the schema contract: identifier,
    /// plan probabilities, internally consistent counters, positive
    /// finite ordered percentiles, and a histogram that sums to the
    /// accounted requests.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema != SCHEMA {
            return Err(format!("schema is {:?}, expected {SCHEMA:?}", self.schema));
        }
        if self.available_parallelism == 0 {
            return Err("available_parallelism must be >= 1".into());
        }
        if self.workers == 0 || self.clients == 0 || self.requests_per_client == 0 {
            return Err("workers, clients and requests_per_client must be >= 1".into());
        }
        for (name, p) in [
            ("partial_p", self.plan.partial_p),
            ("latency_p", self.plan.latency_p),
            ("corrupt_p", self.plan.corrupt_p),
            ("reset_p", self.plan.reset_p),
        ] {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(format!("plan.{name} {p} is not a probability in [0, 1]"));
            }
        }
        if self.issued != (self.clients * self.requests_per_client) as u64 {
            return Err(format!(
                "issued {} != clients {} * requests_per_client {}",
                self.issued, self.clients, self.requests_per_client
            ));
        }
        let accounted = self.delivered + self.typed_failures + self.lost;
        if accounted != self.issued {
            return Err(format!(
                "delivered {} + typed_failures {} + lost {} != issued {}",
                self.delivered, self.typed_failures, self.lost, self.issued
            ));
        }
        let histogram: u64 = self.retry_histogram.iter().sum();
        if histogram != self.delivered + self.typed_failures {
            return Err(format!(
                "retry histogram sums to {histogram}, expected delivered + typed_failures = {}",
                self.delivered + self.typed_failures
            ));
        }
        for (field, value) in [("p50_micros", self.p50_micros), ("p99_micros", self.p99_micros)] {
            if !(value > 0.0 && value.is_finite()) {
                return Err(format!("{field} {value} not positive finite"));
            }
        }
        if self.p50_micros > self.p99_micros {
            return Err(format!(
                "percentiles out of order (p50 {} / p99 {})",
                self.p50_micros, self.p99_micros
            ));
        }
        Ok(())
    }

    /// The CI gate — the exactly-once contract under chaos:
    ///
    /// * every issued request is accounted for (`lost == 0`);
    /// * nothing was executed twice (`duplicated == 0`);
    /// * the soak actually delivered answers (`delivered > 0`).
    ///
    /// No delivery-rate floor beyond "some": the plan decides how hostile
    /// the network is; the invariant is accounting, not availability.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the violation.
    pub fn gate(&self) -> Result<(), String> {
        if self.lost != 0 {
            return Err(format!("{} request(s) went unaccounted", self.lost));
        }
        if self.duplicated != 0 {
            return Err(format!(
                "{} duplicate execution(s): the exactly-once invariant is broken",
                self.duplicated
            ));
        }
        if self.delivered == 0 {
            return Err("no request was delivered through the chaos".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline() -> ChaosBaseline {
        ChaosBaseline {
            schema: SCHEMA.into(),
            smoke: true,
            available_parallelism: 4,
            seed: 0xCAFE,
            workers: 2,
            clients: 4,
            requests_per_client: 32,
            plan: ChaosPlanRecord {
                warmup_ops: 6,
                partial_p: 0.12,
                latency_p: 0.02,
                latency_micros: 2000,
                corrupt_p: 0.015,
                reset_p: 0.008,
            },
            issued: 128,
            delivered: 125,
            typed_failures: 3,
            lost: 0,
            duplicated: 0,
            dedup_hits: 5,
            degraded_served: 0,
            retry_histogram: vec![120, 6, 2],
            p50_micros: 400.0,
            p99_micros: 9000.0,
        }
    }

    #[test]
    fn valid_baseline_passes_validate_and_gate() {
        let b = baseline();
        b.validate().unwrap();
        b.gate().unwrap();
    }

    #[test]
    fn validation_catches_schema_and_accounting_drift() {
        let mut b = baseline();
        b.schema = "other/v0".into();
        assert!(b.validate().is_err());

        let mut b = baseline();
        b.delivered = 120; // 120 + 3 + 0 != 128
        assert!(b.validate().unwrap_err().contains("issued"));

        let mut b = baseline();
        b.retry_histogram = vec![100];
        assert!(b.validate().unwrap_err().contains("histogram"));

        let mut b = baseline();
        b.plan.reset_p = 1.5;
        assert!(b.validate().unwrap_err().contains("reset_p"));

        let mut b = baseline();
        b.p50_micros = 10_000.0; // above p99
        assert!(b.validate().unwrap_err().contains("percentiles"));
    }

    #[test]
    fn gate_enforces_the_exactly_once_contract() {
        let mut b = baseline();
        b.lost = 1;
        b.delivered = 124; // keep validate-style accounting coherent
        assert!(b.gate().unwrap_err().contains("unaccounted"));

        let mut b = baseline();
        b.duplicated = 2;
        assert!(b.gate().unwrap_err().contains("exactly-once"));

        let mut b = baseline();
        b.delivered = 0;
        b.typed_failures = 128;
        assert!(b.gate().unwrap_err().contains("delivered"));
    }

    #[test]
    fn json_round_trip() {
        let b = baseline();
        let json = serde_json::to_string_pretty(&b).expect("serialize");
        let back: ChaosBaseline = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, b);
        back.validate().unwrap();
    }
}
