//! End-to-end pipeline latency: raw samples → window → cues → classify →
//! quality → filter decision — the full per-window cost an appliance pays.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cqm_bench::paper_testbed;
use cqm_core::pipeline::CqmSystem;
use cqm_sensors::accel::AccelSample;
use cqm_sensors::cues::CueSet;
use cqm_sensors::window::Window;

fn bench_pipeline(c: &mut Criterion) {
    let testbed = paper_testbed(2007);
    let system = CqmSystem::from_trained(
        testbed.build.classifier.clone(),
        &testbed.build.trained_cqm,
    )
    .expect("composition");

    // A synthetic 50-sample window resembling writing.
    let window = Window {
        samples: (0..50)
            .map(|i| {
                let t = i as f64 * 0.01;
                AccelSample {
                    t,
                    axes: [
                        1.2 + 0.5 * (22.0 * t).sin(),
                        0.8 + 0.3 * (29.0 * t).sin(),
                        9.7 + 0.2 * (15.0 * t).sin(),
                    ],
                }
            })
            .collect(),
    };

    let mut group = c.benchmark_group("pipeline");
    group.bench_function("cue_extraction_stddev", |b| {
        b.iter(|| CueSet::StdDev.extract(black_box(&window)))
    });
    group.bench_function("cue_extraction_extended", |b| {
        b.iter(|| CueSet::Extended.extract(black_box(&window)))
    });
    group.bench_function("window_to_decision", |b| {
        b.iter(|| {
            let cues = CueSet::StdDev.extract(black_box(&window));
            system.classify_with_quality(&cues).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
