//! RT — micro-benchmarks backing the paper's real-time claim: evaluating
//! the TSK classifier and the quality FIS (plus normalization) per window.
//!
//! The paper's platform is a 2000s Particle node; on modern hardware these
//! evaluations run in well under a microsecond, i.e. orders of magnitude
//! inside the 0.25–0.5 s window budget of the sensing pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cqm_bench::paper_testbed;
use cqm_core::classifier::Classifier;

fn bench_fis_eval(c: &mut Criterion) {
    let testbed = paper_testbed(2007);
    let classifier = &testbed.build.classifier;
    let measure = &testbed.build.trained_cqm.measure;
    // A representative writing-band cue vector.
    let cues = vec![0.45, 0.3, 0.18];
    let class = classifier.classify(&cues).expect("classification");

    let mut group = c.benchmark_group("fis_eval");
    group.bench_function("classifier_eval", |b| {
        b.iter(|| classifier.classify(black_box(&cues)).unwrap())
    });
    group.bench_function("quality_raw_eval", |b| {
        b.iter(|| measure.raw(black_box(&cues), black_box(class)).unwrap())
    });
    group.bench_function("quality_measure_normalized", |b| {
        b.iter(|| measure.measure(black_box(&cues), black_box(class)).unwrap())
    });
    group.bench_function("normalize_l", |b| {
        b.iter(|| cqm_core::normalize::normalize(black_box(1.07)))
    });
    group.finish();
}

criterion_group!(benches, bench_fis_eval);
criterion_main!(benches);
