//! Clustering benchmarks: subtractive clustering is O(n²) in the number of
//! points (every point is a candidate center) — the practical cost of the
//! paper's structure-identification choice, versus grid-bound mountain
//! clustering and iterative FCM.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cqm_cluster::fcm::fuzzy_c_means;
use cqm_cluster::mountain::{MountainClustering, MountainParams};
use cqm_cluster::subtractive::{SubtractiveClustering, SubtractiveParams};

fn blob_data(n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            let which = i % 3;
            let t = i as f64 * 0.618;
            vec![
                which as f64 * 5.0 + t.sin() * 0.4,
                which as f64 * 3.0 + (t * 1.3).cos() * 0.4,
            ]
        })
        .collect()
}

fn bench_clustering(c: &mut Criterion) {
    let mut group = c.benchmark_group("clustering");
    for n in [100usize, 400, 1600] {
        let data = blob_data(n);
        group.bench_with_input(BenchmarkId::new("subtractive", n), &data, |b, data| {
            b.iter(|| {
                SubtractiveClustering::new(SubtractiveParams::default())
                    .cluster(data)
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("mountain_g10", n), &data, |b, data| {
            b.iter(|| {
                MountainClustering::new(MountainParams::default())
                    .cluster(data)
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("fcm_c3", n), &data, |b, data| {
            b.iter(|| fuzzy_c_means(data, 3, 2.0, 1).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_clustering);
criterion_main!(benches);
