//! Training-cost benchmarks: the automated construction pipeline (§2.2) at
//! its three stages — genfis, one LSE pass per backend, one hybrid epoch.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cqm_anfis::dataset::Dataset;
use cqm_anfis::genfis::{genfis, GenfisParams};
use cqm_anfis::hybrid::{train_hybrid, HybridConfig};
use cqm_anfis::lse::fit_consequents;
use cqm_math::linsolve::LstsqMethod;

fn sine_dataset(n: usize) -> Dataset {
    let mut d = Dataset::new(2);
    for i in 0..n {
        let x = i as f64 / n as f64;
        let y = (i as f64 * 0.37).sin().abs();
        d.push(vec![x, y], (x * std::f64::consts::TAU).sin() * y)
            .unwrap();
    }
    d
}

fn bench_training(c: &mut Criterion) {
    let mut group = c.benchmark_group("training");
    for n in [100usize, 400, 1600] {
        let data = sine_dataset(n);
        group.bench_with_input(BenchmarkId::new("genfis", n), &data, |b, data| {
            b.iter(|| genfis(data, &GenfisParams::with_radius(0.3)).unwrap())
        });
    }

    let data = sine_dataset(400);
    let base = genfis(&data, &GenfisParams::with_radius(0.3)).unwrap();
    for method in [
        LstsqMethod::Svd,
        LstsqMethod::Qr,
        LstsqMethod::NormalEquations,
    ] {
        group.bench_with_input(
            BenchmarkId::new("lse_pass", method.to_string()),
            &method,
            |b, &method| {
                b.iter_batched(
                    || base.clone(),
                    |mut fis| fit_consequents(&mut fis, &data, method).unwrap(),
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }

    group.bench_function("hybrid_epoch", |b| {
        let config = HybridConfig {
            epochs: 1,
            ..HybridConfig::default()
        };
        b.iter_batched(
            || base.clone(),
            |mut fis| train_hybrid(&mut fis, &data, None, &config).unwrap(),
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
