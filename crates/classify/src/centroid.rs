//! Nearest-centroid baseline classifier.
//!
//! Exists to demonstrate the CQM's black-box independence: the quality
//! add-on must work unchanged over a classifier with a completely different
//! decision geometry than the TSK FIS.

use cqm_core::classifier::{ClassId, Classifier};
use cqm_core::CqmError;
use serde::{Deserialize, Serialize};

use crate::dataset::ClassifiedDataset;
use crate::{ClassifyError, Result};

/// Classifier assigning each cue vector to the class with the nearest mean.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NearestCentroid {
    centroids: Vec<Vec<f64>>, // indexed by class
    present: Vec<bool>,
    dim: usize,
}

impl NearestCentroid {
    /// Fit per-class centroids.
    ///
    /// # Errors
    ///
    /// Returns [`ClassifyError::InvalidData`] for an empty dataset or fewer
    /// than two non-empty classes.
    pub fn train(data: &ClassifiedDataset) -> Result<Self> {
        if data.is_empty() {
            return Err(ClassifyError::InvalidData("empty dataset".into()));
        }
        let k = data.num_classes();
        let dim = data.dim();
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (cues, label) in data.iter() {
            counts[label.0] += 1;
            for (s, &x) in sums[label.0].iter_mut().zip(cues) {
                *s += x;
            }
        }
        let present: Vec<bool> = counts.iter().map(|&c| c > 0).collect();
        if present.iter().filter(|&&p| p).count() < 2 {
            return Err(ClassifyError::InvalidData(
                "need at least 2 non-empty classes".into(),
            ));
        }
        let centroids = sums
            .into_iter()
            .zip(&counts)
            .map(|(s, &c)| {
                if c > 0 {
                    s.into_iter().map(|v| v / c as f64).collect()
                } else {
                    vec![f64::INFINITY; dim]
                }
            })
            .collect();
        Ok(NearestCentroid {
            centroids,
            present,
            dim,
        })
    }

    /// The fitted centroid of a class (`None` for absent classes).
    pub fn centroid(&self, class: ClassId) -> Option<&[f64]> {
        if *self.present.get(class.0)? {
            Some(&self.centroids[class.0])
        } else {
            None
        }
    }
}

impl Classifier for NearestCentroid {
    fn classify(&self, cues: &[f64]) -> cqm_core::Result<ClassId> {
        self.check_cues(cues)?;
        let best = self
            .centroids
            .iter()
            .enumerate()
            .filter(|(i, _)| self.present[*i])
            .min_by(|(_, a), (_, b)| {
                let da: f64 = a.iter().zip(cues).map(|(c, x)| (c - x) * (c - x)).sum();
                let db: f64 = b.iter().zip(cues).map(|(c, x)| (c - x) * (c - x)).sum();
                da.total_cmp(&db)
            })
            .map(|(i, _)| ClassId(i))
            .ok_or_else(|| CqmError::InvalidInput("no trained centroids".into()))?;
        Ok(best)
    }

    fn cue_dim(&self) -> usize {
        self.dim
    }

    fn num_classes(&self) -> usize {
        self.centroids.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corner_data() -> ClassifiedDataset {
        let mut d = ClassifiedDataset::new(2, 2);
        for i in 0..10 {
            let e = i as f64 * 0.01;
            d.push(vec![0.0 + e, 0.0], ClassId(0)).unwrap();
            d.push(vec![1.0 - e, 1.0], ClassId(1)).unwrap();
        }
        d
    }

    #[test]
    fn classifies_by_nearest_mean() {
        let clf = NearestCentroid::train(&corner_data()).unwrap();
        assert_eq!(clf.classify(&[0.1, 0.1]).unwrap(), ClassId(0));
        assert_eq!(clf.classify(&[0.9, 0.9]).unwrap(), ClassId(1));
        assert_eq!(clf.cue_dim(), 2);
        assert_eq!(clf.num_classes(), 2);
    }

    #[test]
    fn centroids_are_class_means() {
        let clf = NearestCentroid::train(&corner_data()).unwrap();
        let c0 = clf.centroid(ClassId(0)).unwrap();
        assert!((c0[0] - 0.045).abs() < 1e-12);
        assert_eq!(c0[1], 0.0);
    }

    #[test]
    fn absent_class_never_predicted() {
        let mut d = ClassifiedDataset::new(1, 3);
        for i in 0..10 {
            d.push(vec![i as f64], ClassId(0)).unwrap();
            d.push(vec![i as f64 + 100.0], ClassId(2)).unwrap();
        }
        let clf = NearestCentroid::train(&d).unwrap();
        assert!(clf.centroid(ClassId(1)).is_none());
        for x in [0.0, 50.0, 150.0] {
            assert_ne!(clf.classify(&[x]).unwrap(), ClassId(1));
        }
    }

    #[test]
    fn validation() {
        assert!(NearestCentroid::train(&ClassifiedDataset::new(1, 2)).is_err());
        let mut single = ClassifiedDataset::new(1, 2);
        single.push(vec![0.0], ClassId(0)).unwrap();
        assert!(NearestCentroid::train(&single).is_err());
        let clf = NearestCentroid::train(&corner_data()).unwrap();
        assert!(clf.classify(&[0.1]).is_err());
        assert!(clf.classify(&[f64::NAN, 0.0]).is_err());
    }
}
