//! k-nearest-neighbours baseline classifier.

use cqm_core::classifier::{ClassId, Classifier};
use serde::{Deserialize, Serialize};

use crate::dataset::ClassifiedDataset;
use crate::{ClassifyError, Result};

/// Plain k-NN with majority vote (ties broken by the nearest member).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KnnClassifier {
    k: usize,
    dim: usize,
    num_classes: usize,
    points: Vec<Vec<f64>>,
    labels: Vec<ClassId>,
}

impl KnnClassifier {
    /// Store the training set.
    ///
    /// # Errors
    ///
    /// Returns [`ClassifyError::InvalidData`] if `k == 0`, the dataset is
    /// empty, or `k` exceeds the dataset size.
    pub fn train(data: &ClassifiedDataset, k: usize) -> Result<Self> {
        if k == 0 {
            return Err(ClassifyError::InvalidData("k must be >= 1".into()));
        }
        if data.is_empty() {
            return Err(ClassifyError::InvalidData("empty dataset".into()));
        }
        if k > data.len() {
            return Err(ClassifyError::InvalidData(format!(
                "k = {k} exceeds dataset size {}",
                data.len()
            )));
        }
        Ok(KnnClassifier {
            k,
            dim: data.dim(),
            num_classes: data.num_classes(),
            points: data.cues().to_vec(),
            labels: data.labels().to_vec(),
        })
    }

    /// The `k` parameter.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl Classifier for KnnClassifier {
    fn classify(&self, cues: &[f64]) -> cqm_core::Result<ClassId> {
        self.check_cues(cues)?;
        // Partial selection of the k nearest by distance.
        let mut dist: Vec<(f64, ClassId)> = self
            .points
            .iter()
            .zip(&self.labels)
            .map(|(p, &l)| {
                let d: f64 = p.iter().zip(cues).map(|(a, b)| (a - b) * (a - b)).sum();
                (d, l)
            })
            .collect();
        dist.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut votes = vec![0usize; self.num_classes];
        for (_, l) in dist.iter().take(self.k) {
            votes[l.0] += 1;
        }
        // lint: allow(PANIC_IN_LIB) -- train() rejects an empty dataset, so num_classes >= 1 and votes is non-empty
        let max_votes = *votes.iter().max().expect("non-empty votes");
        // Tie break: nearest neighbour among the tied classes.
        let winner = dist
            .iter()
            .take(self.k)
            .find(|(_, l)| votes[l.0] == max_votes)
            .map(|(_, l)| *l)
            // lint: allow(PANIC_IN_LIB) -- k >= 1 and a non-empty training set are enforced in train(), so a tied class has a neighbour
            .expect("at least one neighbour");
        Ok(winner)
    }

    fn cue_dim(&self) -> usize {
        self.dim
    }

    fn num_classes(&self) -> usize {
        self.num_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_data() -> ClassifiedDataset {
        let mut d = ClassifiedDataset::new(1, 2);
        for i in 0..20 {
            let x = i as f64;
            d.push(vec![x], ClassId(usize::from(x >= 10.0))).unwrap();
        }
        d
    }

    #[test]
    fn majority_vote() {
        let clf = KnnClassifier::train(&line_data(), 3).unwrap();
        assert_eq!(clf.classify(&[2.0]).unwrap(), ClassId(0));
        assert_eq!(clf.classify(&[17.0]).unwrap(), ClassId(1));
        assert_eq!(clf.k(), 3);
    }

    #[test]
    fn k_one_is_nearest_neighbour() {
        let clf = KnnClassifier::train(&line_data(), 1).unwrap();
        assert_eq!(clf.classify(&[9.4]).unwrap(), ClassId(0));
        assert_eq!(clf.classify(&[9.6]).unwrap(), ClassId(1));
    }

    #[test]
    fn tie_breaks_to_nearest() {
        // k = 2 across the boundary: one vote each, nearest wins.
        let clf = KnnClassifier::train(&line_data(), 2).unwrap();
        assert_eq!(clf.classify(&[9.4]).unwrap(), ClassId(0));
        assert_eq!(clf.classify(&[9.6]).unwrap(), ClassId(1));
    }

    #[test]
    fn validation() {
        assert!(KnnClassifier::train(&line_data(), 0).is_err());
        assert!(KnnClassifier::train(&line_data(), 21).is_err());
        assert!(KnnClassifier::train(&ClassifiedDataset::new(1, 2), 1).is_err());
        let clf = KnnClassifier::train(&line_data(), 1).unwrap();
        assert!(clf.classify(&[1.0, 2.0]).is_err());
        assert!(clf.classify(&[f64::INFINITY]).is_err());
    }

    #[test]
    fn contract_dimensions() {
        let clf = KnnClassifier::train(&line_data(), 3).unwrap();
        assert_eq!(clf.cue_dim(), 1);
        assert_eq!(clf.num_classes(), 2);
    }
}
