//! # cqm-classify — context classifiers over sensor cues
//!
//! The paper's AwarePen uses a TSK-FIS for context classification: "a
//! TSK-FIS is used that maps standard deviations from three acceleration
//! sensor outputs onto context classes" (§3.1). [`tsk::FisClassifier`]
//! reproduces that design, trained with the same genfis + ANFIS machinery
//! as the quality system.
//!
//! Because the CQM treats the classifier as a black box, this crate also
//! ships two deliberately different baselines —
//! [`centroid::NearestCentroid`] and [`knn::KnnClassifier`] — used by the
//! integration tests to demonstrate the add-on's classifier independence
//! (§2: "applicable to all recognition algorithms").
//!
//! ```
//! use cqm_classify::dataset::ClassifiedDataset;
//! use cqm_classify::tsk::FisClassifier;
//! use cqm_core::classifier::{ClassId, Classifier};
//!
//! // Tiny 1-D, 2-class problem.
//! let mut data = ClassifiedDataset::new(1, 2);
//! for i in 0..40 {
//!     let x = i as f64 / 39.0;
//!     data.push(vec![x], ClassId(usize::from(x > 0.5))).unwrap();
//! }
//! let clf = FisClassifier::train(&data, &Default::default()).unwrap();
//! assert_eq!(clf.classify(&[0.1]).unwrap(), ClassId(0));
//! assert_eq!(clf.classify(&[0.9]).unwrap(), ClassId(1));
//! ```

#![forbid(unsafe_code)]

pub mod centroid;
pub mod dataset;
pub mod knn;
pub mod tsk;

pub use centroid::NearestCentroid;
pub use dataset::ClassifiedDataset;
pub use knn::KnnClassifier;
pub use tsk::{ClassifierKernel, FisClassifier};

/// Errors produced by classifier construction and training.
#[derive(Debug, Clone, PartialEq)]
pub enum ClassifyError {
    /// Propagated from ANFIS training.
    Anfis(cqm_anfis::AnfisError),
    /// Propagated from the CQM core (classifier contract violations).
    Core(cqm_core::CqmError),
    /// Training data was empty or inconsistent.
    InvalidData(String),
}

impl std::fmt::Display for ClassifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClassifyError::Anfis(e) => write!(f, "anfis error: {e}"),
            ClassifyError::Core(e) => write!(f, "core error: {e}"),
            ClassifyError::InvalidData(msg) => write!(f, "invalid data: {msg}"),
        }
    }
}

impl std::error::Error for ClassifyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClassifyError::Anfis(e) => Some(e),
            ClassifyError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cqm_anfis::AnfisError> for ClassifyError {
    fn from(e: cqm_anfis::AnfisError) -> Self {
        ClassifyError::Anfis(e)
    }
}

impl From<cqm_core::CqmError> for ClassifyError {
    fn from(e: cqm_core::CqmError) -> Self {
        ClassifyError::Core(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ClassifyError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_conversions() {
        let e: ClassifyError = cqm_anfis::AnfisError::InvalidData("x".into()).into();
        assert!(e.to_string().contains("anfis"));
        assert!(std::error::Error::source(&e).is_some());
        let e: ClassifyError = cqm_core::CqmError::InvalidInput("y".into()).into();
        assert!(matches!(e, ClassifyError::Core(_)));
    }
}
