//! Labeled classification dataset `(cue vector, class)`.

use cqm_core::classifier::ClassId;
use cqm_sensors::node::LabeledCues;

use crate::{ClassifyError, Result};

/// Labeled cue vectors for classifier training.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassifiedDataset {
    dim: usize,
    num_classes: usize,
    cues: Vec<Vec<f64>>,
    labels: Vec<ClassId>,
}

impl ClassifiedDataset {
    /// Empty dataset for `dim`-dimensional cues over `num_classes` classes.
    pub fn new(dim: usize, num_classes: usize) -> Self {
        ClassifiedDataset {
            dim,
            num_classes,
            cues: Vec::new(),
            labels: Vec::new(),
        }
    }

    /// Build from the sensor node's labeled windows (the AwarePen corpus).
    ///
    /// # Errors
    ///
    /// Returns [`ClassifyError::InvalidData`] on an empty corpus.
    pub fn from_labeled_cues(corpus: &[LabeledCues]) -> Result<Self> {
        let first = corpus
            .first()
            .ok_or_else(|| ClassifyError::InvalidData("empty corpus".into()))?;
        let mut ds = ClassifiedDataset::new(first.cues.len(), cqm_sensors::Context::ALL.len());
        for s in corpus {
            ds.push(s.cues.clone(), ClassId(s.truth.index()))?;
        }
        Ok(ds)
    }

    /// Append one sample.
    ///
    /// # Errors
    ///
    /// Returns [`ClassifyError::InvalidData`] on dimension mismatch,
    /// non-finite cues or an out-of-range class.
    pub fn push(&mut self, cues: Vec<f64>, label: ClassId) -> Result<()> {
        if cues.len() != self.dim {
            return Err(ClassifyError::InvalidData(format!(
                "cue vector has {} entries, dataset expects {}",
                cues.len(),
                self.dim
            )));
        }
        if cues.iter().any(|x| !x.is_finite()) {
            return Err(ClassifyError::InvalidData(
                "non-finite cue value".into(),
            ));
        }
        if label.0 >= self.num_classes {
            return Err(ClassifyError::InvalidData(format!(
                "class {} out of range (k = {})",
                label.0, self.num_classes
            )));
        }
        self.cues.push(cues);
        self.labels.push(label);
        Ok(())
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.cues.len()
    }

    /// Whether the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.cues.is_empty()
    }

    /// Cue dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Cue vectors.
    pub fn cues(&self) -> &[Vec<f64>] {
        &self.cues
    }

    /// Labels.
    pub fn labels(&self) -> &[ClassId] {
        &self.labels
    }

    /// Iterate `(cues, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[f64], ClassId)> + '_ {
        self.cues
            .iter()
            .map(Vec::as_slice)
            .zip(self.labels.iter().copied())
    }

    /// Per-class sample counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes];
        for l in &self.labels {
            counts[l.0] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_validates() {
        let mut d = ClassifiedDataset::new(2, 3);
        assert!(d.push(vec![1.0], ClassId(0)).is_err());
        assert!(d.push(vec![1.0, f64::NAN], ClassId(0)).is_err());
        assert!(d.push(vec![1.0, 2.0], ClassId(3)).is_err());
        assert!(d.push(vec![1.0, 2.0], ClassId(2)).is_ok());
        assert_eq!(d.len(), 1);
        assert!(!d.is_empty());
    }

    #[test]
    fn class_counts() {
        let mut d = ClassifiedDataset::new(1, 2);
        d.push(vec![0.0], ClassId(0)).unwrap();
        d.push(vec![1.0], ClassId(1)).unwrap();
        d.push(vec![2.0], ClassId(1)).unwrap();
        assert_eq!(d.class_counts(), vec![1, 2]);
    }

    #[test]
    fn from_labeled_cues_maps_contexts() {
        use cqm_sensors::node::LabeledCues;
        use cqm_sensors::Context;
        let corpus = vec![
            LabeledCues {
                cues: vec![0.1, 0.2, 0.3],
                truth: Context::Writing,
                t: 0.0,
                is_transition: false,
            },
            LabeledCues {
                cues: vec![0.4, 0.5, 0.6],
                truth: Context::Playing,
                t: 1.0,
                is_transition: true,
            },
        ];
        let d = ClassifiedDataset::from_labeled_cues(&corpus).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.dim(), 3);
        assert_eq!(d.num_classes(), 3);
        assert_eq!(d.labels()[0], ClassId(Context::Writing.index()));
        assert!(ClassifiedDataset::from_labeled_cues(&[]).is_err());
    }

    #[test]
    fn iter_pairs() {
        let mut d = ClassifiedDataset::new(1, 2);
        d.push(vec![0.5], ClassId(1)).unwrap();
        let pairs: Vec<_> = d.iter().collect();
        assert_eq!(pairs, vec![(&[0.5][..], ClassId(1))]);
    }
}
