//! The AwarePen's context classifier: a TSK-FIS mapping cue vectors onto a
//! continuous class axis, rounded to the nearest class index (§3.1).
//!
//! Training reuses the automated construction of `cqm-anfis`: subtractive
//! clustering for the rules, least squares for the consequents, optional
//! hybrid learning — exactly the machinery the paper applies to its quality
//! system, here applied to the classification problem itself.

use cqm_anfis::dataset::Dataset;
use cqm_anfis::genfis::{genfis, GenfisParams};
use cqm_anfis::hybrid::{train_hybrid, HybridConfig};
use cqm_core::classifier::{ClassId, Classifier};
use cqm_core::CqmError;
use cqm_fuzzy::{EvalPrecision, TskFis, TskKernel, TskScratch};
use serde::{Deserialize, Serialize};

use crate::dataset::ClassifiedDataset;
use crate::{ClassifyError, Result};

/// Training options for the FIS classifier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FisClassifierConfig {
    /// Structure identification and initial consequent fit.
    pub genfis: GenfisParams,
    /// Hybrid learning; `None` keeps the pure genfis solution.
    pub hybrid: Option<HybridConfig>,
}

impl Default for FisClassifierConfig {
    fn default() -> Self {
        FisClassifierConfig {
            genfis: GenfisParams::with_radius(0.5),
            hybrid: Some(HybridConfig {
                epochs: 15,
                ..HybridConfig::default()
            }),
        }
    }
}

/// TSK-FIS context classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FisClassifier {
    fis: TskFis,
    num_classes: usize,
}

impl FisClassifier {
    /// Train on labeled data.
    ///
    /// # Errors
    ///
    /// * [`ClassifyError::InvalidData`] on an empty dataset or fewer than
    ///   two distinct classes.
    /// * [`ClassifyError::Anfis`] from the construction pipeline.
    pub fn train(data: &ClassifiedDataset, config: &FisClassifierConfig) -> Result<Self> {
        if data.is_empty() {
            return Err(ClassifyError::InvalidData("empty dataset".into()));
        }
        let distinct = data.class_counts().iter().filter(|&&c| c > 0).count();
        if distinct < 2 {
            return Err(ClassifyError::InvalidData(format!(
                "need at least 2 distinct classes, got {distinct}"
            )));
        }
        let mut train = Dataset::new(data.dim());
        for (cues, label) in data.iter() {
            train
                .push(cues.to_vec(), label.as_f64())
                .map_err(ClassifyError::Anfis)?;
        }
        let mut fis = genfis(&train, &config.genfis)?;
        if let Some(hybrid) = &config.hybrid {
            train_hybrid(&mut fis, &train, None, hybrid)?;
        }
        Ok(FisClassifier {
            fis,
            num_classes: data.num_classes(),
        })
    }

    /// Wrap a pre-trained FIS (e.g. deserialized).
    ///
    /// # Errors
    ///
    /// Returns [`ClassifyError::InvalidData`] if `num_classes < 2`.
    pub fn from_fis(fis: TskFis, num_classes: usize) -> Result<Self> {
        if num_classes < 2 {
            return Err(ClassifyError::InvalidData(format!(
                "num_classes {num_classes} must be >= 2"
            )));
        }
        Ok(FisClassifier { fis, num_classes })
    }

    /// The underlying FIS (for verbalization/inspection).
    pub fn fis(&self) -> &TskFis {
        &self.fis
    }

    /// Continuous (un-rounded) class-axis output, when the input is covered
    /// by at least one rule.
    ///
    /// # Errors
    ///
    /// Returns [`CqmError`]-style failures via the classifier contract.
    pub fn continuous_output(&self, cues: &[f64]) -> Result<f64> {
        self.check_cues(cues).map_err(ClassifyError::Core)?;
        self.fis
            .eval(cues)
            .map_err(|e| ClassifyError::Core(CqmError::Fuzzy(e)))
    }

    /// Build the allocation-free runtime evaluator for this classifier
    /// (see [`ClassifierKernel`]). The kernel snapshots the FIS; retraining
    /// requires rebuilding it.
    pub fn kernel(&self) -> ClassifierKernel {
        ClassifierKernel {
            kernel: self.fis.kernel(),
            num_classes: self.num_classes,
        }
    }

    /// Accuracy over a labeled dataset (uncovered samples count as wrong).
    pub fn accuracy(&self, data: &ClassifiedDataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let correct = data
            .iter()
            .filter(|(cues, label)| self.classify(cues).map(|c| c == *label).unwrap_or(false))
            .count();
        correct as f64 / data.len() as f64
    }
}

impl Classifier for FisClassifier {
    fn classify(&self, cues: &[f64]) -> cqm_core::Result<ClassId> {
        self.check_cues(cues)?;
        let raw = self.fis.eval(cues).map_err(CqmError::Fuzzy)?;
        let idx = raw.round().clamp(0.0, (self.num_classes - 1) as f64) as usize;
        Ok(ClassId(idx))
    }

    fn cue_dim(&self) -> usize {
        self.fis.input_dim()
    }

    fn num_classes(&self) -> usize {
        self.num_classes
    }
}

/// Flat struct-of-arrays evaluator of a [`FisClassifier`]: the
/// [`TskKernel`] of the class-axis FIS plus the rounding/clamping step of
/// [`FisClassifier::classify`]. With a caller-provided [`TskScratch`],
/// [`ClassifierKernel::classify_into`] classifies with zero steady-state
/// heap allocations, and [`ClassifierKernel::classify_batch_into`] sweeps a
/// request-sized batch through [`TskKernel::eval_batch_into`]. Results are
/// bit-identical to the plain [`Classifier::classify`] path.
#[derive(Debug, Clone)]
pub struct ClassifierKernel {
    kernel: TskKernel,
    num_classes: usize,
}

impl ClassifierKernel {
    /// Expected cue dimensionality `n`.
    pub fn cue_dim(&self) -> usize {
        self.kernel.input_dim()
    }

    /// Number of context classes the classifier can emit.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    fn check_cues(&self, cues: &[f64]) -> cqm_core::Result<()> {
        if cues.len() != self.kernel.input_dim() {
            return Err(CqmError::InvalidInput(format!(
                "cue vector has {} entries, classifier expects {}",
                cues.len(),
                self.kernel.input_dim()
            )));
        }
        if cues.iter().any(|x| !x.is_finite()) {
            return Err(CqmError::InvalidInput(
                "cue vector contains non-finite values".into(),
            ));
        }
        Ok(())
    }

    fn round_class(&self, raw: f64) -> ClassId {
        ClassId(raw.round().clamp(0.0, (self.num_classes - 1) as f64) as usize)
    }

    /// Allocation-free [`Classifier::classify`] — same validation, same
    /// rounding, bit-identical class.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Classifier::classify`] on [`FisClassifier`].
    pub fn classify_into(
        &self,
        cues: &[f64],
        scratch: &mut TskScratch,
    ) -> cqm_core::Result<ClassId> {
        self.classify_into_prec(cues, EvalPrecision::Exact, scratch)
    }

    /// [`ClassifierKernel::classify_into`] under an explicit precision
    /// contract (see [`EvalPrecision`]): the default is bit-identical to
    /// [`Classifier::classify`]; [`EvalPrecision::BoundedUlp`] evaluates
    /// the underlying FIS through the bounded fast-`exp` path before the
    /// same rounding.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Classifier::classify`] on [`FisClassifier`].
    pub fn classify_into_prec(
        &self,
        cues: &[f64],
        precision: EvalPrecision,
        scratch: &mut TskScratch,
    ) -> cqm_core::Result<ClassId> {
        self.check_cues(cues)?;
        let raw = self
            .kernel
            .eval_into_prec(cues, precision, scratch)
            .map_err(CqmError::Fuzzy)?;
        Ok(self.round_class(raw))
    }

    /// A [`TskScratch`] pre-sized for this classifier's kernel, so even
    /// the first classification through it allocates nothing.
    pub fn scratch(&self) -> TskScratch {
        self.kernel.scratch()
    }

    /// Classify a request-sized batch in one kernel sweep. `out` is cleared
    /// and refilled with one class per row; the sweep stops at the first
    /// failing row (matching [`CqmSystem`-style first-error semantics]) and
    /// allocates nothing beyond `out`'s growth.
    ///
    /// [`CqmSystem`-style first-error semantics]: cqm_core::pipeline::CqmSystem::classify_batch
    ///
    /// # Errors
    ///
    /// Same conditions as [`ClassifierKernel::classify_into`] for any row;
    /// `out` holds the classes of the rows preceding the failure.
    pub fn classify_batch_into(
        &self,
        rows: &[Vec<f64>],
        scratch: &mut TskScratch,
        raw_buf: &mut Vec<f64>,
        out: &mut Vec<ClassId>,
    ) -> cqm_core::Result<()> {
        self.classify_batch_into_prec(rows, EvalPrecision::Exact, scratch, raw_buf, out)
    }

    /// [`ClassifierKernel::classify_batch_into`] under an explicit
    /// precision contract. The blocked rule-major sweep underneath makes
    /// both precisions batch-position independent: each row's class is
    /// bit-identical to a row-wise [`ClassifierKernel::classify_into_prec`]
    /// at the same precision.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ClassifierKernel::classify_into`] for any row;
    /// `out` holds the classes of the rows preceding the failure.
    pub fn classify_batch_into_prec(
        &self,
        rows: &[Vec<f64>],
        precision: EvalPrecision,
        scratch: &mut TskScratch,
        raw_buf: &mut Vec<f64>,
        out: &mut Vec<ClassId>,
    ) -> cqm_core::Result<()> {
        out.clear();
        for row in rows {
            self.check_cues(row)?;
        }
        self.kernel
            .eval_batch_into_prec(rows, precision, scratch, raw_buf)
            .map_err(CqmError::Fuzzy)?;
        out.reserve_exact(raw_buf.len());
        for &raw in raw_buf.iter() {
            out.push(self.round_class(raw));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_band_data(n: usize) -> ClassifiedDataset {
        // 1-D cue with classes 0/1/2 in bands [0, 1), [1, 2), [2, 3).
        let mut d = ClassifiedDataset::new(1, 3);
        for i in 0..n {
            let x = 3.0 * i as f64 / n as f64;
            d.push(vec![x], ClassId((x.floor() as usize).min(2))).unwrap();
        }
        d
    }

    #[test]
    fn learns_banded_classes() {
        let data = three_band_data(150);
        let clf = FisClassifier::train(&data, &FisClassifierConfig::default()).unwrap();
        assert_eq!(clf.classify(&[0.3]).unwrap(), ClassId(0));
        assert_eq!(clf.classify(&[1.5]).unwrap(), ClassId(1));
        assert_eq!(clf.classify(&[2.7]).unwrap(), ClassId(2));
        assert!(clf.accuracy(&data) > 0.9, "accuracy {}", clf.accuracy(&data));
    }

    #[test]
    fn continuous_output_near_class_indices() {
        let data = three_band_data(150);
        let clf = FisClassifier::train(&data, &FisClassifierConfig::default()).unwrap();
        let y = clf.continuous_output(&[1.5]).unwrap();
        assert!((y - 1.0).abs() < 0.45, "continuous output {y}");
    }

    #[test]
    fn rounding_clamps_to_valid_range() {
        let data = three_band_data(100);
        let clf = FisClassifier::train(&data, &FisClassifierConfig::default()).unwrap();
        // Slightly outside the training range still yields a valid class.
        let c = clf.classify(&[3.4]).unwrap();
        assert!(c.0 < 3);
    }

    #[test]
    fn training_validation() {
        let empty = ClassifiedDataset::new(1, 2);
        assert!(FisClassifier::train(&empty, &FisClassifierConfig::default()).is_err());
        let mut single = ClassifiedDataset::new(1, 2);
        for i in 0..20 {
            single.push(vec![i as f64], ClassId(0)).unwrap();
        }
        assert!(FisClassifier::train(&single, &FisClassifierConfig::default()).is_err());
        assert!(FisClassifier::from_fis(
            FisClassifier::train(&three_band_data(60), &FisClassifierConfig::default())
                .unwrap()
                .fis()
                .clone(),
            1
        )
        .is_err());
    }

    #[test]
    fn classifier_contract() {
        let data = three_band_data(100);
        let clf = FisClassifier::train(&data, &FisClassifierConfig::default()).unwrap();
        assert_eq!(clf.cue_dim(), 1);
        assert_eq!(Classifier::num_classes(&clf), 3);
        assert!(clf.classify(&[0.5, 0.5]).is_err());
        assert!(clf.classify(&[f64::NAN]).is_err());
    }

    #[test]
    fn no_hybrid_config_works() {
        let data = three_band_data(120);
        let config = FisClassifierConfig {
            hybrid: None,
            ..FisClassifierConfig::default()
        };
        let clf = FisClassifier::train(&data, &config).unwrap();
        assert!(clf.accuracy(&data) > 0.8);
    }

    #[test]
    fn kernel_classify_bit_identical_to_plain_path() {
        let data = three_band_data(150);
        let clf = FisClassifier::train(&data, &FisClassifierConfig::default()).unwrap();
        let kernel = clf.kernel();
        assert_eq!(kernel.cue_dim(), clf.cue_dim());
        assert_eq!(kernel.num_classes(), Classifier::num_classes(&clf));
        let mut scratch = TskScratch::new();
        for i in 0..120 {
            let cues = [3.2 * i as f64 / 120.0 - 0.1];
            let plain = clf.classify(&cues).unwrap();
            let fast = kernel.classify_into(&cues, &mut scratch).unwrap();
            assert_eq!(plain, fast, "cue {:?}", cues);
        }
        // Error parity: dimension mismatch and non-finite cues.
        assert!(kernel.classify_into(&[0.5, 0.5], &mut scratch).is_err());
        assert!(kernel.classify_into(&[f64::NAN], &mut scratch).is_err());
    }

    #[test]
    fn kernel_batch_matches_row_wise() {
        let data = three_band_data(150);
        let clf = FisClassifier::train(&data, &FisClassifierConfig::default()).unwrap();
        let kernel = clf.kernel();
        let mut scratch = TskScratch::new();
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![3.0 * i as f64 / 40.0]).collect();
        let mut raw_buf = Vec::new();
        let mut classes = Vec::new();
        kernel
            .classify_batch_into(&rows, &mut scratch, &mut raw_buf, &mut classes)
            .unwrap();
        assert_eq!(classes.len(), rows.len());
        for (row, &class) in rows.iter().zip(classes.iter()) {
            assert_eq!(class, clf.classify(row).unwrap());
        }
        // A bad row anywhere rejects the batch before any kernel sweep.
        let mut bad = rows.clone();
        bad[7] = vec![f64::INFINITY];
        assert!(kernel
            .classify_batch_into(&bad, &mut scratch, &mut raw_buf, &mut classes)
            .is_err());
        assert!(classes.is_empty());
    }

    #[test]
    fn kernel_bounded_precision_batch_matches_row_wise() {
        let data = three_band_data(150);
        let clf = FisClassifier::train(&data, &FisClassifierConfig::default()).unwrap();
        let kernel = clf.kernel();
        let mut scratch = kernel.scratch();
        let rows: Vec<Vec<f64>> = (0..41).map(|i| vec![3.0 * i as f64 / 41.0]).collect();
        let mut raw_buf = Vec::new();
        let mut classes = Vec::new();
        kernel
            .classify_batch_into_prec(
                &rows,
                EvalPrecision::BoundedUlp,
                &mut scratch,
                &mut raw_buf,
                &mut classes,
            )
            .unwrap();
        assert_eq!(classes.len(), rows.len());
        let mut row_scratch = TskScratch::new();
        for (row, &class) in rows.iter().zip(classes.iter()) {
            let want = kernel
                .classify_into_prec(row, EvalPrecision::BoundedUlp, &mut row_scratch)
                .unwrap();
            assert_eq!(class, want, "row {row:?}");
            // On this well-separated testbed a sub-ULP change in the raw
            // output never crosses a rounding boundary: bounded and exact
            // classes agree everywhere.
            assert_eq!(class, clf.classify(row).unwrap(), "row {row:?}");
        }
    }

    #[test]
    fn serde_round_trip() {
        let data = three_band_data(90);
        let clf = FisClassifier::train(&data, &FisClassifierConfig::default()).unwrap();
        let json = serde_json::to_string(&clf).unwrap();
        let back: FisClassifier = serde_json::from_str(&json).unwrap();
        assert_eq!(back.classify(&[1.5]).unwrap(), clf.classify(&[1.5]).unwrap());
    }
}
