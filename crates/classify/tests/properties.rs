//! Property-based tests for the classifier implementations.

use cqm_classify::dataset::ClassifiedDataset;
use cqm_classify::{FisClassifier, KnnClassifier, NearestCentroid};
use cqm_core::classifier::{ClassId, Classifier};
use proptest::prelude::*;

/// Two well-separated 1-D classes at arbitrary positions.
fn separated_dataset() -> impl Strategy<Value = (ClassifiedDataset, f64, f64)> {
    (-50.0f64..50.0, 5.0f64..40.0, 6usize..25).prop_map(|(center, gap, n)| {
        let mut d = ClassifiedDataset::new(1, 2);
        for i in 0..n {
            let jitter = (i as f64 * 0.7).sin();
            d.push(vec![center - gap + jitter], ClassId(0)).unwrap();
            d.push(vec![center + gap + jitter], ClassId(1)).unwrap();
        }
        (d, center - gap, center + gap)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn knn_and_centroid_agree_on_separated_classes((data, lo, hi) in separated_dataset()) {
        let knn = KnnClassifier::train(&data, 3).unwrap();
        let centroid = NearestCentroid::train(&data).unwrap();
        for &x in &[lo, hi, lo - 1.0, hi + 1.0] {
            prop_assert_eq!(
                knn.classify(&[x]).unwrap(),
                centroid.classify(&[x]).unwrap(),
                "disagreement at {}", x
            );
        }
    }

    #[test]
    fn classifiers_emit_valid_classes((data, lo, hi) in separated_dataset()) {
        let fis = FisClassifier::train(&data, &Default::default()).unwrap();
        let probes = [lo, hi, (lo + hi) / 2.0, lo - 2.0, hi + 2.0];
        for &x in &probes {
            if let Ok(c) = fis.classify(&[x]) {
                prop_assert!(c.0 < data.num_classes());
            }
        }
    }

    #[test]
    fn fis_classifier_perfect_on_separated_training_set((data, _, _) in separated_dataset()) {
        let fis = FisClassifier::train(&data, &Default::default()).unwrap();
        prop_assert!(fis.accuracy(&data) > 0.95, "accuracy {}", fis.accuracy(&data));
    }

    #[test]
    fn knn_train_accuracy_perfect_at_k1((data, _, _) in separated_dataset()) {
        // 1-NN memorizes its training set exactly.
        let knn = KnnClassifier::train(&data, 1).unwrap();
        for (cues, label) in data.iter() {
            prop_assert_eq!(knn.classify(cues).unwrap(), label);
        }
    }
}
