//! Property-based tests for ANFIS construction and training.

use cqm_anfis::backprop::premise_gradients;
use cqm_anfis::dataset::Dataset;
use cqm_anfis::genfis::{genfis, GenfisParams};
use cqm_anfis::lse::{design_matrix, extract_theta, fit_consequents};
use cqm_anfis::rmse;
use cqm_math::linsolve::LstsqMethod;
use proptest::prelude::*;

/// A dataset sampled from a random smooth 1-D function.
fn smooth_dataset() -> impl Strategy<Value = Dataset> {
    (
        -2.0f64..2.0,
        -3.0f64..3.0,
        0.5f64..4.0,
        20usize..80,
    )
        .prop_map(|(a, b, freq, n)| {
            let mut d = Dataset::new(1);
            for i in 0..n {
                let x = i as f64 / (n - 1) as f64;
                d.push(vec![x], a * (freq * x).sin() + b * x).unwrap();
            }
            d
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn lse_fit_never_increases_rmse(data in smooth_dataset()) {
        let mut fis = genfis(&data, &GenfisParams::with_radius(0.4)).unwrap();
        let before = rmse(&fis, &data);
        fit_consequents(&mut fis, &data, LstsqMethod::Svd).unwrap();
        let after = rmse(&fis, &data);
        // The LSE fit is the global optimum for the current premises, so a
        // re-fit can never do worse than the genfis-time fit.
        prop_assert!(after <= before + 1e-9, "{before} -> {after}");
    }

    #[test]
    fn design_matrix_rows_match_covered_samples(data in smooth_dataset()) {
        let fis = genfis(&data, &GenfisParams::with_radius(0.4)).unwrap();
        let (a, y, skipped) = design_matrix(&fis, &data).unwrap();
        prop_assert_eq!(a.rows(), y.len());
        prop_assert_eq!(y.len() + skipped.len(), data.len());
        prop_assert_eq!(a.cols(), fis.rule_count() * (fis.input_dim() + 1));
    }

    #[test]
    fn genfis_prediction_error_bounded_by_target_spread(data in smooth_dataset()) {
        let fis = genfis(&data, &GenfisParams::with_radius(0.4)).unwrap();
        let err = rmse(&fis, &data);
        let (lo, hi) = cqm_math::stats::min_max(data.targets()).unwrap();
        // Fitting can never be worse than the trivial mid-range predictor by
        // more than the spread itself.
        prop_assert!(err <= (hi - lo).max(1e-9) + 1e-9, "err {err} spread {}", hi - lo);
    }

    #[test]
    fn gradient_is_zero_on_self_generated_targets(data in smooth_dataset()) {
        let fis = genfis(&data, &GenfisParams::with_radius(0.4)).unwrap();
        // Replace targets with the FIS's own output: gradient must vanish.
        let mut self_data = Dataset::new(1);
        for (x, _) in data.iter() {
            if let Ok(y) = fis.eval(x) {
                self_data.push(x.to_vec(), y).unwrap();
            }
        }
        prop_assume!(self_data.len() >= 2);
        let g = premise_gradients(&fis, &self_data).unwrap();
        prop_assert!(g.norm() < 1e-6, "gradient norm {}", g.norm());
        prop_assert!(g.sse < 1e-12);
    }

    #[test]
    fn theta_round_trip_is_identity(data in smooth_dataset()) {
        let mut fis = genfis(&data, &GenfisParams::with_radius(0.4)).unwrap();
        let theta = extract_theta(&fis);
        cqm_anfis::lse::apply_theta(&mut fis, &theta);
        prop_assert_eq!(extract_theta(&fis), theta);
    }

    #[test]
    fn shuffle_preserves_sample_multiset(data in smooth_dataset(), seed in 0u64..1000) {
        let mut shuffled = data.clone();
        shuffled.shuffle(seed);
        prop_assert_eq!(shuffled.len(), data.len());
        let mut a: Vec<f64> = data.targets().to_vec();
        let mut b: Vec<f64> = shuffled.targets().to_vec();
        a.sort_by(|x, y| x.total_cmp(y));
        b.sort_by(|x, y| x.total_cmp(y));
        prop_assert_eq!(a, b);
    }
}
