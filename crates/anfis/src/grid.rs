//! Grid-partition FIS generation (the classic `genfis1` alternative).
//!
//! Instead of clustering, each input dimension is covered by `k` evenly
//! spaced Gaussian membership functions and one rule is created for every
//! cell of the resulting grid (`k^n` rules). This is the construction
//! ANFIS was originally demonstrated with (Jang 1993); it scales poorly
//! with dimension — the reason the paper prefers clustering-based structure
//! identification — but is exact for low-dimensional smooth targets and
//! serves as a reference point in the construction ablations.

// lint: allow(PANIC_IN_LIB, file) -- grid partition kernel: rule/input shapes fixed at construction

use cqm_fuzzy::{MembershipFunction, TskFis, TskRule};
use cqm_math::linsolve::LstsqMethod;

use crate::dataset::Dataset;
use crate::lse::fit_consequents;
use crate::{AnfisError, Result};

/// Parameters of grid partitioning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridParams {
    /// Membership functions per input dimension.
    pub mfs_per_input: usize,
    /// Overlap factor: sigma = overlap * spacing (0.5 ≈ moderate overlap).
    pub overlap: f64,
    /// Least-squares backend for the consequent fit.
    pub lstsq: LstsqMethod,
    /// Hard cap on the rule count (`k^n`), protecting against dimension
    /// blow-up.
    pub max_rules: usize,
}

impl Default for GridParams {
    fn default() -> Self {
        GridParams {
            mfs_per_input: 3,
            overlap: 0.5,
            lstsq: LstsqMethod::Svd,
            max_rules: 1024,
        }
    }
}

/// Generate a TSK FIS by grid partitioning the input space and fitting the
/// consequents globally.
///
/// # Errors
///
/// * [`AnfisError::InvalidData`] for an empty dataset or a grid whose rule
///   count would exceed `max_rules`.
/// * [`AnfisError::InvalidConfig`] for out-of-domain parameters.
/// * [`AnfisError::Math`] if the least-squares fit fails.
pub fn genfis_grid(data: &Dataset, params: &GridParams) -> Result<TskFis> {
    if data.is_empty() {
        return Err(AnfisError::InvalidData("empty dataset".into()));
    }
    if params.mfs_per_input < 2 {
        return Err(AnfisError::InvalidConfig {
            name: "mfs_per_input",
            value: params.mfs_per_input as f64,
        });
    }
    if !(params.overlap > 0.0 && params.overlap.is_finite()) {
        return Err(AnfisError::InvalidConfig {
            name: "overlap",
            value: params.overlap,
        });
    }
    let n = data.dim();
    let k = params.mfs_per_input;
    let rules_needed = (k as f64).powi(n as i32);
    if rules_needed > params.max_rules as f64 {
        return Err(AnfisError::InvalidData(format!(
            "grid of {k}^{n} = {rules_needed} rules exceeds max_rules {}",
            params.max_rules
        )));
    }

    // Per-dimension ranges and the k membership functions on each.
    let mut lo = vec![f64::INFINITY; n];
    let mut hi = vec![f64::NEG_INFINITY; n];
    for (x, _) in data.iter() {
        for d in 0..n {
            lo[d] = lo[d].min(x[d]);
            hi[d] = hi[d].max(x[d]);
        }
    }
    let mut mfs: Vec<Vec<MembershipFunction>> = Vec::with_capacity(n);
    for d in 0..n {
        let range = (hi[d] - lo[d]).max(f64::MIN_POSITIVE.sqrt());
        let spacing = range / (k - 1) as f64;
        let sigma = (params.overlap * spacing).max(1e-6 * range);
        let mut dim_mfs = Vec::with_capacity(k);
        for j in 0..k {
            let mu = lo[d] + spacing * j as f64;
            dim_mfs.push(MembershipFunction::gaussian(mu, sigma)?);
        }
        mfs.push(dim_mfs);
    }

    // One rule per grid cell (odometer over the per-dimension indices).
    let mut rules = Vec::with_capacity(rules_needed as usize);
    let mut idx = vec![0usize; n];
    loop {
        let antecedents: Vec<MembershipFunction> =
            (0..n).map(|d| mfs[d][idx[d]].clone()).collect();
        rules.push(TskRule::new(antecedents, vec![0.0; n + 1])?);
        let mut d = 0;
        loop {
            idx[d] += 1;
            if idx[d] < k {
                break;
            }
            idx[d] = 0;
            d += 1;
            if d == n {
                break;
            }
        }
        if d == n {
            break;
        }
    }
    let mut fis = TskFis::new(rules)?;
    fit_consequents(&mut fis, data, params.lstsq)?;
    Ok(fis)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rmse;

    fn sine_data(n: usize) -> Dataset {
        let mut d = Dataset::new(1);
        for i in 0..n {
            let x = i as f64 / (n - 1) as f64;
            d.push(vec![x], (x * std::f64::consts::TAU).sin()).unwrap();
        }
        d
    }

    #[test]
    fn grid_fits_sine() {
        let d = sine_data(100);
        let fis = genfis_grid(
            &d,
            &GridParams {
                mfs_per_input: 5,
                ..GridParams::default()
            },
        )
        .unwrap();
        assert_eq!(fis.rule_count(), 5);
        assert!(rmse(&fis, &d) < 0.05, "rmse {}", rmse(&fis, &d));
    }

    #[test]
    fn rule_count_is_k_to_the_n() {
        let mut d = Dataset::new(2);
        for i in 0..10 {
            for j in 0..10 {
                d.push(vec![i as f64, j as f64], (i + j) as f64).unwrap();
            }
        }
        let fis = genfis_grid(&d, &GridParams::default()).unwrap();
        assert_eq!(fis.rule_count(), 9); // 3^2
        assert!(rmse(&fis, &d) < 1e-6); // linear target fits exactly
    }

    #[test]
    fn dimension_blowup_guarded() {
        let mut d = Dataset::new(7);
        d.push(vec![0.0; 7], 0.0).unwrap();
        d.push(vec![1.0; 7], 1.0).unwrap();
        let err = genfis_grid(&d, &GridParams::default()).unwrap_err();
        assert!(err.to_string().contains("max_rules"));
    }

    #[test]
    fn parameter_validation() {
        let d = sine_data(10);
        assert!(genfis_grid(&Dataset::new(1), &GridParams::default()).is_err());
        assert!(genfis_grid(
            &d,
            &GridParams {
                mfs_per_input: 1,
                ..GridParams::default()
            }
        )
        .is_err());
        assert!(genfis_grid(
            &d,
            &GridParams {
                overlap: 0.0,
                ..GridParams::default()
            }
        )
        .is_err());
    }

    #[test]
    fn more_mfs_better_fit() {
        let d = sine_data(200);
        let coarse = genfis_grid(
            &d,
            &GridParams {
                mfs_per_input: 2,
                ..GridParams::default()
            },
        )
        .unwrap();
        let fine = genfis_grid(
            &d,
            &GridParams {
                mfs_per_input: 7,
                ..GridParams::default()
            },
        )
        .unwrap();
        assert!(rmse(&fine, &d) < rmse(&coarse, &d));
    }
}
