//! # cqm-anfis — Adaptive-Network-based Fuzzy Inference System
//!
//! The paper constructs its quality FIS automatically (§2.2): "a fuzzy
//! clustering, a linear regression analysis and the training of a neural
//! fuzzy network". This crate implements that pipeline end to end:
//!
//! 1. [`genfis`](genfis()) — **structure identification**: subtractive clustering over
//!    the joint input space determines the number of rules `m`, the initial
//!    Gaussian membership functions `F_ij` and (via a global least-squares
//!    fit) the initial linear consequents `f_j` (§2.2.1–2.2.2). This mirrors
//!    Matlab's classic `genfis2`.
//! 2. [`lse`] — the **forward half of hybrid learning**: with premises
//!    fixed, the consequent coefficients are the solution of one
//!    over-determined linear system, solved by SVD (the paper's choice) or
//!    the ablation backends. A recursive (RLS) variant is provided as in
//!    Jang's original formulation.
//! 3. [`backprop`] — the **backward half**: analytic gradients of the
//!    squared output error with respect to every Gaussian `µ_ij, σ_ij`.
//! 4. [`hybrid`] — the training loop combining both passes with Jang's
//!    step-size adaptation heuristics and the paper's stopping rule: "the
//!    hybrid learning stops … when a degradation of the error for a
//!    different check data set is continuously observed" (§2.2.4).
//!
//! ```
//! use cqm_anfis::dataset::Dataset;
//! use cqm_anfis::genfis::{genfis, GenfisParams};
//!
//! // Learn y = 2x on [0, 1] from samples.
//! let mut data = Dataset::new(1);
//! for i in 0..50 {
//!     let x = i as f64 / 49.0;
//!     data.push(vec![x], 2.0 * x).unwrap();
//! }
//! let fis = genfis(&data, &GenfisParams::default()).unwrap();
//! let y = fis.eval(&[0.25]).unwrap();
//! assert!((y - 0.5).abs() < 0.05);
//! ```

#![forbid(unsafe_code)]

// `!(x > 0.0)` is the intentional NaN-rejecting guard in training code.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod backprop;
pub mod dataset;
pub mod genfis;
pub mod grid;
pub mod hybrid;
pub mod lse;

pub use dataset::Dataset;
pub use genfis::{genfis, genfis_with, GenfisParams};
pub use hybrid::{train_hybrid, train_hybrid_with, HybridConfig, TrainReport};

/// Errors produced by ANFIS construction and training.
#[derive(Debug, Clone, PartialEq)]
pub enum AnfisError {
    /// Propagated from the math substrate.
    Math(cqm_math::MathError),
    /// Propagated from the fuzzy substrate.
    Fuzzy(cqm_fuzzy::FuzzyError),
    /// Propagated from the clustering substrate.
    Cluster(cqm_cluster::ClusterError),
    /// Training data was empty or inconsistent.
    InvalidData(String),
    /// A training configuration value was out of domain.
    InvalidConfig {
        /// Configuration field.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
}

impl std::fmt::Display for AnfisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnfisError::Math(e) => write!(f, "math error: {e}"),
            AnfisError::Fuzzy(e) => write!(f, "fuzzy error: {e}"),
            AnfisError::Cluster(e) => write!(f, "cluster error: {e}"),
            AnfisError::InvalidData(msg) => write!(f, "invalid training data: {msg}"),
            AnfisError::InvalidConfig { name, value } => {
                write!(f, "invalid config {name} = {value}")
            }
        }
    }
}

impl std::error::Error for AnfisError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AnfisError::Math(e) => Some(e),
            AnfisError::Fuzzy(e) => Some(e),
            AnfisError::Cluster(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cqm_math::MathError> for AnfisError {
    fn from(e: cqm_math::MathError) -> Self {
        AnfisError::Math(e)
    }
}

impl From<cqm_fuzzy::FuzzyError> for AnfisError {
    fn from(e: cqm_fuzzy::FuzzyError) -> Self {
        AnfisError::Fuzzy(e)
    }
}

impl From<cqm_cluster::ClusterError> for AnfisError {
    fn from(e: cqm_cluster::ClusterError) -> Self {
        AnfisError::Cluster(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, AnfisError>;

/// Root-mean-square error of a FIS over a dataset; samples on which the FIS
/// cannot fire any rule are skipped (they are reported by training instead).
pub fn rmse(fis: &cqm_fuzzy::TskFis, data: &dataset::Dataset) -> f64 {
    rmse_with(fis, data, &cqm_parallel::WorkerPool::serial())
}

/// [`rmse`] on a worker pool. Samples are split into fixed
/// [`cqm_parallel::REDUCE_CHUNK`]-sized chunks (independent of the thread
/// count); each chunk accumulates its squared-error sum sequentially and the
/// partials are folded strictly in chunk order, making the result
/// bit-identical at any thread count. Datasets of at most one chunk reduce
/// exactly like the plain sequential loop.
pub fn rmse_with(
    fis: &cqm_fuzzy::TskFis,
    data: &dataset::Dataset,
    pool: &cqm_parallel::WorkerPool,
) -> f64 {
    let kernel = fis.kernel();
    let inputs = data.inputs();
    let targets = data.targets();
    let parts = pool.run_chunks(data.len(), cqm_parallel::REDUCE_CHUNK, |chunk| {
        let mut scratch = cqm_fuzzy::TskScratch::with_rules(kernel.rule_count());
        let mut sum = 0.0;
        let mut n = 0usize;
        let rows = inputs[chunk.start..chunk.end]
            .iter()
            .zip(&targets[chunk.start..chunk.end]);
        for (x, &y) in rows {
            if let Ok(pred) = kernel.eval_into(x, &mut scratch) {
                sum += (pred - y) * (pred - y);
                n += 1;
            }
        }
        (sum, n)
    });
    let mut sum = 0.0;
    let mut n = 0usize;
    for (s, c) in parts {
        sum += s;
        n += c;
    }
    if n == 0 {
        f64::INFINITY
    } else {
        (sum / n as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_conversions_preserve_source() {
        let e: AnfisError = cqm_math::MathError::EmptyInput("x").into();
        assert!(matches!(e, AnfisError::Math(_)));
        assert!(std::error::Error::source(&e).is_some());
        let e: AnfisError = cqm_fuzzy::FuzzyError::NoRuleFired.into();
        assert!(e.to_string().contains("fuzzy"));
        let e: AnfisError = cqm_cluster::ClusterError::InvalidData("d".into()).into();
        assert!(e.to_string().contains("cluster"));
    }

    #[test]
    fn rmse_of_empty_dataset_is_infinite() {
        use cqm_fuzzy::{MembershipFunction, TskFis, TskRule};
        let fis = TskFis::new(vec![TskRule::new(
            vec![MembershipFunction::gaussian(0.0, 1.0).unwrap()],
            vec![0.0, 0.0],
        )
        .unwrap()])
        .unwrap();
        let data = Dataset::new(1);
        assert!(rmse(&fis, &data).is_infinite());
    }
}
