//! Least-squares estimation of TSK consequent parameters (§2.2.2).
//!
//! With the premise parameters fixed, the TSK output is **linear** in the
//! consequent coefficients:
//!
//! ```text
//! ŷ(v) = Σ_j w̄_j(v) · (a_1j v_1 + … + a_nj v_n + a_(n+1)j)
//! ```
//!
//! so stacking one row per training sample yields one over-determined linear
//! system in all `m·(n+1)` coefficients at once. The paper solves it with
//! SVD; the recursive formulation (RLS) from Jang's original ANFIS paper is
//! also provided for the streaming case.

// analyze: hot-path

// lint: allow(PANIC_IN_LIB, file) -- design-matrix indices come from the validated dataset/FIS dimensions

use cqm_fuzzy::TskFis;
use cqm_math::linsolve::{lstsq, LstsqMethod};
use cqm_math::matrix::Matrix;
use cqm_parallel::WorkerPool;

use crate::dataset::Dataset;
use crate::{AnfisError, Result};

/// Samples per parallel work item when assembling the design matrix. Rows
/// are per-sample independent, so any chunking yields bit-identical output;
/// this only balances scheduling granularity against dispatch overhead.
const DESIGN_CHUNK: usize = 64;

/// Build the LSE design matrix and target vector for `fis` over `data`.
///
/// Row `r` holds, for each rule `j`, the block
/// `[w̄_j x_1, …, w̄_j x_n, w̄_j]`. Samples on which no rule fires are
/// skipped; their indices are returned so callers can report coverage.
///
/// # Errors
///
/// * [`AnfisError::InvalidData`] if the dataset is empty, disagrees with the
///   FIS input dimension, or *no* sample activates any rule.
pub fn design_matrix(fis: &TskFis, data: &Dataset) -> Result<(Matrix, Vec<f64>, Vec<usize>)> {
    design_matrix_with(fis, data, &WorkerPool::serial())
}

/// [`design_matrix`] on a worker pool. Each sample's row block is
/// independent, so chunks of [`DESIGN_CHUNK`] samples are assembled
/// concurrently and concatenated in order — the matrix, targets and skipped
/// indices are bit-identical to the serial build at any thread count.
///
/// # Errors
///
/// Same conditions as [`design_matrix`].
pub fn design_matrix_with(
    fis: &TskFis,
    data: &Dataset,
    pool: &WorkerPool,
) -> Result<(Matrix, Vec<f64>, Vec<usize>)> {
    if data.is_empty() {
        return Err(AnfisError::InvalidData("empty dataset".into()));
    }
    if data.dim() != fis.input_dim() {
        return Err(AnfisError::InvalidData(format!(
            "dataset dimension {} does not match FIS input dimension {}",
            data.dim(),
            fis.input_dim()
        )));
    }
    let n = fis.input_dim();
    let m = fis.rule_count();
    let cols = m * (n + 1);
    let inputs = data.inputs();
    let all_targets = data.targets();
    let parts = pool.run_chunks(data.len(), DESIGN_CHUNK, |chunk| {
        let mut rows: Vec<f64> = Vec::with_capacity(chunk.len() * cols);
        let mut targets = Vec::with_capacity(chunk.len());
        let mut skipped = Vec::new();
        for idx in chunk.start..chunk.end {
            let x = &inputs[idx];
            match fis.eval_detailed(x) {
                Ok(eval) => {
                    for j in 0..m {
                        let wbar = eval.normalized_firing[j];
                        for &xi in x.iter() {
                            rows.push(wbar * xi);
                        }
                        rows.push(wbar);
                    }
                    targets.push(all_targets[idx]);
                }
                Err(_) => skipped.push(idx),
            }
        }
        (rows, targets, skipped)
    });
    let mut rows: Vec<f64> = Vec::new();
    let mut targets = Vec::new();
    let mut skipped = Vec::new();
    for (r, t, s) in parts {
        rows.extend_from_slice(&r);
        targets.extend_from_slice(&t);
        skipped.extend_from_slice(&s);
    }
    if targets.is_empty() {
        return Err(AnfisError::InvalidData(
            "no sample activates any rule; check membership coverage".into(),
        ));
    }
    let a = Matrix::from_vec(targets.len(), cols, rows).map_err(AnfisError::Math)?;
    Ok((a, targets, skipped))
}

/// Fit all consequent coefficients of `fis` in place by global least squares
/// and return the post-fit RMSE over the rows that were used.
///
/// # Errors
///
/// * Propagates [`design_matrix`] failures.
/// * [`AnfisError::Math`] if the chosen backend cannot solve the system
///   (e.g. QR on rank-deficient activations — use SVD).
pub fn fit_consequents(fis: &mut TskFis, data: &Dataset, method: LstsqMethod) -> Result<f64> {
    fit_consequents_with(fis, data, method, &WorkerPool::serial())
}

/// [`fit_consequents`] on a worker pool: the design matrix is assembled in
/// parallel (see [`design_matrix_with`]); the least-squares solve itself
/// stays serial, so the fitted coefficients are bit-identical at any thread
/// count.
///
/// # Errors
///
/// Same conditions as [`fit_consequents`].
pub fn fit_consequents_with(
    fis: &mut TskFis,
    data: &Dataset,
    method: LstsqMethod,
    pool: &WorkerPool,
) -> Result<f64> {
    let (a, y, _skipped) = design_matrix_with(fis, data, pool)?;
    let theta = lstsq(&a, &y, method).map_err(AnfisError::Math)?;
    apply_theta(fis, &theta);
    let resid = cqm_math::linsolve::residual_norm(&a, &theta, &y).map_err(AnfisError::Math)?;
    Ok(resid / (y.len() as f64).sqrt())
}

/// Write a flat coefficient vector (rule-major, `[a_1j…a_nj, a_(n+1)j]`
/// blocks) into the FIS consequents.
pub fn apply_theta(fis: &mut TskFis, theta: &[f64]) {
    let n = fis.input_dim();
    let block = n + 1;
    for (j, rule) in fis.rules_mut().iter_mut().enumerate() {
        rule.consequent_mut()
            .copy_from_slice(&theta[j * block..(j + 1) * block]);
    }
}

/// Read the FIS consequents into a flat rule-major coefficient vector.
pub fn extract_theta(fis: &TskFis) -> Vec<f64> {
    fis.rules()
        .iter()
        .flat_map(|r| r.consequent().iter().copied())
        .collect()
}

/// Recursive least squares (RLS) over the same parameterization, processing
/// one sample at a time — Jang's original in-epoch formulation. Numerically
/// the batch SVD solve is preferred; RLS exists for the streaming/ablation
/// path.
#[derive(Debug, Clone)]
pub struct RecursiveLse {
    /// Current coefficient estimate.
    theta: Vec<f64>,
    /// Inverse-covariance matrix `P`.
    p: Matrix,
    /// Forgetting factor λ (1.0 = none).
    lambda: f64,
}

impl RecursiveLse {
    /// Initialise with `cols` coefficients, `P = gamma · I`.
    ///
    /// # Errors
    ///
    /// Returns [`AnfisError::InvalidConfig`] if `cols == 0`, `gamma <= 0` or
    /// `lambda` outside `(0, 1]`.
    pub fn new(cols: usize, gamma: f64, lambda: f64) -> Result<Self> {
        RecursiveLse::from_theta(vec![0.0; cols], gamma, lambda)
    }

    /// Warm-start from an existing coefficient vector (e.g. the live
    /// model's consequents via [`extract_theta`]), `P = gamma · I`. The
    /// streaming adaptation path continues from the deployed solution
    /// instead of relearning it from zero.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RecursiveLse::new`], plus
    /// [`AnfisError::InvalidData`] on non-finite seed coefficients.
    pub fn from_theta(theta: Vec<f64>, gamma: f64, lambda: f64) -> Result<Self> {
        if theta.is_empty() {
            return Err(AnfisError::InvalidConfig {
                name: "cols",
                value: 0.0,
            });
        }
        if theta.iter().any(|t| !t.is_finite()) {
            return Err(AnfisError::InvalidData(
                "warm-start theta contains non-finite coefficients".into(),
            ));
        }
        if !(gamma > 0.0 && gamma.is_finite()) {
            return Err(AnfisError::InvalidConfig {
                name: "gamma",
                value: gamma,
            });
        }
        if !(lambda > 0.0 && lambda <= 1.0) {
            return Err(AnfisError::InvalidConfig {
                name: "lambda",
                value: lambda,
            });
        }
        let cols = theta.len();
        Ok(RecursiveLse {
            theta,
            p: Matrix::identity(cols).scale(gamma),
            lambda,
        })
    }

    /// Current estimate.
    pub fn theta(&self) -> &[f64] {
        &self.theta
    }

    /// The forgetting factor λ.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Reset the inverse covariance to `gamma · I`, keeping the current
    /// coefficient estimate. Used after a structural change (rule
    /// insertion/merge) or a confirmed drift: the estimate is kept but the
    /// estimator's confidence in it is discarded, so new evidence moves the
    /// coefficients quickly again.
    ///
    /// # Errors
    ///
    /// Returns [`AnfisError::InvalidConfig`] if `gamma <= 0` or non-finite.
    pub fn reset_covariance(&mut self, gamma: f64) -> Result<()> {
        if !(gamma > 0.0 && gamma.is_finite()) {
            return Err(AnfisError::InvalidConfig {
                name: "gamma",
                value: gamma,
            });
        }
        self.p = Matrix::identity(self.theta.len()).scale(gamma);
        Ok(())
    }

    /// Process one sample row `a` with target `y`.
    ///
    /// # Errors
    ///
    /// Returns [`AnfisError::InvalidData`] on dimension mismatch.
    // The rank-1 update writes P[r][c] from two parallel buffers; indexed
    // loops are the clearest rendering of the textbook formula.
    #[allow(clippy::needless_range_loop)]
    pub fn update(&mut self, a: &[f64], y: f64) -> Result<()> {
        let n = self.theta.len();
        if a.len() != n {
            return Err(AnfisError::InvalidData(format!(
                "row has {} entries, estimator expects {n}",
                a.len()
            )));
        }
        // k = P a / (λ + aᵀ P a)
        let pa = self.p.matvec(a).map_err(AnfisError::Math)?;
        let denom = self.lambda
            + a.iter()
                .zip(&pa)
                .map(|(ai, pai)| ai * pai)
                .sum::<f64>();
        let k: Vec<f64> = pa.iter().map(|v| v / denom).collect();
        // theta += k (y − aᵀ theta)
        let err = y - a
            .iter()
            .zip(&self.theta)
            .map(|(ai, ti)| ai * ti)
            .sum::<f64>();
        for (t, ki) in self.theta.iter_mut().zip(&k) {
            *t += ki * err;
        }
        // P = (P − k aᵀ P) / λ
        for r in 0..n {
            for c in 0..n {
                self.p[(r, c)] = (self.p[(r, c)] - k[r] * pa[c]) / self.lambda;
            }
        }
        Ok(())
    }
}

/// Fit the consequents of `fis` by a **recursive** least-squares sweep over
/// `data`: the design matrix is assembled in parallel (see
/// [`design_matrix_with`], bit-identical at any thread count), then the RLS
/// recursion consumes its rows one by one in dataset order, warm-started
/// from the FIS's current consequents. Returns the post-sweep RMSE over the
/// rows that were used.
///
/// This is the batch replay of the streaming path: feeding the same samples
/// one at a time through a [`RecursiveLse`] warm-started the same way
/// produces bit-identical coefficients, because both run the identical
/// floating-point update sequence (the property `cqm-adapt` tests). With
/// `lambda = 1` and a large `gamma` the result converges to the batch SVD
/// solution of [`fit_consequents_with`] but is *not* bit-identical to it —
/// the two solvers take different arithmetic routes (documented bound in
/// DESIGN.md §14).
///
/// # Errors
///
/// * Propagates [`design_matrix_with`] failures.
/// * [`AnfisError::InvalidConfig`] for out-of-domain `gamma`/`lambda`.
pub fn fit_consequents_rls_with(
    fis: &mut TskFis,
    data: &Dataset,
    gamma: f64,
    lambda: f64,
    pool: &WorkerPool,
) -> Result<f64> {
    let (a, y, _skipped) = design_matrix_with(fis, data, pool)?;
    let mut rls = RecursiveLse::from_theta(extract_theta(fis), gamma, lambda)?;
    let cols = a.cols();
    let mut row = vec![0.0; cols];
    for r in 0..a.rows() {
        for c in 0..cols {
            row[c] = a[(r, c)];
        }
        rls.update(&row, y[r])?;
    }
    apply_theta(fis, rls.theta());
    let resid = cqm_math::linsolve::residual_norm(&a, rls.theta(), &y).map_err(AnfisError::Math)?;
    Ok(resid / (y.len() as f64).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqm_fuzzy::{MembershipFunction, TskRule};

    fn wide_rule_fis() -> TskFis {
        // Single always-on rule: LSE reduces to plain linear regression.
        TskFis::new(vec![TskRule::new(
            vec![MembershipFunction::gaussian(0.5, 100.0).unwrap()],
            vec![0.0, 0.0],
        )
        .unwrap()])
        .unwrap()
    }

    fn line_data() -> Dataset {
        let mut d = Dataset::new(1);
        for i in 0..20 {
            let x = i as f64 / 19.0;
            d.push(vec![x], 3.0 * x - 1.0).unwrap();
        }
        d
    }

    #[test]
    fn single_rule_recovers_linear_function() {
        let mut fis = wide_rule_fis();
        let rmse = fit_consequents(&mut fis, &line_data(), LstsqMethod::Svd).unwrap();
        assert!(rmse < 1e-10, "rmse = {rmse}");
        let c = fis.rules()[0].consequent();
        assert!((c[0] - 3.0).abs() < 1e-8);
        assert!((c[1] + 1.0).abs() < 1e-8);
    }

    #[test]
    fn two_rule_piecewise_fit() {
        // Rules centered at 0 and 1 let LSE fit a nonlinear curve closely.
        let mut fis = TskFis::new(vec![
            TskRule::new(
                vec![MembershipFunction::gaussian(0.0, 0.35).unwrap()],
                vec![0.0, 0.0],
            )
            .unwrap(),
            TskRule::new(
                vec![MembershipFunction::gaussian(1.0, 0.35).unwrap()],
                vec![0.0, 0.0],
            )
            .unwrap(),
        ])
        .unwrap();
        let mut d = Dataset::new(1);
        for i in 0..60 {
            let x = i as f64 / 59.0;
            d.push(vec![x], (x * std::f64::consts::PI).sin()).unwrap();
        }
        let rmse = fit_consequents(&mut fis, &d, LstsqMethod::Svd).unwrap();
        assert!(rmse < 0.05, "rmse = {rmse}");
    }

    #[test]
    fn design_matrix_shape_and_blocks() {
        let fis = wide_rule_fis();
        let d = line_data();
        let (a, y, skipped) = design_matrix(&fis, &d).unwrap();
        assert_eq!(a.rows(), 20);
        assert_eq!(a.cols(), 2); // 1 rule * (1 input + 1)
        assert!(skipped.is_empty());
        assert_eq!(y.len(), 20);
        // Single rule -> wbar = 1 -> row = [x, 1].
        assert!((a[(3, 0)] - d.inputs()[3][0]).abs() < 1e-12);
        assert!((a[(3, 1)] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn design_matrix_skips_uncovered_samples() {
        // Narrow rule at 0; a sample at 1e6 underflows all memberships.
        let fis = TskFis::new(vec![TskRule::new(
            vec![MembershipFunction::gaussian(0.0, 0.1).unwrap()],
            vec![0.0, 0.0],
        )
        .unwrap()])
        .unwrap();
        let mut d = Dataset::new(1);
        d.push(vec![0.0], 0.0).unwrap();
        d.push(vec![1.0e6], 1.0).unwrap();
        let (a, y, skipped) = design_matrix(&fis, &d).unwrap();
        assert_eq!(a.rows(), 1);
        assert_eq!(y.len(), 1);
        assert_eq!(skipped, vec![1]);
    }

    #[test]
    fn design_matrix_errors() {
        let fis = wide_rule_fis();
        assert!(design_matrix(&fis, &Dataset::new(1)).is_err());
        let mut wrong_dim = Dataset::new(2);
        wrong_dim.push(vec![0.0, 0.0], 0.0).unwrap();
        assert!(design_matrix(&fis, &wrong_dim).is_err());
        // All samples uncovered.
        let mut far = Dataset::new(1);
        far.push(vec![1.0e6], 0.0).unwrap();
        let narrow = TskFis::new(vec![TskRule::new(
            vec![MembershipFunction::gaussian(0.0, 0.1).unwrap()],
            vec![0.0, 0.0],
        )
        .unwrap()])
        .unwrap();
        assert!(design_matrix(&narrow, &far).is_err());
    }

    #[test]
    fn theta_round_trip() {
        let mut fis = TskFis::new(vec![
            TskRule::new(
                vec![MembershipFunction::gaussian(0.0, 1.0).unwrap()],
                vec![1.0, 2.0],
            )
            .unwrap(),
            TskRule::new(
                vec![MembershipFunction::gaussian(1.0, 1.0).unwrap()],
                vec![3.0, 4.0],
            )
            .unwrap(),
        ])
        .unwrap();
        let theta = extract_theta(&fis);
        assert_eq!(theta, vec![1.0, 2.0, 3.0, 4.0]);
        apply_theta(&mut fis, &[5.0, 6.0, 7.0, 8.0]);
        assert_eq!(extract_theta(&fis), vec![5.0, 6.0, 7.0, 8.0]);
    }

    #[test]
    fn rls_converges_to_batch_solution() {
        let d = line_data();
        let mut rls = RecursiveLse::new(2, 1e6, 1.0).unwrap();
        for (x, y) in d.iter() {
            rls.update(&[x[0], 1.0], y).unwrap();
        }
        assert!((rls.theta()[0] - 3.0).abs() < 1e-4, "{:?}", rls.theta());
        assert!((rls.theta()[1] + 1.0).abs() < 1e-4);
    }

    #[test]
    fn rls_validation() {
        assert!(RecursiveLse::new(0, 1.0, 1.0).is_err());
        assert!(RecursiveLse::new(2, 0.0, 1.0).is_err());
        assert!(RecursiveLse::new(2, 1.0, 0.0).is_err());
        assert!(RecursiveLse::new(2, 1.0, 1.1).is_err());
        assert!(RecursiveLse::from_theta(vec![], 1.0, 1.0).is_err());
        assert!(RecursiveLse::from_theta(vec![f64::NAN], 1.0, 1.0).is_err());
        let mut rls = RecursiveLse::new(2, 1.0, 1.0).unwrap();
        assert!(rls.update(&[1.0], 0.0).is_err());
        assert!(rls.reset_covariance(0.0).is_err());
        assert!(rls.reset_covariance(-1.0).is_err());
    }

    #[test]
    fn warm_start_keeps_theta_and_reset_keeps_estimate() {
        let mut rls = RecursiveLse::from_theta(vec![2.0, -1.0], 1e3, 0.99).unwrap();
        assert_eq!(rls.theta(), &[2.0, -1.0]);
        assert_eq!(rls.lambda(), 0.99);
        rls.update(&[1.0, 1.0], 1.5).unwrap();
        let after_update = rls.theta().to_vec();
        rls.reset_covariance(1e6).unwrap();
        // The estimate survives the reset bit-for-bit.
        for (a, b) in rls.theta().iter().zip(&after_update) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn batch_rls_sweep_matches_manual_row_replay() {
        // fit_consequents_rls_with must be the exact batch replay of a
        // manual per-row RecursiveLse drive: same rows, same order, same
        // warm start -> bit-identical coefficients.
        let d = line_data();
        let mut fis = wide_rule_fis();
        let (a, y, _) = design_matrix(&fis, &d).unwrap();
        let mut manual = RecursiveLse::from_theta(extract_theta(&fis), 1e8, 1.0).unwrap();
        for r in 0..a.rows() {
            let row: Vec<f64> = (0..a.cols()).map(|c| a[(r, c)]).collect();
            manual.update(&row, y[r]).unwrap();
        }
        fit_consequents_rls_with(&mut fis, &d, 1e8, 1.0, &WorkerPool::serial()).unwrap();
        for (a, b) in extract_theta(&fis).iter().zip(manual.theta()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn batch_rls_sweep_bit_identical_at_any_worker_count() {
        let d = line_data();
        let mut reference = wide_rule_fis();
        fit_consequents_rls_with(&mut reference, &d, 1e8, 1.0, &WorkerPool::serial()).unwrap();
        for threads in [1usize, 2, 3, 8] {
            let mut fis = wide_rule_fis();
            fit_consequents_rls_with(&mut fis, &d, 1e8, 1.0, &WorkerPool::new(threads)).unwrap();
            for (a, b) in extract_theta(&fis).iter().zip(extract_theta(&reference)) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn batch_rls_approaches_svd_solution_within_documented_bound() {
        // The DESIGN.md §14 contract: RLS with lambda = 1 and gamma = 1e8
        // lands within 1e-4 of the SVD batch solution coefficient-wise on a
        // stationary replay (the solvers differ in arithmetic route, so
        // bit-identity is deliberately NOT claimed here).
        let d = line_data();
        let mut svd = wide_rule_fis();
        fit_consequents(&mut svd, &d, LstsqMethod::Svd).unwrap();
        let mut rls = wide_rule_fis();
        fit_consequents_rls_with(&mut rls, &d, 1e8, 1.0, &WorkerPool::serial()).unwrap();
        for (a, b) in extract_theta(&rls).iter().zip(extract_theta(&svd)) {
            assert!((a - b).abs() < 1e-4, "rls {a} vs svd {b}");
        }
    }

    #[test]
    fn qr_and_svd_agree_on_full_rank_problem() {
        let mut f1 = wide_rule_fis();
        let mut f2 = wide_rule_fis();
        fit_consequents(&mut f1, &line_data(), LstsqMethod::Svd).unwrap();
        fit_consequents(&mut f2, &line_data(), LstsqMethod::Qr).unwrap();
        for (a, b) in extract_theta(&f1).iter().zip(extract_theta(&f2)) {
            assert!((a - b).abs() < 1e-8);
        }
    }
}

/// Refit the FIS with **constant** (zero-order) consequents: each rule's
/// linear coefficients are zeroed and only the constants are estimated, via
/// a design matrix with one `w̄_j` column per rule. This is the ABL-CONSEQ
/// ablation target — the paper chose linear consequents "since the results
/// for the reliability determination are better" (§2.1.2).
///
/// # Errors
///
/// Same conditions as [`fit_consequents`].
pub fn fit_constant_consequents(
    fis: &mut TskFis,
    data: &Dataset,
    method: LstsqMethod,
) -> Result<f64> {
    if data.is_empty() {
        return Err(AnfisError::InvalidData("empty dataset".into()));
    }
    if data.dim() != fis.input_dim() {
        return Err(AnfisError::InvalidData(format!(
            "dataset dimension {} does not match FIS input dimension {}",
            data.dim(),
            fis.input_dim()
        )));
    }
    let m = fis.rule_count();
    let mut rows: Vec<f64> = Vec::new();
    let mut targets = Vec::new();
    for (x, y) in data.iter() {
        if let Ok(eval) = fis.eval_detailed(x) {
            rows.extend_from_slice(&eval.normalized_firing);
            targets.push(y);
        }
    }
    if targets.is_empty() {
        return Err(AnfisError::InvalidData(
            "no sample activates any rule".into(),
        ));
    }
    let a = Matrix::from_vec(targets.len(), m, rows).map_err(AnfisError::Math)?;
    let c = lstsq(&a, &targets, method).map_err(AnfisError::Math)?;
    let n = fis.input_dim();
    for (rule, &cj) in fis.rules_mut().iter_mut().zip(&c) {
        let cons = rule.consequent_mut();
        for v in cons.iter_mut() {
            *v = 0.0;
        }
        cons[n] = cj;
    }
    let resid = cqm_math::linsolve::residual_norm(&a, &c, &targets).map_err(AnfisError::Math)?;
    Ok(resid / (targets.len() as f64).sqrt())
}

#[cfg(test)]
mod constant_tests {
    use super::*;
    use cqm_fuzzy::{MembershipFunction, TskRule};

    #[test]
    fn constant_fit_zeroes_linear_terms() {
        let mut fis = TskFis::new(vec![
            TskRule::new(
                vec![MembershipFunction::gaussian(0.0, 0.3).unwrap()],
                vec![5.0, 5.0],
            )
            .unwrap(),
            TskRule::new(
                vec![MembershipFunction::gaussian(1.0, 0.3).unwrap()],
                vec![5.0, 5.0],
            )
            .unwrap(),
        ])
        .unwrap();
        let mut d = Dataset::new(1);
        for i in 0..40 {
            let x = i as f64 / 39.0;
            d.push(vec![x], if x < 0.5 { 0.0 } else { 1.0 }).unwrap();
        }
        let rmse = fit_constant_consequents(&mut fis, &d, LstsqMethod::Svd).unwrap();
        assert!(rmse < 0.25, "rmse {rmse}");
        for rule in fis.rules() {
            assert_eq!(rule.consequent()[0], 0.0);
        }
        // Step function: rule constants near 0 and 1.
        let mut cs: Vec<f64> = fis.rules().iter().map(|r| r.consequent()[1]).collect();
        cs.sort_by(|a, b| a.total_cmp(b));
        assert!(cs[0] < 0.3 && cs[1] > 0.7, "{cs:?}");
    }

    #[test]
    fn constant_fit_validates() {
        let mut fis = TskFis::new(vec![TskRule::new(
            vec![MembershipFunction::gaussian(0.0, 0.3).unwrap()],
            vec![0.0, 0.0],
        )
        .unwrap()])
        .unwrap();
        assert!(fit_constant_consequents(&mut fis, &Dataset::new(1), LstsqMethod::Svd).is_err());
        let mut wrong = Dataset::new(2);
        wrong.push(vec![0.0, 0.0], 0.0).unwrap();
        assert!(fit_constant_consequents(&mut fis, &wrong, LstsqMethod::Svd).is_err());
    }

    #[test]
    fn linear_beats_constant_on_sloped_target() {
        // On a smooth slope the linear consequents fit strictly better —
        // the paper's reason for first-order TSK.
        let mk = || {
            TskFis::new(vec![
                TskRule::new(
                    vec![MembershipFunction::gaussian(0.0, 0.4).unwrap()],
                    vec![0.0, 0.0],
                )
                .unwrap(),
                TskRule::new(
                    vec![MembershipFunction::gaussian(1.0, 0.4).unwrap()],
                    vec![0.0, 0.0],
                )
                .unwrap(),
            ])
            .unwrap()
        };
        let mut d = Dataset::new(1);
        for i in 0..60 {
            let x = i as f64 / 59.0;
            d.push(vec![x], 2.0 * x * x).unwrap();
        }
        let mut linear = mk();
        let rl = fit_consequents(&mut linear, &d, LstsqMethod::Svd).unwrap();
        let mut constant = mk();
        let rc = fit_constant_consequents(&mut constant, &d, LstsqMethod::Svd).unwrap();
        assert!(rl < rc, "linear {rl} should beat constant {rc}");
    }
}
