//! Hybrid learning loop (§2.2.3–2.2.4).
//!
//! Each epoch performs:
//!
//! * **forward pass** — "another iteration of the least squares method with
//!   the newly adapted membership functions of the backward pass": the
//!   consequents are re-fitted globally by LSE;
//! * **backward pass** — "a backpropagation of the error … to the layer of
//!   the Gaussian membership functions … using a gradient descent method".
//!
//! The step size follows Jang's heuristics (grow after four consecutive
//! error reductions, shrink after two up-down oscillations), and training
//! stops per the paper "when a degradation of the error for a different
//! check data set is continuously observed" — tracked with a patience
//! counter while remembering the best-on-checking parameters.

use cqm_fuzzy::TskFis;
use cqm_math::linsolve::LstsqMethod;
use cqm_parallel::WorkerPool;
use serde::{Deserialize, Serialize};

use crate::backprop::{apply_premise_step, premise_gradients_with};
use crate::dataset::Dataset;
use crate::lse::fit_consequents_with;
use crate::{rmse_with, AnfisError, Result};
#[cfg(test)]
use crate::rmse;

/// Configuration of the hybrid training loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HybridConfig {
    /// Maximum epochs.
    pub epochs: usize,
    /// Initial gradient step size.
    pub initial_step: f64,
    /// Multiplier applied after 4 consecutive error decreases (Jang: 1.1).
    pub step_increase: f64,
    /// Multiplier applied after 2 up-down oscillations (Jang: 0.9).
    pub step_decrease: f64,
    /// Stop after this many consecutive epochs of rising checking error.
    pub patience: usize,
    /// Least-squares backend for the forward pass.
    pub lstsq: LstsqMethod,
    /// Lower bound for membership widths during descent.
    pub min_sigma: f64,
}

impl Default for HybridConfig {
    fn default() -> Self {
        HybridConfig {
            epochs: 60,
            initial_step: 0.01,
            step_increase: 1.1,
            step_decrease: 0.9,
            patience: 5,
            lstsq: LstsqMethod::Svd,
            min_sigma: 1e-4,
        }
    }
}

impl HybridConfig {
    /// Validate the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`AnfisError::InvalidConfig`] for out-of-domain fields.
    pub fn validate(&self) -> Result<()> {
        if self.epochs == 0 {
            return Err(AnfisError::InvalidConfig {
                name: "epochs",
                value: 0.0,
            });
        }
        if !(self.initial_step > 0.0 && self.initial_step.is_finite()) {
            return Err(AnfisError::InvalidConfig {
                name: "initial_step",
                value: self.initial_step,
            });
        }
        if self.step_increase < 1.0 {
            return Err(AnfisError::InvalidConfig {
                name: "step_increase",
                value: self.step_increase,
            });
        }
        if !(self.step_decrease > 0.0 && self.step_decrease <= 1.0) {
            return Err(AnfisError::InvalidConfig {
                name: "step_decrease",
                value: self.step_decrease,
            });
        }
        if self.patience == 0 {
            return Err(AnfisError::InvalidConfig {
                name: "patience",
                value: 0.0,
            });
        }
        if !(self.min_sigma > 0.0) {
            return Err(AnfisError::InvalidConfig {
                name: "min_sigma",
                value: self.min_sigma,
            });
        }
        Ok(())
    }
}

/// Outcome of a hybrid training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Training RMSE after each epoch.
    pub train_errors: Vec<f64>,
    /// Checking RMSE after each epoch (empty when no check set given).
    pub check_errors: Vec<f64>,
    /// Epoch whose parameters were kept (best on checking set, or last).
    pub best_epoch: usize,
    /// Whether the patience rule fired before the epoch budget ran out.
    pub stopped_early: bool,
    /// Final step size.
    pub final_step: f64,
}

impl TrainReport {
    /// Final training error (of the kept parameters).
    pub fn final_train_error(&self) -> f64 {
        self.train_errors
            .get(self.best_epoch)
            .copied()
            .unwrap_or(f64::INFINITY)
    }

    /// Final checking error (of the kept parameters), if a check set was
    /// used.
    pub fn final_check_error(&self) -> Option<f64> {
        self.check_errors.get(self.best_epoch).copied()
    }
}

/// Run hybrid learning on `fis` in place.
///
/// With `check` provided, the paper's early-stopping rule applies and the
/// parameters kept are the ones that minimized the checking error; without
/// it, training runs the full epoch budget and keeps the last parameters.
///
/// # Errors
///
/// * [`AnfisError::InvalidConfig`] from configuration validation.
/// * [`AnfisError::InvalidData`] if train/check sets are empty or disagree
///   with the FIS dimension.
/// * [`AnfisError::Math`] if the LSE forward pass fails.
pub fn train_hybrid(
    fis: &mut TskFis,
    train: &Dataset,
    check: Option<&Dataset>,
    config: &HybridConfig,
) -> Result<TrainReport> {
    train_hybrid_with(fis, train, check, config, &WorkerPool::serial())
}

/// [`train_hybrid`] on a worker pool. Every epoch stage — the LSE design
/// matrix, both RMSE evaluations and the premise gradients — runs on `pool`
/// with deterministic chunking (see `cqm_parallel`), so the trained
/// parameters and the full [`TrainReport`] are bit-identical at any thread
/// count, including the serial pool used by [`train_hybrid`].
///
/// # Errors
///
/// Same conditions as [`train_hybrid`].
pub fn train_hybrid_with(
    fis: &mut TskFis,
    train: &Dataset,
    check: Option<&Dataset>,
    config: &HybridConfig,
    pool: &WorkerPool,
) -> Result<TrainReport> {
    config.validate()?;
    if let Some(c) = check {
        if c.dim() != train.dim() {
            return Err(AnfisError::InvalidData(
                "train and check dimensions differ".into(),
            ));
        }
    }

    let mut step = config.initial_step;
    let mut train_errors = Vec::with_capacity(config.epochs);
    let mut check_errors = Vec::with_capacity(config.epochs);
    let mut best: Option<(f64, TskFis, usize)> = None;
    let mut rising = 0usize;
    let mut stopped_early = false;
    // Jang step heuristics state.
    let mut decrease_streak = 0usize;
    let mut last_error = f64::INFINITY;
    let mut updown = 0usize;
    let mut last_direction_down = true;

    for epoch in 0..config.epochs {
        // Forward pass: LSE on consequents.
        fit_consequents_with(fis, train, config.lstsq, pool)?;
        let train_err = rmse_with(fis, train, pool);
        train_errors.push(train_err);

        if let Some(c) = check {
            let check_err = rmse_with(fis, c, pool);
            check_errors.push(check_err);
            match &best {
                Some((e, _, _)) if *e <= check_err => {
                    rising += 1;
                    if rising >= config.patience {
                        stopped_early = true;
                    }
                }
                _ => {
                    best = Some((check_err, fis.clone(), epoch));
                    rising = 0;
                }
            }
        } else {
            best = Some((train_err, fis.clone(), epoch));
        }

        if stopped_early {
            break;
        }

        // Step-size heuristics driven by training error.
        let went_down = train_err < last_error;
        if went_down {
            decrease_streak += 1;
            if decrease_streak >= 4 {
                step *= config.step_increase;
                decrease_streak = 0;
            }
        } else {
            decrease_streak = 0;
        }
        if went_down != last_direction_down {
            updown += 1;
            if updown >= 2 {
                step *= config.step_decrease;
                updown = 0;
            }
        }
        last_direction_down = went_down;
        last_error = train_err;

        // Backward pass: gradient descent on the Gaussian premises.
        if epoch + 1 < config.epochs {
            let grads = premise_gradients_with(fis, train, pool)?;
            apply_premise_step(fis, &grads, step, config.min_sigma);
        }
    }

    // lint: allow(PANIC_IN_LIB) -- config.validate rejects epochs == 0, so the loop body assigns best at least once
    let (_, best_fis, best_epoch) = best.expect("at least one epoch ran");
    *fis = best_fis;
    // Re-fit consequents for the restored premises (the stored clone already
    // has them fitted, but make the invariant explicit and cheap to rely on).
    Ok(TrainReport {
        train_errors,
        check_errors,
        best_epoch,
        stopped_early,
        final_step: step,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genfis::{genfis, GenfisParams};

    fn sine_data(n: usize, phase: f64) -> Dataset {
        let mut d = Dataset::new(1);
        for i in 0..n {
            let x = i as f64 / (n - 1) as f64;
            d.push(vec![x], (x * std::f64::consts::TAU + phase).sin())
                .unwrap();
        }
        d
    }

    #[test]
    fn config_validation() {
        assert!(HybridConfig::default().validate().is_ok());
        for bad in [
            HybridConfig {
                epochs: 0,
                ..Default::default()
            },
            HybridConfig {
                initial_step: 0.0,
                ..Default::default()
            },
            HybridConfig {
                step_increase: 0.9,
                ..Default::default()
            },
            HybridConfig {
                step_decrease: 0.0,
                ..Default::default()
            },
            HybridConfig {
                patience: 0,
                ..Default::default()
            },
            HybridConfig {
                min_sigma: 0.0,
                ..Default::default()
            },
        ] {
            assert!(bad.validate().is_err());
        }
    }

    #[test]
    fn training_reduces_error_on_sine() {
        let train = sine_data(80, 0.0);
        let mut fis = genfis(&train, &GenfisParams::with_radius(0.5)).unwrap();
        let before = rmse(&fis, &train);
        let config = HybridConfig {
            epochs: 30,
            ..Default::default()
        };
        let report = train_hybrid(&mut fis, &train, None, &config).unwrap();
        let after = rmse(&fis, &train);
        assert!(
            after <= before + 1e-12,
            "training made things worse: {before} -> {after}"
        );
        assert_eq!(report.train_errors.len(), 30);
        assert!(report.final_train_error().is_finite());
    }

    #[test]
    fn early_stopping_with_check_set() {
        let train = sine_data(40, 0.0);
        // Check set from a *different* phase: checking error will rise once
        // the premises overfit the training phase.
        let check = sine_data(40, 0.9);
        let mut fis = genfis(&train, &GenfisParams::with_radius(0.3)).unwrap();
        let config = HybridConfig {
            epochs: 200,
            initial_step: 0.05,
            patience: 3,
            ..Default::default()
        };
        let report = train_hybrid(&mut fis, &train, Some(&check), &config).unwrap();
        assert!(!report.check_errors.is_empty());
        // The kept epoch must be the argmin of the checking error curve.
        let argmin = report
            .check_errors
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(report.best_epoch, argmin);
        if report.stopped_early {
            assert!(report.check_errors.len() < 200);
        }
    }

    #[test]
    fn kept_parameters_match_best_check_error() {
        let train = sine_data(60, 0.0);
        let check = sine_data(30, 0.3);
        let mut fis = genfis(&train, &GenfisParams::with_radius(0.4)).unwrap();
        let config = HybridConfig {
            epochs: 40,
            ..Default::default()
        };
        let report = train_hybrid(&mut fis, &train, Some(&check), &config).unwrap();
        let kept_err = rmse(&fis, &check);
        let best_recorded = report.final_check_error().unwrap();
        assert!(
            (kept_err - best_recorded).abs() < 1e-9,
            "kept {kept_err} vs recorded {best_recorded}"
        );
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let train = sine_data(20, 0.0);
        let mut check = Dataset::new(2);
        check.push(vec![0.0, 0.0], 0.0).unwrap();
        let mut fis = genfis(&train, &GenfisParams::default()).unwrap();
        assert!(train_hybrid(&mut fis, &train, Some(&check), &HybridConfig::default()).is_err());
    }

    #[test]
    fn single_epoch_is_pure_lse() {
        let train = sine_data(30, 0.0);
        let mut a = genfis(&train, &GenfisParams::with_radius(0.4)).unwrap();
        let mut b = a.clone();
        let config = HybridConfig {
            epochs: 1,
            ..Default::default()
        };
        train_hybrid(&mut a, &train, None, &config).unwrap();
        crate::lse::fit_consequents(&mut b, &train, LstsqMethod::Svd).unwrap();
        // One epoch = one LSE fit, no premise movement.
        for (ra, rb) in a.rules().iter().zip(b.rules()) {
            assert_eq!(ra.antecedents(), rb.antecedents());
            for (ca, cb) in ra.consequent().iter().zip(rb.consequent()) {
                assert!((ca - cb).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn report_accessors_without_check_set() {
        let train = sine_data(25, 0.0);
        let mut fis = genfis(&train, &GenfisParams::default()).unwrap();
        let report = train_hybrid(
            &mut fis,
            &train,
            None,
            &HybridConfig {
                epochs: 5,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(report.final_check_error().is_none());
        assert!(report.check_errors.is_empty());
        assert!(!report.stopped_early);
        assert!(report.final_step > 0.0);
    }
}
