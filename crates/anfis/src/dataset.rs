//! Labeled regression dataset `(input vector, scalar target)`.
//!
//! The paper's training data is "a set of input vectors that were
//! contextually classified. The designated output is assigned to each of the
//! samples" (§2.2) — 1 for a right classification, 0 for a wrong one. The
//! same container carries the classifier's own training data (cues → class
//! index).

use crate::{AnfisError, Result};

/// A dataset of `n`-dimensional inputs with scalar targets.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Dataset {
    dim: usize,
    inputs: Vec<Vec<f64>>,
    targets: Vec<f64>,
}

impl Dataset {
    /// Empty dataset for inputs of dimension `dim`.
    pub fn new(dim: usize) -> Self {
        Dataset {
            dim,
            inputs: Vec::new(),
            targets: Vec::new(),
        }
    }

    /// Build from parallel input/target vectors.
    ///
    /// # Errors
    ///
    /// Returns [`AnfisError::InvalidData`] if lengths differ, inputs are
    /// ragged, or any value is non-finite.
    pub fn from_vecs(inputs: Vec<Vec<f64>>, targets: Vec<f64>) -> Result<Self> {
        if inputs.len() != targets.len() {
            return Err(AnfisError::InvalidData(format!(
                "{} inputs but {} targets",
                inputs.len(),
                targets.len()
            )));
        }
        if inputs.is_empty() {
            return Err(AnfisError::InvalidData("empty dataset".into()));
        }
        let dim = inputs[0].len();
        let mut ds = Dataset::new(dim);
        for (x, y) in inputs.into_iter().zip(targets) {
            ds.push(x, y)?;
        }
        Ok(ds)
    }

    /// Append one sample.
    ///
    /// # Errors
    ///
    /// Returns [`AnfisError::InvalidData`] on dimension mismatch or
    /// non-finite values.
    pub fn push(&mut self, input: Vec<f64>, target: f64) -> Result<()> {
        if input.len() != self.dim {
            return Err(AnfisError::InvalidData(format!(
                "input has dimension {}, dataset expects {}",
                input.len(),
                self.dim
            )));
        }
        if input.iter().any(|x| !x.is_finite()) || !target.is_finite() {
            return Err(AnfisError::InvalidData(
                "non-finite value in sample".into(),
            ));
        }
        self.inputs.push(input);
        self.targets.push(target);
        Ok(())
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// Whether the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Input rows.
    pub fn inputs(&self) -> &[Vec<f64>] {
        &self.inputs
    }

    /// Targets.
    pub fn targets(&self) -> &[f64] {
        &self.targets
    }

    /// Iterate over `(input, target)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[f64], f64)> + '_ {
        self.inputs
            .iter()
            .map(Vec::as_slice)
            .zip(self.targets.iter().copied())
    }

    /// Deterministically shuffle the samples with an xorshift generator
    /// seeded by `seed` (Fisher–Yates).
    pub fn shuffle(&mut self, seed: u64) {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in (1..self.inputs.len()).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            self.inputs.swap(i, j);
            self.targets.swap(i, j);
        }
    }

    /// Split into `(front, back)` with `frac` of the samples (rounded down,
    /// at least 1) in the front part. Order is preserved — shuffle first if
    /// the data is sorted.
    ///
    /// # Errors
    ///
    /// Returns [`AnfisError::InvalidData`] if fewer than 2 samples or `frac`
    /// is not strictly inside (0, 1).
    pub fn split(&self, frac: f64) -> Result<(Dataset, Dataset)> {
        if self.len() < 2 {
            return Err(AnfisError::InvalidData(
                "need at least 2 samples to split".into(),
            ));
        }
        if !(frac > 0.0 && frac < 1.0) {
            return Err(AnfisError::InvalidData(format!(
                "split fraction {frac} not in (0, 1)"
            )));
        }
        let k = ((self.len() as f64 * frac) as usize).clamp(1, self.len() - 1);
        let front = Dataset {
            dim: self.dim,
            inputs: self.inputs[..k].to_vec(),
            targets: self.targets[..k].to_vec(),
        };
        let back = Dataset {
            dim: self.dim,
            inputs: self.inputs[k..].to_vec(),
            targets: self.targets[k..].to_vec(),
        };
        Ok((front, back))
    }

    /// The joint `[input…, target]` rows used by clustering-based structure
    /// identification (genfis clusters the product space `X × Y`).
    pub fn joint_rows(&self) -> Vec<Vec<f64>> {
        self.iter()
            .map(|(x, y)| {
                let mut row = x.to_vec();
                row.push(y);
                row
            })
            .collect()
    }
}

impl Extend<(Vec<f64>, f64)> for Dataset {
    fn extend<T: IntoIterator<Item = (Vec<f64>, f64)>>(&mut self, iter: T) {
        for (x, y) in iter {
            // lint: allow(PANIC_IN_LIB) -- Extend cannot return Result; the panic message names the contract callers accept
            self.push(x, y).expect("extend with valid samples");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        let mut d = Dataset::new(2);
        for i in 0..10 {
            d.push(vec![i as f64, -(i as f64)], i as f64 * 2.0).unwrap();
        }
        d
    }

    #[test]
    fn push_and_validation() {
        let mut d = Dataset::new(2);
        assert!(d.push(vec![1.0], 0.0).is_err());
        assert!(d.push(vec![1.0, f64::NAN], 0.0).is_err());
        assert!(d.push(vec![1.0, 2.0], f64::INFINITY).is_err());
        assert!(d.push(vec![1.0, 2.0], 3.0).is_ok());
        assert_eq!(d.len(), 1);
        assert!(!d.is_empty());
        assert_eq!(d.dim(), 2);
    }

    #[test]
    fn from_vecs_checks_lengths() {
        assert!(Dataset::from_vecs(vec![vec![1.0]], vec![]).is_err());
        assert!(Dataset::from_vecs(vec![], vec![]).is_err());
        let d = Dataset::from_vecs(vec![vec![1.0], vec![2.0]], vec![0.0, 1.0]).unwrap();
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn split_preserves_samples() {
        let d = sample();
        let (a, b) = d.split(0.7).unwrap();
        assert_eq!(a.len(), 7);
        assert_eq!(b.len(), 3);
        assert_eq!(a.inputs()[0], d.inputs()[0]);
        assert_eq!(b.targets()[0], d.targets()[7]);
    }

    #[test]
    fn split_validation() {
        let d = sample();
        assert!(d.split(0.0).is_err());
        assert!(d.split(1.0).is_err());
        let mut tiny = Dataset::new(1);
        tiny.push(vec![0.0], 0.0).unwrap();
        assert!(tiny.split(0.5).is_err());
        // Extreme but valid fraction still leaves both halves non-empty.
        let (a, b) = d.split(0.01).unwrap();
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 9);
    }

    #[test]
    fn shuffle_is_permutation_and_deterministic() {
        let mut a = sample();
        let mut b = sample();
        a.shuffle(42);
        b.shuffle(42);
        assert_eq!(a, b);
        let mut c = sample();
        c.shuffle(43);
        assert_ne!(a, c);
        // Same multiset of targets.
        let mut ta = a.targets().to_vec();
        let mut t0 = sample().targets().to_vec();
        ta.sort_by(|x, y| x.total_cmp(y));
        t0.sort_by(|x, y| x.total_cmp(y));
        assert_eq!(ta, t0);
    }

    #[test]
    fn joint_rows_append_target() {
        let d = sample();
        let rows = d.joint_rows();
        assert_eq!(rows[3], vec![3.0, -3.0, 6.0]);
        assert_eq!(rows.len(), d.len());
    }

    #[test]
    fn iter_pairs() {
        let d = sample();
        let pairs: Vec<_> = d.iter().collect();
        assert_eq!(pairs[2].0, &[2.0, -2.0]);
        assert_eq!(pairs[2].1, 4.0);
    }

    #[test]
    fn extend_appends() {
        let mut d = Dataset::new(1);
        d.extend([(vec![1.0], 2.0), (vec![3.0], 4.0)]);
        assert_eq!(d.len(), 2);
    }
}
