//! Initial FIS generation from data (§2.2.1–2.2.2), mirroring the classic
//! `genfis2` procedure:
//!
//! 1. subtractive clustering of the **joint** `[input…, target]` space gives
//!    the rule count `m` and one cluster center per rule;
//! 2. each rule gets per-input Gaussian membership functions centered at the
//!    cluster's input coordinates with width
//!    `σ_d = r_a · range_d / √8` (Chiu's heuristic — the radius expressed in
//!    each dimension's units);
//! 3. the linear consequents are fitted by one global least-squares solve
//!    (the paper uses SVD).

// lint: allow(PANIC_IN_LIB, file) -- cluster-to-rule mapping indexes shapes produced by the validated clustering step

use cqm_cluster::subtractive::{SubtractiveClustering, SubtractiveParams};
use cqm_fuzzy::{MembershipFunction, TskFis, TskRule};
use cqm_math::linsolve::LstsqMethod;
use cqm_parallel::WorkerPool;

use crate::dataset::Dataset;
use crate::lse::fit_consequents_with;
use crate::{AnfisError, Result};

/// Parameters of the automated FIS generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenfisParams {
    /// Subtractive clustering parameters (radius, squash, accept/reject).
    pub clustering: SubtractiveParams,
    /// Backend for the consequent least-squares fit (paper: SVD).
    pub lstsq: LstsqMethod,
    /// Lower bound on membership widths as a fraction of the dimension
    /// range, protecting against degenerate clusters.
    pub min_sigma_fraction: f64,
}

impl Default for GenfisParams {
    fn default() -> Self {
        GenfisParams {
            clustering: SubtractiveParams::default(),
            lstsq: LstsqMethod::Svd,
            min_sigma_fraction: 1e-3,
        }
    }
}

impl GenfisParams {
    /// Convenience: default parameters with a different cluster radius.
    pub fn with_radius(radius: f64) -> Self {
        GenfisParams {
            clustering: SubtractiveParams {
                radius,
                ..SubtractiveParams::default()
            },
            ..GenfisParams::default()
        }
    }
}

/// Generate an initial TSK FIS from data: structure by subtractive
/// clustering, consequents by least squares.
///
/// # Errors
///
/// * [`AnfisError::InvalidData`] for an empty dataset.
/// * [`AnfisError::Cluster`] if clustering fails.
/// * [`AnfisError::Math`] if the least-squares fit fails.
pub fn genfis(data: &Dataset, params: &GenfisParams) -> Result<TskFis> {
    genfis_with(data, params, &WorkerPool::serial())
}

/// [`genfis`] on a worker pool: the subtractive-clustering potential field
/// and the consequent least-squares design matrix are computed in parallel.
/// Both stages are deterministic in the thread count, so the generated FIS
/// is bit-identical to the serial build.
///
/// # Errors
///
/// Same conditions as [`genfis`].
pub fn genfis_with(data: &Dataset, params: &GenfisParams, pool: &WorkerPool) -> Result<TskFis> {
    if data.is_empty() {
        return Err(AnfisError::InvalidData("empty dataset".into()));
    }
    let joint = data.joint_rows();
    let clustering = SubtractiveClustering::new(params.clustering);
    let result = clustering.cluster_with(&joint, pool)?;

    let n = data.dim();
    // Chiu's width heuristic: sigma = ra * range / sqrt(8), per dimension,
    // computed over the *input* dimensions of the joint space.
    let ranges = result.scaler.ranges();
    let radius = params.clustering.radius;
    let mut rules = Vec::with_capacity(result.centers.len());
    for center in &result.centers {
        let mut antecedents = Vec::with_capacity(n);
        for d in 0..n {
            let sigma = (radius * ranges[d] / 8.0f64.sqrt())
                .max(params.min_sigma_fraction * ranges[d])
                .max(f64::MIN_POSITIVE.sqrt());
            antecedents.push(MembershipFunction::gaussian(center[d], sigma)?);
        }
        rules.push(TskRule::new(antecedents, vec![0.0; n + 1])?);
    }
    let mut fis = TskFis::new(rules)?;
    fit_consequents_with(&mut fis, data, params.lstsq, pool)?;
    Ok(fis)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rmse;

    fn function_data<F: Fn(f64) -> f64>(f: F, n: usize) -> Dataset {
        let mut d = Dataset::new(1);
        for i in 0..n {
            let x = i as f64 / (n - 1) as f64;
            d.push(vec![x], f(x)).unwrap();
        }
        d
    }

    #[test]
    fn linear_function_learned_exactly() {
        let d = function_data(|x| 2.0 * x + 1.0, 40);
        let fis = genfis(&d, &GenfisParams::default()).unwrap();
        assert!(rmse(&fis, &d) < 1e-6);
    }

    #[test]
    fn sine_learned_with_small_radius() {
        let d = function_data(|x| (x * std::f64::consts::TAU).sin(), 120);
        let fis = genfis(&d, &GenfisParams::with_radius(0.25)).unwrap();
        let err = rmse(&fis, &d);
        assert!(err < 0.12, "rmse = {err}");
        assert!(fis.rule_count() >= 2);
    }

    #[test]
    fn smaller_radius_more_rules() {
        let d = function_data(|x| (x * 9.0).sin(), 150);
        let coarse = genfis(&d, &GenfisParams::with_radius(0.8)).unwrap();
        let fine = genfis(&d, &GenfisParams::with_radius(0.2)).unwrap();
        assert!(fine.rule_count() >= coarse.rule_count());
        assert!(rmse(&fine, &d) <= rmse(&coarse, &d) + 1e-9);
    }

    #[test]
    fn two_dimensional_surface() {
        let mut d = Dataset::new(2);
        for i in 0..15 {
            for j in 0..15 {
                let x = i as f64 / 14.0;
                let y = j as f64 / 14.0;
                d.push(vec![x, y], x * y + 0.5 * x).unwrap();
            }
        }
        let fis = genfis(&d, &GenfisParams::with_radius(0.4)).unwrap();
        let err = rmse(&fis, &d);
        assert!(err < 0.05, "rmse = {err}");
    }

    #[test]
    fn rule_memberships_centered_on_clusters() {
        // Two flat plateaus -> two clusters -> rule centers near 0.25/0.75.
        let mut d = Dataset::new(1);
        for i in 0..40 {
            let x = i as f64 / 39.0 * 0.2 + 0.15;
            d.push(vec![x], 0.0).unwrap();
            let x2 = i as f64 / 39.0 * 0.2 + 0.65;
            d.push(vec![x2], 1.0).unwrap();
        }
        let fis = genfis(&d, &GenfisParams::with_radius(0.5)).unwrap();
        assert_eq!(fis.rule_count(), 2);
        let mut centers: Vec<f64> = fis
            .rules()
            .iter()
            .map(|r| r.antecedents()[0].center())
            .collect();
        centers.sort_by(|a, b| a.total_cmp(b));
        assert!((centers[0] - 0.25).abs() < 0.1, "{centers:?}");
        assert!((centers[1] - 0.75).abs() < 0.1, "{centers:?}");
    }

    #[test]
    fn empty_data_rejected() {
        assert!(genfis(&Dataset::new(1), &GenfisParams::default()).is_err());
    }

    #[test]
    fn constant_target_handled() {
        // Degenerate target dimension must not produce zero sigmas.
        let d = function_data(|_| 1.0, 30);
        let fis = genfis(&d, &GenfisParams::default()).unwrap();
        assert!(rmse(&fis, &d) < 1e-8);
    }
}

/// Build an initial FIS from externally supplied cluster centers in the
/// **joint** `[input…, target]` space (e.g. mountain clustering for the
/// ABL-CLUST ablation). Width heuristic and consequent fit are identical to
/// [`genfis`].
///
/// # Errors
///
/// * [`AnfisError::InvalidData`] for an empty dataset, no centers, or
///   centers of the wrong dimension.
/// * [`AnfisError::Math`] if the least-squares fit fails.
pub fn genfis_from_centers(
    data: &Dataset,
    centers: &[Vec<f64>],
    params: &GenfisParams,
) -> Result<TskFis> {
    if data.is_empty() {
        return Err(AnfisError::InvalidData("empty dataset".into()));
    }
    if centers.is_empty() {
        return Err(AnfisError::InvalidData("no cluster centers".into()));
    }
    let n = data.dim();
    if centers.iter().any(|c| c.len() != n + 1) {
        return Err(AnfisError::InvalidData(format!(
            "centers must live in the joint space of dimension {}",
            n + 1
        )));
    }
    // Per-dimension ranges over the inputs for the width heuristic.
    let mut lo = vec![f64::INFINITY; n];
    let mut hi = vec![f64::NEG_INFINITY; n];
    for (x, _) in data.iter() {
        for d in 0..n {
            lo[d] = lo[d].min(x[d]);
            hi[d] = hi[d].max(x[d]);
        }
    }
    let radius = params.clustering.radius;
    let mut rules = Vec::with_capacity(centers.len());
    for center in centers {
        let mut antecedents = Vec::with_capacity(n);
        for d in 0..n {
            let range = (hi[d] - lo[d]).max(f64::MIN_POSITIVE.sqrt());
            let sigma = (radius * range / 8.0f64.sqrt())
                .max(params.min_sigma_fraction * range)
                .max(f64::MIN_POSITIVE.sqrt());
            antecedents.push(MembershipFunction::gaussian(center[d], sigma)?);
        }
        rules.push(TskRule::new(antecedents, vec![0.0; n + 1])?);
    }
    let mut fis = TskFis::new(rules)?;
    fit_consequents_with(&mut fis, data, params.lstsq, &WorkerPool::serial())?;
    Ok(fis)
}

#[cfg(test)]
mod center_tests {
    use super::*;
    use crate::rmse;

    #[test]
    fn external_centers_fit_line() {
        let mut d = Dataset::new(1);
        for i in 0..50 {
            let x = i as f64 / 49.0;
            d.push(vec![x], 3.0 * x).unwrap();
        }
        let centers = vec![vec![0.2, 0.6], vec![0.8, 2.4]];
        let fis = genfis_from_centers(&d, &centers, &GenfisParams::default()).unwrap();
        assert!(rmse(&fis, &d) < 1e-6);
        assert_eq!(fis.rule_count(), 2);
    }

    #[test]
    fn center_validation() {
        let mut d = Dataset::new(1);
        d.push(vec![0.0], 0.0).unwrap();
        let p = GenfisParams::default();
        assert!(genfis_from_centers(&Dataset::new(1), &[vec![0.0, 0.0]], &p).is_err());
        assert!(genfis_from_centers(&d, &[], &p).is_err());
        assert!(genfis_from_centers(&d, &[vec![0.0]], &p).is_err());
    }
}
