//! Backward pass of hybrid learning (§2.2.4): analytic gradients of the
//! squared error with respect to the Gaussian premise parameters.
//!
//! For output `ŷ = Σ_j w_j f_j / Σ_j w_j` with product-T-norm firing
//! `w_j = Π_i F_ij(v_i)` and instantaneous error `E = ½ (ŷ − y)²`:
//!
//! ```text
//! ∂E/∂p_ij = (ŷ − y) · (f_j − ŷ)/Σw · (w_j / F_ij) · ∂F_ij/∂p
//! ```
//!
//! where `p ∈ {µ, σ}` and `w_j / F_ij` is the product of the *other*
//! memberships of rule `j` (computed by division with an underflow guard).

// analyze: hot-path

// lint: allow(PANIC_IN_LIB, file) -- gradient buffers are allocated to the FIS shape before the update loops

use cqm_fuzzy::TskFis;
use cqm_parallel::{WorkerPool, REDUCE_CHUNK};

use crate::dataset::Dataset;
use crate::{AnfisError, Result};

/// Accumulated premise gradients: `grads[j][i] = (∂E/∂µ_ij, ∂E/∂σ_ij)`.
#[derive(Debug, Clone, PartialEq)]
pub struct PremiseGradients {
    /// Per-rule, per-input parameter gradients.
    pub grads: Vec<Vec<(f64, f64)>>,
    /// Sum of squared instantaneous errors over the contributing samples.
    pub sse: f64,
    /// Number of samples that contributed (fired at least one rule).
    pub samples: usize,
}

impl PremiseGradients {
    fn zeros(rules: usize, inputs: usize) -> Self {
        PremiseGradients {
            grads: vec![vec![(0.0, 0.0); inputs]; rules],
            sse: 0.0,
            samples: 0,
        }
    }

    /// Euclidean norm of the full gradient vector (used for step-size
    /// normalization in the Jang update).
    pub fn norm(&self) -> f64 {
        self.grads
            .iter()
            .flatten()
            .map(|(a, b)| a * a + b * b)
            .sum::<f64>()
            .sqrt()
    }
}

/// Accumulate premise gradients of `fis` over the whole dataset (batch
/// gradient). Samples where no rule fires are skipped.
///
/// # Errors
///
/// * [`AnfisError::InvalidData`] if the dataset is empty, disagrees on
///   dimension, or no sample fires any rule.
pub fn premise_gradients(fis: &TskFis, data: &Dataset) -> Result<PremiseGradients> {
    premise_gradients_with(fis, data, &WorkerPool::serial())
}

/// Accumulate one sample into `acc` — the inner body shared verbatim by
/// every chunk, so chunked and sequential accumulation perform the same
/// operations in the same order within a chunk.
fn accumulate_sample(fis: &TskFis, x: &[f64], y: f64, acc: &mut PremiseGradients) {
    let eval = match fis.eval_detailed(x) {
        Ok(e) => e,
        Err(_) => return,
    };
    let total_w: f64 = eval.firing.iter().sum();
    let err = eval.output - y;
    acc.sse += err * err;
    acc.samples += 1;
    for (j, rule) in fis.rules().iter().enumerate() {
        let wj = eval.firing[j];
        if wj <= 0.0 {
            continue;
        }
        // dE/dw_j = err * (f_j - ŷ) / Σw
        let de_dwj = err * (eval.consequent_values[j] - eval.output) / total_w;
        for (i, mf) in rule.antecedents().iter().enumerate() {
            let fij = mf.eval(x[i]);
            if fij < 1e-150 {
                continue; // underflow guard: w_j / F_ij would explode
            }
            let others = wj / fij;
            if let Some((dmu, dsigma)) = mf.gaussian_grad(x[i]) {
                acc.grads[j][i].0 += de_dwj * others * dmu;
                acc.grads[j][i].1 += de_dwj * others * dsigma;
            }
        }
    }
}

/// [`premise_gradients`] on a worker pool. Samples are split into fixed
/// [`REDUCE_CHUNK`]-sized chunks (a pure function of the dataset length,
/// never of the thread count); each chunk accumulates sequentially and the
/// partials are folded strictly in chunk order, so the result is
/// bit-identical at any thread count. Datasets of at most `REDUCE_CHUNK`
/// samples reduce in a single chunk — exactly the plain sequential loop.
///
/// # Errors
///
/// Same conditions as [`premise_gradients`].
pub fn premise_gradients_with(
    fis: &TskFis,
    data: &Dataset,
    pool: &WorkerPool,
) -> Result<PremiseGradients> {
    if data.is_empty() {
        return Err(AnfisError::InvalidData("empty dataset".into()));
    }
    if data.dim() != fis.input_dim() {
        return Err(AnfisError::InvalidData(format!(
            "dataset dimension {} does not match FIS input dimension {}",
            data.dim(),
            fis.input_dim()
        )));
    }
    let m = fis.rule_count();
    let n = fis.input_dim();
    let inputs = data.inputs();
    let targets = data.targets();
    let partials = pool.run_chunks(data.len(), REDUCE_CHUNK, |chunk| {
        let mut part = PremiseGradients::zeros(m, n);
        for idx in chunk.start..chunk.end {
            accumulate_sample(fis, &inputs[idx], targets[idx], &mut part);
        }
        part
    });
    let mut it = partials.into_iter();
    // A non-empty dataset always yields at least one chunk.
    let mut acc = it.next().unwrap_or_else(|| PremiseGradients::zeros(m, n));
    for part in it {
        acc.sse += part.sse;
        acc.samples += part.samples;
        for (row, prow) in acc.grads.iter_mut().zip(&part.grads) {
            for (g, pg) in row.iter_mut().zip(prow) {
                g.0 += pg.0;
                g.1 += pg.1;
            }
        }
    }
    if acc.samples == 0 {
        return Err(AnfisError::InvalidData(
            "no sample activates any rule".into(),
        ));
    }
    Ok(acc)
}

/// Apply one normalized gradient-descent step to the Gaussian premises:
/// `p ← p − step · g / ‖g‖` (Jang's update). `sigma` is clamped from below
/// at `min_sigma` to keep memberships well defined.
pub fn apply_premise_step(fis: &mut TskFis, grads: &PremiseGradients, step: f64, min_sigma: f64) {
    let norm = grads.norm();
    // lint: allow(NAN_UNSAFE_CMP) -- an exactly-zero (or non-finite) gradient norm means no usable step; skipping is the correct update
    if norm == 0.0 || !norm.is_finite() {
        return;
    }
    let scale = step / norm;
    for (rule, rule_grads) in fis.rules_mut().iter_mut().zip(&grads.grads) {
        for (mf, &(gmu, gsigma)) in rule.antecedents_mut().iter_mut().zip(rule_grads) {
            if let cqm_fuzzy::MembershipFunction::Gaussian { mu, sigma } = mf {
                *mu -= scale * gmu;
                *sigma = (*sigma - scale * gsigma).max(min_sigma);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqm_fuzzy::{MembershipFunction, TskRule};

    fn fis_2rule() -> TskFis {
        TskFis::new(vec![
            TskRule::new(
                vec![MembershipFunction::gaussian(0.2, 0.3).unwrap()],
                vec![1.0, 0.0],
            )
            .unwrap(),
            TskRule::new(
                vec![MembershipFunction::gaussian(0.8, 0.3).unwrap()],
                vec![-1.0, 1.0],
            )
            .unwrap(),
        ])
        .unwrap()
    }

    fn dataset_from(fis_target: &TskFis, n: usize) -> Dataset {
        let mut d = Dataset::new(1);
        for i in 0..n {
            let x = i as f64 / (n - 1) as f64;
            d.push(vec![x], fis_target.eval(&[x]).unwrap()).unwrap();
        }
        d
    }

    #[test]
    fn gradients_match_finite_differences() {
        let fis = fis_2rule();
        let mut d = Dataset::new(1);
        for i in 0..15 {
            let x = i as f64 / 14.0;
            d.push(vec![x], (x * 3.0).sin()).unwrap();
        }
        let g = premise_gradients(&fis, &d).unwrap();
        // Finite-difference check on every (rule, param).
        let h = 1e-6;
        let sse = |f: &TskFis| {
            d.iter()
                .map(|(x, y)| {
                    let e = f.eval(x).unwrap() - y;
                    e * e
                })
                .sum::<f64>()
        };
        for j in 0..2 {
            // mu
            let mut fp = fis.clone();
            let mut fm = fis.clone();
            if let cqm_fuzzy::MembershipFunction::Gaussian { mu, .. } =
                &mut fp.rules_mut()[j].antecedents_mut()[0]
            {
                *mu += h;
            }
            if let cqm_fuzzy::MembershipFunction::Gaussian { mu, .. } =
                &mut fm.rules_mut()[j].antecedents_mut()[0]
            {
                *mu -= h;
            }
            // E = ½ Σ e² so dE/dp = ½ d(sse)/dp
            let fd_mu = 0.5 * (sse(&fp) - sse(&fm)) / (2.0 * h);
            assert!(
                (g.grads[j][0].0 - fd_mu).abs() < 1e-5,
                "rule {j} mu: analytic {} vs fd {}",
                g.grads[j][0].0,
                fd_mu
            );
            // sigma
            let mut fp = fis.clone();
            let mut fm = fis.clone();
            if let cqm_fuzzy::MembershipFunction::Gaussian { sigma, .. } =
                &mut fp.rules_mut()[j].antecedents_mut()[0]
            {
                *sigma += h;
            }
            if let cqm_fuzzy::MembershipFunction::Gaussian { sigma, .. } =
                &mut fm.rules_mut()[j].antecedents_mut()[0]
            {
                *sigma -= h;
            }
            let fd_sigma = 0.5 * (sse(&fp) - sse(&fm)) / (2.0 * h);
            assert!(
                (g.grads[j][0].1 - fd_sigma).abs() < 1e-5,
                "rule {j} sigma: analytic {} vs fd {}",
                g.grads[j][0].1,
                fd_sigma
            );
        }
    }

    #[test]
    fn zero_error_zero_gradient() {
        let fis = fis_2rule();
        let d = dataset_from(&fis, 20);
        let g = premise_gradients(&fis, &d).unwrap();
        assert!(g.sse < 1e-20);
        assert!(g.norm() < 1e-10);
    }

    #[test]
    fn gradient_step_reduces_error() {
        let fis0 = fis_2rule();
        // Perturb the premises, then check one descent step helps.
        let mut fis = fis0.clone();
        if let cqm_fuzzy::MembershipFunction::Gaussian { mu, .. } =
            &mut fis.rules_mut()[0].antecedents_mut()[0]
        {
            *mu += 0.15;
        }
        let d = dataset_from(&fis0, 30);
        let g = premise_gradients(&fis, &d).unwrap();
        let before = g.sse;
        apply_premise_step(&mut fis, &g, 0.02, 1e-6);
        let after = premise_gradients(&fis, &d).unwrap().sse;
        assert!(after < before, "sse {before} -> {after}");
    }

    #[test]
    fn sigma_clamped_at_minimum() {
        let mut fis = fis_2rule();
        let mut g = PremiseGradients::zeros(2, 1);
        g.grads[0][0] = (0.0, 1.0); // push sigma down hard
        g.samples = 1;
        apply_premise_step(&mut fis, &g, 10.0, 1e-3);
        if let cqm_fuzzy::MembershipFunction::Gaussian { sigma, .. } =
            &fis.rules()[0].antecedents()[0]
        {
            assert!(*sigma >= 1e-3);
        } else {
            panic!("expected gaussian");
        }
    }

    #[test]
    fn validation_errors() {
        let fis = fis_2rule();
        assert!(premise_gradients(&fis, &Dataset::new(1)).is_err());
        let mut wrong = Dataset::new(2);
        wrong.push(vec![0.0, 0.0], 0.0).unwrap();
        assert!(premise_gradients(&fis, &wrong).is_err());
        let mut far = Dataset::new(1);
        far.push(vec![1.0e6], 0.0).unwrap();
        assert!(premise_gradients(&fis, &far).is_err());
    }

    #[test]
    fn zero_gradient_step_is_noop() {
        let mut fis = fis_2rule();
        let snapshot = fis.clone();
        let g = PremiseGradients::zeros(2, 1);
        apply_premise_step(&mut fis, &g, 0.1, 1e-6);
        assert_eq!(fis, snapshot);
    }
}
