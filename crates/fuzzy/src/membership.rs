//! Parametric membership functions with analytic derivatives.
//!
//! The paper's FISs use Gaussian memberships exclusively (§2.1.2); ANFIS
//! hybrid learning (§2.2.4) additionally needs the partial derivatives of the
//! membership value with respect to its parameters, which are provided here
//! in closed form for the Gaussian shape.

use serde::{Deserialize, Serialize};

use crate::{FuzzyError, Result};

/// A parametric membership function `F: ℝ → [0, 1]`.
///
/// ```
/// use cqm_fuzzy::membership::MembershipFunction;
/// let g = MembershipFunction::gaussian(0.5, 0.1).unwrap();
/// assert!((g.eval(0.5) - 1.0).abs() < 1e-15);
/// assert!(g.eval(0.8) < 0.02);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MembershipFunction {
    /// `exp(−(x−µ)² / (2σ²))` — the paper's shape.
    Gaussian {
        /// Center.
        mu: f64,
        /// Width (strictly positive).
        sigma: f64,
    },
    /// Triangle with feet `a`, `c` and apex `b`.
    Triangular {
        /// Left foot.
        a: f64,
        /// Apex.
        b: f64,
        /// Right foot.
        c: f64,
    },
    /// Trapezoid with feet `a`, `d` and plateau `[b, c]`.
    Trapezoidal {
        /// Left foot.
        a: f64,
        /// Plateau start.
        b: f64,
        /// Plateau end.
        c: f64,
        /// Right foot.
        d: f64,
    },
    /// Generalized bell `1 / (1 + |(x−c)/a|^(2b))`.
    Bell {
        /// Half-width.
        a: f64,
        /// Slope exponent.
        b: f64,
        /// Center.
        c: f64,
    },
    /// Sigmoid `1 / (1 + exp(−a (x−c)))`.
    Sigmoid {
        /// Slope.
        a: f64,
        /// Inflection point.
        c: f64,
    },
}

impl MembershipFunction {
    /// Gaussian membership `exp(−(x−µ)²/(2σ²))`.
    ///
    /// # Errors
    ///
    /// Returns [`FuzzyError::InvalidParameter`] unless `sigma > 0` and both
    /// parameters are finite.
    pub fn gaussian(mu: f64, sigma: f64) -> Result<Self> {
        if !mu.is_finite() {
            return Err(FuzzyError::InvalidParameter {
                name: "mu",
                value: mu,
            });
        }
        if !(sigma.is_finite() && sigma > 0.0) {
            return Err(FuzzyError::InvalidParameter {
                name: "sigma",
                value: sigma,
            });
        }
        Ok(MembershipFunction::Gaussian { mu, sigma })
    }

    /// Triangular membership.
    ///
    /// # Errors
    ///
    /// Returns [`FuzzyError::InvalidParameter`] unless `a <= b <= c` with
    /// `a < c`.
    pub fn triangular(a: f64, b: f64, c: f64) -> Result<Self> {
        if !(a <= b && b <= c && a < c) {
            return Err(FuzzyError::InvalidParameter {
                name: "triangular a<=b<=c",
                value: b,
            });
        }
        Ok(MembershipFunction::Triangular { a, b, c })
    }

    /// Trapezoidal membership.
    ///
    /// # Errors
    ///
    /// Returns [`FuzzyError::InvalidParameter`] unless `a <= b <= c <= d`
    /// with `a < d`.
    pub fn trapezoidal(a: f64, b: f64, c: f64, d: f64) -> Result<Self> {
        if !(a <= b && b <= c && c <= d && a < d) {
            return Err(FuzzyError::InvalidParameter {
                name: "trapezoidal a<=b<=c<=d",
                value: b,
            });
        }
        Ok(MembershipFunction::Trapezoidal { a, b, c, d })
    }

    /// Generalized bell membership.
    ///
    /// # Errors
    ///
    /// Returns [`FuzzyError::InvalidParameter`] unless `a > 0` and `b > 0`.
    pub fn bell(a: f64, b: f64, c: f64) -> Result<Self> {
        if !(a.is_finite() && a > 0.0) {
            return Err(FuzzyError::InvalidParameter { name: "a", value: a });
        }
        if !(b.is_finite() && b > 0.0) {
            return Err(FuzzyError::InvalidParameter { name: "b", value: b });
        }
        Ok(MembershipFunction::Bell { a, b, c })
    }

    /// Sigmoid membership.
    ///
    /// # Errors
    ///
    /// Returns [`FuzzyError::InvalidParameter`] if `a` or `c` is not finite.
    pub fn sigmoid(a: f64, c: f64) -> Result<Self> {
        if !a.is_finite() {
            return Err(FuzzyError::InvalidParameter { name: "a", value: a });
        }
        if !c.is_finite() {
            return Err(FuzzyError::InvalidParameter { name: "c", value: c });
        }
        Ok(MembershipFunction::Sigmoid { a, c })
    }

    /// Membership degree at `x`, always in `[0, 1]`.
    pub fn eval(&self, x: f64) -> f64 {
        if cfg!(feature = "strict-math") {
            debug_assert!(!x.is_nan(), "membership eval: NaN input");
        }
        match *self {
            MembershipFunction::Gaussian { mu, sigma } => {
                let z = (x - mu) / sigma;
                (-0.5 * z * z).exp()
            }
            MembershipFunction::Triangular { a, b, c } => {
                if x <= a || x >= c {
                    // The apex may coincide with a foot (right-angled
                    // triangle); the apex itself still has membership 1.
                    if x == b {
                        1.0
                    } else {
                        0.0
                    }
                } else if x == b {
                    1.0
                } else if x < b {
                    (x - a) / (b - a)
                } else {
                    (c - x) / (c - b)
                }
            }
            MembershipFunction::Trapezoidal { a, b, c, d } => {
                if (b..=c).contains(&x) {
                    1.0
                } else if x <= a || x >= d {
                    0.0
                } else if x < b {
                    (x - a) / (b - a)
                } else {
                    (d - x) / (d - c)
                }
            }
            MembershipFunction::Bell { a, b, c } => {
                let z = ((x - c) / a).abs();
                1.0 / (1.0 + z.powf(2.0 * b))
            }
            MembershipFunction::Sigmoid { a, c } => 1.0 / (1.0 + (-a * (x - c)).exp()),
        }
    }

    /// Partial derivatives `(∂F/∂µ, ∂F/∂σ)` of a Gaussian membership at `x`,
    /// used by the ANFIS backward pass. Returns `None` for non-Gaussian
    /// shapes (only Gaussians are tuned by hybrid learning in this
    /// reproduction, matching the paper).
    // lint: allow(ASSERT_DENSITY) -- gradients are defined for all real x; eval guards NaN under strict-math
    pub fn gaussian_grad(&self, x: f64) -> Option<(f64, f64)> {
        match *self {
            MembershipFunction::Gaussian { mu, sigma } => {
                let f = self.eval(x);
                let d = x - mu;
                let dmu = f * d / (sigma * sigma);
                let dsigma = f * d * d / (sigma * sigma * sigma);
                Some((dmu, dsigma))
            }
            _ => None,
        }
    }

    /// The center of the membership function (apex / plateau midpoint /
    /// inflection point), used for rule ordering and verbalization.
    pub fn center(&self) -> f64 {
        match *self {
            MembershipFunction::Gaussian { mu, .. } => mu,
            MembershipFunction::Triangular { b, .. } => b,
            MembershipFunction::Trapezoidal { b, c, .. } => 0.5 * (b + c),
            MembershipFunction::Bell { c, .. } => c,
            MembershipFunction::Sigmoid { c, .. } => c,
        }
    }
}

impl std::fmt::Display for MembershipFunction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            MembershipFunction::Gaussian { mu, sigma } => {
                write!(f, "gauss(mu={mu:.4}, sigma={sigma:.4})")
            }
            MembershipFunction::Triangular { a, b, c } => write!(f, "tri({a:.3},{b:.3},{c:.3})"),
            MembershipFunction::Trapezoidal { a, b, c, d } => {
                write!(f, "trap({a:.3},{b:.3},{c:.3},{d:.3})")
            }
            MembershipFunction::Bell { a, b, c } => write!(f, "bell(a={a:.3},b={b:.3},c={c:.3})"),
            MembershipFunction::Sigmoid { a, c } => write!(f, "sig(a={a:.3},c={c:.3})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn gaussian_shape() {
        let g = MembershipFunction::gaussian(2.0, 0.5).unwrap();
        assert_eq!(g.eval(2.0), 1.0);
        // One sigma out: exp(-1/2).
        assert!(close(g.eval(2.5), (-0.5f64).exp(), 1e-15));
        assert!(close(g.eval(1.5), g.eval(2.5), 1e-15));
        assert_eq!(g.center(), 2.0);
    }

    #[test]
    fn gaussian_validation() {
        assert!(MembershipFunction::gaussian(0.0, 0.0).is_err());
        assert!(MembershipFunction::gaussian(0.0, -1.0).is_err());
        assert!(MembershipFunction::gaussian(f64::NAN, 1.0).is_err());
        assert!(MembershipFunction::gaussian(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn gaussian_gradient_matches_finite_difference() {
        let mu = 0.4;
        let sigma = 0.25;
        let g = MembershipFunction::gaussian(mu, sigma).unwrap();
        for &x in &[0.0, 0.3, 0.4, 0.9, -1.0] {
            let (dmu, dsigma) = g.gaussian_grad(x).unwrap();
            let h = 1e-7;
            let gp = MembershipFunction::gaussian(mu + h, sigma).unwrap();
            let gm = MembershipFunction::gaussian(mu - h, sigma).unwrap();
            let fd_mu = (gp.eval(x) - gm.eval(x)) / (2.0 * h);
            let gp = MembershipFunction::gaussian(mu, sigma + h).unwrap();
            let gm = MembershipFunction::gaussian(mu, sigma - h).unwrap();
            let fd_sigma = (gp.eval(x) - gm.eval(x)) / (2.0 * h);
            assert!(close(dmu, fd_mu, 1e-6), "dmu at x={x}");
            assert!(close(dsigma, fd_sigma, 1e-6), "dsigma at x={x}");
        }
    }

    #[test]
    fn gradient_none_for_other_shapes() {
        let t = MembershipFunction::triangular(0.0, 0.5, 1.0).unwrap();
        assert!(t.gaussian_grad(0.5).is_none());
    }

    #[test]
    fn triangular_shape() {
        let t = MembershipFunction::triangular(0.0, 1.0, 2.0).unwrap();
        assert_eq!(t.eval(-0.1), 0.0);
        assert_eq!(t.eval(0.0), 0.0);
        assert!(close(t.eval(0.5), 0.5, 1e-15));
        assert_eq!(t.eval(1.0), 1.0);
        assert!(close(t.eval(1.5), 0.5, 1e-15));
        assert_eq!(t.eval(2.0), 0.0);
        assert_eq!(t.center(), 1.0);
    }

    #[test]
    fn triangular_right_angled() {
        // Apex at the left foot: step down.
        let t = MembershipFunction::triangular(0.0, 0.0, 1.0).unwrap();
        assert_eq!(t.eval(0.0), 1.0);
        assert!(close(t.eval(0.5), 0.5, 1e-15));
        assert!(MembershipFunction::triangular(1.0, 0.5, 2.0).is_err());
        assert!(MembershipFunction::triangular(1.0, 1.0, 1.0).is_err());
    }

    #[test]
    fn trapezoidal_shape() {
        let t = MembershipFunction::trapezoidal(0.0, 1.0, 2.0, 4.0).unwrap();
        assert_eq!(t.eval(0.0), 0.0);
        assert!(close(t.eval(0.5), 0.5, 1e-15));
        assert_eq!(t.eval(1.5), 1.0);
        assert!(close(t.eval(3.0), 0.5, 1e-15));
        assert_eq!(t.eval(4.5), 0.0);
        assert_eq!(t.center(), 1.5);
        assert!(MembershipFunction::trapezoidal(0.0, 2.0, 1.0, 4.0).is_err());
    }

    #[test]
    fn bell_shape() {
        let b = MembershipFunction::bell(2.0, 4.0, 6.0).unwrap();
        assert_eq!(b.eval(6.0), 1.0);
        // At |x-c| = a the value is 1/2 independent of the exponent.
        assert!(close(b.eval(8.0), 0.5, 1e-15));
        assert!(close(b.eval(4.0), 0.5, 1e-15));
        assert!(MembershipFunction::bell(0.0, 1.0, 0.0).is_err());
        assert!(MembershipFunction::bell(1.0, -1.0, 0.0).is_err());
    }

    #[test]
    fn sigmoid_shape() {
        let s = MembershipFunction::sigmoid(2.0, 1.0).unwrap();
        assert!(close(s.eval(1.0), 0.5, 1e-15));
        assert!(s.eval(5.0) > 0.99);
        assert!(s.eval(-3.0) < 0.01);
        assert!(MembershipFunction::sigmoid(f64::NAN, 0.0).is_err());
    }

    #[test]
    fn all_shapes_bounded() {
        let shapes = [
            MembershipFunction::gaussian(0.3, 0.2).unwrap(),
            MembershipFunction::triangular(-1.0, 0.0, 1.0).unwrap(),
            MembershipFunction::trapezoidal(-1.0, -0.5, 0.5, 1.0).unwrap(),
            MembershipFunction::bell(1.0, 2.0, 0.0).unwrap(),
            MembershipFunction::sigmoid(3.0, 0.0).unwrap(),
        ];
        for s in &shapes {
            let mut x = -5.0;
            while x <= 5.0 {
                let v = s.eval(x);
                assert!((0.0..=1.0).contains(&v), "{s} at {x} -> {v}");
                x += 0.1;
            }
        }
    }

    #[test]
    fn display_round_trips_key_info() {
        let g = MembershipFunction::gaussian(0.5, 0.1).unwrap();
        assert!(g.to_string().contains("0.5000"));
        assert!(g.to_string().contains("0.1000"));
    }

    #[test]
    fn serde_round_trip() {
        let g = MembershipFunction::gaussian(0.5, 0.1).unwrap();
        let json = serde_json::to_string(&g).unwrap();
        let back: MembershipFunction = serde_json::from_str(&json).unwrap();
        assert_eq!(g, back);
    }
}
