//! Struct-of-arrays TSK evaluation kernel (DESIGN.md §9).
//!
//! [`crate::TskFis`] stores rules as an array of structs — natural for
//! construction and training, but every [`TskFis::eval`] walks `m` small
//! heap objects and allocates three trace `Vec`s. The runtime path of a
//! smart appliance evaluates the same FIS millions of times, so this module
//! flattens the rule base once into contiguous slabs:
//!
//! * `mu` / `sigma` — rule-major Gaussian parameters, `m·n` each (used when
//!   every antecedent is Gaussian — the paper's systems always are);
//! * `antecedents` — the general rule-major membership slab, the fallback
//!   that keeps the kernel exact for mixed shapes;
//! * `consequents` — rule-major `m·(n+1)` linear coefficients.
//!
//! [`TskKernel::eval_into`] then runs the full inference with **zero heap
//! allocations** in the steady state: the only mutable storage is a
//! caller-provided [`TskScratch`] whose firing buffer is reused across
//! calls. Results are bit-identical to [`TskFis::eval`] — same operations,
//! same order — which the tests assert via `f64::to_bits`.
//!
//! [`TskFis::eval`]: crate::TskFis::eval

// analyze: hot-path

use cqm_parallel::WorkerPool;

use crate::membership::MembershipFunction;
use crate::tnorm::TNorm;
use crate::tsk::TskFis;
use crate::{FuzzyError, Result};

/// Input rows per parallel work item in [`TskKernel::eval_batch_with`].
const BATCH_CHUNK: usize = 64;

/// Reusable per-caller evaluation scratch. One instance per thread of
/// control; the firing buffer grows to the rule count on first use and is
/// only reused afterwards.
#[derive(Debug, Clone, Default)]
pub struct TskScratch {
    firing: Vec<f64>,
}

impl TskScratch {
    /// An empty scratch (sizes itself on first evaluation).
    pub fn new() -> Self {
        TskScratch::default()
    }

    /// A scratch pre-sized for `rules` rules, so even the first evaluation
    /// allocates nothing.
    pub fn with_rules(rules: usize) -> Self {
        TskScratch {
            firing: Vec::with_capacity(rules),
        }
    }

    /// The firing strengths of the most recent evaluation (empty before the
    /// first call).
    pub fn firing(&self) -> &[f64] {
        &self.firing
    }
}

/// Flat struct-of-arrays snapshot of a [`TskFis`], built once per trained
/// model and evaluated many times. Construction allocates; evaluation does
/// not.
#[derive(Debug, Clone, PartialEq)]
pub struct TskKernel {
    n_inputs: usize,
    n_rules: usize,
    tnorm: TNorm,
    /// Rule-major Gaussian centers, `m·n`; meaningful iff `gaussian_only`.
    mu: Vec<f64>,
    /// Rule-major Gaussian widths, `m·n`; meaningful iff `gaussian_only`.
    sigma: Vec<f64>,
    /// Whether every antecedent is Gaussian (enables the slab fast path).
    gaussian_only: bool,
    /// Rule-major antecedent slab, `m·n` — the exact fallback path.
    antecedents: Vec<MembershipFunction>,
    /// Rule-major consequent slab, `m·(n+1)`.
    consequents: Vec<f64>,
}

impl TskKernel {
    /// Flatten `fis` into slabs. The kernel snapshots the FIS: later premise
    /// or consequent updates require rebuilding it.
    pub fn from_fis(fis: &TskFis) -> Self {
        let n = fis.input_dim();
        let m = fis.rule_count();
        let mut mu = Vec::with_capacity(m * n);
        let mut sigma = Vec::with_capacity(m * n);
        let mut antecedents = Vec::with_capacity(m * n);
        let mut consequents = Vec::with_capacity(m * (n + 1));
        let mut gaussian_only = true;
        for rule in fis.rules() {
            for mf in rule.antecedents() {
                if let MembershipFunction::Gaussian { mu: m_, sigma: s_ } = *mf {
                    mu.push(m_);
                    sigma.push(s_);
                } else {
                    gaussian_only = false;
                    mu.push(0.0);
                    sigma.push(1.0);
                }
                // lint: allow(HOT_LOOP_ALLOC) -- one-time kernel construction, bounded by rule count
                antecedents.push(mf.clone());
            }
            consequents.extend_from_slice(rule.consequent());
        }
        TskKernel {
            n_inputs: n,
            n_rules: m,
            tnorm: fis.tnorm(),
            mu,
            sigma,
            gaussian_only,
            antecedents,
            consequents,
        }
    }

    /// Number of inputs `n`.
    pub fn input_dim(&self) -> usize {
        self.n_inputs
    }

    /// Number of rules `m`.
    pub fn rule_count(&self) -> usize {
        self.n_rules
    }

    /// Whether the Gaussian slab fast path is active.
    pub fn is_gaussian_only(&self) -> bool {
        self.gaussian_only
    }

    /// Evaluate one input using caller-provided scratch. Steady state (a
    /// scratch that has seen this kernel before) performs **zero heap
    /// allocations**; the result is bit-identical to [`TskFis::eval`].
    ///
    /// # Errors
    ///
    /// * [`FuzzyError::DimensionMismatch`] if `v.len() != input_dim()`.
    /// * [`FuzzyError::NoRuleFired`] if every firing strength underflows to
    ///   zero.
    pub fn eval_into(&self, v: &[f64], scratch: &mut TskScratch) -> Result<f64> {
        if v.len() != self.n_inputs {
            return Err(FuzzyError::DimensionMismatch {
                expected: self.n_inputs,
                actual: v.len(),
            });
        }
        let n = self.n_inputs;
        scratch.firing.clear();
        scratch.firing.reserve(self.n_rules);
        if self.gaussian_only {
            for j in 0..self.n_rules {
                let base = j * n;
                let (mus, sigmas) = (&self.mu[base..base + n], &self.sigma[base..base + n]);
                let mut w = 1.0;
                for ((&x, &mu), &sig) in v.iter().zip(mus).zip(sigmas) {
                    // Exactly MembershipFunction::eval for the Gaussian arm.
                    let z = (x - mu) / sig;
                    let f = (-0.5 * z * z).exp();
                    w = self.tnorm.apply(w, f);
                }
                scratch.firing.push(w);
            }
        } else {
            for j in 0..self.n_rules {
                let base = j * n;
                let w = self.tnorm.fold(
                    self.antecedents[base..base + n]
                        .iter()
                        .zip(v)
                        .map(|(mf, &x)| mf.eval(x)),
                );
                scratch.firing.push(w);
            }
        }
        let total: f64 = scratch.firing.iter().sum();
        if !(total > 0.0) || !total.is_finite() {
            return Err(FuzzyError::NoRuleFired);
        }
        let mut output = 0.0;
        for (j, w) in scratch.firing.iter().enumerate() {
            let base = j * (n + 1);
            let cons = &self.consequents[base..base + n + 1];
            let (coeffs, bias) = cons.split_at(n);
            let fj = coeffs.iter().zip(v).map(|(a, x)| a * x).sum::<f64>() + bias[0];
            output += (w / total) * fj;
        }
        Ok(output)
    }

    /// Evaluate a small batch serially into `out` — the micro-batch entry
    /// point sized for request batches (network services coalescing a few
    /// dozen in-flight requests), where pool dispatch would cost more than
    /// the sweep itself. `out` is cleared and refilled with one output per
    /// row; beyond `out`'s growth to the batch size, the sweep performs
    /// zero heap allocations in the steady state. Results are bit-identical
    /// to row-wise [`TskKernel::eval_into`] and stop at the first failing
    /// row (matching [`TskKernel::eval_batch_with`]'s first-error order).
    ///
    /// # Errors
    ///
    /// Same conditions as [`TskKernel::eval_into`] for any row; `out` holds
    /// the outputs of the rows preceding the failure.
    // lint: allow(ASSERT_DENSITY) -- delegates row-wise to eval_into, which validates via Result
    pub fn eval_batch_into(
        &self,
        inputs: &[Vec<f64>],
        scratch: &mut TskScratch,
        out: &mut Vec<f64>,
    ) -> Result<()> {
        out.clear();
        out.reserve(inputs.len());
        for v in inputs {
            out.push(self.eval_into(v, scratch)?);
        }
        Ok(())
    }

    /// Evaluate a batch on `pool`, propagating the lowest-index error.
    /// Rows are independent, so the outputs are bit-identical to serial
    /// row-wise evaluation at any thread count; each chunk carries its own
    /// scratch.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TskKernel::eval_into`] for any row.
    // lint: allow(ASSERT_DENSITY) -- delegates row-wise to eval_into, which validates via Result
    pub fn eval_batch_with(&self, inputs: &[Vec<f64>], pool: &WorkerPool) -> Result<Vec<f64>> {
        let chunks = pool.run_chunks(inputs.len(), BATCH_CHUNK, |c| {
            let mut scratch = TskScratch::with_rules(self.n_rules);
            let mut out = Vec::with_capacity(c.len());
            for v in &inputs[c.start..c.end] {
                out.push(self.eval_into(v, &mut scratch));
            }
            out
        });
        // In-order flatten: the error returned is always the first by row
        // index, independent of scheduling.
        chunks.into_iter().flatten().collect()
    }
}

impl TskFis {
    /// Build the flat evaluation kernel for this FIS (see [`TskKernel`]).
    pub fn kernel(&self) -> TskKernel {
        TskKernel::from_fis(self)
    }

    /// Evaluate a batch of inputs on a worker pool via a freshly built
    /// kernel. For repeated batches, build the kernel once with
    /// [`TskFis::kernel`] and call [`TskKernel::eval_batch_with`] instead.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TskFis::eval`] for any row.
    // lint: allow(ASSERT_DENSITY) -- thin delegation; the kernel validates via Result
    pub fn eval_batch_with(&self, inputs: &[Vec<f64>], pool: &WorkerPool) -> Result<Vec<f64>> {
        self.kernel().eval_batch_with(inputs, pool)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tsk::TskRule;

    fn gaussian(mu: f64, sigma: f64) -> MembershipFunction {
        MembershipFunction::gaussian(mu, sigma).unwrap()
    }

    fn gaussian_fis() -> TskFis {
        TskFis::new(vec![
            TskRule::new(
                vec![gaussian(0.0, 0.3), gaussian(1.0, 0.5)],
                vec![1.0, -0.5, 0.2],
            )
            .unwrap(),
            TskRule::new(
                vec![gaussian(1.0, 0.4), gaussian(0.0, 0.25)],
                vec![-2.0, 0.75, 1.1],
            )
            .unwrap(),
            TskRule::new(
                vec![gaussian(0.5, 0.2), gaussian(0.5, 0.6)],
                vec![0.0, 0.0, 3.0],
            )
            .unwrap(),
        ])
        .unwrap()
    }

    fn mixed_fis() -> TskFis {
        TskFis::new(vec![
            TskRule::new(
                vec![
                    MembershipFunction::triangular(-1.0, 0.0, 1.0).unwrap(),
                    gaussian(0.0, 0.5),
                ],
                vec![1.0, 2.0, 0.0],
            )
            .unwrap(),
            TskRule::new(
                vec![gaussian(1.0, 0.5), MembershipFunction::sigmoid(2.0, 0.5).unwrap()],
                vec![0.5, -1.0, 0.25],
            )
            .unwrap(),
        ])
        .unwrap()
    }

    fn grid() -> Vec<Vec<f64>> {
        let mut g = Vec::new();
        for i in 0..17 {
            for j in 0..17 {
                g.push(vec![i as f64 / 8.0 - 1.0, j as f64 / 8.0 - 1.0]);
            }
        }
        g
    }

    #[test]
    fn kernel_matches_fis_bitwise_gaussian() {
        let fis = gaussian_fis();
        let kernel = fis.kernel();
        assert!(kernel.is_gaussian_only());
        let mut scratch = TskScratch::new();
        for v in grid() {
            let a = fis.eval(&v).unwrap();
            let b = kernel.eval_into(&v, &mut scratch).unwrap();
            assert_eq!(a.to_bits(), b.to_bits(), "at {v:?}");
        }
    }

    #[test]
    fn kernel_matches_fis_bitwise_mixed_shapes() {
        let fis = mixed_fis();
        let kernel = fis.kernel();
        assert!(!kernel.is_gaussian_only());
        let mut scratch = TskScratch::new();
        for v in grid() {
            let a = fis.eval(&v).unwrap();
            let b = kernel.eval_into(&v, &mut scratch).unwrap();
            assert_eq!(a.to_bits(), b.to_bits(), "at {v:?}");
        }
    }

    #[test]
    fn kernel_error_parity() {
        let fis = gaussian_fis();
        let kernel = fis.kernel();
        let mut scratch = TskScratch::new();
        assert!(matches!(
            kernel.eval_into(&[0.1], &mut scratch),
            Err(FuzzyError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            kernel.eval_into(&[4.0e4, -4.0e4], &mut scratch),
            Err(FuzzyError::NoRuleFired)
        ));
        // The FIS agrees on both.
        assert!(fis.eval(&[0.1]).is_err());
        assert!(fis.eval(&[4.0e4, -4.0e4]).is_err());
    }

    #[test]
    fn micro_batch_eval_matches_row_wise_bitwise() {
        let fis = gaussian_fis();
        let kernel = fis.kernel();
        let inputs = grid();
        let mut scratch = TskScratch::with_rules(kernel.rule_count());
        let mut out = Vec::new();
        kernel.eval_batch_into(&inputs, &mut scratch, &mut out).unwrap();
        assert_eq!(out.len(), inputs.len());
        let mut reference_scratch = TskScratch::new();
        for (v, got) in inputs.iter().zip(&out) {
            let want = kernel.eval_into(v, &mut reference_scratch).unwrap();
            assert_eq!(got.to_bits(), want.to_bits(), "at {v:?}");
        }
        // Reuse across sweeps: the buffers survive and results stay put.
        let mut second = Vec::new();
        kernel.eval_batch_into(&inputs, &mut scratch, &mut second).unwrap();
        for (a, b) in out.iter().zip(&second) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn micro_batch_eval_stops_at_first_bad_row() {
        let fis = gaussian_fis();
        let kernel = fis.kernel();
        let mut inputs = grid();
        inputs[3] = vec![9.0e4, 9.0e4]; // NoRuleFired
        let mut scratch = TskScratch::new();
        let mut out = Vec::new();
        let err = kernel
            .eval_batch_into(&inputs, &mut scratch, &mut out)
            .unwrap_err();
        assert!(matches!(err, FuzzyError::NoRuleFired));
        assert_eq!(out.len(), 3, "outputs of the rows before the failure");
    }

    #[test]
    fn batch_eval_bit_identical_across_thread_counts() {
        let fis = gaussian_fis();
        let inputs = grid();
        let reference = fis
            .eval_batch_with(&inputs, &WorkerPool::serial())
            .unwrap();
        let plain = fis.eval_batch(&inputs).unwrap();
        for (a, b) in reference.iter().zip(&plain) {
            assert_eq!(a.to_bits(), b.to_bits(), "kernel batch vs eval_batch");
        }
        for threads in [2usize, 3, 8] {
            let got = fis
                .eval_batch_with(&inputs, &WorkerPool::new(threads))
                .unwrap();
            for (a, b) in got.iter().zip(&reference) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn batch_eval_error_is_first_by_row_order() {
        let fis = gaussian_fis();
        let mut inputs = grid();
        inputs[5] = vec![9.0e4, 9.0e4]; // NoRuleFired
        inputs[200] = vec![0.0]; // DimensionMismatch (later row)
        for threads in [1usize, 4] {
            let err = fis
                .eval_batch_with(&inputs, &WorkerPool::new(threads))
                .unwrap_err();
            assert!(
                matches!(err, FuzzyError::NoRuleFired),
                "threads={threads}: expected the row-5 error, got {err:?}"
            );
        }
    }

    #[test]
    fn scratch_is_reusable_across_kernels() {
        let g = gaussian_fis();
        let m = mixed_fis();
        let (kg, km) = (g.kernel(), m.kernel());
        let mut scratch = TskScratch::with_rules(3);
        let v = vec![0.25, 0.5];
        let a1 = kg.eval_into(&v, &mut scratch).unwrap();
        let b1 = km.eval_into(&v, &mut scratch).unwrap();
        let a2 = kg.eval_into(&v, &mut scratch).unwrap();
        assert_eq!(a1.to_bits(), a2.to_bits());
        assert_eq!(b1.to_bits(), km.eval_into(&v, &mut scratch).unwrap().to_bits());
        assert_eq!(scratch.firing().len(), 2, "last eval was the 2-rule kernel");
    }
}
