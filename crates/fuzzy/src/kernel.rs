//! Struct-of-arrays TSK evaluation kernel (DESIGN.md §9).
//!
//! [`crate::TskFis`] stores rules as an array of structs — natural for
//! construction and training, but every [`TskFis::eval`] walks `m` small
//! heap objects and allocates three trace `Vec`s. The runtime path of a
//! smart appliance evaluates the same FIS millions of times, so this module
//! flattens the rule base once into contiguous slabs:
//!
//! * `mu` / `sigma` — rule-major Gaussian parameters, `m·n` each (used when
//!   every antecedent is Gaussian — the paper's systems always are);
//! * `antecedents` — the general rule-major membership slab, the fallback
//!   that keeps the kernel exact for mixed shapes;
//! * `consequents` — rule-major `m·(n+1)` linear coefficients.
//!
//! [`TskKernel::eval_into`] then runs the full inference with **zero heap
//! allocations** in the steady state: the only mutable storage is a
//! caller-provided [`TskScratch`] whose buffers are reused across calls.
//! Results are bit-identical to [`TskFis::eval`] — same operations, same
//! order — which the tests assert via `f64::to_bits`.
//!
//! ## Blocked lanes and the precision contract (DESIGN.md §9)
//!
//! Batch sweeps over a Gaussian-only kernel run **rule-major blocked**:
//! input rows are processed in blocks of [`LANES`] (transposed once into
//! scratch), so each `mu`/`sigma`/`consequents` cache line is loaded once
//! per block instead of once per row, and the per-lane arithmetic is
//! carried by [`cqm_math::lanes::F64x4`], whose fixed-width loops the
//! optimizer keeps in vector registers. Two precision modes
//! ([`EvalPrecision`]) select the membership exponential:
//!
//! * [`EvalPrecision::Exact`] (default) — `exp` is `f64::exp` and every
//!   per-lane operation replays the scalar sequence, so blocked results
//!   are **bit-identical** to [`TskFis::eval`] at any batch size, block
//!   position or worker count.
//! * [`EvalPrecision::BoundedUlp`] — memberships go through
//!   `cqm_math::fastexp::exp_bounded` (documented max-ULP bound). For the
//!   Product t-norm the whole rule collapses to **one** exponential of the
//!   summed exponents instead of one per input. Opt-in, deterministic:
//!   a row's result never depends on its batch position.
//!
//! [`TskFis::eval`]: crate::TskFis::eval

// analyze: hot-path

use cqm_math::fastexp;
use cqm_math::lanes::{F64x4, LANES};
use cqm_parallel::WorkerPool;

use crate::membership::MembershipFunction;
use crate::tnorm::TNorm;
use crate::tsk::TskFis;
use crate::{FuzzyError, Result};

/// Input rows per parallel work item in [`TskKernel::eval_batch_with`].
/// A multiple of [`LANES`], so pooled chunks never split a lane block.
const BATCH_CHUNK: usize = 64;

/// Numeric contract of an evaluation sweep (DESIGN.md §9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EvalPrecision {
    /// Bit-identical to [`TskFis::eval`]: only `f64::exp` is used and the
    /// blocked per-lane operation sequence replays the scalar one exactly.
    ///
    /// [`TskFis::eval`]: crate::TskFis::eval
    #[default]
    Exact,
    /// Gaussian memberships use `cqm_math::fastexp::exp_bounded` (max
    /// error `EXP_BOUNDED_MAX_ULP` ULP per exponential, test-proven), and
    /// under the Product t-norm each rule's factors collapse into a single
    /// exponential of the summed exponents. Non-Gaussian kernels ignore
    /// this and evaluate exactly. Deterministic: results are a pure
    /// function of the row, never of batch position or worker count.
    BoundedUlp,
}

/// Reusable per-caller evaluation scratch. One instance per thread of
/// control; buffers grow on first use and are only reused afterwards. Use
/// [`TskKernel::scratch`] to pre-size every buffer for a kernel so even
/// the first evaluation allocates nothing.
#[derive(Debug, Clone, Default)]
pub struct TskScratch {
    firing: Vec<f64>,
    /// Rule-major blocked firing slab (`LANES` lanes per rule), used by
    /// the blocked batch path.
    block: Vec<f64>,
    /// Input-major transposed row block (`LANES` lanes per input), used by
    /// the blocked batch path.
    xt: Vec<f64>,
}

impl TskScratch {
    /// An empty scratch (sizes itself on first evaluation).
    pub fn new() -> Self {
        TskScratch::default()
    }

    /// A scratch pre-sized for `rules` rules, so even the first row-wise
    /// evaluation allocates nothing. Blocked batch sweeps also need the
    /// input dimension; prefer [`TskKernel::scratch`], which sizes both.
    pub fn with_rules(rules: usize) -> Self {
        TskScratch {
            firing: Vec::with_capacity(rules),
            block: Vec::with_capacity(rules * LANES),
            xt: Vec::new(),
        }
    }

    /// The firing strengths of the most recent **row-wise** evaluation
    /// (empty before the first call; blocked batch sweeps keep their
    /// firing strengths in an internal lane slab instead).
    pub fn firing(&self) -> &[f64] {
        &self.firing
    }
}

/// Flat struct-of-arrays snapshot of a [`TskFis`], built once per trained
/// model and evaluated many times. Construction allocates; evaluation does
/// not.
#[derive(Debug, Clone, PartialEq)]
pub struct TskKernel {
    n_inputs: usize,
    n_rules: usize,
    tnorm: TNorm,
    /// Rule-major Gaussian centers, `m·n`; meaningful iff `gaussian_only`.
    mu: Vec<f64>,
    /// Rule-major Gaussian widths, `m·n`; meaningful iff `gaussian_only`.
    sigma: Vec<f64>,
    /// Rule-major reciprocal widths `1/sigma`, `m·n` — the bounded-ULP
    /// path multiplies by these instead of dividing (one more rounding
    /// step, covered by that path's error contract); the exact path never
    /// reads them.
    inv_sigma: Vec<f64>,
    /// Whether every antecedent is Gaussian (enables the slab fast path).
    gaussian_only: bool,
    /// Rule-major antecedent slab, `m·n` — the exact fallback path.
    antecedents: Vec<MembershipFunction>,
    /// Rule-major consequent slab, `m·(n+1)`.
    consequents: Vec<f64>,
}

impl TskKernel {
    /// Flatten `fis` into slabs. The kernel snapshots the FIS: later premise
    /// or consequent updates require rebuilding it.
    pub fn from_fis(fis: &TskFis) -> Self {
        let n = fis.input_dim();
        let m = fis.rule_count();
        let mut mu = Vec::with_capacity(m * n);
        let mut sigma = Vec::with_capacity(m * n);
        let mut inv_sigma = Vec::with_capacity(m * n);
        let mut antecedents = Vec::with_capacity(m * n);
        let mut consequents = Vec::with_capacity(m * (n + 1));
        let mut gaussian_only = true;
        for rule in fis.rules() {
            for mf in rule.antecedents() {
                if let MembershipFunction::Gaussian { mu: m_, sigma: s_ } = *mf {
                    mu.push(m_);
                    sigma.push(s_);
                    inv_sigma.push(1.0 / s_);
                } else {
                    gaussian_only = false;
                    mu.push(0.0);
                    sigma.push(1.0);
                    inv_sigma.push(1.0);
                }
                // lint: allow(HOT_LOOP_ALLOC) -- one-time kernel construction, bounded by rule count
                antecedents.push(mf.clone());
            }
            consequents.extend_from_slice(rule.consequent());
        }
        TskKernel {
            n_inputs: n,
            n_rules: m,
            tnorm: fis.tnorm(),
            mu,
            sigma,
            inv_sigma,
            gaussian_only,
            antecedents,
            consequents,
        }
    }

    /// Number of inputs `n`.
    pub fn input_dim(&self) -> usize {
        self.n_inputs
    }

    /// Number of rules `m`.
    pub fn rule_count(&self) -> usize {
        self.n_rules
    }

    /// Whether the Gaussian slab fast path is active.
    pub fn is_gaussian_only(&self) -> bool {
        self.gaussian_only
    }

    /// A [`TskScratch`] with every buffer pre-sized for this kernel, so
    /// even the first row or batch evaluated through it allocates nothing.
    pub fn scratch(&self) -> TskScratch {
        TskScratch {
            firing: Vec::with_capacity(self.n_rules),
            block: Vec::with_capacity(self.n_rules * LANES),
            xt: Vec::with_capacity(self.n_inputs * LANES),
        }
    }

    /// Evaluate one input using caller-provided scratch. Steady state (a
    /// scratch that has seen this kernel before) performs **zero heap
    /// allocations**; the result is bit-identical to [`TskFis::eval`].
    ///
    /// # Errors
    ///
    /// * [`FuzzyError::DimensionMismatch`] if `v.len() != input_dim()`.
    /// * [`FuzzyError::NoRuleFired`] if every firing strength underflows to
    ///   zero.
    pub fn eval_into(&self, v: &[f64], scratch: &mut TskScratch) -> Result<f64> {
        if v.len() != self.n_inputs {
            return Err(FuzzyError::DimensionMismatch {
                expected: self.n_inputs,
                actual: v.len(),
            });
        }
        let n = self.n_inputs;
        scratch.firing.clear();
        scratch.firing.reserve_exact(self.n_rules);
        if self.gaussian_only {
            for j in 0..self.n_rules {
                let base = j * n;
                let (mus, sigmas) = (&self.mu[base..base + n], &self.sigma[base..base + n]);
                let mut w = 1.0;
                for ((&x, &mu), &sig) in v.iter().zip(mus).zip(sigmas) {
                    // Exactly MembershipFunction::eval for the Gaussian arm.
                    let z = (x - mu) / sig;
                    let f = fastexp::exp_exact(-0.5 * z * z);
                    w = self.tnorm.apply(w, f);
                }
                scratch.firing.push(w);
            }
        } else {
            for j in 0..self.n_rules {
                let base = j * n;
                let w = self.tnorm.fold(
                    self.antecedents[base..base + n]
                        .iter()
                        .zip(v)
                        .map(|(mf, &x)| mf.eval(x)),
                );
                scratch.firing.push(w);
            }
        }
        self.defuzz(v, &scratch.firing)
    }

    /// Evaluate one input under an explicit precision contract.
    /// [`EvalPrecision::Exact`] is [`TskKernel::eval_into`];
    /// [`EvalPrecision::BoundedUlp`] swaps the Gaussian memberships for
    /// `exp_bounded` (and, under the Product t-norm, one exponential per
    /// rule). The bounded result is a pure function of the row: evaluating
    /// it here or inside any blocked batch yields the same bits.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TskKernel::eval_into`].
    // lint: allow(ASSERT_DENSITY) -- row validity is checked via Result by eval paths
    pub fn eval_into_prec(
        &self,
        v: &[f64],
        precision: EvalPrecision,
        scratch: &mut TskScratch,
    ) -> Result<f64> {
        match precision {
            EvalPrecision::Exact => self.eval_into(v, scratch),
            // BoundedUlp only changes Gaussian membership math; other
            // shapes have nothing to approximate.
            EvalPrecision::BoundedUlp if !self.gaussian_only => self.eval_into(v, scratch),
            EvalPrecision::BoundedUlp => self.eval_row_bounded(v, scratch),
        }
    }

    /// Scalar bounded-ULP row evaluation. Operation-for-operation the
    /// per-lane sequence of [`TskKernel::eval_block`]'s bounded path, so
    /// blocked and row-wise bounded results are bit-identical.
    fn eval_row_bounded(&self, v: &[f64], scratch: &mut TskScratch) -> Result<f64> {
        if v.len() != self.n_inputs {
            return Err(FuzzyError::DimensionMismatch {
                expected: self.n_inputs,
                actual: v.len(),
            });
        }
        let n = self.n_inputs;
        scratch.firing.clear();
        scratch.firing.reserve_exact(self.n_rules);
        for j in 0..self.n_rules {
            let base = j * n;
            let (mus, invs) = (&self.mu[base..base + n], &self.inv_sigma[base..base + n]);
            if matches!(self.tnorm, TNorm::Product) {
                // Product of exponentials = exponential of the summed
                // exponents: one exp per rule instead of one per input.
                let mut acc = 0.0;
                for ((&x, &mu), &inv) in v.iter().zip(mus).zip(invs) {
                    let z = (x - mu) * inv;
                    acc += -0.5 * z * z;
                }
                scratch.firing.push(fastexp::exp_bounded(acc));
            } else {
                let mut w = 1.0;
                for ((&x, &mu), &inv) in v.iter().zip(mus).zip(invs) {
                    let z = (x - mu) * inv;
                    // Clamp so a final rounding upward can never push a
                    // membership past the t-norm domain bound of 1.
                    let f = fastexp::exp_bounded(-0.5 * z * z).min(1.0);
                    w = self.tnorm.apply(w, f);
                }
                scratch.firing.push(w);
            }
        }
        self.defuzz_bounded(v, &scratch.firing)
    }

    /// Normalize firing strengths and combine the rule consequents —
    /// the shared epilogue of every scalar evaluation path, preserving
    /// [`TskFis::eval`]'s exact operation order.
    ///
    /// [`TskFis::eval`]: crate::TskFis::eval
    fn defuzz(&self, v: &[f64], firing: &[f64]) -> Result<f64> {
        let n = self.n_inputs;
        let total: f64 = firing.iter().sum();
        if !(total > 0.0) || !total.is_finite() {
            return Err(FuzzyError::NoRuleFired);
        }
        let mut output = 0.0;
        for (j, w) in firing.iter().enumerate() {
            let base = j * (n + 1);
            let cons = &self.consequents[base..base + n + 1];
            let (coeffs, bias) = cons.split_at(n);
            let fj = coeffs.iter().zip(v).map(|(a, x)| a * x).sum::<f64>() + bias[0];
            output += (w / total) * fj;
        }
        Ok(output)
    }

    /// [`TskKernel::defuzz`] for the bounded-ULP path: one reciprocal of
    /// the firing total, then multiplies — `m - 1` fewer divisions per
    /// row, at one extra rounding step absorbed by the bounded contract.
    /// Lane-for-lane the epilogue of [`TskKernel::eval_block`]'s bounded
    /// path, so blocked and row-wise bounded results stay bit-identical.
    fn defuzz_bounded(&self, v: &[f64], firing: &[f64]) -> Result<f64> {
        let n = self.n_inputs;
        let total: f64 = firing.iter().sum();
        if !(total > 0.0) || !total.is_finite() {
            return Err(FuzzyError::NoRuleFired);
        }
        let inv_total = 1.0 / total;
        let mut output = 0.0;
        for (j, w) in firing.iter().enumerate() {
            let base = j * (n + 1);
            let cons = &self.consequents[base..base + n + 1];
            let (coeffs, bias) = cons.split_at(n);
            let fj = coeffs.iter().zip(v).map(|(a, x)| a * x).sum::<f64>() + bias[0];
            output += (w * inv_total) * fj;
        }
        Ok(output)
    }

    /// Evaluate a small batch serially into `out` — the micro-batch entry
    /// point sized for request batches (network services coalescing a few
    /// dozen in-flight requests), where pool dispatch would cost more than
    /// the sweep itself. Gaussian-only kernels run the rule-major blocked
    /// lane path; `out` is cleared, `reserve_exact`-sized and refilled with
    /// one output per row, and beyond first-use buffer growth the sweep
    /// performs zero heap allocations in the steady state (none at all
    /// with a [`TskKernel::scratch`]-sized scratch). Results are
    /// bit-identical to row-wise [`TskKernel::eval_into`] and stop at the
    /// first failing row (matching [`TskKernel::eval_batch_with`]'s
    /// first-error order).
    ///
    /// # Errors
    ///
    /// Same conditions as [`TskKernel::eval_into`] for any row; `out` holds
    /// the outputs of the rows preceding the failure.
    // lint: allow(ASSERT_DENSITY) -- row validity is checked via Result by eval paths
    pub fn eval_batch_into(
        &self,
        inputs: &[Vec<f64>],
        scratch: &mut TskScratch,
        out: &mut Vec<f64>,
    ) -> Result<()> {
        self.eval_batch_into_prec(inputs, EvalPrecision::Exact, scratch, out)
    }

    /// [`TskKernel::eval_batch_into`] under an explicit precision
    /// contract. The default-precision result is bit-identical to row-wise
    /// [`TskKernel::eval_into`]; the bounded result is bit-identical to
    /// row-wise [`TskKernel::eval_into_prec`] with the same precision.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TskKernel::eval_into`] for any row; `out` holds
    /// the outputs of the rows preceding the failure.
    // lint: allow(ASSERT_DENSITY) -- row validity is checked via Result by eval paths
    pub fn eval_batch_into_prec(
        &self,
        inputs: &[Vec<f64>],
        precision: EvalPrecision,
        scratch: &mut TskScratch,
        out: &mut Vec<f64>,
    ) -> Result<()> {
        out.clear();
        out.reserve_exact(inputs.len());
        if !self.gaussian_only {
            for v in inputs {
                out.push(self.eval_into_prec(v, precision, scratch)?);
            }
            return Ok(());
        }
        let mut i = 0;
        while i < inputs.len() {
            let end = i + LANES;
            if end <= inputs.len() && inputs[i..end].iter().all(|v| v.len() == self.n_inputs) {
                let b = &inputs[i..end];
                let rows = [b[0].as_slice(), b[1].as_slice(), b[2].as_slice(), b[3].as_slice()];
                self.eval_block(&rows, precision, scratch, out)?;
                i = end;
            } else {
                // Short tail, or an arity mismatch somewhere in the
                // window: advance row-wise so the first failing row is
                // still the first error reported.
                let row = &inputs[i..][0];
                out.push(self.eval_into_prec(row, precision, scratch)?);
                i += 1;
            }
        }
        Ok(())
    }

    /// Evaluate one block of [`LANES`] equal-arity rows, rule-major:
    /// transpose the rows once into scratch, then walk each `mu`/`sigma`
    /// and consequent cache line exactly once for the whole block. Pushes
    /// one output per lane in row order; a [`FuzzyError::NoRuleFired`]
    /// lane truncates `out` before the failing row, exactly like the
    /// row-wise path.
    fn eval_block(
        &self,
        rows: &[&[f64]; LANES],
        precision: EvalPrecision,
        scratch: &mut TskScratch,
        out: &mut Vec<f64>,
    ) -> Result<()> {
        let n = self.n_inputs;
        let m = self.n_rules;
        // Input-major transpose: lane l of chunk i is rows[l][i], so every
        // per-input gather below is one contiguous LANES-wide load.
        scratch.xt.clear();
        scratch.xt.resize(n * LANES, 0.0);
        for (l, row) in rows.iter().enumerate() {
            for (i, &x) in row.iter().enumerate() {
                scratch.xt[i * LANES + l] = x;
            }
        }
        let (xt, block) = (&scratch.xt, &mut scratch.block);
        block.clear();
        block.reserve_exact(m * LANES);
        let bounded_product =
            matches!(precision, EvalPrecision::BoundedUlp) && matches!(self.tnorm, TNorm::Product);
        let bounded = matches!(precision, EvalPrecision::BoundedUlp);
        for j in 0..m {
            let base = j * n;
            let mus = &self.mu[base..base + n];
            let w = if bounded_product {
                // One exponential of the summed exponents per rule, with
                // precomputed reciprocal widths (one more rounding step,
                // absorbed by the bounded error contract).
                let invs = &self.inv_sigma[base..base + n];
                let mut acc = F64x4::ZERO;
                for ((&mu, &inv), x4) in mus.iter().zip(invs).zip(xt.chunks_exact(LANES)) {
                    let x = F64x4::from_slice(x4);
                    let z = (x - F64x4::splat(mu)) * F64x4::splat(inv);
                    acc = acc + F64x4::splat(-0.5) * z * z;
                }
                acc.exp_bounded()
            } else if bounded {
                // Non-Product t-norm: one polynomial exponential per
                // factor, still lane-parallel (exp_bounded is branch-free
                // straight-line code, so lanes stay in vector registers).
                let invs = &self.inv_sigma[base..base + n];
                let mut w = F64x4::ONE;
                for ((&mu, &inv), x4) in mus.iter().zip(invs).zip(xt.chunks_exact(LANES)) {
                    let x = F64x4::from_slice(x4);
                    let z = (x - F64x4::splat(mu)) * F64x4::splat(inv);
                    let f = (F64x4::splat(-0.5) * z * z).exp_bounded().min_scalar(1.0);
                    let mut lanes = w.to_array();
                    for (wl, fl) in lanes.iter_mut().zip(f.to_array()) {
                        *wl = self.tnorm.apply(*wl, fl);
                    }
                    w = F64x4(lanes);
                }
                w
            } else {
                // Exact: lane-major scalar memberships. f64::exp is an
                // opaque libm call, so lane-structured code would spill
                // the other three lanes around every call; running each
                // row's factors in scalar order instead keeps the slab
                // blocking benefit (mu/sigma lines stay hot across the
                // four rows) at zero per-call overhead — and replays
                // TskFis::eval's operation order exactly, which is what
                // makes blocked exact results bit-identical.
                let sigmas = &self.sigma[base..base + n];
                let mut lanes = [0.0_f64; LANES];
                for (wl, row) in lanes.iter_mut().zip(rows) {
                    let mut w = 1.0;
                    for ((&x, &mu), &sig) in row.iter().zip(mus).zip(sigmas) {
                        let z = (x - mu) / sig;
                        let f = fastexp::exp_exact(-0.5 * z * z);
                        w = self.tnorm.apply(w, f);
                    }
                    *wl = w;
                }
                F64x4(lanes)
            };
            block.extend_from_slice(&w.to_array());
        }
        // Per-lane totals, summed in rule order — the scalar order.
        let mut total = F64x4::ZERO;
        for w4 in block.chunks_exact(LANES) {
            total = total + F64x4::from_slice(w4);
        }
        // Consequent combination, rule-major; bad lanes (zero or non-finite
        // totals) produce garbage that is never pushed. The bounded path
        // takes one reciprocal per lane and multiplies (matching
        // defuzz_bounded); the exact path divides per rule (matching
        // defuzz).
        let inv_total = F64x4::ONE / total;
        let mut output = F64x4::ZERO;
        for (j, w4) in block.chunks_exact(LANES).enumerate() {
            let base = j * (n + 1);
            let cons = &self.consequents[base..base + n + 1];
            let (coeffs, bias) = cons.split_at(n);
            let mut fj = F64x4::ZERO;
            for (&a, x4) in coeffs.iter().zip(xt.chunks_exact(LANES)) {
                fj = fj + F64x4::splat(a) * F64x4::from_slice(x4);
            }
            let fj = fj + F64x4::splat(bias[0]);
            let w4v = F64x4::from_slice(w4);
            let norm = if bounded { w4v * inv_total } else { w4v / total };
            output = output + norm * fj;
        }
        for (t, o) in total.to_array().into_iter().zip(output.to_array()) {
            if !(t > 0.0) || !t.is_finite() {
                return Err(FuzzyError::NoRuleFired);
            }
            out.push(o);
        }
        Ok(())
    }

    /// Evaluate a batch on `pool`, propagating the lowest-index error.
    /// Rows are independent and each chunk runs the blocked sweep with its
    /// own scratch, so the outputs are bit-identical to serial row-wise
    /// evaluation at any thread count ([`BATCH_CHUNK`] is a multiple of
    /// [`LANES`], and lane results never depend on block position).
    ///
    /// # Errors
    ///
    /// Same conditions as [`TskKernel::eval_into`] for any row.
    // lint: allow(ASSERT_DENSITY) -- row validity is checked via Result by eval paths
    pub fn eval_batch_with(&self, inputs: &[Vec<f64>], pool: &WorkerPool) -> Result<Vec<f64>> {
        self.eval_batch_with_prec(inputs, EvalPrecision::Exact, pool)
    }

    /// [`TskKernel::eval_batch_with`] under an explicit precision
    /// contract.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TskKernel::eval_into`] for any row.
    // lint: allow(ASSERT_DENSITY) -- row validity is checked via Result by eval paths
    pub fn eval_batch_with_prec(
        &self,
        inputs: &[Vec<f64>],
        precision: EvalPrecision,
        pool: &WorkerPool,
    ) -> Result<Vec<f64>> {
        let chunks = pool.run_chunks(inputs.len(), BATCH_CHUNK, |c| {
            let mut scratch = self.scratch();
            let mut out = Vec::with_capacity(c.len());
            self.eval_batch_into_prec(&inputs[c.start..c.end], precision, &mut scratch, &mut out)
                .map(|()| out)
        });
        // In-order flatten: chunks are in row order and each chunk stops at
        // its first failing row, so the first Err seen is always the first
        // by row index, independent of scheduling.
        let mut all = Vec::with_capacity(inputs.len());
        for chunk in chunks {
            all.extend(chunk?);
        }
        Ok(all)
    }
}

impl TskFis {
    /// Build the flat evaluation kernel for this FIS (see [`TskKernel`]).
    pub fn kernel(&self) -> TskKernel {
        TskKernel::from_fis(self)
    }

    /// Evaluate a batch of inputs on a worker pool via a freshly built
    /// kernel. For repeated batches, build the kernel once with
    /// [`TskFis::kernel`] and call [`TskKernel::eval_batch_with`] instead.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TskFis::eval`] for any row.
    // lint: allow(ASSERT_DENSITY) -- thin delegation; the kernel validates via Result
    pub fn eval_batch_with(&self, inputs: &[Vec<f64>], pool: &WorkerPool) -> Result<Vec<f64>> {
        self.kernel().eval_batch_with(inputs, pool)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tsk::TskRule;

    fn gaussian(mu: f64, sigma: f64) -> MembershipFunction {
        MembershipFunction::gaussian(mu, sigma).unwrap()
    }

    fn gaussian_fis() -> TskFis {
        TskFis::new(vec![
            TskRule::new(
                vec![gaussian(0.0, 0.3), gaussian(1.0, 0.5)],
                vec![1.0, -0.5, 0.2],
            )
            .unwrap(),
            TskRule::new(
                vec![gaussian(1.0, 0.4), gaussian(0.0, 0.25)],
                vec![-2.0, 0.75, 1.1],
            )
            .unwrap(),
            TskRule::new(
                vec![gaussian(0.5, 0.2), gaussian(0.5, 0.6)],
                vec![0.0, 0.0, 3.0],
            )
            .unwrap(),
        ])
        .unwrap()
    }

    fn mixed_fis() -> TskFis {
        TskFis::new(vec![
            TskRule::new(
                vec![
                    MembershipFunction::triangular(-1.0, 0.0, 1.0).unwrap(),
                    gaussian(0.0, 0.5),
                ],
                vec![1.0, 2.0, 0.0],
            )
            .unwrap(),
            TskRule::new(
                vec![gaussian(1.0, 0.5), MembershipFunction::sigmoid(2.0, 0.5).unwrap()],
                vec![0.5, -1.0, 0.25],
            )
            .unwrap(),
        ])
        .unwrap()
    }

    fn grid() -> Vec<Vec<f64>> {
        let mut g = Vec::new();
        for i in 0..17 {
            for j in 0..17 {
                g.push(vec![i as f64 / 8.0 - 1.0, j as f64 / 8.0 - 1.0]);
            }
        }
        g
    }

    #[test]
    fn kernel_matches_fis_bitwise_gaussian() {
        let fis = gaussian_fis();
        let kernel = fis.kernel();
        assert!(kernel.is_gaussian_only());
        let mut scratch = TskScratch::new();
        for v in grid() {
            let a = fis.eval(&v).unwrap();
            let b = kernel.eval_into(&v, &mut scratch).unwrap();
            assert_eq!(a.to_bits(), b.to_bits(), "at {v:?}");
        }
    }

    #[test]
    fn kernel_matches_fis_bitwise_mixed_shapes() {
        let fis = mixed_fis();
        let kernel = fis.kernel();
        assert!(!kernel.is_gaussian_only());
        let mut scratch = TskScratch::new();
        for v in grid() {
            let a = fis.eval(&v).unwrap();
            let b = kernel.eval_into(&v, &mut scratch).unwrap();
            assert_eq!(a.to_bits(), b.to_bits(), "at {v:?}");
        }
    }

    #[test]
    fn kernel_error_parity() {
        let fis = gaussian_fis();
        let kernel = fis.kernel();
        let mut scratch = TskScratch::new();
        assert!(matches!(
            kernel.eval_into(&[0.1], &mut scratch),
            Err(FuzzyError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            kernel.eval_into(&[4.0e4, -4.0e4], &mut scratch),
            Err(FuzzyError::NoRuleFired)
        ));
        // The FIS agrees on both.
        assert!(fis.eval(&[0.1]).is_err());
        assert!(fis.eval(&[4.0e4, -4.0e4]).is_err());
    }

    #[test]
    fn micro_batch_eval_matches_row_wise_bitwise() {
        let fis = gaussian_fis();
        let kernel = fis.kernel();
        let inputs = grid();
        let mut scratch = TskScratch::with_rules(kernel.rule_count());
        let mut out = Vec::new();
        kernel.eval_batch_into(&inputs, &mut scratch, &mut out).unwrap();
        assert_eq!(out.len(), inputs.len());
        let mut reference_scratch = TskScratch::new();
        for (v, got) in inputs.iter().zip(&out) {
            let want = kernel.eval_into(v, &mut reference_scratch).unwrap();
            assert_eq!(got.to_bits(), want.to_bits(), "at {v:?}");
        }
        // Reuse across sweeps: the buffers survive and results stay put.
        let mut second = Vec::new();
        kernel.eval_batch_into(&inputs, &mut scratch, &mut second).unwrap();
        for (a, b) in out.iter().zip(&second) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn micro_batch_eval_stops_at_first_bad_row() {
        let fis = gaussian_fis();
        let kernel = fis.kernel();
        let mut inputs = grid();
        inputs[3] = vec![9.0e4, 9.0e4]; // NoRuleFired
        let mut scratch = TskScratch::new();
        let mut out = Vec::new();
        let err = kernel
            .eval_batch_into(&inputs, &mut scratch, &mut out)
            .unwrap_err();
        assert!(matches!(err, FuzzyError::NoRuleFired));
        assert_eq!(out.len(), 3, "outputs of the rows before the failure");
    }

    #[test]
    fn batch_eval_bit_identical_across_thread_counts() {
        let fis = gaussian_fis();
        let inputs = grid();
        let reference = fis
            .eval_batch_with(&inputs, &WorkerPool::serial())
            .unwrap();
        let plain = fis.eval_batch(&inputs).unwrap();
        for (a, b) in reference.iter().zip(&plain) {
            assert_eq!(a.to_bits(), b.to_bits(), "kernel batch vs eval_batch");
        }
        for threads in [2usize, 3, 8] {
            let got = fis
                .eval_batch_with(&inputs, &WorkerPool::new(threads))
                .unwrap();
            for (a, b) in got.iter().zip(&reference) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn batch_eval_error_is_first_by_row_order() {
        let fis = gaussian_fis();
        let mut inputs = grid();
        inputs[5] = vec![9.0e4, 9.0e4]; // NoRuleFired
        inputs[200] = vec![0.0]; // DimensionMismatch (later row)
        for threads in [1usize, 4] {
            let err = fis
                .eval_batch_with(&inputs, &WorkerPool::new(threads))
                .unwrap_err();
            assert!(
                matches!(err, FuzzyError::NoRuleFired),
                "threads={threads}: expected the row-5 error, got {err:?}"
            );
        }
    }

    #[test]
    fn bounded_blocked_matches_bounded_row_wise_bitwise() {
        let fis = gaussian_fis();
        let kernel = fis.kernel();
        let inputs = grid();
        let mut scratch = kernel.scratch();
        let mut out = Vec::new();
        kernel
            .eval_batch_into_prec(&inputs, EvalPrecision::BoundedUlp, &mut scratch, &mut out)
            .unwrap();
        let mut row_scratch = TskScratch::new();
        for (v, got) in inputs.iter().zip(&out) {
            let want = kernel
                .eval_into_prec(v, EvalPrecision::BoundedUlp, &mut row_scratch)
                .unwrap();
            assert_eq!(got.to_bits(), want.to_bits(), "at {v:?}");
        }
    }

    #[test]
    fn bounded_result_does_not_depend_on_batch_position() {
        let fis = gaussian_fis();
        let kernel = fis.kernel();
        let inputs = grid();
        let mut scratch = kernel.scratch();
        let mut full = Vec::new();
        kernel
            .eval_batch_into_prec(&inputs, EvalPrecision::BoundedUlp, &mut scratch, &mut full)
            .unwrap();
        // Shift the batch start by dropping rows off the front: every
        // surviving row must keep its bits even though it now sits at a
        // different lane/block offset.
        for drop in 1..=5 {
            let mut shifted = Vec::new();
            kernel
                .eval_batch_into_prec(
                    &inputs[drop..],
                    EvalPrecision::BoundedUlp,
                    &mut scratch,
                    &mut shifted,
                )
                .unwrap();
            for (a, b) in full.iter().skip(drop).zip(&shifted) {
                assert_eq!(a.to_bits(), b.to_bits(), "drop={drop}");
            }
        }
    }

    #[test]
    fn bounded_pooled_bit_identical_across_thread_counts() {
        let fis = gaussian_fis();
        let kernel = fis.kernel();
        let inputs = grid();
        let reference = kernel
            .eval_batch_with_prec(&inputs, EvalPrecision::BoundedUlp, &WorkerPool::serial())
            .unwrap();
        for threads in [2usize, 3, 8] {
            let got = kernel
                .eval_batch_with_prec(&inputs, EvalPrecision::BoundedUlp, &WorkerPool::new(threads))
                .unwrap();
            for (a, b) in got.iter().zip(&reference) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn bounded_outputs_are_close_to_exact_in_ulp() {
        use cqm_math::fastexp::ulp_diff;
        let fis = gaussian_fis();
        let kernel = fis.kernel();
        let mut scratch = kernel.scratch();
        let mut exact = Vec::new();
        let mut bounded = Vec::new();
        let inputs = grid();
        kernel.eval_batch_into(&inputs, &mut scratch, &mut exact).unwrap();
        kernel
            .eval_batch_into_prec(&inputs, EvalPrecision::BoundedUlp, &mut scratch, &mut bounded)
            .unwrap();
        let mut worst = 0_u64;
        for (a, b) in exact.iter().zip(&bounded) {
            worst = worst.max(ulp_diff(*a, *b));
        }
        // End-to-end bound: per-exponential error is <= EXP_BOUNDED_MAX_ULP,
        // but the Product path also reassociates the exponent sum, so the
        // output error is larger than the primitive bound while still tiny.
        // Keep the asserted ceiling honest and documented (DESIGN.md §9).
        assert!(worst <= 256, "bounded output drifted {worst} ULP from exact");
        assert!(worst > 0, "bounded path unexpectedly bit-identical; gate is stale");
    }

    #[test]
    fn bounded_non_product_tnorm_matches_row_wise_and_stays_in_domain() {
        let fis = TskFis::new(vec![
            TskRule::new(vec![gaussian(0.0, 0.3), gaussian(1.0, 0.5)], vec![1.0, -0.5, 0.2])
                .unwrap(),
            TskRule::new(vec![gaussian(1.0, 0.4), gaussian(0.0, 0.25)], vec![-2.0, 0.75, 1.1])
                .unwrap(),
        ])
        .unwrap()
        .with_tnorm(TNorm::Minimum);
        let kernel = fis.kernel();
        let inputs = grid();
        let mut scratch = kernel.scratch();
        let mut out = Vec::new();
        kernel
            .eval_batch_into_prec(&inputs, EvalPrecision::BoundedUlp, &mut scratch, &mut out)
            .unwrap();
        let mut row_scratch = TskScratch::new();
        for (v, got) in inputs.iter().zip(&out) {
            let want = kernel
                .eval_into_prec(v, EvalPrecision::BoundedUlp, &mut row_scratch)
                .unwrap();
            assert_eq!(got.to_bits(), want.to_bits(), "at {v:?}");
        }
    }

    #[test]
    fn bounded_batch_stops_at_first_bad_row_mid_block() {
        let fis = gaussian_fis();
        let kernel = fis.kernel();
        let mut inputs = grid();
        inputs[6] = vec![9.0e4, 9.0e4]; // NoRuleFired in the middle of a block
        inputs[9] = vec![0.25]; // DimensionMismatch later (degrades its window)
        let mut scratch = kernel.scratch();
        let mut out = Vec::new();
        let err = kernel
            .eval_batch_into_prec(&inputs, EvalPrecision::BoundedUlp, &mut scratch, &mut out)
            .unwrap_err();
        assert!(matches!(err, FuzzyError::NoRuleFired));
        assert_eq!(out.len(), 6, "outputs of the rows before the failure");
    }

    #[test]
    fn mixed_arity_rows_keep_first_error_order_in_blocked_path() {
        let fis = gaussian_fis();
        let kernel = fis.kernel();
        let mut inputs = grid();
        inputs[2] = vec![0.5]; // DimensionMismatch inside the first block
        let mut scratch = kernel.scratch();
        let mut out = Vec::new();
        let err = kernel.eval_batch_into(&inputs, &mut scratch, &mut out).unwrap_err();
        assert!(matches!(err, FuzzyError::DimensionMismatch { actual: 1, .. }));
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn scratch_is_reusable_across_kernels() {
        let g = gaussian_fis();
        let m = mixed_fis();
        let (kg, km) = (g.kernel(), m.kernel());
        let mut scratch = TskScratch::with_rules(3);
        let v = vec![0.25, 0.5];
        let a1 = kg.eval_into(&v, &mut scratch).unwrap();
        let b1 = km.eval_into(&v, &mut scratch).unwrap();
        let a2 = kg.eval_into(&v, &mut scratch).unwrap();
        assert_eq!(a1.to_bits(), a2.to_bits());
        assert_eq!(b1.to_bits(), km.eval_into(&v, &mut scratch).unwrap().to_bits());
        assert_eq!(scratch.firing().len(), 2, "last eval was the 2-rule kernel");
    }
}
