//! Ergonomic builder for hand-authored TSK systems.
//!
//! The automated construction of `cqm-anfis` covers the paper's pipeline;
//! this builder serves the other audience — appliance developers writing a
//! small rule base by hand (as the original AwarePen prototype did before
//! the automated process existed).

use crate::membership::MembershipFunction;
use crate::tnorm::TNorm;
use crate::tsk::{TskFis, TskRule};
use crate::{FuzzyError, Result};

/// Non-consuming builder for [`TskFis`].
///
/// ```
/// use cqm_fuzzy::builder::TskFisBuilder;
/// use cqm_fuzzy::membership::MembershipFunction;
///
/// let mut b = TskFisBuilder::new(1);
/// b.rule()
///     .antecedent(MembershipFunction::gaussian(0.0, 0.3).unwrap())
///     .constant(0.0)
///     .done()
///     .unwrap();
/// b.rule()
///     .antecedent(MembershipFunction::gaussian(1.0, 0.3).unwrap())
///     .constant(1.0)
///     .done()
///     .unwrap();
/// let fis = b.build().unwrap();
/// assert!((fis.eval(&[0.5]).unwrap() - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct TskFisBuilder {
    input_dim: usize,
    tnorm: TNorm,
    rules: Vec<TskRule>,
}

impl TskFisBuilder {
    /// Start a builder for systems with `input_dim` inputs.
    pub fn new(input_dim: usize) -> Self {
        TskFisBuilder {
            input_dim,
            tnorm: TNorm::Product,
            rules: Vec::new(),
        }
    }

    /// Override the antecedent T-norm (default: product).
    pub fn tnorm(&mut self, tnorm: TNorm) -> &mut Self {
        self.tnorm = tnorm;
        self
    }

    /// Begin a new rule.
    pub fn rule(&mut self) -> RuleBuilder<'_> {
        RuleBuilder {
            parent: self,
            antecedents: Vec::new(),
            consequent: None,
        }
    }

    /// Number of rules added so far.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Finish the system.
    ///
    /// # Errors
    ///
    /// Returns [`FuzzyError::InvalidRuleBase`] if no rule was added.
    pub fn build(&self) -> Result<TskFis> {
        Ok(TskFis::new(self.rules.clone())?.with_tnorm(self.tnorm))
    }
}

/// Builder for one rule, tied to its parent [`TskFisBuilder`].
#[derive(Debug)]
pub struct RuleBuilder<'a> {
    parent: &'a mut TskFisBuilder,
    antecedents: Vec<MembershipFunction>,
    consequent: Option<Vec<f64>>,
}

impl RuleBuilder<'_> {
    /// Append the next input's membership function.
    pub fn antecedent(mut self, mf: MembershipFunction) -> Self {
        self.antecedents.push(mf);
        self
    }

    /// Shorthand: Gaussian antecedent.
    ///
    /// # Errors
    ///
    /// Propagates membership validation.
    // lint: allow(ASSERT_DENSITY) -- parameter validation happens in MembershipFunction::gaussian, surfaced via Result
    pub fn gaussian(self, mu: f64, sigma: f64) -> Result<Self> {
        Ok(self.antecedent(MembershipFunction::gaussian(mu, sigma)?))
    }

    /// Zero-order consequent `f = c`.
    pub fn constant(mut self, c: f64) -> Self {
        if cfg!(feature = "strict-math") {
            debug_assert!(c.is_finite(), "constant consequent must be finite, got {c}");
        }
        let n = self.parent.input_dim;
        let mut coeffs = vec![0.0; n + 1];
        // lint: allow(PANIC_IN_LIB) -- coeffs has n + 1 elements by construction on the previous line
        coeffs[n] = c;
        self.consequent = Some(coeffs);
        self
    }

    /// First-order consequent `f = a·v + b` with `coeffs = [a_1…a_n, b]`.
    // lint: allow(ASSERT_DENSITY) -- coefficient shape is validated by the rule commit step, which returns Result
    pub fn linear(mut self, coeffs: Vec<f64>) -> Self {
        self.consequent = Some(coeffs);
        self
    }

    /// Validate and commit the rule to the parent builder.
    ///
    /// # Errors
    ///
    /// Returns [`FuzzyError::InvalidRuleBase`] if the antecedent count does
    /// not match the builder's input dimension, or no consequent was set.
    pub fn done(self) -> Result<&'static str> {
        if self.antecedents.len() != self.parent.input_dim {
            return Err(FuzzyError::InvalidRuleBase(format!(
                "rule has {} antecedents, builder expects {}",
                self.antecedents.len(),
                self.parent.input_dim
            )));
        }
        let consequent = self
            .consequent
            .ok_or_else(|| FuzzyError::InvalidRuleBase("rule has no consequent".into()))?;
        let rule = TskRule::new(self.antecedents, consequent)?;
        self.parent.rules.push(rule);
        Ok("rule added")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_two_rule_system() {
        let mut b = TskFisBuilder::new(1);
        b.rule().gaussian(0.0, 0.3).unwrap().constant(0.0).done().unwrap();
        b.rule().gaussian(1.0, 0.3).unwrap().constant(1.0).done().unwrap();
        assert_eq!(b.rule_count(), 2);
        let fis = b.build().unwrap();
        assert_eq!(fis.rule_count(), 2);
        assert!((fis.eval(&[0.5]).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn linear_consequent() {
        let mut b = TskFisBuilder::new(2);
        b.rule()
            .gaussian(0.0, 1.0)
            .unwrap()
            .gaussian(0.0, 1.0)
            .unwrap()
            .linear(vec![2.0, -1.0, 0.5])
            .done()
            .unwrap();
        let fis = b.build().unwrap();
        let y = fis.eval(&[1.0, 2.0]).unwrap();
        assert!((y - (2.0 - 2.0 + 0.5)).abs() < 1e-12);
    }

    #[test]
    fn validation_errors() {
        let mut b = TskFisBuilder::new(2);
        // Wrong antecedent count.
        assert!(b
            .rule()
            .gaussian(0.0, 1.0)
            .unwrap()
            .constant(1.0)
            .done()
            .is_err());
        // Missing consequent.
        assert!(b
            .rule()
            .gaussian(0.0, 1.0)
            .unwrap()
            .gaussian(0.0, 1.0)
            .unwrap()
            .done()
            .is_err());
        // Empty build.
        assert!(b.build().is_err());
        // Wrong linear length surfaces at done().
        assert!(b
            .rule()
            .gaussian(0.0, 1.0)
            .unwrap()
            .gaussian(0.0, 1.0)
            .unwrap()
            .linear(vec![1.0])
            .done()
            .is_err());
    }

    #[test]
    fn tnorm_override() {
        let mut b = TskFisBuilder::new(1);
        b.tnorm(TNorm::Minimum);
        b.rule().gaussian(0.5, 0.2).unwrap().constant(1.0).done().unwrap();
        let fis = b.build().unwrap();
        assert_eq!(fis.tnorm(), TNorm::Minimum);
    }
}
