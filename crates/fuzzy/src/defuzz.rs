//! Defuzzification of an aggregated output membership function.
//!
//! Only the Mamdani substrate needs these — TSK systems defuzzify implicitly
//! through the weighted sum average (§2.1.2). Operating on a sampled
//! membership curve keeps the methods shape-agnostic.

// lint: allow(PANIC_IN_LIB, file) -- defuzzifier grids are validated non-empty and uniform at entry

use crate::{FuzzyError, Result};

/// Defuzzification strategy for a sampled membership curve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Defuzzifier {
    /// Centroid of area (center of gravity).
    #[default]
    Centroid,
    /// Abscissa splitting the area in half.
    Bisector,
    /// Mean of the abscissas attaining the maximum membership.
    MeanOfMaxima,
    /// Smallest abscissa attaining the maximum membership.
    SmallestOfMaxima,
    /// Largest abscissa attaining the maximum membership.
    LargestOfMaxima,
}

impl Defuzzifier {
    /// Defuzzify the curve given by parallel slices `xs` (strictly
    /// increasing abscissas) and `mus` (membership degrees).
    ///
    /// # Errors
    ///
    /// * [`FuzzyError::DimensionMismatch`] if the slices differ in length.
    /// * [`FuzzyError::InvalidRuleBase`] if fewer than 2 samples are given.
    /// * [`FuzzyError::NoRuleFired`] if the curve is identically zero.
    pub fn apply(&self, xs: &[f64], mus: &[f64]) -> Result<f64> {
        if xs.len() != mus.len() {
            return Err(FuzzyError::DimensionMismatch {
                expected: xs.len(),
                actual: mus.len(),
            });
        }
        if xs.len() < 2 {
            return Err(FuzzyError::InvalidRuleBase(
                "defuzzification needs at least 2 samples".into(),
            ));
        }
        let total_mu: f64 = mus.iter().sum();
        if !(total_mu > 0.0) {
            return Err(FuzzyError::NoRuleFired);
        }
        Ok(match self {
            Defuzzifier::Centroid => {
                // Trapezoid-weighted center of gravity.
                let mut num = 0.0;
                let mut den = 0.0;
                for i in 0..xs.len() - 1 {
                    let w = xs[i + 1] - xs[i];
                    let area = 0.5 * (mus[i] + mus[i + 1]) * w;
                    let cx = 0.5 * (xs[i] + xs[i + 1]);
                    num += area * cx;
                    den += area;
                }
                // lint: allow(NAN_UNSAFE_CMP) -- exactly-zero aggregate area means no rule fired; anything nonzero defuzzifies
                if den == 0.0 {
                    return Err(FuzzyError::NoRuleFired);
                }
                num / den
            }
            Defuzzifier::Bisector => {
                let mut areas = Vec::with_capacity(xs.len() - 1);
                let mut total = 0.0;
                for i in 0..xs.len() - 1 {
                    let a = 0.5 * (mus[i] + mus[i + 1]) * (xs[i + 1] - xs[i]);
                    areas.push(a);
                    total += a;
                }
                // lint: allow(NAN_UNSAFE_CMP) -- exactly-zero aggregate area means no rule fired; anything nonzero defuzzifies
                if total == 0.0 {
                    return Err(FuzzyError::NoRuleFired);
                }
                let half = total / 2.0;
                let mut acc = 0.0;
                for (i, a) in areas.iter().enumerate() {
                    if acc + a >= half {
                        // Interpolate inside segment i.
                        let frac = if *a > 0.0 { (half - acc) / a } else { 0.5 };
                        return Ok(xs[i] + frac * (xs[i + 1] - xs[i]));
                    }
                    acc += a;
                }
                *xs.last().expect("non-empty")
            }
            Defuzzifier::MeanOfMaxima
            | Defuzzifier::SmallestOfMaxima
            | Defuzzifier::LargestOfMaxima => {
                let peak = mus.iter().copied().fold(f64::MIN, f64::max);
                let at_peak: Vec<f64> = xs
                    .iter()
                    .zip(mus)
                    .filter(|(_, &m)| (m - peak).abs() < 1e-12)
                    .map(|(&x, _)| x)
                    .collect();
                match self {
                    Defuzzifier::MeanOfMaxima => {
                        at_peak.iter().sum::<f64>() / at_peak.len() as f64
                    }
                    Defuzzifier::SmallestOfMaxima => at_peak[0],
                    _ => *at_peak.last().expect("non-empty"),
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_curve() -> (Vec<f64>, Vec<f64>) {
        // Symmetric triangle peaking at x = 1.
        let xs: Vec<f64> = (0..=20).map(|i| i as f64 / 10.0).collect();
        let mus: Vec<f64> = xs.iter().map(|&x| 1.0 - (x - 1.0).abs()).collect();
        (xs, mus)
    }

    #[test]
    fn centroid_of_symmetric_triangle() {
        let (xs, mus) = triangle_curve();
        let c = Defuzzifier::Centroid.apply(&xs, &mus).unwrap();
        assert!((c - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bisector_of_symmetric_triangle() {
        let (xs, mus) = triangle_curve();
        let b = Defuzzifier::Bisector.apply(&xs, &mus).unwrap();
        assert!((b - 1.0).abs() < 0.06);
    }

    #[test]
    fn maxima_family_on_plateau() {
        let xs = vec![0.0, 1.0, 2.0, 3.0, 4.0];
        let mus = vec![0.0, 1.0, 1.0, 1.0, 0.0];
        assert_eq!(
            Defuzzifier::SmallestOfMaxima.apply(&xs, &mus).unwrap(),
            1.0
        );
        assert_eq!(Defuzzifier::LargestOfMaxima.apply(&xs, &mus).unwrap(), 3.0);
        assert_eq!(Defuzzifier::MeanOfMaxima.apply(&xs, &mus).unwrap(), 2.0);
    }

    #[test]
    fn asymmetric_centroid_shifts_toward_mass() {
        let xs = vec![0.0, 1.0, 2.0, 3.0];
        let mus = vec![0.0, 0.2, 1.0, 0.0];
        let c = Defuzzifier::Centroid.apply(&xs, &mus).unwrap();
        assert!(c > 1.5, "centroid {c} should lean right");
    }

    #[test]
    fn errors() {
        assert!(Defuzzifier::Centroid.apply(&[0.0, 1.0], &[0.0]).is_err());
        assert!(Defuzzifier::Centroid.apply(&[0.0], &[1.0]).is_err());
        assert!(matches!(
            Defuzzifier::Centroid.apply(&[0.0, 1.0], &[0.0, 0.0]),
            Err(FuzzyError::NoRuleFired)
        ));
    }

    #[test]
    fn bisector_splits_area() {
        let xs: Vec<f64> = (0..=100).map(|i| i as f64 / 100.0).collect();
        let mus: Vec<f64> = xs.clone(); // ramp
        let b = Defuzzifier::Bisector.apply(&xs, &mus).unwrap();
        // Area of ramp up to b is b^2/2; total 1/2 -> b = sqrt(1/2).
        assert!((b - 0.5f64.sqrt()).abs() < 0.02);
    }
}
