//! Triangular norms (fuzzy AND) and conorms (fuzzy OR).
//!
//! The paper's antecedents combine memberships with the algebraic **product**
//! (§2.1.2): `w_j = Π_i F_ij(v_i)`. Minimum is provided for the Mamdani
//! substrate and for ablations.

/// Fuzzy conjunction operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TNorm {
    /// Algebraic product `a·b` — the paper's choice.
    #[default]
    Product,
    /// Gödel minimum `min(a, b)`.
    Minimum,
    /// Łukasiewicz `max(0, a + b − 1)`.
    Lukasiewicz,
}

impl TNorm {
    /// Combine two membership degrees.
    pub fn apply(&self, a: f64, b: f64) -> f64 {
        if cfg!(feature = "strict-math") {
            debug_assert!(
                (0.0..=1.0).contains(&a) && (0.0..=1.0).contains(&b),
                "t-norm inputs must be membership degrees in [0, 1], got {a} and {b}"
            );
        }
        match self {
            TNorm::Product => a * b,
            TNorm::Minimum => a.min(b),
            TNorm::Lukasiewicz => (a + b - 1.0).max(0.0),
        }
    }

    /// Fold over a sequence of degrees; identity element is 1.
    pub fn fold<I: IntoIterator<Item = f64>>(&self, it: I) -> f64 {
        it.into_iter().fold(1.0, |acc, x| self.apply(acc, x))
    }
}

/// Fuzzy disjunction operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SNorm {
    /// Maximum `max(a, b)`.
    #[default]
    Maximum,
    /// Probabilistic sum `a + b − a·b`.
    ProbabilisticSum,
    /// Bounded sum `min(1, a + b)`.
    BoundedSum,
}

impl SNorm {
    /// Combine two membership degrees.
    pub fn apply(&self, a: f64, b: f64) -> f64 {
        if cfg!(feature = "strict-math") {
            debug_assert!(
                (0.0..=1.0).contains(&a) && (0.0..=1.0).contains(&b),
                "s-norm inputs must be membership degrees in [0, 1], got {a} and {b}"
            );
        }
        match self {
            SNorm::Maximum => a.max(b),
            SNorm::ProbabilisticSum => a + b - a * b,
            SNorm::BoundedSum => (a + b).min(1.0),
        }
    }

    /// Fold over a sequence of degrees; identity element is 0.
    pub fn fold<I: IntoIterator<Item = f64>>(&self, it: I) -> f64 {
        it.into_iter().fold(0.0, |acc, x| self.apply(acc, x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NORMS: [TNorm; 3] = [TNorm::Product, TNorm::Minimum, TNorm::Lukasiewicz];
    const SNORMS: [SNorm; 3] = [SNorm::Maximum, SNorm::ProbabilisticSum, SNorm::BoundedSum];

    #[test]
    fn tnorm_values() {
        assert_eq!(TNorm::Product.apply(0.5, 0.4), 0.2);
        assert_eq!(TNorm::Minimum.apply(0.5, 0.4), 0.4);
        assert!((TNorm::Lukasiewicz.apply(0.7, 0.6) - 0.3).abs() < 1e-15);
        assert_eq!(TNorm::Lukasiewicz.apply(0.3, 0.4), 0.0);
    }

    #[test]
    fn snorm_values() {
        assert_eq!(SNorm::Maximum.apply(0.5, 0.4), 0.5);
        assert!((SNorm::ProbabilisticSum.apply(0.5, 0.4) - 0.7).abs() < 1e-15);
        assert_eq!(SNorm::BoundedSum.apply(0.7, 0.6), 1.0);
    }

    #[test]
    fn tnorm_axioms_on_grid() {
        // Commutativity, monotonicity, boundary t(a,1)=a, closure in [0,1].
        let grid: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();
        for t in NORMS {
            for &a in &grid {
                assert!((t.apply(a, 1.0) - a).abs() < 1e-15, "{t:?} boundary");
                for &b in &grid {
                    let ab = t.apply(a, b);
                    assert!((0.0..=1.0).contains(&ab));
                    assert_eq!(ab, t.apply(b, a), "{t:?} commutativity");
                    // Monotone in second arg.
                    if b <= 0.9 {
                        assert!(t.apply(a, b) <= t.apply(a, b + 0.1) + 1e-15);
                    }
                }
            }
        }
    }

    #[test]
    fn snorm_axioms_on_grid() {
        let grid: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();
        for s in SNORMS {
            for &a in &grid {
                assert!((s.apply(a, 0.0) - a).abs() < 1e-15, "{s:?} boundary");
                for &b in &grid {
                    let ab = s.apply(a, b);
                    assert!((0.0..=1.0).contains(&ab));
                    assert_eq!(ab, s.apply(b, a), "{s:?} commutativity");
                }
            }
        }
    }

    #[test]
    fn folds_use_identities() {
        assert_eq!(TNorm::Product.fold([]), 1.0);
        assert_eq!(SNorm::Maximum.fold([]), 0.0);
        assert!((TNorm::Product.fold([0.5, 0.5, 0.5]) - 0.125).abs() < 1e-15);
        assert_eq!(SNorm::Maximum.fold([0.2, 0.9, 0.5]), 0.9);
    }

    #[test]
    fn defaults_match_paper() {
        assert_eq!(TNorm::default(), TNorm::Product);
        assert_eq!(SNorm::default(), SNorm::Maximum);
    }
}
