//! # cqm-fuzzy — fuzzy inference substrate
//!
//! Implements the fuzzy-systems machinery the paper builds on:
//!
//! * [`membership`] — parametric membership functions. The paper's systems
//!   use non-linear **Gaussian** functions `F_ij(v_i) = exp(−(v_i−µ_ij)² /
//!   (2σ_ij²))` (§2.1.2); triangular, trapezoidal, generalized-bell and
//!   sigmoidal shapes are provided for the Mamdani substrate and ablations.
//! * [`tsk`] — the first-order **Takagi–Sugeno–Kang FIS**: product-T-norm
//!   antecedents, linear consequents `f_j(v) = a_1j v_1 + … + a_(n+1)j`,
//!   weighted-sum-average projection (§2.1.2). This exact structure is used
//!   twice in the paper: once as the AwarePen context classifier and once as
//!   the quality system `S~_Q`.
//! * [`mamdani`] — a Mamdani-type FIS with max-min composition and a choice
//!   of [`defuzz`] defuzzifiers; related context-reasoning systems (paper §4, its reference \[4\])
//!   use this style, and it serves as a comparison substrate.
//! * [`linguistic`] — verbalization of rules in the paper's linguistic form:
//!   `IF F_1j(v_1) AND … AND F_(n+1)j(c) THEN f_j(v_Q)`.
//!
//! ## Example: a two-rule TSK system evaluated by hand
//!
//! ```
//! use cqm_fuzzy::membership::MembershipFunction;
//! use cqm_fuzzy::tsk::{TskFis, TskRule};
//!
//! // One input; two rules around x = 0 and x = 1.
//! let fis = TskFis::new(vec![
//!     TskRule::new(
//!         vec![MembershipFunction::gaussian(0.0, 0.3).unwrap()],
//!         vec![0.0, 0.0], // f(x) = 0
//!     ).unwrap(),
//!     TskRule::new(
//!         vec![MembershipFunction::gaussian(1.0, 0.3).unwrap()],
//!         vec![0.0, 1.0], // f(x) = 1
//!     ).unwrap(),
//! ]).unwrap();
//! // Halfway between the rule centers both rules fire equally: output 0.5.
//! let y = fis.eval(&[0.5]).unwrap();
//! assert!((y - 0.5).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]

// `!(x > 0.0)` is the intentional NaN-rejecting guard in evaluation code.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod builder;
pub mod defuzz;
pub mod kernel;
pub mod linguistic;
pub mod mamdani;
pub mod membership;
pub mod tnorm;
pub mod tsk;

pub use kernel::{EvalPrecision, TskKernel, TskScratch};
pub use membership::MembershipFunction;
pub use tsk::{TskFis, TskRule};

/// Errors produced by FIS construction and evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum FuzzyError {
    /// A membership-function parameter was outside its valid domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
    /// Input dimension does not match the system's antecedent dimension.
    DimensionMismatch {
        /// Expected input length.
        expected: usize,
        /// Actual input length.
        actual: usize,
    },
    /// A rule set was empty or structurally inconsistent.
    InvalidRuleBase(String),
    /// All rules fired with (numerically) zero strength, so the weighted
    /// average is undefined for this input.
    NoRuleFired,
}

impl std::fmt::Display for FuzzyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FuzzyError::InvalidParameter { name, value } => {
                write!(f, "invalid membership parameter {name} = {value}")
            }
            FuzzyError::DimensionMismatch { expected, actual } => {
                write!(
                    f,
                    "input dimension mismatch: expected {expected}, got {actual}"
                )
            }
            FuzzyError::InvalidRuleBase(msg) => write!(f, "invalid rule base: {msg}"),
            FuzzyError::NoRuleFired => write!(f, "no rule fired with non-zero strength"),
        }
    }
}

impl std::error::Error for FuzzyError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, FuzzyError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(FuzzyError::NoRuleFired.to_string().contains("no rule"));
        assert!(FuzzyError::InvalidRuleBase("empty".into())
            .to_string()
            .contains("empty"));
        assert!(FuzzyError::DimensionMismatch {
            expected: 3,
            actual: 1
        }
        .to_string()
        .contains("expected 3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FuzzyError>();
    }
}
