//! Linguistic verbalization of TSK rules.
//!
//! The paper presents rules in the form
//! `IF F_1j(v_1) AND … AND F_(n+1)j(c) THEN f_j(v_Q)` (§2.1.2). This module
//! renders a trained rule base in exactly that shape, with optional
//! human-readable variable names — useful for inspecting what the automated
//! construction learned.

use crate::tsk::{TskFis, TskRule};

/// Naming scheme for inputs when verbalizing rules.
#[derive(Debug, Clone, Default)]
pub struct VariableNames {
    names: Vec<String>,
}

impl VariableNames {
    /// Use the given names for inputs `v_1 … v_n`; missing names fall back
    /// to `v{i}`.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(names: I) -> Self {
        VariableNames {
            names: names.into_iter().map(Into::into).collect(),
        }
    }

    /// Name for input index `i` (0-based).
    pub fn name(&self, i: usize) -> String {
        self.names
            .get(i)
            .cloned()
            .unwrap_or_else(|| format!("v{}", i + 1))
    }
}

/// Render one rule in the paper's linguistic IF-THEN form.
pub fn verbalize_rule(rule: &TskRule, index: usize, names: &VariableNames) -> String {
    let antecedent = rule
        .antecedents()
        .iter()
        .enumerate()
        .map(|(i, mf)| format!("{} IS {}", names.name(i), mf))
        .collect::<Vec<_>>()
        .join(" AND ");
    let n = rule.input_dim();
    let mut terms: Vec<String> = rule.consequent()[..n]
        .iter()
        .enumerate()
        .filter(|(_, &a)| a.abs() > 1e-12)
        .map(|(i, &a)| format!("{a:+.4}*{}", names.name(i)))
        .collect();
    // lint: allow(PANIC_IN_LIB) -- TskRule::new guarantees consequent.len() == input_dim() + 1
    terms.push(format!("{:+.4}", rule.consequent()[n]));
    format!("R{}: IF {} THEN f = {}", index + 1, antecedent, terms.join(" "))
}

/// Render every rule of a TSK system, one per line.
pub fn verbalize_fis(fis: &TskFis, names: &VariableNames) -> String {
    fis.rules()
        .iter()
        .enumerate()
        .map(|(j, r)| verbalize_rule(r, j, names))
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::membership::MembershipFunction;

    fn sample_fis() -> TskFis {
        TskFis::new(vec![
            TskRule::new(
                vec![
                    MembershipFunction::gaussian(0.1, 0.05).unwrap(),
                    MembershipFunction::gaussian(0.9, 0.2).unwrap(),
                ],
                vec![1.5, 0.0, -0.25],
            )
            .unwrap(),
            TskRule::new(
                vec![
                    MembershipFunction::gaussian(0.5, 0.1).unwrap(),
                    MembershipFunction::gaussian(0.5, 0.1).unwrap(),
                ],
                vec![0.0, 2.0, 0.5],
            )
            .unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn names_fall_back_to_v_i() {
        let names = VariableNames::default();
        assert_eq!(names.name(0), "v1");
        assert_eq!(names.name(4), "v5");
        let names = VariableNames::new(["std_x"]);
        assert_eq!(names.name(0), "std_x");
        assert_eq!(names.name(1), "v2");
    }

    #[test]
    fn rule_verbalization_contains_structure() {
        let fis = sample_fis();
        let names = VariableNames::new(["std_x", "context"]);
        let s = verbalize_rule(&fis.rules()[0], 0, &names);
        assert!(s.starts_with("R1: IF "));
        assert!(s.contains("std_x IS gauss"));
        assert!(s.contains("AND context IS"));
        assert!(s.contains("THEN f ="));
        assert!(s.contains("+1.5000*std_x"));
        // Zero coefficient elided.
        assert!(!s.contains("*context"));
        assert!(s.contains("-0.2500"));
    }

    #[test]
    fn fis_verbalization_has_one_line_per_rule() {
        let fis = sample_fis();
        let text = verbalize_fis(&fis, &VariableNames::default());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[1].starts_with("R2:"));
    }
}
