//! Mamdani-type fuzzy inference.
//!
//! The paper notes (§4) that other context-reasoning systems use fuzzy
//! inference "on higher levels of context processing" — those are typically
//! Mamdani systems with fuzzy consequent sets. This substrate exists for
//! comparison experiments and for completeness of the fuzzy toolbox; the
//! CQM itself is TSK-based.

use crate::defuzz::Defuzzifier;
use crate::membership::MembershipFunction;
use crate::tnorm::{SNorm, TNorm};
use crate::{FuzzyError, Result};

/// One Mamdani rule: input membership functions and an output fuzzy set.
#[derive(Debug, Clone, PartialEq)]
pub struct MamdaniRule {
    antecedents: Vec<MembershipFunction>,
    output: MembershipFunction,
}

impl MamdaniRule {
    /// Create a rule.
    ///
    /// # Errors
    ///
    /// Returns [`FuzzyError::InvalidRuleBase`] if the antecedent list is
    /// empty.
    pub fn new(antecedents: Vec<MembershipFunction>, output: MembershipFunction) -> Result<Self> {
        if antecedents.is_empty() {
            return Err(FuzzyError::InvalidRuleBase(
                "rule needs at least one antecedent".into(),
            ));
        }
        Ok(MamdaniRule {
            antecedents,
            output,
        })
    }

    /// Number of inputs.
    pub fn input_dim(&self) -> usize {
        self.antecedents.len()
    }
}

/// A Mamdani FIS with min-implication, max-aggregation (configurable) and a
/// sampled-defuzzifier output stage.
#[derive(Debug, Clone, PartialEq)]
pub struct MamdaniFis {
    rules: Vec<MamdaniRule>,
    tnorm: TNorm,
    snorm: SNorm,
    defuzzifier: Defuzzifier,
    output_range: (f64, f64),
    samples: usize,
}

impl MamdaniFis {
    /// Build a system whose output universe is `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns [`FuzzyError::InvalidRuleBase`] if the rule list is empty or
    /// dimensions disagree, and [`FuzzyError::InvalidParameter`] if
    /// `lo >= hi`.
    pub fn new(rules: Vec<MamdaniRule>, output_range: (f64, f64)) -> Result<Self> {
        if rules.is_empty() {
            return Err(FuzzyError::InvalidRuleBase("empty rule base".into()));
        }
        let dim = rules[0].input_dim();
        if rules.iter().any(|r| r.input_dim() != dim) {
            return Err(FuzzyError::InvalidRuleBase(
                "rules have inconsistent input dimensions".into(),
            ));
        }
        if !(output_range.0 < output_range.1) {
            return Err(FuzzyError::InvalidParameter {
                name: "output_range",
                value: output_range.1 - output_range.0,
            });
        }
        Ok(MamdaniFis {
            rules,
            tnorm: TNorm::Minimum,
            snorm: SNorm::Maximum,
            defuzzifier: Defuzzifier::Centroid,
            output_range,
            samples: 201,
        })
    }

    /// Replace the antecedent T-norm.
    pub fn with_tnorm(mut self, tnorm: TNorm) -> Self {
        self.tnorm = tnorm;
        self
    }

    /// Replace the aggregation S-norm.
    pub fn with_snorm(mut self, snorm: SNorm) -> Self {
        self.snorm = snorm;
        self
    }

    /// Replace the defuzzifier (default: centroid).
    pub fn with_defuzzifier(mut self, d: Defuzzifier) -> Self {
        self.defuzzifier = d;
        self
    }

    /// Number of inputs.
    pub fn input_dim(&self) -> usize {
        self.rules[0].input_dim()
    }

    /// Evaluate by clip (min) implication, S-norm aggregation over the
    /// sampled output universe, then defuzzification.
    ///
    /// # Errors
    ///
    /// * [`FuzzyError::DimensionMismatch`] on wrong input length.
    /// * [`FuzzyError::NoRuleFired`] if the aggregated curve is zero.
    pub fn eval(&self, v: &[f64]) -> Result<f64> {
        if v.len() != self.input_dim() {
            return Err(FuzzyError::DimensionMismatch {
                expected: self.input_dim(),
                actual: v.len(),
            });
        }
        let strengths: Vec<f64> = self
            .rules
            .iter()
            .map(|r| {
                self.tnorm
                    .fold(r.antecedents.iter().zip(v).map(|(mf, &x)| mf.eval(x)))
            })
            .collect();
        let (lo, hi) = self.output_range;
        let xs: Vec<f64> = (0..self.samples)
            .map(|i| lo + (hi - lo) * i as f64 / (self.samples - 1) as f64)
            .collect();
        let mus: Vec<f64> = xs
            .iter()
            .map(|&x| {
                self.snorm.fold(
                    self.rules
                        .iter()
                        .zip(&strengths)
                        .map(|(r, &w)| w.min(r.output.eval(x))),
                )
            })
            .collect();
        self.defuzzifier.apply(&xs, &mus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tipper() -> MamdaniFis {
        // Classic single-input tipper: poor service -> low tip, good -> high.
        let poor = MembershipFunction::gaussian(0.0, 1.5).unwrap();
        let good = MembershipFunction::gaussian(10.0, 1.5).unwrap();
        let low = MembershipFunction::triangular(0.0, 5.0, 10.0).unwrap();
        let high = MembershipFunction::triangular(15.0, 20.0, 25.0).unwrap();
        MamdaniFis::new(
            vec![
                MamdaniRule::new(vec![poor], low).unwrap(),
                MamdaniRule::new(vec![good], high).unwrap(),
            ],
            (0.0, 25.0),
        )
        .unwrap()
    }

    #[test]
    fn construction_validation() {
        assert!(MamdaniFis::new(vec![], (0.0, 1.0)).is_err());
        let r = MamdaniRule::new(
            vec![MembershipFunction::gaussian(0.0, 1.0).unwrap()],
            MembershipFunction::gaussian(0.0, 1.0).unwrap(),
        )
        .unwrap();
        assert!(MamdaniFis::new(vec![r.clone()], (1.0, 1.0)).is_err());
        assert!(MamdaniRule::new(vec![], MembershipFunction::gaussian(0.0, 1.0).unwrap()).is_err());
        let r2 = MamdaniRule::new(
            vec![
                MembershipFunction::gaussian(0.0, 1.0).unwrap(),
                MembershipFunction::gaussian(0.0, 1.0).unwrap(),
            ],
            MembershipFunction::gaussian(0.0, 1.0).unwrap(),
        )
        .unwrap();
        assert!(MamdaniFis::new(vec![r, r2], (0.0, 1.0)).is_err());
    }

    #[test]
    fn tipper_extremes() {
        let fis = tipper();
        let bad = fis.eval(&[0.0]).unwrap();
        let good = fis.eval(&[10.0]).unwrap();
        assert!(bad < 7.0, "bad service tip {bad}");
        assert!(good > 17.0, "good service tip {good}");
    }

    #[test]
    fn tipper_monotone_between_extremes() {
        let fis = tipper();
        let mut prev = fis.eval(&[0.0]).unwrap();
        for i in 1..=10 {
            let y = fis.eval(&[i as f64]).unwrap();
            assert!(y >= prev - 1e-9, "tip should not decrease");
            prev = y;
        }
    }

    #[test]
    fn dimension_checked() {
        let fis = tipper();
        assert!(matches!(
            fis.eval(&[1.0, 2.0]),
            Err(FuzzyError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn no_rule_fired_far_outside() {
        let fis = tipper();
        assert!(matches!(
            fis.eval(&[1.0e4]),
            Err(FuzzyError::NoRuleFired)
        ));
    }

    #[test]
    fn builder_variants_still_evaluate() {
        let fis = tipper()
            .with_tnorm(TNorm::Product)
            .with_snorm(SNorm::ProbabilisticSum)
            .with_defuzzifier(Defuzzifier::MeanOfMaxima);
        let y = fis.eval(&[10.0]).unwrap();
        assert!(y > 15.0);
    }
}
