//! First-order Takagi–Sugeno–Kang fuzzy inference system (§2.1.2).
//!
//! A rule `j` over an `n`-dimensional input `v` reads
//!
//! ```text
//! IF F_1j(v_1) AND … AND F_nj(v_n) THEN f_j(v) = a_1j v_1 + … + a_nj v_n + a_(n+1)j
//! ```
//!
//! with firing strength `w_j(v) = Π_i F_ij(v_i)` and output
//!
//! ```text
//! S(v) = Σ_j w_j(v) f_j(v) / Σ_j w_j(v)
//! ```
//!
//! — the "weighted sum average … a combination of fuzzy reasoning and
//! defuzzification" of the paper. The same structure serves as the AwarePen
//! context classifier (§3.1) and, with the class identifier appended as the
//! `(n+1)`-th input, as the quality system `S~_Q` (§2.1.1).

use serde::{Deserialize, Serialize};

use crate::membership::MembershipFunction;
use crate::tnorm::TNorm;
use crate::{FuzzyError, Result};

/// One TSK rule: per-input membership functions plus linear consequent
/// coefficients (the last coefficient is the constant term).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TskRule {
    antecedents: Vec<MembershipFunction>,
    consequent: Vec<f64>,
}

impl TskRule {
    /// Create a rule with `n` antecedent membership functions and `n + 1`
    /// consequent coefficients `[a_1, …, a_n, a_(n+1)]` (last = constant).
    ///
    /// # Errors
    ///
    /// Returns [`FuzzyError::InvalidRuleBase`] if the antecedent list is
    /// empty, the consequent length is not `n + 1`, or a coefficient is not
    /// finite.
    pub fn new(antecedents: Vec<MembershipFunction>, consequent: Vec<f64>) -> Result<Self> {
        if antecedents.is_empty() {
            return Err(FuzzyError::InvalidRuleBase(
                "rule needs at least one antecedent".into(),
            ));
        }
        if consequent.len() != antecedents.len() + 1 {
            return Err(FuzzyError::InvalidRuleBase(format!(
                "rule with {} inputs needs {} consequent coefficients, got {}",
                antecedents.len(),
                antecedents.len() + 1,
                consequent.len()
            )));
        }
        if consequent.iter().any(|c| !c.is_finite()) {
            return Err(FuzzyError::InvalidRuleBase(
                "non-finite consequent coefficient".into(),
            ));
        }
        Ok(TskRule {
            antecedents,
            consequent,
        })
    }

    /// Create a zero-order (constant-consequent) rule: `f_j(v) = c`.
    /// Used by the ABL-CONSEQ ablation; the paper explicitly prefers linear
    /// consequents "since the results for the reliability determination are
    /// better" (§2.1.2).
    ///
    /// # Errors
    ///
    /// Same conditions as [`TskRule::new`].
    pub fn constant(antecedents: Vec<MembershipFunction>, c: f64) -> Result<Self> {
        if cfg!(feature = "strict-math") {
            debug_assert!(c.is_finite(), "constant consequent must be finite, got {c}");
        }
        let n = antecedents.len();
        let mut consequent = vec![0.0; n + 1];
        // lint: allow(PANIC_IN_LIB) -- consequent has n + 1 elements by construction on the previous line
        consequent[n] = c;
        TskRule::new(antecedents, consequent)
    }

    /// Number of inputs.
    pub fn input_dim(&self) -> usize {
        self.antecedents.len()
    }

    /// Antecedent membership functions.
    pub fn antecedents(&self) -> &[MembershipFunction] {
        &self.antecedents
    }

    /// Mutable access to the antecedents (used by ANFIS tuning).
    pub fn antecedents_mut(&mut self) -> &mut [MembershipFunction] {
        &mut self.antecedents
    }

    /// Consequent coefficients `[a_1, …, a_n, a_(n+1)]`.
    pub fn consequent(&self) -> &[f64] {
        &self.consequent
    }

    /// Mutable access to the consequent (used by the LSE forward pass).
    pub fn consequent_mut(&mut self) -> &mut [f64] {
        &mut self.consequent
    }

    /// Firing strength `w_j(v) = T-norm over F_ij(v_i)`.
    pub fn firing_strength(&self, v: &[f64], tnorm: TNorm) -> f64 {
        let w = tnorm.fold(self.antecedents.iter().zip(v).map(|(mf, &x)| mf.eval(x)));
        if cfg!(feature = "strict-math") {
            debug_assert!(
                w.is_finite() && w >= 0.0,
                "firing strength must be a finite non-negative degree, got {w}"
            );
        }
        w
    }

    /// Consequent value `f_j(v) = Σ a_ij v_i + a_(n+1)j`.
    pub fn consequent_value(&self, v: &[f64]) -> f64 {
        let n = self.antecedents.len();
        if cfg!(feature = "strict-math") {
            debug_assert!(v.len() >= n, "consequent_value: input has {} entries, need {n}", v.len());
        }
        self.consequent[..n]
            .iter()
            .zip(v)
            .map(|(a, x)| a * x)
            .sum::<f64>()
            // lint: allow(PANIC_IN_LIB) -- TskRule::new guarantees consequent.len() == n + 1
            + self.consequent[n]
    }
}

/// Detailed evaluation trace of a TSK FIS on one input.
#[derive(Debug, Clone, PartialEq)]
pub struct TskEvaluation {
    /// Raw firing strengths `w_j`.
    pub firing: Vec<f64>,
    /// Normalized firing strengths `w̄_j = w_j / Σ w`.
    pub normalized_firing: Vec<f64>,
    /// Per-rule consequent values `f_j(v)`.
    pub consequent_values: Vec<f64>,
    /// Final output `Σ w̄_j f_j`.
    pub output: f64,
}

/// A first-order TSK fuzzy inference system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TskFis {
    rules: Vec<TskRule>,
    #[serde(skip, default)]
    tnorm: TNorm,
}

impl TskFis {
    /// Build a FIS from rules sharing the same input dimension.
    ///
    /// # Errors
    ///
    /// Returns [`FuzzyError::InvalidRuleBase`] if the rule list is empty or
    /// the rules disagree on input dimension.
    pub fn new(rules: Vec<TskRule>) -> Result<Self> {
        if rules.is_empty() {
            return Err(FuzzyError::InvalidRuleBase("empty rule base".into()));
        }
        let dim = rules[0].input_dim();
        if rules.iter().any(|r| r.input_dim() != dim) {
            return Err(FuzzyError::InvalidRuleBase(
                "rules have inconsistent input dimensions".into(),
            ));
        }
        Ok(TskFis {
            rules,
            tnorm: TNorm::Product,
        })
    }

    /// Replace the antecedent T-norm (default: product, the paper's choice).
    pub fn with_tnorm(mut self, tnorm: TNorm) -> Self {
        self.tnorm = tnorm;
        self
    }

    /// Number of inputs.
    pub fn input_dim(&self) -> usize {
        self.rules[0].input_dim()
    }

    /// Number of rules `m`.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// The rules.
    pub fn rules(&self) -> &[TskRule] {
        &self.rules
    }

    /// Mutable access to the rules (ANFIS tuning).
    pub fn rules_mut(&mut self) -> &mut [TskRule] {
        &mut self.rules
    }

    /// The antecedent T-norm.
    pub fn tnorm(&self) -> TNorm {
        self.tnorm
    }

    /// Evaluate the system: `S(v) = Σ w_j f_j / Σ w_j`.
    ///
    /// # Errors
    ///
    /// * [`FuzzyError::DimensionMismatch`] if `v.len()` differs from the
    ///   input dimension.
    /// * [`FuzzyError::NoRuleFired`] if every firing strength underflows to
    ///   zero — the input lies numerically outside the support of all rules.
    // lint: allow(ASSERT_DENSITY) -- thin delegation; eval_detailed validates dimensions and firing via Result
    pub fn eval(&self, v: &[f64]) -> Result<f64> {
        self.eval_detailed(v).map(|e| e.output)
    }

    /// Evaluate and return the full trace (firing strengths, normalized
    /// strengths, per-rule consequent values). ANFIS training consumes this.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TskFis::eval`].
    pub fn eval_detailed(&self, v: &[f64]) -> Result<TskEvaluation> {
        if v.len() != self.input_dim() {
            return Err(FuzzyError::DimensionMismatch {
                expected: self.input_dim(),
                actual: v.len(),
            });
        }
        let firing: Vec<f64> = self
            .rules
            .iter()
            .map(|r| r.firing_strength(v, self.tnorm))
            .collect();
        let total: f64 = firing.iter().sum();
        if !(total > 0.0) || !total.is_finite() {
            return Err(FuzzyError::NoRuleFired);
        }
        let normalized_firing: Vec<f64> = firing.iter().map(|w| w / total).collect();
        let consequent_values: Vec<f64> =
            self.rules.iter().map(|r| r.consequent_value(v)).collect();
        let output = normalized_firing
            .iter()
            .zip(&consequent_values)
            .map(|(w, f)| w * f)
            .sum();
        Ok(TskEvaluation {
            firing,
            normalized_firing,
            consequent_values,
            output,
        })
    }

    /// Evaluate a batch of inputs, propagating the first error.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TskFis::eval`] for any row.
    // lint: allow(ASSERT_DENSITY) -- delegates row-wise to eval, which validates via Result
    pub fn eval_batch(&self, inputs: &[Vec<f64>]) -> Result<Vec<f64>> {
        inputs.iter().map(|v| self.eval(v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaussian(mu: f64, sigma: f64) -> MembershipFunction {
        MembershipFunction::gaussian(mu, sigma).unwrap()
    }

    fn two_rule_1d() -> TskFis {
        TskFis::new(vec![
            TskRule::new(vec![gaussian(0.0, 0.3)], vec![0.0, 0.0]).unwrap(),
            TskRule::new(vec![gaussian(1.0, 0.3)], vec![0.0, 1.0]).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn rule_validation() {
        assert!(TskRule::new(vec![], vec![1.0]).is_err());
        assert!(TskRule::new(vec![gaussian(0.0, 1.0)], vec![1.0]).is_err());
        assert!(TskRule::new(vec![gaussian(0.0, 1.0)], vec![1.0, f64::NAN]).is_err());
        assert!(TskRule::new(vec![gaussian(0.0, 1.0)], vec![1.0, 2.0]).is_ok());
    }

    #[test]
    fn constant_rule_is_zero_order() {
        let r = TskRule::constant(vec![gaussian(0.0, 1.0), gaussian(1.0, 1.0)], 7.0).unwrap();
        assert_eq!(r.consequent(), &[0.0, 0.0, 7.0]);
        assert_eq!(r.consequent_value(&[123.0, -5.0]), 7.0);
    }

    #[test]
    fn fis_validation() {
        assert!(TskFis::new(vec![]).is_err());
        let r1 = TskRule::new(vec![gaussian(0.0, 1.0)], vec![0.0, 0.0]).unwrap();
        let r2 = TskRule::new(
            vec![gaussian(0.0, 1.0), gaussian(0.0, 1.0)],
            vec![0.0, 0.0, 0.0],
        )
        .unwrap();
        assert!(TskFis::new(vec![r1, r2]).is_err());
    }

    #[test]
    fn firing_strength_is_product() {
        let r = TskRule::new(
            vec![gaussian(0.0, 1.0), gaussian(0.0, 1.0)],
            vec![0.0, 0.0, 1.0],
        )
        .unwrap();
        let w = r.firing_strength(&[1.0, 1.0], TNorm::Product);
        let single = (-0.5f64).exp();
        assert!((w - single * single).abs() < 1e-15);
        let wmin = r.firing_strength(&[1.0, 2.0], TNorm::Minimum);
        assert!((wmin - (-2.0f64).exp()).abs() < 1e-15);
    }

    #[test]
    fn consequent_linear_function() {
        let r = TskRule::new(
            vec![gaussian(0.0, 1.0), gaussian(0.0, 1.0)],
            vec![2.0, -1.0, 0.5],
        )
        .unwrap();
        assert!((r.consequent_value(&[1.0, 3.0]) - (2.0 - 3.0 + 0.5)).abs() < 1e-15);
    }

    #[test]
    fn eval_interpolates_between_rules() {
        let fis = two_rule_1d();
        assert!((fis.eval(&[0.5]).unwrap() - 0.5).abs() < 1e-12);
        // Near a center the nearer rule dominates.
        assert!(fis.eval(&[0.05]).unwrap() < 0.1);
        assert!(fis.eval(&[0.95]).unwrap() > 0.9);
    }

    #[test]
    fn eval_at_rule_center_matches_mixture() {
        // At x=0 both rules fire: w1 = 1, w2 = exp(-0.5*(1/0.3)^2).
        let fis = two_rule_1d();
        let w2 = (-0.5 * (1.0f64 / 0.3) * (1.0 / 0.3)).exp();
        let want = w2 / (1.0 + w2);
        assert!((fis.eval(&[0.0]).unwrap() - want).abs() < 1e-12);
    }

    #[test]
    fn output_within_consequent_hull() {
        // With all consequents constant, output must stay inside [min, max].
        let fis = TskFis::new(vec![
            TskRule::constant(vec![gaussian(0.0, 0.5)], -2.0).unwrap(),
            TskRule::constant(vec![gaussian(1.0, 0.5)], 3.0).unwrap(),
        ])
        .unwrap();
        let mut x = -1.0;
        while x <= 2.0 {
            let y = fis.eval(&[x]).unwrap();
            assert!((-2.0..=3.0).contains(&y), "x={x} y={y}");
            x += 0.05;
        }
    }

    #[test]
    fn eval_detailed_consistency() {
        let fis = two_rule_1d();
        let e = fis.eval_detailed(&[0.3]).unwrap();
        assert_eq!(e.firing.len(), 2);
        let sum: f64 = e.normalized_firing.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        let manual: f64 = e
            .normalized_firing
            .iter()
            .zip(&e.consequent_values)
            .map(|(w, f)| w * f)
            .sum();
        assert_eq!(manual, e.output);
    }

    #[test]
    fn dimension_mismatch_detected() {
        let fis = two_rule_1d();
        assert!(matches!(
            fis.eval(&[0.1, 0.2]),
            Err(FuzzyError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn far_input_reports_no_rule_fired() {
        let fis = two_rule_1d();
        // 1e5 sigma away: both Gaussians underflow to exactly 0.
        assert!(matches!(fis.eval(&[3.0e4]), Err(FuzzyError::NoRuleFired)));
    }

    #[test]
    fn eval_batch_propagates() {
        let fis = two_rule_1d();
        let ys = fis.eval_batch(&[vec![0.0], vec![1.0]]).unwrap();
        assert_eq!(ys.len(), 2);
        assert!(fis.eval_batch(&[vec![0.0], vec![3.0e4]]).is_err());
    }

    #[test]
    fn serde_round_trip_preserves_eval() {
        let fis = two_rule_1d();
        let json = serde_json::to_string(&fis).unwrap();
        let back: TskFis = serde_json::from_str(&json).unwrap();
        for &x in &[0.0, 0.25, 0.7, 1.0] {
            assert_eq!(fis.eval(&[x]).unwrap(), back.eval(&[x]).unwrap());
        }
    }
}
