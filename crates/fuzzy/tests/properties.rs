//! Property-based tests for the fuzzy substrate.

use cqm_fuzzy::membership::MembershipFunction;
use cqm_fuzzy::tnorm::{SNorm, TNorm};
use cqm_fuzzy::tsk::{TskFis, TskRule};
use proptest::prelude::*;

fn gaussian_strategy() -> impl Strategy<Value = MembershipFunction> {
    (-5.0f64..5.0, 0.01f64..2.0)
        .prop_map(|(mu, sigma)| MembershipFunction::gaussian(mu, sigma).unwrap())
}

fn any_membership() -> impl Strategy<Value = MembershipFunction> {
    prop_oneof![
        gaussian_strategy(),
        (-5.0f64..0.0, 0.0f64..2.0, 2.0f64..5.0)
            .prop_map(|(a, b, c)| MembershipFunction::triangular(a, b, c).unwrap()),
        (0.1f64..3.0, 0.5f64..4.0, -3.0f64..3.0)
            .prop_map(|(a, b, c)| MembershipFunction::bell(a, b, c).unwrap()),
        (-5.0f64..5.0, -3.0f64..3.0)
            .prop_map(|(a, c)| MembershipFunction::sigmoid(a, c).unwrap()),
    ]
}

proptest! {
    #[test]
    fn membership_always_in_unit_interval(mf in any_membership(), x in -20.0f64..20.0) {
        let v = mf.eval(x);
        prop_assert!((0.0..=1.0).contains(&v), "{mf} at {x} -> {v}");
    }

    #[test]
    fn gaussian_peak_at_center(mf in gaussian_strategy()) {
        let c = mf.center();
        prop_assert!((mf.eval(c) - 1.0).abs() < 1e-14);
        prop_assert!(mf.eval(c + 0.5) <= 1.0);
        // Symmetric around the center.
        prop_assert!((mf.eval(c + 0.37) - mf.eval(c - 0.37)).abs() < 1e-12);
    }

    #[test]
    fn gaussian_grad_zero_at_center(mf in gaussian_strategy()) {
        let c = mf.center();
        let (dmu, dsigma) = mf.gaussian_grad(c).unwrap();
        prop_assert!(dmu.abs() < 1e-14);
        prop_assert!(dsigma.abs() < 1e-14);
    }

    #[test]
    fn tnorm_bounded_by_min(a in 0.0f64..1.0, b in 0.0f64..1.0) {
        // Every T-norm is dominated by minimum.
        for t in [TNorm::Product, TNorm::Minimum, TNorm::Lukasiewicz] {
            prop_assert!(t.apply(a, b) <= a.min(b) + 1e-15);
        }
        // Every S-norm dominates maximum.
        for s in [SNorm::Maximum, SNorm::ProbabilisticSum, SNorm::BoundedSum] {
            prop_assert!(s.apply(a, b) >= a.max(b) - 1e-15);
        }
    }

    #[test]
    fn tsk_output_in_consequent_hull_for_constant_rules(
        centers in prop::collection::vec((-2.0f64..2.0, 0.05f64..1.0, -10.0f64..10.0), 2..6),
        x in -3.0f64..3.0,
    ) {
        let rules: Vec<TskRule> = centers
            .iter()
            .map(|&(mu, sigma, c)| {
                TskRule::constant(vec![MembershipFunction::gaussian(mu, sigma).unwrap()], c)
                    .unwrap()
            })
            .collect();
        let lo = centers.iter().map(|c| c.2).fold(f64::INFINITY, f64::min);
        let hi = centers.iter().map(|c| c.2).fold(f64::NEG_INFINITY, f64::max);
        let fis = TskFis::new(rules).unwrap();
        if let Ok(y) = fis.eval(&[x]) {
            prop_assert!(y >= lo - 1e-9 && y <= hi + 1e-9, "y={y} not in [{lo},{hi}]");
        }
    }

    #[test]
    fn tsk_normalized_firing_sums_to_one(
        mus in prop::collection::vec(-1.0f64..2.0, 2..5),
        x in -1.0f64..2.0,
    ) {
        let rules: Vec<TskRule> = mus
            .iter()
            .map(|&mu| {
                TskRule::new(
                    vec![MembershipFunction::gaussian(mu, 0.4).unwrap()],
                    vec![1.0, 0.0],
                )
                .unwrap()
            })
            .collect();
        let fis = TskFis::new(rules).unwrap();
        let e = fis.eval_detailed(&[x]).unwrap();
        let s: f64 = e.normalized_firing.iter().sum();
        prop_assert!((s - 1.0).abs() < 1e-10);
        for w in &e.normalized_firing {
            prop_assert!(*w >= 0.0);
        }
    }

    #[test]
    fn tsk_eval_is_deterministic(x in -2.0f64..2.0) {
        let fis = TskFis::new(vec![
            TskRule::new(
                vec![MembershipFunction::gaussian(0.0, 0.5).unwrap()],
                vec![1.0, 0.0],
            )
            .unwrap(),
            TskRule::new(
                vec![MembershipFunction::gaussian(1.0, 0.5).unwrap()],
                vec![-1.0, 2.0],
            )
            .unwrap(),
        ])
        .unwrap();
        prop_assert_eq!(fis.eval(&[x]).unwrap(), fis.eval(&[x]).unwrap());
    }
}
