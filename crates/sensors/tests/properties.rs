//! Property-based tests for the sensing substrate.

use cqm_sensors::accel::{AccelSample, Accelerometer};
use cqm_sensors::context::Context;
use cqm_sensors::cues::CueSet;
use cqm_sensors::motion::acceleration;
use cqm_sensors::node::{NodeConfig, SensorNode};
use cqm_sensors::synth::Scenario;
use cqm_sensors::user::UserStyle;
use cqm_sensors::window::{Window, Windower};
use proptest::prelude::*;

fn any_style() -> impl Strategy<Value = UserStyle> {
    (0.2f64..3.0, 0.2f64..3.0, 0.0f64..1.0)
        .prop_map(|(v, t, tr)| UserStyle::new(v, t, tr).unwrap())
}

fn any_context() -> impl Strategy<Value = Context> {
    prop_oneof![
        Just(Context::LyingStill),
        Just(Context::Writing),
        Just(Context::Playing),
    ]
}

proptest! {
    #[test]
    fn motion_is_finite_and_bounded(ctx in any_context(), style in any_style(),
                                    t in 0.0f64..100.0, phase in 0.0f64..7.0) {
        let a = acceleration(ctx, &style, t, phase);
        for v in a {
            prop_assert!(v.is_finite());
            // Physical bound: a hand cannot exceed ~30 m/s² with a pen.
            prop_assert!(v.abs() < 30.0, "{v}");
        }
    }

    #[test]
    fn sensor_samples_within_range(seed in 0u64..500, ctx in any_context(), style in any_style()) {
        let mut accel = Accelerometer::standard(seed).unwrap();
        for s in accel.sample_n(ctx, &style, 0.0, 50) {
            for v in s.axes {
                prop_assert!(v.is_finite());
                prop_assert!(v.abs() <= 19.6 + 1e-9, "saturation bound violated: {v}");
            }
        }
    }

    #[test]
    fn windower_emits_expected_count(n in 10usize..300, size in 2usize..20, hop in 1usize..20) {
        prop_assume!(hop <= size);
        let mut w = Windower::new(size, hop).unwrap();
        let samples: Vec<AccelSample> = (0..n)
            .map(|i| AccelSample { t: i as f64, axes: [0.0; 3] })
            .collect();
        let windows = w.push_all(&samples);
        let expected = if n >= size { (n - size) / hop + 1 } else { 0 };
        prop_assert_eq!(windows.len(), expected);
        for win in &windows {
            prop_assert_eq!(win.len(), size);
        }
    }

    #[test]
    fn cues_nonnegative_finite(xs in prop::collection::vec(-15.0f64..15.0, 4..40)) {
        let window = Window {
            samples: xs
                .iter()
                .enumerate()
                .map(|(i, &x)| AccelSample { t: i as f64, axes: [x, -x, 0.5 * x] })
                .collect(),
        };
        for set in [CueSet::StdDev, CueSet::Extended] {
            let cues = set.extract(&window);
            prop_assert_eq!(cues.len(), set.dim());
            for c in cues {
                prop_assert!(c.is_finite());
                prop_assert!(c >= 0.0);
            }
        }
    }

    #[test]
    fn scenario_windows_are_fully_labeled(seed in 0u64..200) {
        let mut node = SensorNode::with_seed(seed);
        let scenario = Scenario::new(vec![
            (Context::LyingStill, 2.0),
            (Context::Writing, 2.0),
            (Context::Playing, 2.0),
        ]).unwrap();
        let windows = node.run_scenario(&scenario).unwrap();
        prop_assert!(!windows.is_empty());
        for w in &windows {
            prop_assert_eq!(w.cues.len(), 3);
            prop_assert!(w.cues.iter().all(|c| c.is_finite()));
            prop_assert!(w.t >= 0.0);
        }
        // Timestamps strictly increase.
        for pair in windows.windows(2) {
            prop_assert!(pair[1].t > pair[0].t);
        }
    }

    #[test]
    fn node_runs_are_reproducible(seed in 0u64..200) {
        let scenario = Scenario::write_think_write().unwrap();
        let run = |s| {
            let mut node = SensorNode::new(NodeConfig::default(), UserStyle::default(), s)
                .unwrap();
            node.run_scenario(&scenario).unwrap()
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}
