//! Cue extraction from sample windows.
//!
//! The paper's AwarePen maps "standard deviations from three acceleration
//! (aka adxl) sensor outputs onto context classes" (§3.1) — that is the
//! [`CueSet::StdDev`] extractor. [`CueSet::Extended`] adds mean-removed
//! energy, range and zero-crossing-rate cues per axis for the richer-cue
//! ablation.

// lint: allow(PANIC_IN_LIB, file) -- axis indices are 0..3 by construction of the cue set

use cqm_math::stats::Welford;

use crate::window::Window;

/// Which cue vector to extract from a window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CueSet {
    /// Per-axis standard deviation — the paper's 3-cue configuration.
    #[default]
    StdDev,
    /// Per-axis std-dev, range and zero-crossing rate (9 cues).
    Extended,
}

impl CueSet {
    /// Dimensionality of the produced cue vector.
    pub fn dim(&self) -> usize {
        match self {
            CueSet::StdDev => 3,
            CueSet::Extended => 9,
        }
    }

    /// Extract the cue vector from a window.
    pub fn extract(&self, window: &Window) -> Vec<f64> {
        match self {
            CueSet::StdDev => (0..3).map(|a| axis_std_dev(window, a)).collect(),
            CueSet::Extended => {
                let mut cues = Vec::with_capacity(9);
                for a in 0..3 {
                    cues.push(axis_std_dev(window, a));
                }
                for a in 0..3 {
                    cues.push(axis_range(window, a));
                }
                for a in 0..3 {
                    cues.push(axis_zero_crossing_rate(window, a));
                }
                cues
            }
        }
    }
}

/// Population standard deviation of one axis (streaming, single pass).
pub fn axis_std_dev(window: &Window, axis: usize) -> f64 {
    let mut w = Welford::new();
    for s in &window.samples {
        w.push(s.axes[axis]);
    }
    w.population_std_dev()
}

/// Peak-to-peak range of one axis.
pub fn axis_range(window: &Window, axis: usize) -> f64 {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for s in &window.samples {
        lo = lo.min(s.axes[axis]);
        hi = hi.max(s.axes[axis]);
    }
    hi - lo
}

/// Zero-crossing rate of the mean-removed signal of one axis, normalized by
/// window length (0..1).
pub fn axis_zero_crossing_rate(window: &Window, axis: usize) -> f64 {
    let xs = window.axis(axis);
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let mut crossings = 0usize;
    for pair in xs.windows(2) {
        if (pair[0] - mean).signum() != (pair[1] - mean).signum() {
            crossings += 1;
        }
    }
    crossings as f64 / (xs.len() - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accel::AccelSample;

    fn window_from(xs: &[f64]) -> Window {
        Window {
            samples: xs
                .iter()
                .enumerate()
                .map(|(i, &x)| AccelSample {
                    t: i as f64,
                    axes: [x, 2.0 * x, 0.0],
                })
                .collect(),
        }
    }

    #[test]
    fn std_dev_matches_definition() {
        let w = window_from(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((axis_std_dev(&w, 0) - 2.0).abs() < 1e-12);
        // Second axis is scaled by 2.
        assert!((axis_std_dev(&w, 1) - 4.0).abs() < 1e-12);
        // Constant axis.
        assert_eq!(axis_std_dev(&w, 2), 0.0);
    }

    #[test]
    fn range_and_zero_crossings() {
        let w = window_from(&[1.0, -1.0, 1.0, -1.0, 1.0]);
        assert_eq!(axis_range(&w, 0), 2.0);
        // Mean 0.2; signal crosses it on every step: 4 crossings / 4 steps.
        assert_eq!(axis_zero_crossing_rate(&w, 0), 1.0);
        let flat = window_from(&[3.0, 3.0, 3.0]);
        assert_eq!(axis_range(&flat, 0), 0.0);
    }

    #[test]
    fn cue_set_dimensions() {
        let w = window_from(&[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(CueSet::StdDev.extract(&w).len(), CueSet::StdDev.dim());
        assert_eq!(CueSet::Extended.extract(&w).len(), CueSet::Extended.dim());
        assert_eq!(CueSet::StdDev.dim(), 3);
        assert_eq!(CueSet::Extended.dim(), 9);
    }

    #[test]
    fn extended_contains_std_dev_prefix() {
        let w = window_from(&[0.5, 1.5, -0.5, 2.5]);
        let basic = CueSet::StdDev.extract(&w);
        let extended = CueSet::Extended.extract(&w);
        assert_eq!(&extended[..3], &basic[..]);
    }

    #[test]
    fn cues_are_finite_and_nonnegative() {
        let w = window_from(&[-5.0, 3.0, 0.0, 7.0, -2.0]);
        for cue in CueSet::Extended.extract(&w) {
            assert!(cue.is_finite());
            assert!(cue >= 0.0);
        }
    }
}
