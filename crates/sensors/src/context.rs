//! The AwarePen context classes (§3.1): lying still, writing, playing
//! around.

use serde::{Deserialize, Serialize};

/// A pen usage context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Context {
    /// The pen lies untouched (e.g. on the whiteboard tray).
    LyingStill,
    /// Someone writes on the whiteboard.
    Writing,
    /// Someone fiddles/plays with the pen (e.g. while thinking).
    Playing,
}

impl Context {
    /// All contexts, in index order.
    pub const ALL: [Context; 3] = [Context::LyingStill, Context::Writing, Context::Playing];

    /// Stable numeric index (the class identifier `c` fed into the CQM).
    pub fn index(&self) -> usize {
        match self {
            Context::LyingStill => 0,
            Context::Writing => 1,
            Context::Playing => 2,
        }
    }

    /// Inverse of [`Context::index`].
    pub fn from_index(i: usize) -> Option<Context> {
        Context::ALL.get(i).copied()
    }

    /// Human-readable name as used in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Context::LyingStill => "lying still",
            Context::Writing => "writing",
            Context::Playing => "playing",
        }
    }
}

impl std::fmt::Display for Context {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        for c in Context::ALL {
            assert_eq!(Context::from_index(c.index()), Some(c));
        }
        assert_eq!(Context::from_index(3), None);
    }

    #[test]
    fn indices_are_dense() {
        let mut seen = [false; 3];
        for c in Context::ALL {
            seen[c.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(Context::LyingStill.to_string(), "lying still");
        assert_eq!(Context::Writing.to_string(), "writing");
        assert_eq!(Context::Playing.to_string(), "playing");
    }

    #[test]
    fn serde_round_trip() {
        for c in Context::ALL {
            let json = serde_json::to_string(&c).unwrap();
            let back: Context = serde_json::from_str(&json).unwrap();
            assert_eq!(back, c);
        }
    }
}
