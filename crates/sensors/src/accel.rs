//! The virtual 3-axis accelerometer: gravity projection + context motion +
//! per-axis noise channels, sampled at a fixed rate.

// lint: allow(PANIC_IN_LIB, file) -- sample triples are indexed 0..3 against fixed-size axis arrays

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::motion::acceleration;
use crate::noise::{NoiseChannel, NoiseModel};
use crate::user::UserStyle;
use crate::{Context, Result, SensorError};

/// Standard gravity (m/s²).
pub const GRAVITY: f64 = 9.81;

/// One raw accelerometer sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccelSample {
    /// Time stamp in seconds since sensor start.
    pub t: f64,
    /// Acceleration per axis (m/s²), gravity included.
    pub axes: [f64; 3],
}

/// The virtual ADXL sensor.
#[derive(Debug, Clone)]
pub struct Accelerometer {
    rate_hz: f64,
    channels: [NoiseChannel; 3],
    rng: StdRng,
    /// Pen attitude: fraction of gravity on each axis (unit vector).
    gravity_dir: [f64; 3],
    sample_index: u64,
}

impl Accelerometer {
    /// Create a sensor sampling at `rate_hz` with the given noise model and
    /// RNG seed.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::InvalidParameter`] unless
    /// `1 <= rate_hz <= 10_000`.
    pub fn new(rate_hz: f64, noise: NoiseModel, seed: u64) -> Result<Self> {
        if !(1.0..=10_000.0).contains(&rate_hz) {
            return Err(SensorError::InvalidParameter {
                name: "rate_hz",
                value: rate_hz,
            });
        }
        let mut accel = Accelerometer {
            rate_hz,
            channels: [
                NoiseChannel::new(noise),
                NoiseChannel::new(noise),
                NoiseChannel::new(noise),
            ],
            rng: StdRng::seed_from_u64(seed),
            gravity_dir: [0.0, 0.0, 1.0],
            sample_index: 0,
        };
        // Pen resting roughly horizontally with a slight tilt
        // (set_attitude normalizes).
        accel.set_attitude([0.12, 0.08, 0.989]);
        Ok(accel)
    }

    /// 100 Hz sensor with default noise — the configuration used by the
    /// experiments.
    ///
    /// # Errors
    ///
    /// Never fails for the built-in constants; the `Result` mirrors
    /// [`Accelerometer::new`].
    pub fn standard(seed: u64) -> Result<Self> {
        Accelerometer::new(100.0, NoiseModel::default(), seed)
    }

    /// Sampling rate in Hz.
    pub fn rate_hz(&self) -> f64 {
        self.rate_hz
    }

    /// Current sensor time (seconds).
    pub fn now(&self) -> f64 {
        self.sample_index as f64 / self.rate_hz
    }

    /// Re-orient the pen (unit-normalized internally); playing with the pen
    /// changes its attitude, which the scenario generator exploits.
    pub fn set_attitude(&mut self, dir: [f64; 3]) {
        let norm = (dir[0] * dir[0] + dir[1] * dir[1] + dir[2] * dir[2]).sqrt();
        if norm > 0.0 {
            self.gravity_dir = [dir[0] / norm, dir[1] / norm, dir[2] / norm];
        }
    }

    /// Produce the next sample for the given context/style. `phase`
    /// decorrelates motion between scenario segments.
    pub fn sample(&mut self, context: Context, style: &UserStyle, phase: f64) -> AccelSample {
        let t = self.now();
        let motion = acceleration(context, style, t, phase);
        let tremor = if style.tremor > 0.0 && context != Context::LyingStill {
            style.tremor
        } else {
            0.0
        };
        let mut axes = [0.0; 3];
        for (i, axis) in axes.iter_mut().enumerate() {
            let clean = GRAVITY * self.gravity_dir[i]
                + motion[i]
                + tremor * crate::noise::gaussian(&mut self.rng);
            *axis = self.channels[i].apply(&mut self.rng, clean);
        }
        self.sample_index += 1;
        AccelSample { t, axes }
    }

    /// Produce `n` consecutive samples.
    pub fn sample_n(
        &mut self,
        context: Context,
        style: &UserStyle,
        phase: f64,
        n: usize,
    ) -> Vec<AccelSample> {
        (0..n).map(|_| self.sample(context, style, phase)).collect()
    }

    /// Fresh random phase for a new scenario segment.
    pub fn next_phase(&mut self) -> f64 {
        self.rng.gen::<f64>() * std::f64::consts::TAU
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn std_dev(xs: &[f64]) -> f64 {
        let m = xs.iter().sum::<f64>() / xs.len() as f64;
        (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
    }

    #[test]
    fn construction_validated() {
        assert!(Accelerometer::new(0.5, NoiseModel::default(), 0).is_err());
        assert!(Accelerometer::new(20000.0, NoiseModel::default(), 0).is_err());
        assert!(Accelerometer::standard(0).is_ok());
    }

    #[test]
    fn lying_still_measures_gravity() {
        let mut acc = Accelerometer::new(100.0, NoiseModel::ideal(), 1).unwrap();
        let s = acc.sample(Context::LyingStill, &UserStyle::default(), 0.0);
        let mag = (s.axes[0].powi(2) + s.axes[1].powi(2) + s.axes[2].powi(2)).sqrt();
        assert!((mag - GRAVITY).abs() < 1e-9, "magnitude {mag}");
    }

    #[test]
    fn timestamps_advance_at_rate() {
        let mut acc = Accelerometer::standard(2).unwrap();
        let samples = acc.sample_n(Context::Writing, &UserStyle::default(), 0.0, 5);
        for (i, s) in samples.iter().enumerate() {
            assert!((s.t - i as f64 * 0.01).abs() < 1e-12);
        }
        assert!((acc.now() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn context_energy_visible_in_std_dev() {
        let style = UserStyle::default();
        let run = |ctx: Context| {
            let mut acc = Accelerometer::standard(3).unwrap();
            let samples = acc.sample_n(ctx, &style, 0.0, 200);
            let xs: Vec<f64> = samples.iter().map(|s| s.axes[0]).collect();
            std_dev(&xs)
        };
        let still = run(Context::LyingStill);
        let writing = run(Context::Writing);
        let playing = run(Context::Playing);
        assert!(still < writing, "{still} {writing}");
        assert!(writing < playing, "{writing} {playing}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = Accelerometer::standard(7).unwrap();
        let mut b = Accelerometer::standard(7).unwrap();
        let sa = a.sample_n(Context::Playing, &UserStyle::default(), 0.3, 10);
        let sb = b.sample_n(Context::Playing, &UserStyle::default(), 0.3, 10);
        assert_eq!(sa, sb);
    }

    #[test]
    fn attitude_rotates_gravity() {
        let mut acc = Accelerometer::new(100.0, NoiseModel::ideal(), 1).unwrap();
        acc.set_attitude([1.0, 0.0, 0.0]);
        let s = acc.sample(Context::LyingStill, &UserStyle::default(), 0.0);
        assert!((s.axes[0] - GRAVITY).abs() < 1e-9);
        assert!(s.axes[2].abs() < 1e-9);
    }

    #[test]
    fn tremor_adds_energy_when_moving() {
        let style_tremor = UserStyle::new(1.0, 1.0, 1.0).unwrap();
        let style_steady = UserStyle::default();
        let sd = |style: &UserStyle| {
            let mut acc = Accelerometer::new(100.0, NoiseModel::ideal(), 9).unwrap();
            let samples = acc.sample_n(Context::Writing, style, 0.0, 300);
            let xs: Vec<f64> = samples.iter().map(|s| s.axes[0]).collect();
            std_dev(&xs)
        };
        assert!(sd(&style_tremor) > sd(&style_steady));
    }
}
