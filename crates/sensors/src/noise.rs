//! Sensor imperfection models for a 2000s-era 3-axis ADXL part on an 8-bit
//! sensor node: white Gaussian noise, slow thermal drift, quantization and
//! range saturation.

use rand::Rng;

use crate::{Result, SensorError};

/// Noise model applied to each raw acceleration sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// White-noise standard deviation (m/s²).
    pub white_sigma: f64,
    /// Drift random-walk step standard deviation per sample (m/s²).
    pub drift_sigma: f64,
    /// Quantization step (m/s²); 0 disables quantization.
    pub quantization: f64,
    /// Symmetric full-scale range (m/s²); samples saturate at ±range.
    pub range: f64,
}

impl Default for NoiseModel {
    fn default() -> Self {
        // ~ADXL202 on a Particle node: ±2 g range (~19.6), 8-bit resolution
        // (2*19.6/256 ≈ 0.153), moderate noise floor.
        NoiseModel {
            white_sigma: 0.09,
            drift_sigma: 0.0015,
            quantization: 0.153,
            range: 19.6,
        }
    }
}

impl NoiseModel {
    /// Validated constructor.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::InvalidParameter`] for negative parameters or
    /// a non-positive range.
    pub fn new(white_sigma: f64, drift_sigma: f64, quantization: f64, range: f64) -> Result<Self> {
        for (name, v) in [
            ("white_sigma", white_sigma),
            ("drift_sigma", drift_sigma),
            ("quantization", quantization),
        ] {
            if !(v >= 0.0 && v.is_finite()) {
                return Err(SensorError::InvalidParameter { name, value: v });
            }
        }
        if !(range > 0.0 && range.is_finite()) {
            return Err(SensorError::InvalidParameter {
                name: "range",
                value: range,
            });
        }
        Ok(NoiseModel {
            white_sigma,
            drift_sigma,
            quantization,
            range,
        })
    }

    /// An ideal (noise-free, continuous, unbounded-range) sensor.
    pub fn ideal() -> Self {
        NoiseModel {
            white_sigma: 0.0,
            drift_sigma: 0.0,
            quantization: 0.0,
            range: f64::INFINITY,
        }
    }
}

/// Stateful noise channel for one axis (owns its drift state).
#[derive(Debug, Clone)]
pub struct NoiseChannel {
    model: NoiseModel,
    drift: f64,
}

impl NoiseChannel {
    /// New channel with zero initial drift.
    pub fn new(model: NoiseModel) -> Self {
        NoiseChannel { model, drift: 0.0 }
    }

    /// Current drift offset.
    pub fn drift(&self) -> f64 {
        self.drift
    }

    /// Corrupt one sample.
    pub fn apply<R: Rng>(&mut self, rng: &mut R, clean: f64) -> f64 {
        let m = &self.model;
        self.drift += m.drift_sigma * gaussian(rng);
        let mut v = clean + self.drift + m.white_sigma * gaussian(rng);
        if m.quantization > 0.0 {
            v = (v / m.quantization).round() * m.quantization;
        }
        v.clamp(-m.range, m.range)
    }
}

/// Standard normal sample via Box–Muller (the approved `rand` crate has no
/// normal distribution without `rand_distr`).
pub fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn validation() {
        assert!(NoiseModel::new(0.1, 0.01, 0.1, 20.0).is_ok());
        assert!(NoiseModel::new(-0.1, 0.0, 0.0, 20.0).is_err());
        assert!(NoiseModel::new(0.1, f64::NAN, 0.0, 20.0).is_err());
        assert!(NoiseModel::new(0.1, 0.0, 0.0, 0.0).is_err());
    }

    #[test]
    fn ideal_channel_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ch = NoiseChannel::new(NoiseModel::ideal());
        for &x in &[0.0, 1.5, -9.81, 100.0] {
            assert_eq!(ch.apply(&mut rng, x), x);
        }
        assert_eq!(ch.drift(), 0.0);
    }

    #[test]
    fn white_noise_statistics() {
        let mut rng = StdRng::seed_from_u64(2);
        let model = NoiseModel::new(0.5, 0.0, 0.0, 1e6).unwrap();
        let mut ch = NoiseChannel::new(model);
        let n = 20000;
        let samples: Vec<f64> = (0..n).map(|_| ch.apply(&mut rng, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.02, "mean {mean}");
        assert!((var.sqrt() - 0.5).abs() < 0.02, "sigma {}", var.sqrt());
    }

    #[test]
    fn quantization_snaps_to_grid() {
        let mut rng = StdRng::seed_from_u64(3);
        let model = NoiseModel::new(0.0, 0.0, 0.25, 100.0).unwrap();
        let mut ch = NoiseChannel::new(model);
        let v = ch.apply(&mut rng, 1.13);
        assert!((v - 1.25).abs() < 1e-12 || (v - 1.0).abs() < 1e-12);
        let steps = v / 0.25;
        assert!((steps - steps.round()).abs() < 1e-12);
    }

    #[test]
    fn saturation_clamps() {
        let mut rng = StdRng::seed_from_u64(4);
        let model = NoiseModel::new(0.0, 0.0, 0.0, 19.6).unwrap();
        let mut ch = NoiseChannel::new(model);
        assert_eq!(ch.apply(&mut rng, 50.0), 19.6);
        assert_eq!(ch.apply(&mut rng, -50.0), -19.6);
    }

    #[test]
    fn drift_accumulates() {
        let mut rng = StdRng::seed_from_u64(5);
        let model = NoiseModel::new(0.0, 0.1, 0.0, 1e6).unwrap();
        let mut ch = NoiseChannel::new(model);
        for _ in 0..1000 {
            ch.apply(&mut rng, 0.0);
        }
        // Random walk: |drift| should be around 0.1 * sqrt(1000) ≈ 3.
        assert!(ch.drift().abs() > 0.1, "drift {}", ch.drift());
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(6);
        let n = 50000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let g = gaussian(&mut rng);
            sum += g;
            sum2 += g * g;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }
}
