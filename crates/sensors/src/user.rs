//! Per-user motion styles.
//!
//! The paper attributes much of the classification difficulty to user
//! variation: "movement patterns — e.g. produced by other users having a
//! different style of using the pen while writing — are much more difficult
//! to classify" (§1). A [`UserStyle`] scales the amplitude and tempo of the
//! motion models; an *energetic writer* overlaps with a *calm player*,
//! which is precisely the ambiguity the CQM must detect.

use serde::{Deserialize, Serialize};

use crate::{Result, SensorError};

/// A user's motion style: multiplicative modifiers on the motion models.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UserStyle {
    /// Scales motion amplitude (1.0 = nominal).
    pub vigor: f64,
    /// Scales motion frequency (1.0 = nominal).
    pub tempo: f64,
    /// Additional hand tremor amplitude in m/s² (0 = steady hand).
    pub tremor: f64,
}

impl Default for UserStyle {
    fn default() -> Self {
        UserStyle {
            vigor: 1.0,
            tempo: 1.0,
            tremor: 0.0,
        }
    }
}

impl UserStyle {
    /// Validated constructor.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::InvalidParameter`] unless `vigor` and `tempo`
    /// are in `(0, 5]` and `tremor` in `[0, 2]`.
    pub fn new(vigor: f64, tempo: f64, tremor: f64) -> Result<Self> {
        if !(vigor > 0.0 && vigor <= 5.0) {
            return Err(SensorError::InvalidParameter {
                name: "vigor",
                value: vigor,
            });
        }
        if !(tempo > 0.0 && tempo <= 5.0) {
            return Err(SensorError::InvalidParameter {
                name: "tempo",
                value: tempo,
            });
        }
        if !(0.0..=2.0).contains(&tremor) {
            return Err(SensorError::InvalidParameter {
                name: "tremor",
                value: tremor,
            });
        }
        Ok(UserStyle {
            vigor,
            tempo,
            tremor,
        })
    }

    /// A calm, precise writer (low amplitude — writing cues close to the
    /// lying-still regime).
    pub fn calm() -> Self {
        UserStyle {
            vigor: 0.55,
            tempo: 0.8,
            tremor: 0.02,
        }
    }

    /// An energetic user whose writing looks like gentle playing.
    pub fn energetic() -> Self {
        UserStyle {
            vigor: 1.9,
            tempo: 1.4,
            tremor: 0.12,
        }
    }

    /// A nervous user with visible tremor.
    pub fn nervous() -> Self {
        UserStyle {
            vigor: 1.1,
            tempo: 1.7,
            tremor: 0.5,
        }
    }

    /// The population used by the experiments: nominal plus the three
    /// stereotypes.
    pub fn population() -> Vec<UserStyle> {
        vec![
            UserStyle::default(),
            UserStyle::calm(),
            UserStyle::energetic(),
            UserStyle::nervous(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_nominal() {
        let s = UserStyle::default();
        assert_eq!(s.vigor, 1.0);
        assert_eq!(s.tempo, 1.0);
        assert_eq!(s.tremor, 0.0);
    }

    #[test]
    fn validation() {
        assert!(UserStyle::new(1.0, 1.0, 0.0).is_ok());
        assert!(UserStyle::new(0.0, 1.0, 0.0).is_err());
        assert!(UserStyle::new(1.0, 6.0, 0.0).is_err());
        assert!(UserStyle::new(1.0, 1.0, -0.1).is_err());
        assert!(UserStyle::new(1.0, 1.0, 3.0).is_err());
    }

    #[test]
    fn stereotypes_are_distinct_and_valid() {
        let pop = UserStyle::population();
        assert_eq!(pop.len(), 4);
        for s in &pop {
            assert!(UserStyle::new(s.vigor, s.tempo, s.tremor).is_ok());
        }
        // Energetic writes harder than calm.
        assert!(UserStyle::energetic().vigor > UserStyle::calm().vigor);
    }
}
