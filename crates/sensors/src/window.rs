//! Sliding-window segmentation of the raw sample stream.
//!
//! The AwarePen computes its cues over fixed windows of accelerometer
//! samples; the window length trades latency against cue stability.

// lint: allow(PANIC_IN_LIB, file) -- windows hold at least one sample and axis < 3 by construction

use crate::accel::AccelSample;
use crate::{Result, SensorError};

/// A window of consecutive samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Window {
    /// The samples (non-empty).
    pub samples: Vec<AccelSample>,
}

impl Window {
    /// Start time of the window.
    pub fn start(&self) -> f64 {
        self.samples.first().expect("non-empty window").t
    }

    /// End time of the window.
    pub fn end(&self) -> f64 {
        self.samples.last().expect("non-empty window").t
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Windows are never empty; this mirrors the std convention anyway.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// One axis of the window as a contiguous vector.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= 3`.
    pub fn axis(&self, axis: usize) -> Vec<f64> {
        assert!(axis < 3, "axis index out of range");
        self.samples.iter().map(|s| s.axes[axis]).collect()
    }
}

/// Fixed-size windower with configurable hop (overlap = size − hop).
#[derive(Debug, Clone)]
pub struct Windower {
    size: usize,
    hop: usize,
    buffer: Vec<AccelSample>,
}

impl Windower {
    /// Create a windower emitting windows of `size` samples every `hop`
    /// samples.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::InvalidSpec`] unless `size >= 2` and
    /// `1 <= hop <= size`.
    pub fn new(size: usize, hop: usize) -> Result<Self> {
        if size < 2 {
            return Err(SensorError::InvalidSpec(format!(
                "window size {size} must be >= 2"
            )));
        }
        if hop == 0 || hop > size {
            return Err(SensorError::InvalidSpec(format!(
                "hop {hop} must be in 1..={size}"
            )));
        }
        Ok(Windower {
            size,
            hop,
            buffer: Vec::new(),
        })
    }

    /// Non-overlapping windower (`hop == size`).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Windower::new`].
    pub fn tumbling(size: usize) -> Result<Self> {
        Windower::new(size, size)
    }

    /// Window size in samples.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Feed one sample; returns a completed window when one is due.
    pub fn push(&mut self, sample: AccelSample) -> Option<Window> {
        self.buffer.push(sample);
        if self.buffer.len() == self.size {
            let window = Window {
                samples: self.buffer.clone(),
            };
            self.buffer.drain(..self.hop);
            Some(window)
        } else {
            None
        }
    }

    /// Feed many samples; returns all completed windows.
    pub fn push_all(&mut self, samples: &[AccelSample]) -> Vec<Window> {
        samples.iter().filter_map(|&s| self.push(s)).collect()
    }

    /// Discard any partial window (e.g. at a segment boundary).
    pub fn reset(&mut self) {
        self.buffer.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t: f64) -> AccelSample {
        AccelSample {
            t,
            axes: [t, 2.0 * t, -t],
        }
    }

    #[test]
    fn construction_validated() {
        assert!(Windower::new(1, 1).is_err());
        assert!(Windower::new(4, 0).is_err());
        assert!(Windower::new(4, 5).is_err());
        assert!(Windower::new(4, 4).is_ok());
        assert!(Windower::tumbling(8).is_ok());
    }

    #[test]
    fn tumbling_windows_partition_stream() {
        let mut w = Windower::tumbling(3).unwrap();
        let samples: Vec<AccelSample> = (0..9).map(|i| sample(i as f64)).collect();
        let windows = w.push_all(&samples);
        assert_eq!(windows.len(), 3);
        assert_eq!(windows[0].start(), 0.0);
        assert_eq!(windows[0].end(), 2.0);
        assert_eq!(windows[2].start(), 6.0);
        assert_eq!(windows[1].len(), 3);
    }

    #[test]
    fn overlapping_windows_share_samples() {
        let mut w = Windower::new(4, 2).unwrap();
        let samples: Vec<AccelSample> = (0..8).map(|i| sample(i as f64)).collect();
        let windows = w.push_all(&samples);
        assert_eq!(windows.len(), 3);
        assert_eq!(windows[0].start(), 0.0);
        assert_eq!(windows[1].start(), 2.0);
        assert_eq!(windows[2].start(), 4.0);
    }

    #[test]
    fn axis_extraction() {
        let mut w = Windower::tumbling(2).unwrap();
        let windows = w.push_all(&[sample(1.0), sample(2.0)]);
        assert_eq!(windows[0].axis(1), vec![2.0, 4.0]);
        assert!(!windows[0].is_empty());
    }

    #[test]
    #[should_panic(expected = "axis index")]
    fn axis_bounds_checked() {
        let mut w = Windower::tumbling(2).unwrap();
        let windows = w.push_all(&[sample(1.0), sample(2.0)]);
        let _ = windows[0].axis(3);
    }

    #[test]
    fn reset_discards_partial() {
        let mut w = Windower::tumbling(3).unwrap();
        assert!(w.push(sample(0.0)).is_none());
        assert!(w.push(sample(1.0)).is_none());
        w.reset();
        assert!(w.push(sample(2.0)).is_none());
        assert!(w.push(sample(3.0)).is_none());
        let win = w.push(sample(4.0)).unwrap();
        assert_eq!(win.start(), 2.0);
    }
}
