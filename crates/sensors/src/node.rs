//! The virtual sensor node (the AwarePen's Particle Computer): sampling,
//! windowing and cue extraction glued into one labeled stream.

// lint: allow(PANIC_IN_LIB, file) -- default node config is valid and generated windows are non-empty

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::accel::Accelerometer;
use crate::cues::CueSet;
use crate::synth::Scenario;
use crate::user::UserStyle;
use crate::window::Windower;
use crate::{Context, Result};

/// One labeled cue observation produced by the node.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledCues {
    /// Cue vector (per the node's [`CueSet`]).
    pub cues: Vec<f64>,
    /// Ground-truth context (majority context of the window).
    pub truth: Context,
    /// Window start time in seconds.
    pub t: f64,
    /// Whether the window spans a context change — the hard samples.
    pub is_transition: bool,
}

/// Node configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeConfig {
    /// Sampling rate (Hz).
    pub rate_hz: f64,
    /// Window length in samples.
    pub window: usize,
    /// Window hop in samples.
    pub hop: usize,
    /// Which cues to extract.
    pub cue_set: CueSet,
}

impl Default for NodeConfig {
    fn default() -> Self {
        // 100 Hz, 0.5 s windows, 50% overlap: short enough that writing
        // holds and gentle-playing stretches fill whole windows (the hard
        // samples), frequent enough for training.
        NodeConfig {
            rate_hz: 100.0,
            window: 50,
            hop: 25,
            cue_set: CueSet::StdDev,
        }
    }
}

/// The virtual AwarePen sensor node.
#[derive(Debug, Clone)]
pub struct SensorNode {
    config: NodeConfig,
    accel: Accelerometer,
    style: UserStyle,
    rng: StdRng,
}

impl SensorNode {
    /// Create a node with explicit configuration, style and seed.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation from the accelerometer and
    /// windower.
    pub fn new(config: NodeConfig, style: UserStyle, seed: u64) -> Result<Self> {
        // Validate windower parameters eagerly; the windower itself is
        // created per run.
        Windower::new(config.window, config.hop)?;
        let accel = Accelerometer::new(config.rate_hz, crate::noise::NoiseModel::default(), seed)?;
        Ok(SensorNode {
            config,
            accel,
            style,
            rng: StdRng::seed_from_u64(seed ^ 0xA5A5_5A5A),
        })
    }

    /// Default configuration, nominal user, explicit seed.
    ///
    /// # Panics
    ///
    /// Never panics; the default configuration is valid.
    pub fn with_seed(seed: u64) -> Self {
        SensorNode::new(NodeConfig::default(), UserStyle::default(), seed)
            .expect("default node configuration is valid")
    }

    /// The node's cue dimensionality.
    pub fn cue_dim(&self) -> usize {
        self.config.cue_set.dim()
    }

    /// Replace the user style (e.g. between sessions).
    pub fn set_style(&mut self, style: UserStyle) {
        self.style = style;
    }

    /// Run a scenario and emit labeled cue windows. Windows spanning a
    /// context change are labeled with the majority context and flagged
    /// `is_transition` — those are the paper's "difficult to classify"
    /// samples and are deliberately *kept*.
    ///
    /// # Errors
    ///
    /// Propagates windower construction failure (impossible after
    /// [`SensorNode::new`] validation).
    pub fn run_scenario(&mut self, scenario: &Scenario) -> Result<Vec<LabeledCues>> {
        let mut windower = Windower::new(self.config.window, self.config.hop)?;
        let mut out = Vec::new();
        // Per-sample context labels for majority voting inside windows.
        let mut labels: std::collections::VecDeque<Context> = std::collections::VecDeque::new();
        for &(context, duration) in scenario.segments() {
            let phase = self.accel.next_phase();
            // Playing changes the pen attitude; settle a new one per segment.
            if context == Context::Playing {
                let dir = [
                    self.rng.gen::<f64>() - 0.5,
                    self.rng.gen::<f64>() - 0.5,
                    self.rng.gen::<f64>() * 0.8 + 0.2,
                ];
                self.accel.set_attitude(dir);
            }
            let n = (duration * self.config.rate_hz).round() as usize;
            for _ in 0..n {
                let sample = self.accel.sample(context, &self.style, phase);
                labels.push_back(context);
                if let Some(window) = windower.push(sample) {
                    // The window covers the last `window` labels; with hop
                    // `h`, `h` labels retire per emitted window.
                    let window_labels: Vec<Context> = labels
                        .iter()
                        .rev()
                        .take(self.config.window)
                        .copied()
                        .collect();
                    let mut counts = [0usize; 3];
                    for c in &window_labels {
                        counts[c.index()] += 1;
                    }
                    let majority = (0..3)
                        .max_by_key(|&i| counts[i])
                        .and_then(Context::from_index)
                        .expect("non-empty window");
                    let is_transition = counts.iter().filter(|&&c| c > 0).count() > 1;
                    out.push(LabeledCues {
                        cues: self.config.cue_set.extract(&window),
                        truth: majority,
                        t: window.start(),
                        is_transition,
                    });
                    while labels.len() > self.config.window {
                        labels.pop_front();
                    }
                }
            }
        }
        Ok(out)
    }
}

/// Generate a mixed training corpus: the balanced session plus the
/// write-think-write situation, run once per user style in
/// [`UserStyle::population`], with per-style seeds derived from `seed`.
///
/// # Errors
///
/// Propagates node/scenario construction failures (none for the built-in
/// configuration).
pub fn training_corpus(seed: u64, repetitions: usize) -> Result<Vec<LabeledCues>> {
    let mut out = Vec::new();
    let scenario = Scenario::balanced_session()?.then(&Scenario::write_think_write()?);
    for rep in 0..repetitions {
        for (si, style) in UserStyle::population().into_iter().enumerate() {
            let node_seed = seed
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add((rep * 31 + si) as u64);
            let mut node = SensorNode::new(NodeConfig::default(), style, node_seed)?;
            out.extend(node.run_scenario(&scenario)?);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_produces_expected_window_count() {
        let mut node = SensorNode::with_seed(1);
        let scenario = Scenario::new(vec![(Context::Writing, 10.0)]).unwrap();
        let samples = node.run_scenario(&scenario).unwrap();
        // 1000 samples, window 50, hop 25 -> floor((1000-50)/25)+1 = 39.
        assert_eq!(samples.len(), 39);
        for s in &samples {
            assert_eq!(s.truth, Context::Writing);
            assert!(!s.is_transition);
            assert_eq!(s.cues.len(), 3);
        }
    }

    #[test]
    fn transition_windows_flagged() {
        let mut node = SensorNode::with_seed(2);
        let scenario = Scenario::new(vec![
            (Context::LyingStill, 3.0),
            (Context::Playing, 3.0),
        ])
        .unwrap();
        let samples = node.run_scenario(&scenario).unwrap();
        assert!(samples.iter().any(|s| s.is_transition));
        assert!(samples.iter().any(|s| !s.is_transition));
        // Majority labeling: transition windows still get one of the two
        // adjacent contexts.
        for s in &samples {
            assert!(s.truth == Context::LyingStill || s.truth == Context::Playing);
        }
    }

    #[test]
    fn cue_separation_between_contexts() {
        let mut node = SensorNode::with_seed(3);
        let scenario = Scenario::new(vec![
            (Context::LyingStill, 8.0),
            (Context::Playing, 8.0),
        ])
        .unwrap();
        let samples = node.run_scenario(&scenario).unwrap();
        let mean_cue = |ctx: Context| {
            let sel: Vec<&LabeledCues> = samples
                .iter()
                .filter(|s| s.truth == ctx && !s.is_transition)
                .collect();
            sel.iter().map(|s| s.cues[0]).sum::<f64>() / sel.len() as f64
        };
        assert!(mean_cue(Context::Playing) > 5.0 * mean_cue(Context::LyingStill));
    }

    #[test]
    fn determinism_and_seed_sensitivity() {
        let scenario = Scenario::write_think_write().unwrap();
        let run = |seed| {
            let mut node = SensorNode::with_seed(seed);
            node.run_scenario(&scenario).unwrap()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn timestamps_monotone() {
        let mut node = SensorNode::with_seed(4);
        let samples = node
            .run_scenario(&Scenario::balanced_session().unwrap())
            .unwrap();
        for pair in samples.windows(2) {
            assert!(pair[1].t > pair[0].t);
        }
    }

    #[test]
    fn training_corpus_covers_all_contexts_and_transitions() {
        let corpus = training_corpus(0, 1).unwrap();
        for ctx in Context::ALL {
            assert!(
                corpus.iter().any(|s| s.truth == ctx),
                "missing context {ctx}"
            );
        }
        assert!(corpus.iter().any(|s| s.is_transition));
        // 4 styles, ~ (30+21)s at 2 windows/s each.
        assert!(corpus.len() > 300, "corpus size {}", corpus.len());
    }

    #[test]
    fn style_changes_cue_statistics() {
        let scenario = Scenario::new(vec![(Context::Writing, 10.0)]).unwrap();
        let mean_std = |style: UserStyle| {
            let mut node = SensorNode::new(NodeConfig::default(), style, 9).unwrap();
            let samples = node.run_scenario(&scenario).unwrap();
            samples.iter().map(|s| s.cues[0]).sum::<f64>() / samples.len() as f64
        };
        assert!(mean_std(UserStyle::energetic()) > mean_std(UserStyle::calm()));
    }
}
