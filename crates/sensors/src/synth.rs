//! Scenario scripting for trace generation.
//!
//! A scenario is a timed sequence of contexts, e.g. the paper's motivating
//! situation: "a user writing a text on the board, then for some seconds
//! playing with the pen when thinking and then continuing writing" (§1).
//! Windows spanning a context change are the hard-to-classify transition
//! samples.

use crate::{Context, Result, SensorError};

/// A timed sequence of `(context, duration-in-seconds)` segments.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    segments: Vec<(Context, f64)>,
}

impl Scenario {
    /// Create a scenario.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::InvalidSpec`] if the list is empty or any
    /// duration is non-positive/non-finite.
    pub fn new(segments: Vec<(Context, f64)>) -> Result<Self> {
        if segments.is_empty() {
            return Err(SensorError::InvalidSpec("empty scenario".into()));
        }
        for (c, d) in &segments {
            if !(d.is_finite() && *d > 0.0) {
                return Err(SensorError::InvalidSpec(format!(
                    "segment '{c}' has invalid duration {d}"
                )));
            }
        }
        Ok(Scenario { segments })
    }

    /// The paper's §1 whiteboard situation: write, think (play), write.
    ///
    /// # Errors
    ///
    /// Never fails for the built-in constants.
    pub fn write_think_write() -> Result<Self> {
        Scenario::new(vec![
            (Context::LyingStill, 2.0),
            (Context::Writing, 8.0),
            (Context::Playing, 3.0),
            (Context::Writing, 6.0),
            (Context::LyingStill, 2.0),
        ])
    }

    /// A balanced session visiting each context twice.
    ///
    /// # Errors
    ///
    /// Never fails for the built-in constants.
    pub fn balanced_session() -> Result<Self> {
        Scenario::new(vec![
            (Context::LyingStill, 5.0),
            (Context::Writing, 5.0),
            (Context::Playing, 5.0),
            (Context::Writing, 5.0),
            (Context::LyingStill, 5.0),
            (Context::Playing, 5.0),
        ])
    }

    /// Segments.
    pub fn segments(&self) -> &[(Context, f64)] {
        &self.segments
    }

    /// Total duration in seconds.
    pub fn duration(&self) -> f64 {
        self.segments.iter().map(|(_, d)| d).sum()
    }

    /// Number of context changes.
    pub fn transitions(&self) -> usize {
        self.segments
            .windows(2)
            .filter(|w| w[0].0 != w[1].0)
            .count()
    }

    /// Concatenate with another scenario.
    pub fn then(mut self, other: &Scenario) -> Scenario {
        self.segments.extend_from_slice(&other.segments);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(Scenario::new(vec![]).is_err());
        assert!(Scenario::new(vec![(Context::Writing, 0.0)]).is_err());
        assert!(Scenario::new(vec![(Context::Writing, -1.0)]).is_err());
        assert!(Scenario::new(vec![(Context::Writing, f64::NAN)]).is_err());
        assert!(Scenario::new(vec![(Context::Writing, 1.0)]).is_ok());
    }

    #[test]
    fn built_in_scenarios() {
        let w = Scenario::write_think_write().unwrap();
        assert_eq!(w.duration(), 21.0);
        assert_eq!(w.transitions(), 4);
        let b = Scenario::balanced_session().unwrap();
        assert_eq!(b.duration(), 30.0);
        assert_eq!(b.segments().len(), 6);
    }

    #[test]
    fn then_concatenates() {
        let a = Scenario::new(vec![(Context::Writing, 1.0)]).unwrap();
        let b = Scenario::new(vec![(Context::Playing, 2.0)]).unwrap();
        let c = a.then(&b);
        assert_eq!(c.segments().len(), 2);
        assert_eq!(c.duration(), 3.0);
        assert_eq!(c.transitions(), 1);
    }

    #[test]
    fn same_context_segments_no_transition() {
        let s = Scenario::new(vec![(Context::Writing, 1.0), (Context::Writing, 2.0)]).unwrap();
        assert_eq!(s.transitions(), 0);
    }
}
