//! Per-context pen motion models.
//!
//! Each context produces a characteristic 3-axis acceleration signature
//! (beyond gravity), parameterized by the [`UserStyle`]:
//!
//! * **lying still** — no motion at all; only sensor noise remains;
//! * **writing** — small-amplitude strokes at a few hertz, dominated by the
//!   pen-tip plane (x/y), with stroke-to-stroke amplitude modulation;
//! * **playing** — large, slow, irregular swings on all axes with occasional
//!   jerks (pen twirling, tapping).
//!
//! The amplitudes are chosen so the per-axis standard deviations of the
//! three contexts form distinct but *adjacent* bands, and so that user
//! styles overlap them (energetic writing ≈ calm playing) — the error
//! structure the paper reports.

use crate::user::UserStyle;
use crate::Context;

/// Deterministic per-context acceleration (m/s², gravity excluded) at time
/// `t` seconds. `phase` decorrelates independent segments.
pub fn acceleration(context: Context, style: &UserStyle, t: f64, phase: f64) -> [f64; 3] {
    match context {
        Context::LyingStill => [0.0, 0.0, 0.0],
        Context::Writing => {
            // Strokes: 3.5 Hz base with amplitude modulated at ~0.4 Hz
            // (words/pauses) plus a weaker orthogonal component. Writers
            // also *hold* the pen briefly between words/lines — those
            // near-still stretches are the windows that get confused with
            // "lying still" (§1's ambiguity).
            let f = 3.5 * style.tempo;
            let amp = 0.9 * style.vigor;
            let w = t * std::f64::consts::TAU;
            let hold_gate = (0.22 * style.tempo * w + 1.7 * phase).sin();
            let hold = if hold_gate > 0.78 { 0.06 } else { 1.0 };
            let envelope =
                hold * (0.6 + 0.4 * (0.4 * style.tempo * w + phase).sin().abs());
            let x = amp * envelope * (f * w + phase).sin();
            let y = 0.55 * amp * envelope * (1.31 * f * w + 1.2 + phase).sin();
            // The tip stays on the board, but wrist rotation still couples
            // a fair share of the stroke energy into the vertical axis.
            let z = 0.3 * amp * envelope * (0.7 * f * w + 0.5 + phase).sin();
            [x, y, z]
        }
        Context::Playing => {
            // Slow swings + twirl harmonics + sporadic jerks. Playing is
            // irregular: the intensity wanders between gentle fiddling
            // (overlapping an energetic writer's band) and big swings.
            let f = 1.2 * style.tempo;
            let intensity = 0.22
                + 0.78
                    * (0.17 * t * std::f64::consts::TAU + phase)
                        .sin()
                        .abs()
                        .powf(1.5);
            let amp = 2.2 * style.vigor * intensity;
            let w = t * std::f64::consts::TAU;
            let jerk_gate = (0.23 * w + phase).sin();
            let jerk = if jerk_gate > 0.93 {
                2.2 * style.vigor * intensity
            } else {
                0.0
            };
            // Twirling happens mostly in the hand plane; the vertical axis
            // carries less than writing's wrist rotation would suggest, so
            // the per-axis signature alone cannot separate the classes.
            let x = amp * (f * w + phase).sin() + jerk;
            let y = amp * 0.8 * (0.77 * f * w + 2.1 + phase).sin();
            let z = amp * 0.55 * (1.13 * f * w + 4.2 + phase).sin() - jerk * 0.5;
            [x, y, z]
        }
    }
}

/// Root-mean-square acceleration magnitude of a context over one second of
/// nominal motion — a scalar summary used by tests and diagnostics.
pub fn nominal_rms(context: Context, style: &UserStyle) -> f64 {
    let n = 200;
    let mut acc = 0.0;
    for i in 0..n {
        let t = i as f64 / n as f64;
        let a = acceleration(context, style, t, 0.0);
        acc += a[0] * a[0] + a[1] * a[1] + a[2] * a[2];
    }
    (acc / n as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lying_still_is_motionless() {
        let s = UserStyle::default();
        for i in 0..50 {
            let a = acceleration(Context::LyingStill, &s, i as f64 * 0.01, 0.3);
            assert_eq!(a, [0.0, 0.0, 0.0]);
        }
    }

    #[test]
    fn energy_ordering_nominal_style() {
        let s = UserStyle::default();
        let still = nominal_rms(Context::LyingStill, &s);
        let writing = nominal_rms(Context::Writing, &s);
        let playing = nominal_rms(Context::Playing, &s);
        assert!(still < writing, "{still} < {writing}");
        assert!(writing < playing, "{writing} < {playing}");
    }

    #[test]
    fn energetic_writing_overlaps_calm_playing() {
        // The deliberate ambiguity: an energetic writer's energy reaches
        // into a calm player's band.
        let energetic_writing = nominal_rms(Context::Writing, &UserStyle::energetic());
        let calm_playing = nominal_rms(Context::Playing, &UserStyle::calm());
        assert!(
            energetic_writing > 0.55 * calm_playing,
            "no overlap: writing {energetic_writing} vs playing {calm_playing}"
        );
    }

    #[test]
    fn vigor_scales_amplitude() {
        let weak = UserStyle::new(0.5, 1.0, 0.0).unwrap();
        let strong = UserStyle::new(2.0, 1.0, 0.0).unwrap();
        assert!(
            nominal_rms(Context::Writing, &strong) > 2.0 * nominal_rms(Context::Writing, &weak)
        );
    }

    #[test]
    fn writing_stays_mostly_planar() {
        let s = UserStyle::default();
        let mut z_energy = 0.0;
        let mut xy_energy = 0.0;
        for i in 0..400 {
            let a = acceleration(Context::Writing, &s, i as f64 * 0.005, 0.0);
            z_energy += a[2] * a[2];
            xy_energy += a[0] * a[0] + a[1] * a[1];
        }
        assert!(z_energy < 0.2 * xy_energy);
    }

    #[test]
    fn phase_decorrelates_segments() {
        let s = UserStyle::default();
        let a = acceleration(Context::Playing, &s, 0.5, 0.0);
        let b = acceleration(Context::Playing, &s, 0.5, 2.0);
        assert_ne!(a, b);
    }

    #[test]
    fn deterministic() {
        let s = UserStyle::default();
        assert_eq!(
            acceleration(Context::Writing, &s, 0.123, 0.7),
            acceleration(Context::Writing, &s, 0.123, 0.7)
        );
    }
}
