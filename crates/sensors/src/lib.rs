//! # cqm-sensors — synthetic AwarePen sensing substrate
//!
//! The paper's evaluation platform is the **AwarePen**: a whiteboard marker
//! with a Particle Computer node and a 3-axis ADXL accelerometer, detecting
//! the contexts *lying still*, *writing* and *playing around* from the
//! per-axis standard deviation of the acceleration (§3.1).
//!
//! Physical hardware being unavailable, this crate provides a faithful
//! simulation of that sensing chain (DESIGN.md §2 documents the
//! substitution argument):
//!
//! * [`context`] — the three AwarePen contexts;
//! * [`user`] — per-user motion styles; different writing styles are the
//!   paper's prime source of classification difficulty ("other users having
//!   a different style of using the pen while writing", §1);
//! * [`motion`] — per-context acceleration models (pen physics);
//! * [`noise`] — sensor imperfections: white noise, slow drift, 8-bit
//!   quantization, saturation — matching a 2000s ADXL part;
//! * [`accel`] — the virtual accelerometer combining gravity, motion and
//!   noise;
//! * [`window`] + [`cues`] — sliding windows and cue extraction (std-dev
//!   per axis, §3.1, plus extended cues for ablations);
//! * [`synth`] — scenario-driven trace generation with **transition
//!   windows**, reproducing the "user writes, briefly plays while thinking,
//!   writes again" situation (§1) that produces hard-to-classify samples;
//! * [`node`] — the virtual sensor node gluing the chain together and
//!   emitting labeled cue vectors.
//!
//! ```
//! use cqm_sensors::context::Context;
//! use cqm_sensors::node::SensorNode;
//! use cqm_sensors::synth::Scenario;
//!
//! let scenario = Scenario::new(vec![
//!     (Context::LyingStill, 3.0),
//!     (Context::Writing, 5.0),
//!     (Context::Playing, 4.0),
//! ]).unwrap();
//! let mut node = SensorNode::with_seed(7);
//! let samples = node.run_scenario(&scenario).unwrap();
//! assert!(!samples.is_empty());
//! // Every sample: 3 std-dev cues plus a ground-truth label.
//! assert_eq!(samples[0].cues.len(), 3);
//! ```

#![forbid(unsafe_code)]

pub mod accel;
pub mod context;
pub mod cues;
pub mod motion;
pub mod node;
pub mod noise;
pub mod replay;
pub mod synth;
pub mod user;
pub mod window;

pub use context::Context;
pub use node::{LabeledCues, SensorNode};
pub use synth::Scenario;

/// Errors produced by the sensing substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum SensorError {
    /// A configuration value was out of its valid domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
    /// A scenario or window specification was structurally invalid.
    InvalidSpec(String),
}

impl std::fmt::Display for SensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SensorError::InvalidParameter { name, value } => {
                write!(f, "invalid parameter {name} = {value}")
            }
            SensorError::InvalidSpec(msg) => write!(f, "invalid specification: {msg}"),
        }
    }
}

impl std::error::Error for SensorError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SensorError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = SensorError::InvalidParameter {
            name: "rate",
            value: -1.0,
        };
        assert!(e.to_string().contains("rate"));
        let e = SensorError::InvalidSpec("empty scenario".into());
        assert!(e.to_string().contains("empty scenario"));
    }
}
