//! Trace recording and replay.
//!
//! The original AwareOffice work accumulated recorded sessions "since
//! several years"; this module provides the equivalent workflow for the
//! simulator: labeled cue traces can be exported to a simple CSV format,
//! shared, and replayed into training or evaluation later — making
//! experiment corpora portable artifacts rather than (seed, code-version)
//! pairs.
//!
//! Format: header `t,is_transition,truth,cue0,cue1,…`, one row per window.

use crate::node::LabeledCues;
use crate::{Context, Result, SensorError};

/// Serialize a trace to CSV.
///
/// # Errors
///
/// Returns [`SensorError::InvalidSpec`] for an empty or ragged trace.
pub fn to_csv(trace: &[LabeledCues]) -> Result<String> {
    let first = trace
        .first()
        .ok_or_else(|| SensorError::InvalidSpec("empty trace".into()))?;
    let dim = first.cues.len();
    let mut out = String::from("t,is_transition,truth");
    for i in 0..dim {
        out.push_str(&format!(",cue{i}"));
    }
    out.push('\n');
    for w in trace {
        if w.cues.len() != dim {
            return Err(SensorError::InvalidSpec(format!(
                "ragged trace: expected {dim} cues, found {}",
                w.cues.len()
            )));
        }
        out.push_str(&format!(
            "{},{},{}",
            w.t,
            u8::from(w.is_transition),
            w.truth.index()
        ));
        for c in &w.cues {
            out.push_str(&format!(",{c}"));
        }
        out.push('\n');
    }
    Ok(out)
}

/// Parse a trace from CSV produced by [`to_csv`].
///
/// # Errors
///
/// Returns [`SensorError::InvalidSpec`] on malformed headers, rows, numbers
/// or unknown context indices.
pub fn from_csv(csv: &str) -> Result<Vec<LabeledCues>> {
    let mut lines = csv.lines();
    let header = lines
        .next()
        .ok_or_else(|| SensorError::InvalidSpec("empty csv".into()))?;
    let cols: Vec<&str> = header.split(',').collect();
    if cols.len() < 4 || cols[0] != "t" || cols[1] != "is_transition" || cols[2] != "truth" {
        return Err(SensorError::InvalidSpec(format!(
            "unexpected header: {header}"
        )));
    }
    let dim = cols.len() - 3;
    let mut out = Vec::new();
    for (lineno, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != dim + 3 {
            return Err(SensorError::InvalidSpec(format!(
                "row {}: expected {} fields, found {}",
                lineno + 2,
                dim + 3,
                fields.len()
            )));
        }
        let parse = |s: &str, what: &str| -> Result<f64> {
            s.parse::<f64>().map_err(|_| {
                SensorError::InvalidSpec(format!("row {}: bad {what} '{s}'", lineno + 2))
            })
        };
        let t = parse(fields[0], "timestamp")?;
        let is_transition = match fields[1] {
            "0" => false,
            "1" => true,
            other => {
                return Err(SensorError::InvalidSpec(format!(
                    "row {}: bad transition flag '{other}'",
                    lineno + 2
                )))
            }
        };
        let truth_idx = fields[2].parse::<usize>().map_err(|_| {
            SensorError::InvalidSpec(format!("row {}: bad truth '{}'", lineno + 2, fields[2]))
        })?;
        let truth = Context::from_index(truth_idx).ok_or_else(|| {
            SensorError::InvalidSpec(format!("row {}: unknown context {truth_idx}", lineno + 2))
        })?;
        let mut cues = Vec::with_capacity(dim);
        for f in &fields[3..] {
            let v = parse(f, "cue")?;
            if !v.is_finite() {
                return Err(SensorError::InvalidSpec(format!(
                    "row {}: non-finite cue",
                    lineno + 2
                )));
            }
            cues.push(v);
        }
        out.push(LabeledCues {
            cues,
            truth,
            t,
            is_transition,
        });
    }
    if out.is_empty() {
        return Err(SensorError::InvalidSpec("csv has no data rows".into()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::SensorNode;
    use crate::synth::Scenario;

    fn sample_trace() -> Vec<LabeledCues> {
        let mut node = SensorNode::with_seed(9);
        node.run_scenario(&Scenario::write_think_write().unwrap())
            .unwrap()
    }

    #[test]
    fn round_trip_preserves_trace() {
        let trace = sample_trace();
        let csv = to_csv(&trace).unwrap();
        let back = from_csv(&csv).unwrap();
        assert_eq!(back.len(), trace.len());
        for (a, b) in trace.iter().zip(&back) {
            assert_eq!(a.truth, b.truth);
            assert_eq!(a.is_transition, b.is_transition);
            assert_eq!(a.t, b.t);
            assert_eq!(a.cues, b.cues);
        }
    }

    #[test]
    fn header_shape() {
        let trace = sample_trace();
        let csv = to_csv(&trace).unwrap();
        assert!(csv.starts_with("t,is_transition,truth,cue0,cue1,cue2\n"));
        assert_eq!(csv.lines().count(), trace.len() + 1);
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(to_csv(&[]).is_err());
        assert!(from_csv("").is_err());
        assert!(from_csv("wrong,header\n").is_err());
        assert!(from_csv("t,is_transition,truth,cue0\n").is_err()); // no rows
        assert!(from_csv("t,is_transition,truth,cue0\n1.0,2,0,0.5\n").is_err()); // bad flag
        assert!(from_csv("t,is_transition,truth,cue0\n1.0,0,9,0.5\n").is_err()); // bad ctx
        assert!(from_csv("t,is_transition,truth,cue0\n1.0,0,0\n").is_err()); // short row
        assert!(from_csv("t,is_transition,truth,cue0\n1.0,0,0,NaN\n").is_err());
        assert!(from_csv("t,is_transition,truth,cue0\nx,0,0,0.5\n").is_err());
    }

    #[test]
    fn ragged_trace_rejected_on_export() {
        let mut trace = sample_trace();
        trace[1].cues.pop();
        assert!(to_csv(&trace).is_err());
    }

    #[test]
    fn blank_lines_skipped() {
        let csv = "t,is_transition,truth,cue0\n1.0,0,1,0.25\n\n2.0,1,2,0.5\n";
        let trace = from_csv(csv).unwrap();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[1].truth, Context::Playing);
        assert!(trace[1].is_transition);
    }
}
