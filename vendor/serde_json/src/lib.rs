//! Offline stand-in for `serde_json`, working over the vendored serde
//! shim's [`serde::Value`] tree.
//!
//! Emission notes:
//! * floats print via Rust's shortest round-trip `Display` (the
//!   `float_roundtrip` feature of the real crate is the default here);
//! * non-finite floats are an error, as in real serde_json;
//! * maps keep insertion order (derive emits declaration order).

pub use serde::Error;
use serde::Value;

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serialize to a 2-space-indented JSON string.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Deserialize from a JSON string.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    T::from_value(&v)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) -> Result<()> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if !x.is_finite() {
                return Err(Error::msg("JSON cannot represent NaN or infinity"));
            }
            let s = x.to_string();
            out.push_str(&s);
            // Keep the token a float so round-trips preserve typing of
            // whole-valued floats ("1" -> "1.0").
            if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1)?;
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::msg("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::msg("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::msg("invalid literal"))
                }
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::msg("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error::msg("expected `,` or `}` in object")),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::msg(format!(
                "unexpected byte {other:?} at {}",
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => {
                            s.push('"');
                            self.pos += 1;
                        }
                        Some(b'\\') => {
                            s.push('\\');
                            self.pos += 1;
                        }
                        Some(b'/') => {
                            s.push('/');
                            self.pos += 1;
                        }
                        Some(b'n') => {
                            s.push('\n');
                            self.pos += 1;
                        }
                        Some(b'r') => {
                            s.push('\r');
                            self.pos += 1;
                        }
                        Some(b't') => {
                            s.push('\t');
                            self.pos += 1;
                        }
                        Some(b'b') => {
                            s.push('\u{0008}');
                            self.pos += 1;
                        }
                        Some(b'f') => {
                            s.push('\u{000C}');
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::msg("invalid \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::msg("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs for non-BMP characters.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if !self.eat_literal("\\u") {
                                    return Err(Error::msg("unpaired surrogate"));
                                }
                                let hex2 = self
                                    .bytes
                                    .get(self.pos..self.pos + 4)
                                    .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                                let hex2 = std::str::from_utf8(hex2)
                                    .map_err(|_| Error::msg("invalid \\u escape"))?;
                                let lo = u32::from_str_radix(hex2, 16)
                                    .map_err(|_| Error::msg("invalid \\u escape"))?;
                                self.pos += 4;
                                let combined =
                                    0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            s.push(c.ok_or_else(|| Error::msg("invalid codepoint"))?);
                        }
                        other => {
                            return Err(Error::msg(format!("bad escape {other:?}")));
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::msg("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let v: f64 = from_str(&to_string(&1.5f64).unwrap()).unwrap();
        assert_eq!(v, 1.5);
        let v: f64 = from_str(&to_string(&1.0f64).unwrap()).unwrap();
        assert_eq!(v, 1.0);
        let v: u64 = from_str(&to_string(&u64::MAX).unwrap()).unwrap();
        assert_eq!(v, u64::MAX);
        let v: String = from_str(&to_string("a\"b\\c\nd").unwrap()).unwrap();
        assert_eq!(v, "a\"b\\c\nd");
        let v: Option<f64> = from_str("null").unwrap();
        assert_eq!(v, None);
    }

    #[test]
    fn containers_round_trip() {
        let xs = vec![1.25f64, -0.5, 3.0];
        let s = to_string(&xs).unwrap();
        assert_eq!(s, "[1.25,-0.5,3.0]");
        let back: Vec<f64> = from_str(&s).unwrap();
        assert_eq!(back, xs);

        let pair = (1usize, true);
        let back: (usize, bool) = from_str(&to_string(&pair).unwrap()).unwrap();
        assert_eq!(back, pair);
    }

    #[test]
    fn float_shortest_round_trip() {
        for &x in &[0.1f64, 1.0 / 3.0, 6.02e23, 5e-324, f64::MAX] {
            let back: f64 = from_str(&to_string(&x).unwrap()).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "float {x} failed round-trip");
        }
    }

    #[test]
    fn nan_is_error() {
        assert!(to_string(&f64::NAN).is_err());
        assert!(to_string(&f64::INFINITY).is_err());
    }

    #[test]
    fn pretty_has_indentation() {
        let s = to_string_pretty(&vec![1i32, 2]).unwrap();
        assert_eq!(s, "[\n  1,\n  2\n]");
    }

    #[test]
    fn unicode_escapes_parse() {
        let v: String = from_str("\"\\u0041\\u00e9\\ud83d\\ude00\"").unwrap();
        assert_eq!(v, "Aé😀");
    }
}
