//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Matches the parking_lot API shape the workspace uses: `lock()` returns
//! the guard directly (no poisoning `Result`). Poisoned std locks are
//! recovered via `into_inner` — a panic while holding the lock does not
//! poison subsequent accesses, which is parking_lot's behavior too.

use std::sync::{self, TryLockError};

/// Mutex whose `lock` returns the guard directly (no poison `Result`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }
}

/// RwLock whose `read`/`write` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the rwlock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
