//! Hand-rolled `#[derive(Serialize, Deserialize)]` for the vendored serde
//! shim. No `syn`/`quote` — the build environment cannot fetch crates, so
//! the input is parsed directly from `proc_macro::TokenTree`s and the
//! generated impl is emitted as a string.
//!
//! Supported shapes (the ones this workspace uses):
//! * named structs (with `#[serde(skip)]` / `#[serde(default)]` on fields)
//! * tuple structs (newtype = transparent, like real serde)
//! * unit structs
//! * enums with unit / tuple / struct variants (externally tagged)
//!
//! Generic types are intentionally rejected with a clear panic message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone)]
struct Field {
    name: String,
    skip: bool,
    default: bool,
}

#[derive(Debug, Clone)]
enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug, Clone)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug, Clone)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_input(input);
    gen_serialize(&name, &shape).parse().unwrap()
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_input(input);
    gen_deserialize(&name, &shape).parse().unwrap()
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_input(input: TokenStream) -> (String, Shape) {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility to find `struct` / `enum`.
    let mut kind = String::new();
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2; // `#` + bracket group
            }
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    kind = s;
                    i += 1;
                    break;
                }
                i += 1; // `pub`, `crate`, ...
            }
            _ => i += 1,
        }
    }
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, got {other:?}"),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive shim: generic type `{name}` is not supported");
        }
    }

    let shape = if kind == "struct" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("serde_derive shim: unsupported struct body {other:?}"),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive shim: unsupported enum body {other:?}"),
        }
    };
    (name, shape)
}

/// Scan one `#[...]` attribute group; returns (skip, default) flags if it is
/// a `#[serde(...)]` attribute.
fn serde_attr_flags(group: &proc_macro::Group) -> (bool, bool) {
    let mut it = group.stream().into_iter();
    match it.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return (false, false),
    }
    let (mut skip, mut default) = (false, false);
    if let Some(TokenTree::Group(args)) = it.next() {
        for tok in args.stream() {
            if let TokenTree::Ident(id) = tok {
                match id.to_string().as_str() {
                    "skip" | "skip_serializing" | "skip_deserializing" => skip = true,
                    "default" => default = true,
                    other => panic!(
                        "serde_derive shim: unsupported #[serde({other})] attribute"
                    ),
                }
            }
        }
    }
    (skip, default)
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Attributes.
        let (mut skip, mut default) = (false, false);
        loop {
            match (&tokens.get(i), &tokens.get(i + 1)) {
                (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                    if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
                {
                    let (s, d) = serde_attr_flags(g);
                    skip |= s;
                    default |= d;
                    i += 2;
                }
                _ => break,
            }
        }
        // Visibility.
        if let Some(TokenTree::Ident(id)) = tokens.get(i) {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
        }
        // Field name.
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive shim: expected field name, got {other:?}"),
        };
        i += 1;
        // `:` then the type, ending at a top-level comma (tracking `<...>`
        // nesting, since generic args are not token groups).
        debug_assert!(matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ':'));
        i += 1;
        let mut angle: i32 = 0;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field {
            name,
            skip,
            default,
        });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut angle: i32 = 0;
    let mut count = 0;
    let mut saw_tokens = false;
    for tok in stream {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => count += 1,
            _ => saw_tokens = true,
        }
    }
    if saw_tokens {
        count + 1
    } else {
        0
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Attributes before the variant.
        while let (Some(TokenTree::Punct(p)), Some(TokenTree::Group(_))) =
            (&tokens.get(i).cloned(), &tokens.get(i + 1).cloned())
        {
            if p.as_char() == '#' {
                i += 2;
            } else {
                break;
            }
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive shim: expected variant name, got {other:?}"),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip to (and past) the separating comma, tolerating discriminants.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct(fields) => {
            let mut s = String::from(
                "let mut entries: Vec<(String, serde::Value)> = Vec::new();\n",
            );
            for f in fields.iter().filter(|f| !f.skip) {
                s.push_str(&format!(
                    "entries.push((\"{n}\".to_string(), serde::Serialize::to_value(&self.{n})));\n",
                    n = f.name
                ));
            }
            s.push_str("serde::Value::Map(entries)");
            s
        }
        Shape::TupleStruct(1) => "serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{v} => serde::Value::Str(\"{v}\".to_string()),\n",
                        v = v.name
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{v}(f0) => serde::Value::Map(vec![(\"{v}\".to_string(), serde::Serialize::to_value(f0))]),\n",
                        v = v.name
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{v}({b}) => serde::Value::Map(vec![(\"{v}\".to_string(), serde::Value::Seq(vec![{i}]))]),\n",
                            v = v.name,
                            b = binds.join(", "),
                            i = items.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let items: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                format!(
                                    "(\"{n}\".to_string(), serde::Serialize::to_value({n}))",
                                    n = f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{v} {{ {b} }} => serde::Value::Map(vec![(\"{v}\".to_string(), serde::Value::Map(vec![{i}]))]),\n",
                            v = v.name,
                            b = binds.join(", "),
                            i = items.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n\
         fn to_value(&self) -> serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn field_expr(f: &Field, source: &str) -> String {
    if f.skip {
        return format!("{n}: Default::default(),\n", n = f.name);
    }
    if f.default {
        return format!(
            "{n}: match {source}.get(\"{n}\") {{ Some(v) => serde::Deserialize::from_value(v)?, None => Default::default() }},\n",
            n = f.name
        );
    }
    format!(
        "{n}: match {source}.get(\"{n}\") {{ Some(v) => serde::Deserialize::from_value(v)?, None => return Err(serde::Error::msg(\"missing field `{n}`\")) }},\n",
        n = f.name
    )
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct(fields) => {
            let mut inits = String::new();
            for f in fields {
                inits.push_str(&field_expr(f, "value"));
            }
            format!(
                "match value {{\n\
                 serde::Value::Map(_) => Ok({name} {{\n{inits}}}),\n\
                 _ => Err(serde::Error::msg(\"expected map for struct {name}\")),\n}}"
            )
        }
        Shape::TupleStruct(1) => {
            format!("Ok({name}(serde::Deserialize::from_value(value)?))")
        }
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "serde::Deserialize::from_value(items.get({i}).ok_or_else(|| serde::Error::msg(\"tuple struct too short\"))?)?"
                    )
                })
                .collect();
            format!(
                "match value {{\n\
                 serde::Value::Seq(items) => Ok({name}({items})),\n\
                 _ => Err(serde::Error::msg(\"expected sequence for {name}\")),\n}}",
                items = items.join(", ")
            )
        }
        Shape::UnitStruct => format!("Ok({name})"),
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!(
                            "\"{v}\" => Ok({name}::{v}),\n",
                            v = v.name
                        ));
                        // Accept the map form {"V": null} too.
                        tagged_arms.push_str(&format!(
                            "\"{v}\" => Ok({name}::{v}),\n",
                            v = v.name
                        ));
                    }
                    VariantKind::Tuple(1) => tagged_arms.push_str(&format!(
                        "\"{v}\" => Ok({name}::{v}(serde::Deserialize::from_value(payload)?)),\n",
                        v = v.name
                    )),
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| {
                                format!(
                                    "serde::Deserialize::from_value(items.get({i}).ok_or_else(|| serde::Error::msg(\"variant tuple too short\"))?)?"
                                )
                            })
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{v}\" => match payload {{\n\
                             serde::Value::Seq(items) => Ok({name}::{v}({items})),\n\
                             _ => Err(serde::Error::msg(\"expected sequence for variant {v}\")),\n}},\n",
                            v = v.name,
                            items = items.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            inits.push_str(&field_expr(f, "payload"));
                        }
                        tagged_arms.push_str(&format!(
                            "\"{v}\" => match payload {{\n\
                             serde::Value::Map(_) => Ok({name}::{v} {{\n{inits}}}),\n\
                             _ => Err(serde::Error::msg(\"expected map for variant {v}\")),\n}},\n",
                            v = v.name
                        ));
                    }
                }
            }
            format!(
                "match value {{\n\
                 serde::Value::Str(tag) => match tag.as_str() {{\n{unit_arms}\
                 other => Err(serde::Error::msg(format!(\"unknown variant `{{other}}` of {name}\"))),\n}},\n\
                 serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                 let (tag, payload) = &entries[0];\n\
                 match tag.as_str() {{\n{tagged_arms}\
                 other => Err(serde::Error::msg(format!(\"unknown variant `{{other}}` of {name}\"))),\n}}\n}},\n\
                 _ => Err(serde::Error::msg(\"expected string or single-key map for enum {name}\")),\n}}"
            )
        }
    };
    format!(
        "impl serde::Deserialize for {name} {{\n\
         fn from_value(value: &serde::Value) -> ::std::result::Result<Self, serde::Error> {{\n{body}\n}}\n}}\n"
    )
}
