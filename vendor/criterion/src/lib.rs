//! Offline stand-in for `criterion`: runs each benchmark in a simple
//! calibrated timing loop and prints a median-of-samples ns/iter figure.
//! No statistics, plots, or baselines — just enough to keep `[[bench]]`
//! targets compiling and producing comparable numbers offline.

use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers compile.
pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    /// Rough wall-clock budget per benchmark.
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(400),
        }
    }
}

impl Criterion {
    /// Begin a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            _name: name.to_string(),
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_bench(id, self.measurement_time, &mut f);
        self
    }

    /// Override the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Accepted for API compatibility; sampling is time-based here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Entry point used by `criterion_main!`.
    pub fn final_summary(&self) {}
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    _name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmark a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_bench(id, self.criterion.measurement_time, &mut f);
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(&id.0, self.criterion.measurement_time, &mut |b| f(b, input));
        self
    }

    /// Accepted for API compatibility.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    /// Accepted for API compatibility.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// End the group.
    pub fn finish(&mut self) {}
}

/// Identifier combining a function name and a parameter display value.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Throughput hint (ignored by this shim).
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to benchmark closures; drives the timing loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the calibrated iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, budget: Duration, f: &mut F) {
    // Calibrate: grow the iteration count until one sample takes >= ~1 ms.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(1) || iters >= 1 << 30 {
            break;
        }
        iters = iters.saturating_mul(4);
    }
    // Measure: collect samples until the budget is spent, report the median.
    let mut samples: Vec<f64> = Vec::new();
    let start = Instant::now();
    while start.elapsed() < budget || samples.is_empty() {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_nanos() as f64 / iters as f64);
        if samples.len() >= 200 {
            break;
        }
    }
    samples.sort_by(f64::total_cmp);
    let median = samples[samples.len() / 2];
    println!("  {id:<40} {median:>12.1} ns/iter ({} samples x {iters} iters)", samples.len());
}

/// Define a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
