//! Test-case execution support for the `proptest!` macro.

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Require `cases` passing cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; keep that unless the environment
        // asks for fewer (PROPTEST_CASES mirrors the real crate's knob).
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// Outcome of one generated case (mirrors proptest's TestCaseError).
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` failed: discard the case.
    Reject,
    /// `prop_assert!` failed: the property is violated.
    Fail(String),
}

/// Deterministic RNG driving generation (xoshiro256**, FNV-seeded).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seed deterministically from a label (the test's module path).
    pub fn deterministic(label: &str) -> Self {
        // FNV-1a over the label, then SplitMix64 expansion.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut sm = h;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
