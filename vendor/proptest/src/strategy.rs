//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy it selects.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Keep only values satisfying `pred` (rejection sampling, bounded).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "proptest shim: prop_filter({}) rejected 10000 consecutive values",
            self.whence
        );
    }
}

/// Always produce a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (backs `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from a non-empty list of options.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Ranges as strategies
// ---------------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + (rng.next_u64() % span) as i64) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i64, *self.end() as i64);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                (lo + (rng.next_u64() % span) as i64) as $t
            }
        }
    )*};
}
signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        // next_f64 is in [0, 1); stretch slightly so hi is reachable.
        let t = rng.next_f64() * (1.0 + f64::EPSILON);
        (lo + t.min(1.0) * (hi - lo)).min(hi)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() as f32 * (self.end - self.start)
    }
}

// ---------------------------------------------------------------------------
// Tuples of strategies
// ---------------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

// ---------------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------------

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy `any::<Self>()` returns.
    type Strategy: Strategy<Value = Self>;
    /// Build the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Canonical whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Whole-domain strategy for a primitive (used by [`any`]).
#[derive(Debug, Clone, Copy)]
pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

macro_rules! arbitrary_prim {
    ($($t:ty => $gen:expr),* $(,)?) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            #[allow(clippy::redundant_closure_call)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                ($gen)(rng)
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(std::marker::PhantomData)
            }
        }
    )*};
}
arbitrary_prim! {
    bool => |rng: &mut TestRng| rng.next_u64() & 1 == 1,
    u8 => |rng: &mut TestRng| rng.next_u64() as u8,
    u16 => |rng: &mut TestRng| rng.next_u64() as u16,
    u32 => |rng: &mut TestRng| rng.next_u64() as u32,
    u64 => |rng: &mut TestRng| rng.next_u64(),
    usize => |rng: &mut TestRng| rng.next_u64() as usize,
    i8 => |rng: &mut TestRng| rng.next_u64() as i8,
    i16 => |rng: &mut TestRng| rng.next_u64() as i16,
    i32 => |rng: &mut TestRng| rng.next_u64() as i32,
    i64 => |rng: &mut TestRng| rng.next_u64() as i64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::deterministic("ranges_respect_bounds");
        for _ in 0..500 {
            let u = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&u));
            let f = (-1.5f64..2.5).generate(&mut rng);
            assert!((-1.5..2.5).contains(&f));
            let g = (0.0f64..=1.0).generate(&mut rng);
            assert!((0.0..=1.0).contains(&g));
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = TestRng::deterministic("combinators_compose");
        let strat = (1usize..4)
            .prop_flat_map(|n| crate::collection::vec(0.0f64..1.0, n))
            .prop_map(|v| v.len());
        for _ in 0..100 {
            let len = strat.generate(&mut rng);
            assert!((1..4).contains(&len));
        }
    }

    #[test]
    fn union_picks_all_options() {
        let mut rng = TestRng::deterministic("union_picks_all_options");
        let u = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed(), Just(3u8).boxed()]);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[u.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }
}
