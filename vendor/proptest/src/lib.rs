//! Offline stand-in for `proptest`.
//!
//! Implements the strategy/macro subset this workspace's property tests
//! use: `proptest!`, `prop_assert!`, `prop_assert_eq!`, `prop_assume!`,
//! `prop_oneof!`, `Just`, `any::<bool>()`, ranges as strategies, tuples of
//! strategies, `prop::collection::vec`, `prop::num::f64::NORMAL`, and the
//! `prop_map` / `prop_flat_map` combinators.
//!
//! Differences from real proptest, deliberately accepted:
//! * no shrinking — a failing case reports its seed and values, not a
//!   minimized counterexample;
//! * deterministic per-test RNG (seeded from the test's module path), so
//!   failures reproduce across runs without a regressions file;
//! * `proptest-regressions` files are ignored.

pub mod strategy;
pub mod test_runner;

/// Strategy constructors grouped under `prop::...` like the real crate.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Size specification for [`vec`]: a length or a range of lengths.
    pub trait IntoSizeRange {
        /// Inclusive lower bound and exclusive upper bound for the length.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end() + 1)
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        assert!(lo < hi, "empty size range for prop::collection::vec");
        VecStrategy { element, lo, hi }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.hi - self.lo) as u64;
            let len = self.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Numeric strategies grouped under `prop::num::...`.
pub mod num {
    /// `f64` strategies.
    pub mod f64 {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy over all *normal* `f64`s (no zero, subnormals, ±inf,
        /// NaN), like `proptest::num::f64::NORMAL`.
        #[derive(Debug, Clone, Copy)]
        pub struct NormalF64;

        /// All normal floats, any sign and magnitude.
        pub const NORMAL: NormalF64 = NormalF64;

        impl Strategy for NormalF64 {
            type Value = f64;
            fn generate(&self, rng: &mut TestRng) -> f64 {
                loop {
                    let x = f64::from_bits(rng.next_u64());
                    if x.is_normal() {
                        return x;
                    }
                }
            }
        }

        /// Strategy over finite `f64`s including zero, like
        /// `proptest::num::f64::ANY` restricted to finite values.
        #[derive(Debug, Clone, Copy)]
        pub struct FiniteF64;

        /// All finite floats.
        pub const FINITE: FiniteF64 = FiniteF64;

        impl Strategy for FiniteF64 {
            type Value = f64;
            fn generate(&self, rng: &mut TestRng) -> f64 {
                loop {
                    let x = f64::from_bits(rng.next_u64());
                    if x.is_finite() {
                        return x;
                    }
                }
            }
        }
    }
}

/// `use proptest::prelude::*;` — everything the test files expect in scope.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

    /// The `prop` module alias (`prop::collection::vec`, `prop::num::...`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::num;
    }
}

/// Run each test body over many generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal muncher for [`proptest!`]; expands one `fn` at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut __passed: u32 = 0;
            let mut __rejected: u32 = 0;
            while __passed < __config.cases {
                if __rejected > __config.cases.saturating_mul(16) + 1024 {
                    panic!(
                        "proptest shim: too many prop_assume! rejections in {}",
                        stringify!($name)
                    );
                }
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )+
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match __result {
                    ::std::result::Result::Ok(()) => __passed += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {
                        __rejected += 1;
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest shim: {} failed after {} passing case(s): {}",
                            stringify!($name),
                            __passed,
                            msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {} ({}:{})", stringify!($cond), file!(), line!()),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assertion failed: {} ({}:{}): {}",
                    stringify!($cond), file!(), line!(), format!($($fmt)+)
                ),
            ));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = &$left;
        let r = &$right;
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assertion failed: `{} == {}` ({}:{})\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), file!(), line!(), l, r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = &$left;
        let r = &$right;
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assertion failed: `{} == {}` ({}:{}): {}\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), file!(), line!(),
                    format!($($fmt)+), l, r
                ),
            ));
        }
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let l = &$left;
        let r = &$right;
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assertion failed: `{} != {}` ({}:{})\n  both: {:?}",
                    stringify!($left), stringify!($right), file!(), line!(), l
                ),
            ));
        }
    }};
}

/// Discard the current case (does not count as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Choose uniformly among several strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
