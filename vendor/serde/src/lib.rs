//! Offline stand-in for `serde`.
//!
//! The real serde is generic over serializer back-ends; this shim collapses
//! the data model to one dynamic [`Value`] tree (the only back-end the
//! workspace uses is JSON via the sibling `serde_json` shim). The derive
//! macros in `serde_derive` generate impls of the two traits below using
//! serde's *externally tagged* enum representation, so the wire format of
//! round-tripped JSON matches what real serde would produce for this
//! workspace's types.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::HashMap;

/// Dynamic data-model value (superset of JSON).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` / Rust `Option::None` / unit.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer (used when the value does not fit `i64`).
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Map with string keys, insertion-ordered.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Fetch a map entry by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Coerce to f64 (accepting integer values, as JSON does not keep the
    /// distinction for whole numbers).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(x) => Some(x),
            Value::I64(x) => Some(x as f64),
            Value::U64(x) => Some(x as f64),
            _ => None,
        }
    }

    /// Coerce to i64.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(x) => Some(x),
            Value::U64(x) => i64::try_from(x).ok(),
            _ => None,
        }
    }

    /// Coerce to u64.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(x) => Some(x),
            Value::I64(x) => u64::try_from(x).ok(),
            _ => None,
        }
    }
}

/// Error produced during (de)serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Construct an error with a message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize into the dynamic [`Value`] model.
pub trait Serialize {
    /// Convert `self` to a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Deserialize from the dynamic [`Value`] model.
pub trait Deserialize: Sized {
    /// Reconstruct `Self` from a [`Value`] tree.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value
                    .as_i64()
                    .ok_or_else(|| Error::msg(concat!("expected integer for ", stringify!($t))))?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::msg(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize, u8, u16, u32);

macro_rules! impl_uint_wide {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                match i64::try_from(*self) {
                    Ok(v) => Value::I64(v),
                    Err(_) => Value::U64(*self as u64),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value
                    .as_u64()
                    .ok_or_else(|| Error::msg(concat!("expected integer for ", stringify!($t))))?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::msg(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}
impl_uint_wide!(u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_f64().ok_or_else(|| Error::msg("expected number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .map(|x| x as f32)
            .ok_or_else(|| Error::msg("expected number"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::msg("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::msg("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::msg("expected single-char string")),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(()),
            _ => Err(Error::msg("expected null")),
        }
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::msg("expected sequence")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let v: Vec<T> = Deserialize::from_value(value)?;
        let got = v.len();
        <[T; N]>::try_from(v)
            .map_err(move |_| Error::msg(format!("expected array of length {N}, got {got}")))
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Seq(items) => {
                        let mut it = items.iter();
                        Ok(($(
                            $t::from_value(
                                it.next().ok_or_else(|| Error::msg("tuple too short"))?,
                            )?,
                        )+))
                    }
                    _ => Err(Error::msg("expected sequence for tuple")),
                }
            }
        }
    )*};
}
impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        // Matches real serde's representation: {"secs": u64, "nanos": u32}.
        Value::Map(vec![
            ("secs".to_string(), Value::U64(self.as_secs())),
            ("nanos".to_string(), Value::U64(u64::from(self.subsec_nanos()))),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let secs = value
            .get("secs")
            .and_then(Value::as_u64)
            .ok_or_else(|| Error::msg("Duration: missing `secs`"))?;
        let nanos = value
            .get("nanos")
            .and_then(Value::as_u64)
            .ok_or_else(|| Error::msg("Duration: missing `nanos`"))?;
        let nanos = u32::try_from(nanos).map_err(|_| Error::msg("Duration: `nanos` too large"))?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

impl<V: Serialize, S: std::hash::BuildHasher> Serialize for HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize for HashMap<String, V, S> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(Error::msg("expected map")),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(Error::msg("expected map")),
        }
    }
}
