//! Offline stand-in for the `rand` crate.
//!
//! The build environment cannot fetch crates from a registry, so this
//! vendored shim re-implements exactly the API subset the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen`]/[`Rng::gen_range`]/[`Rng::gen_bool`].
//!
//! The generator is `xoshiro256**` seeded through SplitMix64 — the same
//! construction the real `rand` uses for `SmallRng`; it is deterministic,
//! fast, and has no platform-dependent behavior. It is NOT the same stream
//! as the real `StdRng` (ChaCha12), so seeds produce different (but equally
//! well-distributed) sequences.

/// Distribution-style sampling of a value of type `T` from uniform bits.
pub trait Standard {
    /// Sample one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can bound a `gen_range` call.
pub trait SampleRange<T> {
    /// Sample uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for std::ops::Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let span = (self.end - self.start) as u64;
                debug_assert!(span > 0, "gen_range called with empty range");
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_sample_range!(usize, u64, u32, i64, i32);

/// User-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value of type `T` (uniform over its natural domain; `[0,1)`
    /// for floats).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    #[inline]
    fn gen_range<T, Rr: SampleRange<T>>(&mut self, range: Rr) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli sample with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Deterministic seeding, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named RNG types.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Stand-in for `rand::rngs::StdRng`: xoshiro256** seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain reference impl).
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias so `SmallRng` users compile too.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_uniformish() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let xs: Vec<f64> = (0..1000).map(|_| a.gen::<f64>()).collect();
        let ys: Vec<f64> = (0..1000).map(|_| b.gen::<f64>()).collect();
        assert_eq!(xs, ys);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} not near 0.5");
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let v = r.gen_range(3usize..9);
            assert!((3..9).contains(&v));
            let f = r.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }
}
