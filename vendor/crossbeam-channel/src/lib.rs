//! Offline stand-in for `crossbeam-channel`: unbounded and bounded MPMC
//! channels on top of `Mutex<VecDeque>` + `Condvar`.
//!
//! Semantics mirrored from crossbeam: senders and receivers are cloneable;
//! `send` fails once every receiver is gone; `recv` drains remaining
//! messages after the last sender is gone, then reports disconnection.
//! Bounded channels additionally support `try_send` (fails with
//! [`TrySendError::Full`]), `send_timeout`, and the ring-buffer style
//! [`Sender::force_send`] used by drop-oldest backpressure policies.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    /// Signals receivers that a message arrived (or all senders left).
    ready: Condvar,
    /// Signals blocked bounded senders that capacity freed up.
    space: Condvar,
    /// `None` = unbounded.
    capacity: Option<usize>,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

/// Error returned by [`Sender::send`] when all receivers are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Sender::try_send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is at capacity.
    Full(T),
    /// Every receiver was dropped.
    Disconnected(T),
}

impl<T> TrySendError<T> {
    /// Recover the message that could not be sent.
    pub fn into_inner(self) -> T {
        match self {
            TrySendError::Full(v) | TrySendError::Disconnected(v) => v,
        }
    }

    /// Whether the failure was a full channel (as opposed to disconnection).
    pub fn is_full(&self) -> bool {
        matches!(self, TrySendError::Full(_))
    }
}

/// Error returned by [`Sender::send_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendTimeoutError<T> {
    /// The deadline passed with the channel still full.
    Timeout(T),
    /// Every receiver was dropped.
    Disconnected(T),
}

impl<T> SendTimeoutError<T> {
    /// Recover the message that could not be sent.
    pub fn into_inner(self) -> T {
        match self {
            SendTimeoutError::Timeout(v) | SendTimeoutError::Disconnected(v) => v,
        }
    }

    /// Whether the failure was a timeout (as opposed to disconnection).
    pub fn is_timeout(&self) -> bool {
        matches!(self, SendTimeoutError::Timeout(_))
    }
}

/// Error returned by [`Receiver::recv`] on empty + disconnected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Queue currently empty, but senders remain.
    Empty,
    /// Queue empty and every sender dropped.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// Deadline passed with no message.
    Timeout,
    /// Queue empty and every sender dropped.
    Disconnected,
}

/// Sending half of a channel.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// Receiving half of a channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

fn channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        space: Condvar::new(),
        capacity,
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

/// Create an unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(None)
}

/// Create a bounded MPMC channel holding at most `capacity` messages.
/// A capacity of zero is rounded up to one (the shim has no rendezvous
/// channel; a 1-slot buffer is the closest deliverable semantics).
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    channel(Some(capacity.max(1)))
}

impl<T> Shared<T> {
    fn is_full(&self, len: usize) -> bool {
        self.capacity.is_some_and(|cap| len >= cap)
    }
}

impl<T> Sender<T> {
    /// Enqueue a message, blocking while a bounded channel is full; fails
    /// iff all receivers were dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        if self.shared.receivers.load(Ordering::Acquire) == 0 {
            return Err(SendError(value));
        }
        let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
        while self.shared.is_full(q.len()) {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            q = self
                .shared
                .space
                .wait(q)
                .unwrap_or_else(|p| p.into_inner());
        }
        q.push_back(value);
        drop(q);
        self.shared.ready.notify_one();
        Ok(())
    }

    /// Enqueue without blocking; a full bounded channel is an error.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        if self.shared.receivers.load(Ordering::Acquire) == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
        if self.shared.is_full(q.len()) {
            return Err(TrySendError::Full(value));
        }
        q.push_back(value);
        drop(q);
        self.shared.ready.notify_one();
        Ok(())
    }

    /// Enqueue, waiting at most `timeout` for capacity.
    pub fn send_timeout(&self, value: T, timeout: Duration) -> Result<(), SendTimeoutError<T>> {
        if self.shared.receivers.load(Ordering::Acquire) == 0 {
            return Err(SendTimeoutError::Disconnected(value));
        }
        let deadline = Instant::now() + timeout;
        let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
        while self.shared.is_full(q.len()) {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendTimeoutError::Disconnected(value));
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(SendTimeoutError::Timeout(value));
            }
            let (guard, _res) = self
                .shared
                .space
                .wait_timeout(q, deadline - now)
                .unwrap_or_else(|p| p.into_inner());
            q = guard;
        }
        q.push_back(value);
        drop(q);
        self.shared.ready.notify_one();
        Ok(())
    }

    /// Ring-buffer push: enqueue unconditionally, evicting the oldest
    /// queued message if the channel is full. Returns the evicted message,
    /// if any. This is the primitive behind drop-oldest backpressure.
    pub fn force_send(&self, value: T) -> Result<Option<T>, SendError<T>> {
        if self.shared.receivers.load(Ordering::Acquire) == 0 {
            return Err(SendError(value));
        }
        let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
        let evicted = if self.shared.is_full(q.len()) {
            q.pop_front()
        } else {
            None
        };
        q.push_back(value);
        drop(q);
        self.shared.ready.notify_one();
        Ok(evicted)
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::AcqRel);
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender gone: wake all blocked receivers so they observe
            // the disconnect.
            self.shared.ready.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    fn took_one(&self) {
        // A slot freed: wake one blocked bounded sender.
        self.shared.space.notify_one();
    }

    /// Block until a message arrives or every sender is dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(v) = q.pop_front() {
                drop(q);
                self.took_one();
                return Ok(v);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvError);
            }
            q = self
                .shared
                .ready
                .wait(q)
                .unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(v) = q.pop_front() {
            drop(q);
            self.took_one();
            return Ok(v);
        }
        if self.shared.senders.load(Ordering::Acquire) == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Receive with a deadline.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(v) = q.pop_front() {
                drop(q);
                self.took_one();
                return Ok(v);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _res) = self
                .shared
                .ready
                .wait_timeout(q, deadline - now)
                .unwrap_or_else(|p| p.into_inner());
            q = guard;
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared
            .queue
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocking iterator: yields until the channel disconnects.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }

    /// Non-blocking iterator over currently queued messages.
    pub fn try_iter(&self) -> TryIter<'_, T> {
        TryIter { receiver: self }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::AcqRel);
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if self.shared.receivers.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last receiver gone: wake blocked senders so they observe the
            // disconnect instead of waiting for capacity forever.
            self.shared.space.notify_all();
        }
    }
}

impl<T> std::fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> std::fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

/// Blocking iterator over received messages.
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

/// Non-blocking iterator over queued messages.
pub struct TryIter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for TryIter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.try_recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn send_fails_after_receivers_dropped() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(7).is_err());
    }

    #[test]
    fn iter_ends_on_disconnect() {
        let (tx, rx) = unbounded();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn cross_thread() {
        let (tx, rx) = unbounded();
        let handle = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = rx.iter().collect();
        handle.join().unwrap();
        assert_eq!(got.len(), 100);
    }

    #[test]
    fn bounded_try_send_full() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        match tx.try_send(3) {
            Err(TrySendError::Full(v)) => assert_eq!(v, 3),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(rx.recv(), Ok(1));
        // A slot freed up.
        tx.try_send(3).unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn bounded_send_timeout_times_out() {
        let (tx, _rx) = bounded(1);
        tx.send(1).unwrap();
        let start = Instant::now();
        let err = tx.send_timeout(2, Duration::from_millis(20)).unwrap_err();
        assert!(err.is_timeout());
        assert_eq!(err.into_inner(), 2);
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn bounded_send_timeout_succeeds_when_drained() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            rx.recv().unwrap()
        });
        tx.send_timeout(2, Duration::from_millis(500)).unwrap();
        assert_eq!(t.join().unwrap(), 1);
    }

    #[test]
    fn force_send_evicts_oldest() {
        let (tx, rx) = bounded(2);
        assert_eq!(tx.force_send(1).unwrap(), None);
        assert_eq!(tx.force_send(2).unwrap(), None);
        assert_eq!(tx.force_send(3).unwrap(), Some(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn force_send_fails_disconnected() {
        let (tx, rx) = bounded::<i32>(1);
        drop(rx);
        assert!(tx.force_send(1).is_err());
    }

    #[test]
    fn bounded_blocking_send_unblocks_on_recv() {
        let (tx, rx) = bounded(1);
        tx.send(0).unwrap();
        let tx2 = tx.clone();
        let sender = std::thread::spawn(move || tx2.send(1).unwrap());
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(rx.recv(), Ok(0));
        sender.join().unwrap();
        assert_eq!(rx.recv(), Ok(1));
    }

    #[test]
    fn blocked_sender_observes_receiver_drop() {
        let (tx, rx) = bounded(1);
        tx.send(0).unwrap();
        let sender = std::thread::spawn(move || tx.send(1));
        std::thread::sleep(Duration::from_millis(10));
        drop(rx);
        assert!(sender.join().unwrap().is_err());
    }

    #[test]
    fn zero_capacity_rounds_up_to_one() {
        let (tx, rx) = bounded(0);
        tx.try_send(9).unwrap();
        assert_eq!(rx.recv(), Ok(9));
    }
}
