//! Offline stand-in for `crossbeam-channel`: an unbounded MPMC channel on
//! top of `Mutex<VecDeque>` + `Condvar`.
//!
//! Semantics mirrored from crossbeam: senders and receivers are cloneable;
//! `send` fails once every receiver is gone; `recv` drains remaining
//! messages after the last sender is gone, then reports disconnection.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    ready: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

/// Error returned by [`Sender::send`] when all receivers are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv`] on empty + disconnected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Queue currently empty, but senders remain.
    Empty,
    /// Queue empty and every sender dropped.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// Deadline passed with no message.
    Timeout,
    /// Queue empty and every sender dropped.
    Disconnected,
}

/// Sending half of an unbounded channel.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// Receiving half of an unbounded channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Create an unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Enqueue a message; fails iff all receivers were dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        if self.shared.receivers.load(Ordering::Acquire) == 0 {
            return Err(SendError(value));
        }
        let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
        q.push_back(value);
        drop(q);
        self.shared.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::AcqRel);
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender gone: wake all blocked receivers so they observe
            // the disconnect.
            self.shared.ready.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Block until a message arrives or every sender is dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvError);
            }
            q = self
                .shared
                .ready
                .wait(q)
                .unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(v) = q.pop_front() {
            return Ok(v);
        }
        if self.shared.senders.load(Ordering::Acquire) == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Receive with a deadline.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _res) = self
                .shared
                .ready
                .wait_timeout(q, deadline - now)
                .unwrap_or_else(|p| p.into_inner());
            q = guard;
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared
            .queue
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocking iterator: yields until the channel disconnects.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }

    /// Non-blocking iterator over currently queued messages.
    pub fn try_iter(&self) -> TryIter<'_, T> {
        TryIter { receiver: self }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::AcqRel);
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
    }
}

impl<T> std::fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> std::fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

/// Blocking iterator over received messages.
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

/// Non-blocking iterator over queued messages.
pub struct TryIter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for TryIter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.try_recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn send_fails_after_receivers_dropped() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(7).is_err());
    }

    #[test]
    fn iter_ends_on_disconnect() {
        let (tx, rx) = unbounded();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn cross_thread() {
        let (tx, rx) = unbounded();
        let handle = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = rx.iter().collect();
        handle.join().unwrap();
        assert_eq!(got.len(), 100);
    }
}
