#!/usr/bin/env sh
# Tier-1 gate: build, test, then hold the workspace to its own static-analysis
# bar. Everything a PR must pass locally before it ships.
#
#   ./scripts/check.sh
#
# The analyzer step runs `cqm-analyze --deny-all`, which promotes warn-level
# findings (ASSERT_DENSITY, bare-index PANIC_IN_LIB, float `==`) to failures.
# Suppressions must use `// lint: allow(LINT_ID) -- reason` pragmas with a
# written reason; see DESIGN.md section 6.
set -eu
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cqm-analyze --deny-all"
cargo run -q --release -p cqm-analyze -- --deny-all

echo "==> cargo test"
cargo test -q --workspace

echo "==> cargo test (strict-math runtime guards)"
cargo test -q --features strict-math

echo "==> chaos suite (fault injection & degradation)"
cargo test -q --test chaos

echo "check.sh: all gates passed"
