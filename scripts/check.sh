#!/usr/bin/env sh
# Tier-1 gate: build, test, then hold the workspace to its own static-analysis
# bar. Everything a PR must pass locally before it ships.
#
#   ./scripts/check.sh
#
# The analyzer step runs `cqm-analyze --deny-all --format=json`, which
# promotes warn-level findings (ASSERT_DENSITY, bare-index PANIC_IN_LIB,
# float `==`, TIME_IN_LOGIC, HOT_LOOP_ALLOC) to failures and writes the
# machine-readable report to ANALYZE_REPORT.json (schema
# cqm-analyze/report/v1). Suppressions must use
# `// lint: allow(LINT_ID) -- reason` pragmas with a written reason; a
# pragma whose lint no longer fires is itself a failure (STALE_SUPPRESS),
# gated here explicitly so dead suppressions can never ride along. See
# DESIGN.md sections 6 and 11.
set -eu
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cqm-analyze --deny-all (report: ANALYZE_REPORT.json)"
ANALYZE_OK=0
cargo run -q --release -p cqm-analyze -- --deny-all --format=json \
    > ANALYZE_REPORT.json || ANALYZE_OK=$?
# Belt and braces: even if the analyzer exit code regresses, a stale
# suppression in the report must fail the gate on its own.
if grep -q '"lint": "STALE_SUPPRESS"' ANALYZE_REPORT.json; then
    echo "check.sh: stale suppression pragma(s) in ANALYZE_REPORT.json" >&2
    exit 1
fi
if [ "$ANALYZE_OK" -ne 0 ]; then
    echo "check.sh: cqm-analyze found violations (see ANALYZE_REPORT.json)" >&2
    exit "$ANALYZE_OK"
fi

echo "==> cargo test"
cargo test -q --workspace

echo "==> cargo test (strict-math runtime guards)"
cargo test -q --features strict-math

echo "==> chaos suite (fault injection & degradation)"
cargo test -q --test chaos

echo "==> recovery suite (checkpoint, journal, replay)"
cargo test -q --test recovery

echo "==> crash-recovery drill (abort mid-journal, restart, verify replay)"
cargo build -q --release --example restartable_office
CRASH_DIR="$(mktemp -d)"
trap 'rm -rf "$CRASH_DIR"' EXIT
# The run leg aborts itself after step 20 with a torn journal tail, so a
# non-zero exit here is the expected crash, not a failure.
if ./target/release/examples/restartable_office "$CRASH_DIR" run 20; then
    echo "check.sh: crash leg exited cleanly; expected an abort" >&2
    exit 1
fi
./target/release/examples/restartable_office "$CRASH_DIR" recover | tee /tmp/cqm_recover.log
grep -q "REPLAY verified=20 status=ok" /tmp/cqm_recover.log || {
    echo "check.sh: recovery replay did not verify bit-identically" >&2
    exit 1
}
grep -q "^SUMMARY " /tmp/cqm_recover.log || {
    echo "check.sh: recovery run did not finish the session" >&2
    exit 1
}

echo "==> perf baseline smoke (BENCH_PR9.json schema + simd/thread gates)"
# perfbase --smoke times the hot paths on small workloads, writes the baseline
# JSON, re-reads it, validates the cqm-bench/perfbase/v2 schema and applies the
# two-part gate (see crates/bench/src/perf.rs): the single-thread SIMD gate
# (bounded-ULP blocked batch >= 1.8x scalar, core-count immune) always applies;
# the clustering thread-scaling gate is skipped by perfbase itself on 1 core.
./target/release/perfbase --smoke --out "$CRASH_DIR/BENCH_PR9.json"
test -s "$CRASH_DIR/BENCH_PR9.json" || {
    echo "check.sh: perfbase did not write the baseline JSON" >&2
    exit 1
}
# A baseline regenerated on a 1-core container carries time-sliced
# multi-thread timings: perfbase skips the thread gate there, and this echo
# makes the degraded coverage impossible to miss in the CI log.
if grep -q '"available_parallelism": 1' "$CRASH_DIR/BENCH_PR9.json"; then
    echo "check.sh: WARNING: perf baseline taken on 1 core — thread-scaling" >&2
    echo "check.sh: WARNING: gate was SKIPPED; only the single-thread SIMD" >&2
    echo "check.sh: WARNING: gate was enforced. Re-run on real cores before" >&2
    echo "check.sh: WARNING: reading the multi-thread columns as evidence." >&2
fi

echo "==> serve suite (torn frames, overload, worker-count determinism)"
cargo test -q --test serve

echo "==> served-office drill (office session over TCP, bit-for-bit vs in-process)"
cargo build -q --release --example served_office
./target/release/examples/served_office | tee /tmp/cqm_served.log
grep -q "^SUMMARY .*match=ok" /tmp/cqm_served.log || {
    echo "check.sh: served answers diverged from the in-process pipeline" >&2
    exit 1
}

echo "==> serve load smoke (BENCH_PR5.json schema + answered-everything gate)"
# loadgen --smoke drives a live server over TCP with concurrent connections,
# writes the baseline JSON, re-reads it, validates the cqm-bench/servebase/v1
# schema and applies the gate (every request answered, nonzero throughput);
# see crates/bench/src/servebench.rs.
./target/release/loadgen --smoke --out "$CRASH_DIR/BENCH_PR5.json"
test -s "$CRASH_DIR/BENCH_PR5.json" || {
    echo "check.sh: loadgen did not write the baseline JSON" >&2
    exit 1
}

echo "==> chaos soak suite (exactly-once under scheduled network chaos)"
cargo test -q --test chaos_net

echo "==> chaos soak smoke (BENCH_PR7.json schema + every-request-accounted gate)"
# chaosbench --smoke drives a live server through the seeded ChaosProxy with
# retrying clients, writes the baseline JSON, re-reads it, validates the
# cqm-bench/chaosbase/v1 schema and applies the exactly-once gate (every
# request delivered or typed-failed, zero duplicate executions); see
# crates/bench/src/chaosbench.rs.
./target/release/chaosbench --smoke --out "$CRASH_DIR/BENCH_PR7.json"
test -s "$CRASH_DIR/BENCH_PR7.json" || {
    echo "check.sh: chaosbench did not write the baseline JSON" >&2
    exit 1
}

echo "==> fleet suite (tenancy, bulkheads, hot swap, warm-load faults)"
cargo test -q --test fleet

echo "==> multi-tenant soak smoke (BENCH_PR8.json schema + isolation gate)"
# fleetbench --smoke drives >= 8 tenants behind a 4-slot registry LRU through
# the seeded ChaosProxy *and* a seeded checkpoint disk-fault injector, performs
# >= 3 live hot swaps mid-traffic, writes the baseline JSON, re-reads it,
# validates the cqm-bench/fleetbase/v1 schema and applies the isolation gate
# (zero drops, zero cross-tenant leaks, zero mismatched answers); see
# crates/bench/src/fleetbench.rs.
./target/release/fleetbench --smoke --out "$CRASH_DIR/BENCH_PR8.json"
test -s "$CRASH_DIR/BENCH_PR8.json" || {
    echo "check.sh: fleetbench did not write the baseline JSON" >&2
    exit 1
}

echo "==> adaptation suite (stationary no-op soak + drift e2e)"
# The soak is the provable-no-op half of the PR 10 contract: a drift-free
# labeled stream must trigger zero drift events, zero retrains, zero swaps,
# and leave the served answers bit-identical (see tests/adapt.rs).
cargo test -q --test adapt

echo "==> adaptive-office drill (mid-run context shift over a live server)"
cargo build -q --release --example adaptive_office
./target/release/examples/adaptive_office | tee /tmp/cqm_adaptive.log
grep -q "^SUMMARY .*recovered=ok" /tmp/cqm_adaptive.log || {
    echo "check.sh: the adaptive office did not recover from the shift" >&2
    exit 1
}

echo "==> drift-recovery smoke (BENCH_PR10.json schema + recovery/zero-drop gate)"
# adaptbench --smoke serves a stale model under live client traffic with a
# seeded disk-fault plan beneath the checkpoint store, holds the detector
# silent through a stationary phase, forces a rollback via the fault
# schedule, then drives a context shift to a validated live swap; the gate
# requires zero false alarms, >= 1 promotion, >= 1 exercised rollback,
# adapted holdout RMSE beating the stale model and within the documented
# bound of a from-scratch retrain, and zero dropped requests; see
# crates/bench/src/adaptbench.rs.
./target/release/adaptbench --smoke --out "$CRASH_DIR/BENCH_PR10.json"
test -s "$CRASH_DIR/BENCH_PR10.json" || {
    echo "check.sh: adaptbench did not write the baseline JSON" >&2
    exit 1
}

echo "==> bench binary arg hygiene (--help exits 0, unknown flag exits 2)"
for bench in loadgen chaosbench fleetbench adaptbench; do
    ./target/release/"$bench" --help > /dev/null || {
        echo "check.sh: $bench --help should exit 0" >&2
        exit 1
    }
    if ./target/release/"$bench" --definitely-not-a-flag > /dev/null 2>&1; then
        echo "check.sh: $bench should reject unknown flags" >&2
        exit 1
    fi
done

echo "check.sh: all gates passed"
