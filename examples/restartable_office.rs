//! Crash-safe office: journaled run, hard abort, deterministic recovery.
//!
//! The AwarePen pipeline runs under a fault storm while every step is
//! journaled through `cqm_persist::RecoveryManager` (checkpoint + WAL).
//! A crash leg aborts the process mid-journal — leaving a genuinely torn
//! record tail — and the recover leg rebuilds the supervisor from the last
//! good checkpoint plus the journal tail, *proves* the rebuild by
//! deterministic replay (bit-identical step reports), then finishes the run.
//!
//! ```sh
//! cargo run --example restartable_office -- /tmp/cqm_office run        # clean full run
//! cargo run --example restartable_office -- /tmp/cqm_office run 20     # abort after step 20
//! cargo run --example restartable_office -- /tmp/cqm_office recover    # recover + verify + finish
//! ```
//!
//! Output ends with machine-readable lines (consumed by scripts/check.sh):
//!
//! ```text
//! RECOVERY steps=20 tail=5 truncated_bytes=6 checkpoint_seq=15 state=degraded
//! REPLAY verified=20 status=ok
//! SUMMARY steps=78 state=healthy fresh=61 cached=9 unavailable=8 faults=17 events=61
//! ```

use std::io::Write as _;
use std::path::PathBuf;

use cqm::appliance::events::ContextEvent;
use cqm::appliance::pen::train_pen;
use cqm::classify::tsk::FisClassifier;
use cqm::core::model::CqmModel;
use cqm::core::pipeline::CqmSystem;
use cqm::persist::records::{RunHeader, RuntimeCheckpoint};
use cqm::persist::recovery::{RecoveredRun, RecoveryManager};
use cqm::resilience::supervisor::StepReport;
use cqm::resilience::{
    FaultInjector, FaultKind, FaultPlan, ScheduledFault, ServedContext, SupervisedSystem,
    SupervisorConfig, WindowSource,
};
use cqm::sensors::{Context, Scenario, SensorNode};

/// Everything is derived from fixed seeds, so the recover leg rebuilds the
/// identical black-box classifier and window stream. The *quality* side
/// (measure + threshold) comes back from the checkpoint; the classifier is
/// the paper's black box and is deliberately not persisted (DESIGN.md §8).
const PEN_SEED: u64 = 11;
const PEN_REPS: usize = 1;
const NODE_SEED: u64 = 909;
const FAULT_SEED: u64 = 42;
const CHECKPOINT_EVERY: u64 = 15;
const SYNC_EVERY: usize = 1;

struct World {
    model: CqmModel,
    classifier: FisClassifier,
    windows: Vec<Vec<f64>>,
    plan: FaultPlan,
    config: SupervisorConfig,
}

fn build_world() -> Result<World, Box<dyn std::error::Error>> {
    let build = train_pen(PEN_SEED, PEN_REPS)?;
    let model = CqmModel::from_trained(&build.trained_cqm, "restartable office");
    let mut node = SensorNode::with_seed(NODE_SEED);
    let scenario = Scenario::balanced_session()?.then(&Scenario::write_think_write()?);
    let windows: Vec<Vec<f64>> = node
        .run_scenario(&scenario)?
        .into_iter()
        .map(|w| w.cues)
        .collect();
    let plan = FaultPlan::new(
        FAULT_SEED,
        vec![
            ScheduledFault {
                channel: None,
                kind: FaultKind::StuckAt(Some(500.0)),
                from: 25,
                until: 40,
            },
            ScheduledFault {
                channel: None,
                kind: FaultKind::Dropout,
                from: 55,
                until: 68,
            },
        ],
    )?;
    Ok(World {
        model,
        classifier: build.classifier,
        windows,
        plan,
        config: SupervisorConfig::default(),
    })
}

fn supervisor_for(world: &World) -> Result<SupervisedSystem<FisClassifier>, Box<dyn std::error::Error>> {
    let system = CqmSystem::new(
        world.classifier.clone(),
        world.model.measure.clone(),
        world.model.filter()?,
    )?;
    Ok(SupervisedSystem::new(system, world.config))
}

fn checkpoint_of(
    world: &World,
    supervisor: &SupervisedSystem<FisClassifier>,
    seq: u64,
) -> RuntimeCheckpoint {
    RuntimeCheckpoint {
        seq,
        model: world.model.clone(),
        training: None,
        supervisor: supervisor.snapshot(),
        fuser: None,
    }
}

fn event_for(report: &StepReport) -> Option<ContextEvent> {
    if let ServedContext::Fresh { index, result } = &report.served {
        let context = Context::from_index(result.class.0)?;
        Some(ContextEvent {
            source: "awarepen".into(),
            context,
            quality: result.quality,
            decision: result.decision,
            timestamp: *index as f64,
        })
    } else {
        None
    }
}

fn print_summary(steps: &[StepReport], state: &str, events: usize) {
    let mut fresh = 0usize;
    let mut cached = 0usize;
    let mut unavailable = 0usize;
    let faults = steps.iter().filter(|r| r.fault.is_some()).count();
    for r in steps {
        match &r.served {
            ServedContext::Fresh { .. } => fresh += 1,
            ServedContext::Cached { .. } => cached += 1,
            ServedContext::Unavailable => unavailable += 1,
        }
    }
    println!(
        "SUMMARY steps={} state={state} fresh={fresh} cached={cached} unavailable={unavailable} faults={faults} events={events}",
        steps.len()
    );
}

/// Run from the beginning, journaling everything; optionally abort after
/// `abort_after` steps, leaving a torn partial record at the journal tail.
fn leg_run(dir: &PathBuf, abort_after: Option<u64>) -> Result<(), Box<dyn std::error::Error>> {
    println!("== restartable office: journaled run ==");
    println!("training the pen and generating the session...");
    let world = build_world()?;
    let mut supervisor = supervisor_for(&world)?;
    let mut source = WindowSource::new(world.windows.clone(), FaultInjector::new(&world.plan));

    let mut mgr = RecoveryManager::new(dir.clone(), SYNC_EVERY)?;
    mgr.begin_run(
        &checkpoint_of(&world, &supervisor, 0),
        &RunHeader {
            seed: world.plan.seed(),
            faults: world.plan.faults().to_vec(),
            windows: world.windows.clone(),
            config: world.config,
            monitor: None,
        },
    )?;
    println!(
        "journaling {} windows to {} (checkpoint every {CHECKPOINT_EVERY} steps)",
        world.windows.len(),
        dir.display()
    );

    let mut steps: Vec<StepReport> = Vec::new();
    let mut events = 0usize;
    while let Some(report) = supervisor.step(&mut source) {
        let seq = mgr.record_step(&report)?;
        if let Some(event) = event_for(&report) {
            mgr.record_event(&event)?;
            events += 1;
        }
        steps.push(report);
        if seq % CHECKPOINT_EVERY == 0 {
            mgr.checkpoint(&checkpoint_of(&world, &supervisor, seq))?;
        }
        if abort_after == Some(seq) {
            // Simulate a crash mid-append: tear a partial frame onto the
            // journal tail, then die without unwinding. The recover leg
            // must truncate this garbage back to the last whole record.
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(mgr.journal_path())?;
            f.write_all(&[0x40, 0x00, 0x00, 0x00, 0xAA, 0xBB])?;
            f.sync_all()?;
            println!("CRASH aborting after step {seq} with a torn journal tail");
            std::process::abort();
        }
    }
    mgr.checkpoint(&checkpoint_of(&world, &supervisor, mgr.seq()))?;
    print_summary(&steps, supervisor.state().name(), events);
    Ok(())
}

/// Recover after a crash: reload, replay-verify, then finish the run.
fn leg_recover(dir: &PathBuf) -> Result<(), Box<dyn std::error::Error>> {
    println!("== restartable office: recovery ==");
    println!("rebuilding the deterministic black box (same training seed)...");
    let world = build_world()?;

    let mut mgr = RecoveryManager::new(dir.clone(), SYNC_EVERY)?;
    let recovered: RecoveredRun = mgr.recover()?;
    println!(
        "RECOVERY steps={} tail={} truncated_bytes={} checkpoint_seq={} state={}",
        recovered.steps.len(),
        recovered.tail().len(),
        recovered.truncated_bytes,
        recovered.checkpoint.seq,
        recovered.checkpoint.supervisor.ladder.state.name(),
    );

    let verified = match recovered.verify_replay(world.classifier.clone()) {
        Ok(n) => {
            println!("REPLAY verified={n} status=ok");
            n
        }
        Err(e) => {
            println!("REPLAY verified=0 status=diverged detail={e}");
            return Err(Box::new(e));
        }
    };

    // Rebuild the crashed supervisor and re-position the source by
    // replaying the journaled plan (bit-identical, as just verified).
    let mut supervisor = recovered.restore_supervisor(world.classifier.clone())?;
    let mut source = WindowSource::new(
        recovered.header.windows.clone(),
        FaultInjector::new(&recovered.header.fault_plan()?),
    );
    {
        let mut scratch = supervisor_for(&world)?;
        for _ in 0..verified {
            scratch.step(&mut source);
        }
    }

    // Resume journaling and finish the interrupted run.
    mgr.resume_run(&recovered)?;
    let mut steps = recovered.steps.clone();
    let mut events = recovered.events.len();
    while let Some(report) = supervisor.step(&mut source) {
        let seq = mgr.record_step(&report)?;
        if let Some(event) = event_for(&report) {
            mgr.record_event(&event)?;
            events += 1;
        }
        steps.push(report);
        if seq % CHECKPOINT_EVERY == 0 {
            mgr.checkpoint(&checkpoint_of(&world, &supervisor, seq))?;
        }
    }
    mgr.checkpoint(&checkpoint_of(&world, &supervisor, mgr.seq()))?;
    println!("resumed at step {} and finished the session", recovered.steps.len() + 1);
    print_summary(&steps, supervisor.state().name(), events);
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let usage = "usage: restartable_office <dir> run [abort_after_steps] | <dir> recover";
    let (dir, cmd) = match (args.get(1), args.get(2)) {
        (Some(d), Some(c)) => (PathBuf::from(d), c.as_str()),
        _ => {
            eprintln!("{usage}");
            std::process::exit(2);
        }
    };
    match cmd {
        "run" => {
            let abort_after = match args.get(3) {
                Some(s) => Some(s.parse::<u64>().map_err(|e| format!("abort_after: {e}"))?),
                None => None,
            };
            leg_run(&dir, abort_after)
        }
        "recover" => leg_recover(&dir),
        _ => {
            eprintln!("{usage}");
            std::process::exit(2);
        }
    }
}
