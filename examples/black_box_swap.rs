//! Classifier independence: the CQM is an add-on to *any* recognizer (§2).
//! This example trains the identical quality pipeline over three completely
//! different black boxes — the TSK-FIS classifier, k-NN and nearest
//! centroid — and shows the quality measure separating right from wrong for
//! each of them.
//!
//! ```sh
//! cargo run --example black_box_swap
//! ```

use cqm::classify::{ClassifiedDataset, FisClassifier, KnnClassifier, NearestCentroid};
use cqm::core::classifier::{ClassId, Classifier};
use cqm::core::training::{train_cqm, CqmTrainingConfig};
use cqm::sensors::node::training_corpus;
use cqm::stats::separation::auc;

fn analyse(
    name: &str,
    classifier: &dyn Classifier,
    cues: &[Vec<f64>],
    truth: &[ClassId],
) -> Result<(), Box<dyn std::error::Error>> {
    let trained = train_cqm(classifier, cues, truth, &CqmTrainingConfig::default())?;
    let labeled: Vec<(f64, bool)> = trained
        .analysis_samples
        .iter()
        .filter_map(|s| s.quality.value().map(|q| (q, s.was_right)))
        .collect();
    let auc_value = auc(&labeled)?;
    println!(
        "{name:18} accuracy {:5.1}%  threshold {:.3}  selection {:.3}  AUC {:.3}",
        100.0 * trained.classifier_accuracy,
        trained.threshold.value,
        trained.probabilities.selection_right,
        auc_value
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== one CQM pipeline, three black boxes ==");
    let corpus = training_corpus(99, 2)?;
    let data = ClassifiedDataset::from_labeled_cues(&corpus)?;
    let truth: Vec<ClassId> = data.labels().to_vec();

    let fis = FisClassifier::train(&data, &Default::default())?;
    analyse("TSK-FIS", &fis, data.cues(), &truth)?;

    let knn = KnnClassifier::train(&data, 5)?;
    analyse("5-NN", &knn, data.cues(), &truth)?;

    let centroid = NearestCentroid::train(&data)?;
    analyse("nearest centroid", &centroid, data.cues(), &truth)?;

    println!("\nthe quality system never inspected any of them — black-box add-on confirmed");
    Ok(())
}
