//! Quickstart: train the AwarePen stack and watch the CQM qualify live
//! classifications.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use cqm::appliance::pen::train_pen;
use cqm::core::classifier::Classifier;
use cqm::core::filter::QualityFilter;
use cqm::sensors::{Context, Scenario, SensorNode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== CQM quickstart ==");
    println!("training the AwarePen (TSK classifier + quality FIS)...");
    let build = train_pen(42, 1)?;
    println!(
        "  classifier train accuracy : {:.1}%",
        100.0 * build.train_accuracy
    );
    println!("  quality groups            : {}", build.trained_cqm.groups);
    println!("  optimal threshold         : {}", build.trained_cqm.threshold);

    // A fresh session the system has never seen, with hard transitions and
    // an *energetic* user whose writing borders on playing — the paper's
    // "different style of using the pen" difficulty.
    let scenario = Scenario::new(vec![
        (Context::LyingStill, 3.0),
        (Context::Writing, 6.0),
        (Context::Playing, 3.0),
        (Context::Writing, 5.0),
    ])?;
    let mut node = SensorNode::new(
        cqm::sensors::node::NodeConfig::default(),
        cqm::sensors::user::UserStyle::energetic(),
        777,
    )?;
    let windows = node.run_scenario(&scenario)?;
    let filter = QualityFilter::new(build.trained_cqm.threshold.value.clamp(0.0, 1.0))?;

    println!("\n  time   truth         predicted     quality   decision");
    println!("  ----   -----         ---------     -------   --------");
    let mut right_accepted = 0;
    let mut wrong_discarded = 0;
    let mut wrong_total = 0;
    for w in &windows {
        let class = build.classifier.classify(&w.cues)?;
        let quality = build.trained_cqm.measure.measure(&w.cues, class)?;
        let decision = filter.decide(quality);
        let predicted = Context::from_index(class.0).expect("valid class");
        let right = predicted == w.truth;
        if right && decision.is_accept() {
            right_accepted += 1;
        }
        if !right {
            wrong_total += 1;
            if !decision.is_accept() {
                wrong_discarded += 1;
            }
        }
        println!(
            "  {:5.1}  {:12}  {:12}  {:8}  {:?}{}",
            w.t,
            w.truth.to_string(),
            predicted.to_string(),
            quality.to_string(),
            decision,
            if right { "" } else { "   <- misclassified" }
        );
    }
    println!(
        "\n  {right_accepted} right classifications accepted; \
         {wrong_discarded}/{wrong_total} wrong ones discarded by the CQM"
    );
    Ok(())
}
