//! The AwareOffice over the wire: a CQM inference service end to end.
//!
//! Trains the AwarePen stack, starts a `cqm-serve` server on an ephemeral
//! port, and runs an office session through it twice — request by request
//! and as one batch — comparing every answer bit-for-bit against the
//! in-process `CqmSystem` path (the `aware_office` reference). The server
//! is then drained to a checkpoint and a second instance warm-starts from
//! it, proving the restart serves the identical model.
//!
//! ```sh
//! cargo run --release --example served_office
//! ```
//!
//! The final `SUMMARY` line is machine-readable (scripts/check.sh greps
//! for `match=ok`).

use cqm::appliance::pen::train_pen;
use cqm::core::model::CqmModel;
use cqm::core::normalize::Quality;
use cqm::core::pipeline::{CqmSystem, QualifiedClassification};
use cqm::sensors::{Scenario, SensorNode};
use cqm::serve::{ClientConfig, CqmClient, CqmServer, ModelSource, ServedModel, ServerConfig};

/// Bit-level equality: same class, same decision, and the quality is the
/// same `f64` down to the last bit (or ε on both sides).
fn identical(a: &QualifiedClassification, b: &QualifiedClassification) -> bool {
    let quality_same = match (a.quality, b.quality) {
        (Quality::Value(x), Quality::Value(y)) => x.to_bits() == y.to_bits(),
        (Quality::Epsilon, Quality::Epsilon) => true,
        _ => false,
    };
    a.class == b.class && quality_same && a.decision == b.decision
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== served office: the CQM pipeline over TCP ==");
    println!("training the pen...");
    let build = train_pen(2026, 1)?;
    // The in-process reference and the served model share one training run.
    let reference = CqmSystem::from_trained(build.classifier.clone(), &build.trained_cqm)?;
    let served = ServedModel::new(
        build.classifier.clone(),
        CqmModel::from_trained(&build.trained_cqm, "served office"),
    )?;

    let checkpoint = std::env::temp_dir().join(format!("served_office_{}.ck", std::process::id()));
    let server = CqmServer::start(
        ModelSource::Fresh(served),
        ServerConfig {
            checkpoint: Some(checkpoint.clone()),
            ..ServerConfig::default()
        },
    )?;
    let addr = server.local_addr();
    println!("serving on {addr}");

    // One office session, classified over the wire.
    let mut node = SensorNode::with_seed(909);
    let scenario = Scenario::balanced_session()?.then(&Scenario::write_think_write()?);
    let windows = node.run_scenario(&scenario)?;
    println!("classifying {} windows through the service\n", windows.len());

    let mut client = CqmClient::connect(addr, ClientConfig::default())?;
    let mut accepted = 0usize;
    let mut discarded = 0usize;
    let mut epsilon = 0usize;
    let mut mismatches = 0usize;
    for w in &windows {
        let over_wire = client.classify(&w.cues)?;
        let in_process = reference.classify_with_quality(&w.cues)?;
        if !identical(&over_wire, &in_process) {
            mismatches += 1;
        }
        match over_wire.quality {
            Quality::Value(_) => {}
            Quality::Epsilon => epsilon += 1,
        }
        if over_wire.decision.is_accept() {
            accepted += 1;
        } else {
            discarded += 1;
        }
    }

    // The same windows again, as one atomic batch — the server folds them
    // into single kernel sweeps, which must be invisible in the answers.
    let rows: Vec<Vec<f64>> = windows.iter().map(|w| w.cues.clone()).collect();
    let batched = client.classify_batch(&rows)?;
    let mut batch_mismatches = 0usize;
    for (w, over_wire) in windows.iter().zip(&batched) {
        let in_process = reference.classify_with_quality(&w.cues)?;
        if !identical(over_wire, &in_process) {
            batch_mismatches += 1;
        }
    }

    let health = client.health()?;
    println!(
        "server health: {} requests, {} rows classified, queue highwater {}",
        health.requests, health.rows_classified, health.queue_highwater
    );
    println!(
        "decisions: {accepted} accepted, {discarded} discarded ({epsilon} of them epsilon)"
    );
    println!(
        "bit-for-bit vs in-process: {} single mismatches, {batch_mismatches} batch mismatches",
        mismatches
    );

    // Drain to the checkpoint and warm-start a second instance from it.
    drop(client);
    server.shutdown()?;
    let restarted = CqmServer::start(
        ModelSource::WarmStart(checkpoint.clone()),
        ServerConfig::default(),
    )?;
    let mut client = CqmClient::connect(restarted.local_addr(), ClientConfig::default())?;
    let snapshot = client.snapshot()?;
    println!(
        "\nwarm restart: checkpoint_seq={} warm_started={}",
        snapshot.checkpoint_seq, snapshot.warm_started
    );
    let mut restart_mismatches = 0usize;
    for w in windows.iter().take(20) {
        let over_wire = client.classify(&w.cues)?;
        let in_process = reference.classify_with_quality(&w.cues)?;
        if !identical(&over_wire, &in_process) {
            restart_mismatches += 1;
        }
    }
    println!("restarted server answers: {restart_mismatches} mismatches over 20 windows");
    drop(client);
    restarted.shutdown()?;
    std::fs::remove_file(&checkpoint)?;

    let all_match = mismatches == 0 && batch_mismatches == 0 && restart_mismatches == 0;
    let warm_ok = snapshot.warm_started && snapshot.checkpoint_seq == 1;
    println!(
        "\nSUMMARY windows={} accepted={accepted} discarded={discarded} epsilon={epsilon} \
         warm_seq={} match={}",
        windows.len(),
        snapshot.checkpoint_seq,
        if all_match && warm_ok { "ok" } else { "FAILED" },
    );
    if !(all_match && warm_ok) {
        return Err("served answers diverged from the in-process path".into());
    }
    Ok(())
}
