//! The paper's outlook features (§5): context prediction from quality
//! trends, and quality-weighted fusion of multiple appliances' reports.
//!
//! ```sh
//! cargo run --example prediction_and_fusion
//! ```

use cqm::appliance::pen::train_pen;
use cqm::core::classifier::{ClassId, Classifier};
use cqm::core::fusion::{fuse, ContextReport, FusionRule};
use cqm::core::normalize::Quality;
use cqm::core::prediction::{PredictionHint, TrendPredictor};
use cqm::sensors::{Context, Scenario, SensorNode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== outlook features: prediction & fusion ==\n");
    let build = train_pen(5, 1)?;

    // --- Prediction: watch quality decay ahead of a context change.
    println!("-- quality-trend prediction --");
    let scenario = Scenario::new(vec![
        (Context::Writing, 8.0),
        (Context::Playing, 4.0), // the change the trend should foreshadow
    ])?;
    let mut node = SensorNode::with_seed(31);
    let windows = node.run_scenario(&scenario)?;
    let mut predictor = TrendPredictor::new(5, 0.015)?;
    let mut hinted_at = None;
    let mut changed_at = None;
    for w in &windows {
        let class = build.classifier.classify(&w.cues)?;
        let quality = build.trained_cqm.measure.measure(&w.cues, class)?;
        let hint = predictor.observe(class, quality);
        if matches!(hint, PredictionHint::TransitionLikely { .. }) && hinted_at.is_none() {
            hinted_at = Some(w.t);
        }
        if w.truth == Context::Playing && changed_at.is_none() {
            changed_at = Some(w.t);
        }
        println!(
            "  t={:5.1}  truth={:12} q={:18}  hint={:?}",
            w.t,
            w.truth.to_string(),
            quality.to_string(),
            hint
        );
    }
    match (hinted_at, changed_at) {
        (Some(h), Some(c)) => println!("\n  transition hinted at t={h:.1}s, truth changed at t={c:.1}s"),
        _ => println!("\n  (no transition hint fired on this run)"),
    }

    // --- Fusion: several appliances reporting with different confidence.
    println!("\n-- quality-weighted fusion --");
    let reports = vec![
        ContextReport {
            source: "awarepen".into(),
            class: ClassId(Context::Writing.index()),
            quality: Quality::Value(0.93),
        },
        ContextReport {
            source: "mediacup".into(),
            class: ClassId(Context::Playing.index()),
            quality: Quality::Value(0.35),
        },
        ContextReport {
            source: "chair".into(),
            class: ClassId(Context::Writing.index()),
            quality: Quality::Value(0.58),
        },
        ContextReport {
            source: "door".into(),
            class: ClassId(Context::Playing.index()),
            quality: Quality::Epsilon, // excluded from the vote
        },
    ];
    for r in &reports {
        println!(
            "  {:9} says {:12} with {}",
            r.source,
            Context::from_index(r.class.0).expect("valid class").to_string(),
            r.quality
        );
    }
    let fused = fuse(&reports, FusionRule::WeightedSum)?;
    println!(
        "\n  fused decision: {} (confidence {:.2}, {} eps report(s) excluded)",
        Context::from_index(fused.class.0).expect("valid class"),
        fused.confidence,
        fused.epsilon_reports
    );
    Ok(())
}
