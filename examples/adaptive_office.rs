//! The office that notices its own drift: online adaptation end to end.
//!
//! A small office appliance classifies the room as *quiet* or *meeting*
//! from one ambient-activity cue, served over TCP with the CQM filter in
//! front of every answer. Mid-run the office is rearranged — the sensor
//! now reads just above the classifier's decision boundary while the room
//! is actually quiet — so the frozen classifier starts confidently giving
//! wrong answers.
//!
//! An [`cqm::adapt::AdaptationSupervisor`] watches the labeled stream:
//! the Page–Hinkley detector confirms the drift, the supervisor retrains
//! the quality measure from its sliding window in the background,
//! validates the candidate (holdout RMSE, checkpoint round-trip, replay
//! probe) and promotes it through a live `swap_model` — while the client
//! keeps classifying the whole time and never loses a request.
//!
//! ```sh
//! cargo run --release --example adaptive_office
//! ```
//!
//! The final `SUMMARY` line is machine-readable (scripts/check.sh greps
//! for `recovered=ok`).

use cqm::adapt::{
    holdout_rmse, AdaptSample, AdaptationConfig, AdaptationOutcome, AdaptationSupervisor,
    DriftState, SlidingWindow,
};
use cqm::classify::FisClassifier;
use cqm::core::classifier::ClassId;
use cqm::core::model::{CqmModel, MODEL_VERSION};
use cqm::fuzzy::{MembershipFunction, TskFis, TskRule};
use cqm::serve::{
    ClientConfig, CqmClient, CqmServer, FleetConfig, ModelSource, ServedModel, ServerConfig,
    DEFAULT_TENANT,
};

const QUIET: ClassId = ClassId(0);

/// The office model: class 0 (*quiet*) near cue 0, class 1 (*meeting*)
/// near cue 1, quality high where prediction and cue agree. Deliberately
/// tiny — the story is the adaptation loop, not the kernels.
fn office_model() -> Result<ServedModel, Box<dyn std::error::Error>> {
    let g = |mu: f64, s: f64| MembershipFunction::gaussian(mu, s);
    let class_fis = TskFis::new(vec![
        TskRule::new(vec![g(0.0, 0.3)?], vec![0.0, 0.0])?,
        TskRule::new(vec![g(1.0, 0.3)?], vec![0.0, 1.0])?,
    ])?;
    let classifier = FisClassifier::from_fis(class_fis, 2)?;
    let quality_fis = TskFis::new(vec![
        TskRule::new(vec![g(0.0, 0.25)?, g(0.0, 0.25)?], vec![0.0, 0.0, 1.0])?,
        TskRule::new(vec![g(1.0, 0.25)?, g(1.0, 0.25)?], vec![0.0, 0.0, 1.0])?,
        TskRule::new(vec![g(0.0, 0.25)?, g(1.0, 0.25)?], vec![0.0, 0.0, 0.0])?,
        TskRule::new(vec![g(1.0, 0.25)?, g(0.0, 0.25)?], vec![0.0, 0.0, 0.0])?,
    ])?;
    let model = CqmModel {
        version: MODEL_VERSION,
        measure: cqm::core::QualityMeasure::new(quality_fis)?,
        threshold: 0.5,
        note: "adaptive office".into(),
    };
    Ok(ServedModel::new(classifier, model)?)
}

/// Seeded ambient-activity sample for a normal office minute.
fn office_minute(i: u64) -> (f64, ClassId) {
    let r = (i.wrapping_mul(2654435761).wrapping_add(1) % 1000) as f64 / 1000.0;
    let cue = if i % 4 == 0 {
        0.3 + r * 0.4
    } else if i % 2 == 0 {
        r * 0.25
    } else {
        0.75 + r * 0.25
    };
    (cue, ClassId(usize::from(cue > 0.45)))
}

/// How many of the rearranged-office probes (cues the frozen classifier
/// gets wrong) the served filter currently *accepts*. Recovery shows up
/// as this number falling: the adapted quality measure learns to discard
/// exactly the answers the drift made untrustworthy.
fn wrong_band_accepts(client: &mut CqmClient) -> Result<usize, Box<dyn std::error::Error>> {
    let mut accepted = 0usize;
    for k in 0..20u32 {
        let cue = 0.5 + 0.005 * f64::from(k);
        let answer = client.classify(&[cue])?;
        if answer.decision.is_accept() {
            accepted += 1;
        }
    }
    Ok(accepted)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== adaptive office: drift detection and validated live swap ==");
    let stale = office_model()?;
    let dir = std::env::temp_dir().join(format!("adaptive_office_{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let server = CqmServer::start(
        ModelSource::Fresh(stale.clone()),
        ServerConfig {
            fleet: FleetConfig {
                store_dir: Some(dir.clone()),
                probe_cues: (0..4).map(|i| vec![0.1 + 0.25 * f64::from(i)]).collect(),
                ..FleetConfig::default()
            },
            ..ServerConfig::default()
        },
    )?;
    let mut client = CqmClient::connect(server.local_addr(), ClientConfig::default())?;
    println!("serving on {}", server.local_addr());

    let config = AdaptationConfig::default();
    let mut sup = AdaptationSupervisor::new(
        config.clone(),
        stale.clone(),
        DEFAULT_TENANT,
        dir.join("validate"),
    )?;
    let mut mirror = SlidingWindow::new(config.window_capacity)?;
    let mut wire_answers = 0usize;
    let mut wire_errors = 0usize;

    // ---- phase 1: a normal morning; the detector must stay silent ----
    println!("\n[morning] 400 labeled office minutes, stationary ...");
    for i in 0..400u64 {
        let (cue, truth) = office_minute(i);
        sup.observe(&[cue], truth)?;
        mirror.push(AdaptSample {
            cues: vec![cue],
            truth,
        });
        if i % 8 == 0 {
            match client.classify(&[cue]) {
                Ok(_) => wire_answers += 1,
                Err(_) => wire_errors += 1,
            }
        }
    }
    let false_alarms = sup.stats().drift_events;
    println!(
        "detector: {:?}, {false_alarms} false alarm(s), {} retrain(s)",
        sup.drift_state(),
        sup.stats().retrains
    );
    let accepts_before = wrong_band_accepts(&mut client)?;
    println!("wrong-band probes accepted by the stale filter: {accepts_before}/20");

    // ---- phase 2: the office is rearranged mid-run ----
    println!("\n[afternoon] sensor now reads 0.50–0.60 while the room is quiet ...");
    let mut drift_at = 0u64;
    let mut swap_seq = 0u64;
    let mut promoted = false;
    let mut i = 0u64;
    while !promoted && i < 20_000 {
        let r = (i.wrapping_mul(2654435761) % 1000) as f64 / 1000.0;
        let wrong = 0.5 + r * 0.1;
        sup.observe(&[wrong], QUIET)?;
        mirror.push(AdaptSample {
            cues: vec![wrong],
            truth: QUIET,
        });
        let easy = if i % 2 == 0 { 0.05 + r * 0.1 } else { 0.85 + r * 0.1 };
        let easy_truth = ClassId(usize::from(easy > 0.45));
        sup.observe(&[easy], easy_truth)?;
        mirror.push(AdaptSample {
            cues: vec![easy],
            truth: easy_truth,
        });
        if i % 10 == 0 {
            match client.classify(&[wrong]) {
                Ok(_) => wire_answers += 1,
                Err(_) => wire_errors += 1,
            }
        }
        i += 1;
        if sup.drift_state() == DriftState::Drift {
            if drift_at == 0 {
                drift_at = sup.stats().observed;
                println!("drift confirmed at observation {drift_at}");
            }
            match sup.step(&server)? {
                AdaptationOutcome::Promoted {
                    swap_seq: seq,
                    candidate,
                } => {
                    swap_seq = seq;
                    promoted = true;
                    println!(
                        "retrained + swapped at seq {seq}: holdout rmse {:.4} (was {:.4})",
                        candidate.holdout_rmse, candidate.live_holdout_rmse
                    );
                }
                AdaptationOutcome::Rejected { reason } => {
                    println!("candidate rejected, retrying: {reason}");
                }
                _ => {}
            }
        }
    }
    if !promoted {
        return Err("the context shift never produced a promotion".into());
    }

    // ---- recovery: the same probes, the same holdout, after the swap ----
    let accepts_after = wrong_band_accepts(&mut client)?;
    println!("\nwrong-band probes accepted after the swap: {accepts_after}/20");
    let (_, holdout) = mirror.split(config.holdout_every)?;
    let stale_rmse = holdout_rmse(&stale, &holdout)?;
    let adapted_rmse = holdout_rmse(sup.live(), &holdout)?;
    println!("holdout rmse: stale {stale_rmse:.4}, adapted {adapted_rmse:.4}");

    drop(client);
    let health = server.shutdown()?;
    std::fs::remove_dir_all(&dir).ok();

    let recovered = false_alarms == 0
        && promoted
        && adapted_rmse < stale_rmse
        && wire_errors == 0
        && health.swap_rollbacks == 0;
    println!(
        "\nSUMMARY false_alarms={false_alarms} drift_at={drift_at} retrains={} \
         swapped_seq={swap_seq} accepts_before={accepts_before} accepts_after={accepts_after} \
         stale_rmse={stale_rmse:.4} adapted_rmse={adapted_rmse:.4} wire_answers={wire_answers} \
         wire_errors={wire_errors} recovered={}",
        sup.stats().retrains,
        if recovered { "ok" } else { "FAILED" },
    );
    if !recovered {
        return Err("the office did not recover from the context shift".into());
    }
    Ok(())
}
