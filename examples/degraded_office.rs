//! Graceful degradation: the office pipeline under a fault storm.
//!
//! An AwarePen's cue stream is corrupted mid-session (a stuck-at rail
//! followed by a sensor dropout). The supervised runtime rides it out:
//! retries, serves last-good context while it is fresh enough, walks the
//! degradation ladder down to failsafe, and re-earns `Healthy` only after
//! the configured probation once the fault clears. Meanwhile a flaky
//! second source is quarantined by its circuit breaker so fusion never
//! waits on a known-bad channel.
//!
//! ```sh
//! cargo run --example degraded_office
//! ```

use cqm::appliance::bus::{EventBus, SlowSubscriberPolicy};
use cqm::appliance::events::ContextEvent;
use cqm::appliance::pen::train_pen;
use cqm::core::fusion::{ContextReport, FusionRule};
use cqm::core::normalize::Quality;
use cqm::core::pipeline::CqmSystem;
use cqm::core::ClassId;
use cqm::resilience::{
    FaultInjector, FaultKind, FaultPlan, QuarantineFuser, ScheduledFault, ServedContext,
    SupervisedSystem, SupervisorConfig, WindowSource,
};
use cqm::sensors::{Context, Scenario, SensorNode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== degraded office: the CQM pipeline under a fault storm ==");
    println!("training the pen...");
    let build = train_pen(2026, 1)?;
    let system = CqmSystem::from_trained(build.classifier.clone(), &build.trained_cqm)?;
    let mut supervised = SupervisedSystem::new(system, SupervisorConfig::default());

    // A real session, then sabotage: windows 25..45 read a stuck rail,
    // windows 60..75 vanish entirely.
    let mut node = SensorNode::with_seed(909);
    let scenario = Scenario::balanced_session()?.then(&Scenario::write_think_write()?);
    let windows = node.run_scenario(&scenario)?;
    println!("running {} windows with two fault bands injected\n", windows.len());
    let plan = FaultPlan::new(
        42,
        vec![
            ScheduledFault {
                channel: None,
                kind: FaultKind::StuckAt(Some(500.0)),
                from: 25,
                until: 45,
            },
            ScheduledFault {
                channel: None,
                kind: FaultKind::Dropout,
                from: 60,
                until: 75,
            },
        ],
    )?;
    let cues: Vec<Vec<f64>> = windows.iter().map(|w| w.cues.clone()).collect();
    let mut source = WindowSource::new(cues, FaultInjector::new(&plan));
    let reports = supervised.run(&mut source);

    // Distribute the fresh classifications over a bounded office bus: a
    // live dashboard drains promptly, a wedged logger never does, so the
    // DropOldest policy sheds its stale backlog instead of blocking.
    let bus = EventBus::bounded(8, SlowSubscriberPolicy::DropOldest)?;
    let dashboard = bus.subscribe();
    let _wedged_logger = bus.subscribe();
    for r in &reports {
        if let ServedContext::Fresh { index, result } = &r.served {
            if let Some(context) = Context::from_index(result.class.0) {
                bus.publish(&ContextEvent {
                    source: "awarepen".into(),
                    context,
                    quality: result.quality,
                    decision: result.decision,
                    timestamp: *index as f64,
                });
                while dashboard.try_recv().is_ok() {}
            }
        }
    }

    let mut fresh = 0usize;
    let mut cached = 0usize;
    let mut unavailable = 0usize;
    for r in &reports {
        match &r.served {
            ServedContext::Fresh { .. } => fresh += 1,
            ServedContext::Cached { .. } => cached += 1,
            ServedContext::Unavailable => unavailable += 1,
        }
    }
    println!("served contexts: {fresh} fresh, {cached} cached fallbacks, {unavailable} unavailable");
    println!("\ndegradation ladder (step: state):");
    for (tick, state) in supervised.ladder().transitions() {
        println!("  step {tick:3}: -> {state}");
    }
    println!("final state: {}", supervised.state());

    // A flaky co-located sensor keeps reporting ε; its breaker trips and
    // fusion stops waiting for it until the cooldown probe succeeds.
    println!("\nfusing the pen with a flaky wearable (circuit breaker, trip=3, cooldown=5):");
    let mut fuser = QuarantineFuser::new(3, 5, FusionRule::WeightedSum)?;
    for tick in 0..16 {
        let pen_report = ContextReport {
            source: "pen".into(),
            class: ClassId(Context::Writing.index()),
            quality: Quality::Value(0.9),
        };
        let wearable = ContextReport {
            source: "wearable".into(),
            class: ClassId(Context::Playing.index()),
            quality: if tick < 8 { Quality::Epsilon } else { Quality::Value(0.8) },
        };
        let out = fuser.fuse_tick(&[pen_report, wearable]);
        let fused = out
            .fused
            .map(|f| format!("{:?} ({:.2})", Context::from_index(f.class.0), f.confidence))
            .unwrap_or_else(|| "none".into());
        println!(
            "  tick {tick:2}: fused {fused:24} contributing {}  quarantined {:?}",
            out.contributing, out.quarantined
        );
    }
    println!("\nthe office never blocked on a bad sensor, and never trusted stale context silently");

    let health = bus.health();
    println!(
        "SUMMARY steps={} fresh={fresh} cached={cached} unavailable={unavailable} state={} \
         bus_subscribers={} bus_published={} bus_delivered={} bus_dropped={} bus_drop_rate={:.4}",
        reports.len(),
        supervised.state().name(),
        health.subscribers,
        health.published,
        health.delivered,
        health.dropped,
        health.drop_rate(),
    );
    Ok(())
}
