//! Trace recording and replay: export a labeled sensing session to CSV,
//! reload it, and train from the replayed corpus — the workflow that makes
//! experiment corpora portable artifacts (the simulated counterpart of the
//! AwareOffice's recorded sessions).
//!
//! ```sh
//! cargo run --example replay_traces
//! ```

use cqm::appliance::pen::build_pen_from_corpus;
use cqm::sensors::node::training_corpus;
use cqm::sensors::replay::{from_csv, to_csv};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== trace recording & replay ==");
    let corpus = training_corpus(3141, 1)?;
    println!("recorded {} labeled windows", corpus.len());

    let csv = to_csv(&corpus)?;
    let path = std::env::temp_dir().join("awarepen_trace.csv");
    std::fs::write(&path, &csv)?;
    println!(
        "exported to {} ({} bytes, {} rows)",
        path.display(),
        csv.len(),
        csv.lines().count() - 1
    );

    let replayed = from_csv(&std::fs::read_to_string(&path)?)?;
    println!("replayed {} windows from disk", replayed.len());

    // Training from the replayed trace is bit-identical to training from
    // the in-memory corpus.
    let original = build_pen_from_corpus(&corpus)?;
    let from_replay = build_pen_from_corpus(&replayed)?;
    assert_eq!(
        original.trained_cqm.threshold.value,
        from_replay.trained_cqm.threshold.value
    );
    println!(
        "replay-trained CQM identical to original (threshold {:.4})",
        from_replay.trained_cqm.threshold.value
    );
    std::fs::remove_file(&path).ok();
    Ok(())
}
