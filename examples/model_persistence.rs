//! Offline training, on-device deployment: train the CQM, persist it as a
//! versioned JSON model (what would be flashed onto the Particle node),
//! reload it and verify identical behaviour. Also prints the learned rule
//! base in the paper's linguistic IF-THEN form.
//!
//! ```sh
//! cargo run --example model_persistence
//! ```

use cqm::appliance::pen::train_pen;
use cqm::core::classifier::Classifier;
use cqm::core::model::CqmModel;
use cqm::fuzzy::linguistic::{verbalize_fis, VariableNames};
use cqm::sensors::{Scenario, SensorNode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== model persistence & rule inspection ==");
    let build = train_pen(17, 1)?;
    let model = CqmModel::from_trained(&build.trained_cqm, "awarepen sim, seed 17");

    // Inspect what the automated construction learned.
    println!("\nlearned quality rules (v_Q = std_x, std_y, std_z, class):");
    let names = VariableNames::new(["std_x", "std_y", "std_z", "class"]);
    for line in verbalize_fis(build.trained_cqm.measure.fis(), &names).lines() {
        println!("  {line}");
    }

    // Persist and reload.
    let path = std::env::temp_dir().join("awarepen_cqm_model.json");
    model.save(&path)?;
    let size = std::fs::metadata(&path)?.len();
    println!("\nsaved model to {} ({size} bytes)", path.display());
    let reloaded = CqmModel::load(&path)?;
    println!(
        "reloaded: version {}, threshold {:.3}, note {:?}",
        reloaded.version, reloaded.threshold, reloaded.note
    );

    // Verify identical behaviour on fresh data.
    let mut node = SensorNode::with_seed(3);
    let windows = node.run_scenario(&Scenario::balanced_session()?)?;
    let mut checked = 0;
    for w in &windows {
        let class = build.classifier.classify(&w.cues)?;
        let q1 = build.trained_cqm.measure.measure(&w.cues, class)?;
        let q2 = reloaded.measure.measure(&w.cues, class)?;
        assert_eq!(q1, q2, "model behaviour changed after round-trip");
        checked += 1;
    }
    println!("verified bit-identical quality on {checked} fresh windows");
    std::fs::remove_file(&path).ok();
    Ok(())
}
