//! The second AwareOffice appliance: a MediaCup-style coffee cup running
//! the identical classifier ⊕ CQM stack over cup semantics — the paper's §5
//! generality claim ("backed up by other applications built in the
//! AwareOffice") in executable form.
//!
//! ```sh
//! cargo run --example media_cup
//! ```

use cqm::appliance::bus::EventBus;
use cqm::appliance::cup::{coffee_break, train_cup, CupContext, MediaCup};
use cqm::sensors::SensorNode;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== MediaCup: the same CQM stack on a different appliance ==");
    println!("training the cup (standing / drinking / carried)...");
    let build = train_cup(4711)?;
    println!(
        "  quality threshold: {:.3}, groups: {}",
        build.trained_cqm.threshold.value, build.trained_cqm.groups
    );

    let bus = EventBus::new();
    let rx = bus.subscribe();
    let mut cup = MediaCup::new(&build, SensorNode::with_seed(88))?;
    let obs = cup.run_scenario(&coffee_break()?, &bus)?;
    bus.close();

    println!("\n  time   truth       event");
    for (event, truth) in obs.iter().take(20) {
        let shown = CupContext::from_index(event.context.index())
            .expect("shared index space");
        println!(
            "  {:5.1}  {:9}   detected {:9} {} {:?}",
            event.timestamp,
            truth.to_string(),
            shown.to_string(),
            event.quality,
            event.decision
        );
    }
    let total = obs.len();
    let right = obs
        .iter()
        .filter(|(e, t)| e.context.index() == t.index())
        .count();
    let accepted: Vec<_> = obs.iter().filter(|(e, _)| e.usable()).collect();
    let accepted_right = accepted
        .iter()
        .filter(|(e, t)| e.context.index() == t.index())
        .count();
    println!(
        "\n  raw accuracy {:.1}% -> accepted accuracy {:.1}% ({} of {} events published on the bus)",
        100.0 * right as f64 / total as f64,
        100.0 * accepted_right as f64 / accepted.len().max(1) as f64,
        rx.len(),
        total
    );
    Ok(())
}
