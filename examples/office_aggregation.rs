//! Higher-level context aggregation (§5): the AwarePen and the MediaCup
//! both publish qualified contexts on the office bus; a higher-level
//! processor fuses them per time bucket into office situations, believing
//! each appliance exactly as much as its CQM warrants.
//!
//! ```sh
//! cargo run --example office_aggregation
//! ```

use cqm::appliance::aggregator::OfficeAggregator;
use cqm::appliance::bus::EventBus;
use cqm::appliance::cup::{coffee_break, train_cup, MediaCup};
use cqm::appliance::pen::{train_pen, AwarePen};
use cqm::sensors::{Scenario, SensorNode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== office aggregation: pen + cup -> office situation ==");
    println!("training both appliances...");
    let pen_build = train_pen(2026, 1)?;
    let cup_build = train_cup(2027)?;

    let bus = EventBus::new();
    let rx = bus.subscribe();

    // Both appliances live through the same 21 s of office time.
    let mut pen = AwarePen::new(&pen_build, SensorNode::with_seed(5))?;
    let mut cup = MediaCup::new(&cup_build, SensorNode::with_seed(6))?;
    pen.run_scenario(&Scenario::write_think_write()?, &bus)?;
    cup.run_scenario(&coffee_break()?, &bus)?;
    bus.close();
    let events: Vec<_> = rx.iter().collect();
    println!("collected {} qualified events from 2 appliances\n", events.len());

    let aggregator = OfficeAggregator::new(3.0, true)?;
    println!("  bucket   situation           confidence   reports (excluded)");
    println!("  ------   -----------------   ----------   ------------------");
    for s in aggregator.aggregate(&events) {
        println!(
            "  {:5.0}s   {:17}   {:10.2}   {:3} ({})",
            s.t,
            s.situation.to_string(),
            s.confidence,
            s.reports,
            s.excluded
        );
    }
    println!("\nthe aggregator believed each appliance exactly as much as its CQM allowed");
    Ok(())
}
