//! The paper's motivating application: the whiteboard camera photographs
//! the board when a writing session ends, driven by AwarePen context events
//! over the office bus. Compares the quality-aware camera against a naive
//! one on the identical event stream.
//!
//! ```sh
//! cargo run --example aware_office
//! ```

use cqm::appliance::office::{run_office, OfficeConfig};
use cqm::sensors::{Context, Scenario};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== AwareOffice: whiteboard camera decision ==");

    // A workday-like session: several writing phases with thinking pauses.
    let scenario = Scenario::new(vec![
        (Context::LyingStill, 4.0),
        (Context::Writing, 10.0),
        (Context::Playing, 4.0), // thinking pause mid-session
        (Context::Writing, 8.0),
        (Context::LyingStill, 6.0), // session 1 over -> photo expected
        (Context::Playing, 5.0),
        (Context::Writing, 9.0),
        (Context::LyingStill, 5.0), // session 2 over -> photo expected
    ])?;

    let config = OfficeConfig {
        seed: 2026,
        scenario,
        ..OfficeConfig::default()
    };
    let report = run_office(&config)?;

    println!(
        "pen classification accuracy   : {:.1}% raw, {:.1}% after CQM filtering",
        100.0 * report.pen_accuracy,
        100.0 * report.pen_accuracy_accepted
    );
    println!("pen filter accounting         : {}", report.filter);

    for (label, summary) in [
        ("quality-aware camera", &report.with_quality),
        ("naive camera        ", &report.without_quality),
    ] {
        println!(
            "{label}: {} expected, {} taken, {} correct, {} false, {} missed (events used {}/{})",
            summary.camera.expected,
            summary.camera.taken,
            summary.camera.correct,
            summary.camera.false_triggers,
            summary.camera.missed,
            summary.events_used,
            summary.events_seen,
        );
    }
    println!(
        "decision accuracy             : {:.1}% with CQM vs {:.1}% without",
        100.0 * report.with_quality.camera.decision_accuracy(),
        100.0 * report.without_quality.camera.decision_accuracy()
    );
    Ok(())
}
