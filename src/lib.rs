//! # cqm — Context Quality Measure for smart appliances
//!
//! A from-scratch Rust reproduction of *Using a Context Quality Measure for
//! Improving Smart Appliances* (Berchtold, Decker, Riedel, Zimmer, Beigl —
//! ICDCS Workshops 2007).
//!
//! The paper's contribution is the first context system that attaches a
//! **real-time quality value** `q ∈ [0, 1]` to every context classification
//! made by an arbitrary black-box recognizer, by training a TSK fuzzy
//! inference system over the joint (cues, class) vector and normalizing its
//! output. Applications use a statistically derived threshold to discard
//! unreliable classifications — in the paper's AwarePen example that removes
//! 33 % of the classifications (exactly the wrong ones).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`math`] | `cqm-math` | SVD/QR least squares, Gaussians, statistics |
//! | [`fuzzy`] | `cqm-fuzzy` | membership functions, TSK & Mamdani FIS |
//! | [`cluster`] | `cqm-cluster` | subtractive/mountain/FCM/k-means clustering |
//! | [`anfis`] | `cqm-anfis` | genfis + ANFIS hybrid learning |
//! | [`stats`] | `cqm-stats` | MLE fits, thresholds, tail probabilities, ROC |
//! | [`core`] | `cqm-core` | the CQM itself: quality, filter, training, fusion |
//! | [`sensors`] | `cqm-sensors` | synthetic AwarePen accelerometer substrate |
//! | [`classify`] | `cqm-classify` | TSK-FIS classifier + k-NN/centroid baselines |
//! | [`appliance`] | `cqm-appliance` | AwareOffice simulation: pen, bus, camera |
//! | [`serve`] | `cqm-serve` | networked inference service: protocol, server, client |
//! | [`adapt`] | `cqm-adapt` | online adaptation: sliding window, RLS, drift, live swap |
//!
//! ## End-to-end example
//!
//! ```
//! use cqm::appliance::pen::train_pen;
//! use cqm::core::classifier::Classifier;
//! use cqm::sensors::{Context, SensorNode, Scenario};
//!
//! // Train the full AwarePen stack (classifier + CQM) on synthetic data.
//! let build = train_pen(7, 1).unwrap();
//! // Classify one fresh window and inspect its quality.
//! let mut node = SensorNode::with_seed(1234);
//! let windows = node
//!     .run_scenario(&Scenario::new(vec![(Context::Writing, 3.0)]).unwrap())
//!     .unwrap();
//! let class = build.classifier.classify(&windows[0].cues).unwrap();
//! let quality = build.trained_cqm.measure.measure(&windows[0].cues, class).unwrap();
//! println!("context {class} with {quality}");
//! ```

#![forbid(unsafe_code)]

pub use cqm_adapt as adapt;
pub use cqm_anfis as anfis;
pub use cqm_appliance as appliance;
pub use cqm_classify as classify;
pub use cqm_cluster as cluster;
pub use cqm_core as core;
pub use cqm_fuzzy as fuzzy;
pub use cqm_math as math;
pub use cqm_parallel as parallel;
pub use cqm_persist as persist;
pub use cqm_resilience as resilience;
pub use cqm_sensors as sensors;
pub use cqm_serve as serve;
pub use cqm_stats as stats;

/// Workspace version.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_set() {
        assert!(!super::VERSION.is_empty());
    }
}
