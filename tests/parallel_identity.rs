//! Serial-vs-parallel bit-identity and allocation-freedom: the two
//! contracts of the PR 4 data-parallel runtime.
//!
//! * every pooled code path (`*_with(..., pool)`) produces **bit-identical**
//!   (`f64::to_bits`) results at any worker count, because chunk boundaries
//!   and reduction order are pure functions of the data layout, never of
//!   scheduling;
//! * steady-state FIS evaluation through [`cqm::fuzzy::TskKernel`] performs
//!   **zero heap allocations** once the caller-provided scratch has warmed
//!   up.
//!
//! The allocation counter needs a `#[global_allocator]` shim, which requires
//! `unsafe` — allowed in this one test target only (the workspace denies it
//! everywhere else, and library targets `forbid` it).

#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use cqm::anfis::{train_hybrid_with, Dataset, GenfisParams, HybridConfig};
use cqm::fuzzy::{MembershipFunction, TskFis, TskRule, TskScratch};
use cqm::parallel::WorkerPool;

/// System allocator wrapped with a global allocation counter.
struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// A small Gaussian TSK rule base over 2 inputs.
fn gaussian_fis() -> TskFis {
    let rule = |mu1: f64, mu2: f64, cons: [f64; 3]| {
        TskRule::new(
            vec![
                MembershipFunction::gaussian(mu1, 0.5).expect("valid mf"),
                MembershipFunction::gaussian(mu2, 0.7).expect("valid mf"),
            ],
            cons.to_vec(),
        )
        .expect("valid rule")
    };
    TskFis::new(vec![
        rule(0.0, 0.2, [1.0, -0.5, 0.1]),
        rule(0.8, 0.5, [-0.3, 0.9, 0.0]),
        rule(0.4, 0.9, [0.2, 0.2, -0.7]),
    ])
    .expect("valid fis")
}

/// A smooth nonlinear training set (fixed closed form, no RNG).
fn training_data(n: usize) -> Dataset {
    let mut data = Dataset::new(2);
    for i in 0..n {
        let a = -1.0 + 2.0 * (i as f64) / (n as f64 - 1.0);
        let b = (1.3 * a + 0.4).sin();
        let y = (3.0 * a).sin() * 0.5 + b * b - 0.3 * a * b;
        data.push(vec![a, b], y).expect("finite sample");
    }
    data
}

#[test]
fn steady_state_kernel_eval_allocates_nothing() {
    let fis = gaussian_fis();
    let kernel = fis.kernel();
    assert!(kernel.is_gaussian_only());
    let mut scratch = TskScratch::new();
    let inputs: Vec<[f64; 2]> = (0..256)
        .map(|i| [(i as f64) / 255.0, 1.0 - (i as f64) / 255.0])
        .collect();

    // Warm-up: the first eval may grow the scratch buffers.
    let mut warm = 0.0f64;
    for v in &inputs {
        warm += kernel.eval_into(v, &mut scratch).expect("eval");
    }
    assert!(warm.is_finite());

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut acc = 0.0f64;
    for _ in 0..50 {
        for v in &inputs {
            acc += kernel.eval_into(v, &mut scratch).expect("eval");
        }
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert!(acc.is_finite());
    assert_eq!(
        after - before,
        0,
        "steady-state TskKernel::eval_into must not touch the heap"
    );
}

#[test]
fn presized_scratch_first_batch_allocates_nothing() {
    let fis = gaussian_fis();
    let kernel = fis.kernel();
    let inputs: Vec<Vec<f64>> = (0..256)
        .map(|i| vec![(i as f64) / 255.0, 1.0 - (i as f64) / 255.0])
        .collect();

    // No warm-up: TskKernel::scratch pre-sizes every buffer from the rule
    // count and input dimension, and eval_batch_into reserve_exacts `out`,
    // so even the *first* blocked batch sweep must stay off the heap.
    let mut scratch = kernel.scratch();
    let mut out: Vec<f64> = Vec::with_capacity(inputs.len());

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    kernel
        .eval_batch_into(&inputs, &mut scratch, &mut out)
        .expect("batch eval");
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(out.len(), inputs.len());
    assert!(out.iter().all(|y| y.is_finite()));
    assert_eq!(
        after - before,
        0,
        "first blocked batch through a pre-sized scratch must not touch the heap"
    );
}

#[test]
fn anfis_training_is_bit_identical_across_thread_counts() {
    let data = training_data(300);
    let params = GenfisParams::with_radius(0.5);
    let config = HybridConfig {
        epochs: 2,
        patience: 2,
        ..HybridConfig::default()
    };

    let train_at = |pool: &WorkerPool| {
        let mut fis = cqm::anfis::genfis_with(&data, &params, pool).expect("genfis");
        train_hybrid_with(&mut fis, &data, None, &config, pool).expect("training");
        fis
    };

    let reference = train_at(&WorkerPool::serial());
    for threads in [1usize, 2, 3, 8] {
        let fis = train_at(&WorkerPool::new(threads));
        assert_eq!(fis.rules().len(), reference.rules().len(), "threads={threads}");
        for (i, (a, b)) in fis.rules().iter().zip(reference.rules()).enumerate() {
            for (ma, mb) in a.antecedents().iter().zip(b.antecedents()) {
                match (ma, mb) {
                    (
                        MembershipFunction::Gaussian { mu: mu_a, sigma: s_a },
                        MembershipFunction::Gaussian { mu: mu_b, sigma: s_b },
                    ) => {
                        assert_eq!(mu_a.to_bits(), mu_b.to_bits(), "threads={threads} rule {i}");
                        assert_eq!(s_a.to_bits(), s_b.to_bits(), "threads={threads} rule {i}");
                    }
                    (ma, mb) => panic!("non-Gaussian antecedents {ma:?} / {mb:?}"),
                }
            }
            for (ca, cb) in a.consequent().iter().zip(b.consequent()) {
                assert_eq!(ca.to_bits(), cb.to_bits(), "threads={threads} rule {i}");
            }
        }
        // Same premises + same consequents ⇒ same predictions, but check the
        // output surface too (guards the evaluation path itself).
        for j in 0..40 {
            let x = [-1.0 + j as f64 * 0.05, (j as f64 * 0.11).sin()];
            let ya = fis.eval(&x).expect("eval");
            let yb = reference.eval(&x).expect("eval");
            assert_eq!(ya.to_bits(), yb.to_bits(), "threads={threads} sample {j}");
        }
    }
}
