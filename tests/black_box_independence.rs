//! §2's central design claim: the quality system treats the recognizer as a
//! black box and is "applicable to all recognition algorithms". The same
//! training pipeline must work unchanged over classifiers with completely
//! different internals.

use cqm::classify::{ClassifiedDataset, FisClassifier, KnnClassifier, NearestCentroid};
use cqm::core::classifier::{ClassId, Classifier};
use cqm::core::training::{train_cqm, CqmTrainingConfig};
use cqm::sensors::node::training_corpus;
use cqm::stats::separation::auc;

fn corpus_data() -> (ClassifiedDataset, Vec<ClassId>) {
    let corpus = training_corpus(2026, 1).expect("corpus");
    let data = ClassifiedDataset::from_labeled_cues(&corpus).expect("dataset");
    let truth = data.labels().to_vec();
    (data, truth)
}

fn assert_informative(classifier: &dyn Classifier, data: &ClassifiedDataset, truth: &[ClassId]) {
    let trained = train_cqm(classifier, data.cues(), truth, &CqmTrainingConfig::fast())
        .expect("CQM training over black box");
    assert!(trained.groups.is_ordered(), "{}", trained.groups);
    let labeled: Vec<(f64, bool)> = trained
        .analysis_samples
        .iter()
        .filter_map(|s| s.quality.value().map(|q| (q, s.was_right)))
        .collect();
    let a = auc(&labeled).expect("auc");
    assert!(
        a > 0.55,
        "quality measure uninformative over this black box: AUC {a}"
    );
}

#[test]
fn cqm_works_over_fis_classifier() {
    let (data, truth) = corpus_data();
    let clf = FisClassifier::train(&data, &Default::default()).expect("fis classifier");
    assert_informative(&clf, &data, &truth);
}

#[test]
fn cqm_works_over_knn() {
    let (data, truth) = corpus_data();
    // k high enough that k-NN actually errs on its own training points.
    let clf = KnnClassifier::train(&data, 25).expect("knn");
    assert_informative(&clf, &data, &truth);
}

#[test]
fn cqm_works_over_nearest_centroid() {
    let (data, truth) = corpus_data();
    let clf = NearestCentroid::train(&data).expect("centroid");
    assert_informative(&clf, &data, &truth);
}

#[test]
fn boxed_dyn_classifier_works() {
    // The add-on composes with trait objects, the loosest coupling.
    let (data, truth) = corpus_data();
    let boxed: Box<dyn Classifier> =
        Box::new(NearestCentroid::train(&data).expect("centroid"));
    let trained = train_cqm(&boxed, data.cues(), &truth, &CqmTrainingConfig::fast())
        .expect("training over boxed classifier");
    assert!(trained.threshold.value > 0.0 && trained.threshold.value < 1.0);
}
