//! Integration tests for the extension features: drift monitoring, trace
//! replay, quality-weighted fusion and the MediaCup second appliance.

use cqm::appliance::bus::EventBus;
use cqm::appliance::pen::train_pen;
use cqm::core::classifier::Classifier;
use cqm::core::monitor::{MonitorStatus, OperatingProfile, QualityMonitor};
use cqm::sensors::node::{training_corpus, NodeConfig, SensorNode};
use cqm::sensors::replay::{from_csv, to_csv};
use cqm::sensors::user::UserStyle;
use cqm::sensors::{Context, Scenario};

#[test]
fn monitor_detects_sensor_degradation() {
    let build = train_pen(13, 1).expect("training");
    let profile = OperatingProfile::from_trained(&build.trained_cqm);
    let mut monitor = QualityMonitor::new(profile, 24, 0.3).expect("monitor");
    let filter = cqm::core::filter::QualityFilter::new(
        build.trained_cqm.threshold.value.clamp(0.0, 1.0),
    )
    .expect("filter");

    // Phase 1: healthy operation on in-distribution data. Individual
    // 24-window tails fluctuate, so assert on the majority verdict.
    let mut node = SensorNode::with_seed(777);
    let windows = node
        .run_scenario(
            &Scenario::balanced_session()
                .unwrap()
                .then(&Scenario::write_think_write().unwrap()),
        )
        .unwrap();
    let mut verdicts = Vec::new();
    let mut last = MonitorStatus::Warmup;
    for w in &windows {
        let class = build.classifier.classify(&w.cues).unwrap();
        let q = build.trained_cqm.measure.measure(&w.cues, class).unwrap();
        last = monitor.observe(q, filter.decide(q));
        verdicts.push(last);
    }
    let healthy = verdicts
        .iter()
        .filter(|v| matches!(v, MonitorStatus::Healthy))
        .count();
    let judged = verdicts
        .iter()
        .filter(|v| !matches!(v, MonitorStatus::Warmup))
        .count();
    assert!(
        healthy * 2 > judged,
        "in-distribution data mostly drifted: {healthy}/{judged} healthy"
    );

    // Phase 2: the sensor breaks — cues saturate far outside training.
    for _ in 0..20 {
        let broken = vec![400.0, 400.0, 400.0];
        let class = build.classifier.classify(&broken).unwrap_or_default();
        let q = build
            .trained_cqm
            .measure
            .measure(&broken, class)
            .unwrap();
        last = monitor.observe(q, filter.decide(q));
    }
    assert!(
        matches!(last, MonitorStatus::Drifted { .. }),
        "broken sensor not flagged: {last:?}"
    );
}

#[test]
fn replayed_corpus_trains_identically() {
    use cqm::appliance::pen::build_pen_from_corpus;
    let corpus = training_corpus(55, 1).unwrap();
    let csv = to_csv(&corpus).unwrap();
    let replayed = from_csv(&csv).unwrap();
    let a = build_pen_from_corpus(&corpus).unwrap();
    let b = build_pen_from_corpus(&replayed).unwrap();
    assert_eq!(
        a.trained_cqm.threshold.value,
        b.trained_cqm.threshold.value
    );
    assert_eq!(a.trained_cqm.measure, b.trained_cqm.measure);
}

#[test]
fn bus_handles_concurrent_publishers() {
    use cqm::appliance::events::ContextEvent;
    use cqm::core::filter::Decision;
    use cqm::core::normalize::Quality;

    let bus = EventBus::new();
    let rx = bus.subscribe();
    let mut handles = Vec::new();
    for p in 0..4u64 {
        let bus = bus.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..50 {
                bus.publish(&ContextEvent {
                    source: format!("pen-{p}"),
                    context: Context::Writing,
                    quality: Quality::Value(0.9),
                    decision: Decision::Accept,
                    timestamp: i as f64,
                });
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    bus.close();
    let events: Vec<_> = rx.iter().collect();
    assert_eq!(events.len(), 200);
    // All four publishers delivered.
    for p in 0..4 {
        let name = format!("pen-{p}");
        assert_eq!(events.iter().filter(|e| e.source == name).count(), 50);
    }
}

#[test]
fn unseen_user_style_degrades_classification() {
    // The paper's core difficulty ("other users having a different style"):
    // a style outside the training population costs classification
    // accuracy — and the CQM filter still never hurts accepted accuracy.
    let build = train_pen(17, 1).expect("training");
    let scenario = Scenario::balanced_session().unwrap();
    let accuracy = |style: UserStyle, seed: u64| {
        let mut node = SensorNode::new(NodeConfig::default(), style, seed).unwrap();
        let windows = node.run_scenario(&scenario).unwrap();
        let right = windows
            .iter()
            .filter(|w| {
                build
                    .classifier
                    .classify(&w.cues)
                    .map(|c| c.0 == w.truth.index())
                    .unwrap_or(false)
            })
            .count();
        right as f64 / windows.len() as f64
    };
    let seen = accuracy(UserStyle::default(), 31);
    let unseen = accuracy(UserStyle::new(2.8, 2.2, 0.6).unwrap(), 31);
    assert!(
        unseen < seen,
        "unseen style accuracy {unseen} should fall below seen style {seen}"
    );
}
