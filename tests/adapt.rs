//! Online adaptation end to end (PR 10 acceptance suite).
//!
//! Two seeded scenarios over a real served fleet:
//!
//! * **stationary soak** — a healthy labeled stream must be a *provable
//!   no-op*: zero drift events, zero retrains, zero swaps, and the served
//!   answers on a fixed probe grid are bit-identical before and after the
//!   soak. The adaptation layer earns its keep only when the world moves.
//! * **drift e2e** — a mid-run context shift must walk the whole ladder:
//!   Page–Hinkley confirms drift, the supervisor retrains from its window,
//!   validates the candidate and promotes it through a live `swap_model`,
//!   and the adapted model beats the stale one on the shared holdout.

use std::path::PathBuf;

use cqm::adapt::{
    holdout_rmse, AdaptSample, AdaptationConfig, AdaptationOutcome, AdaptationSupervisor,
    DriftState, SlidingWindow,
};
use cqm::classify::FisClassifier;
use cqm::core::classifier::ClassId;
use cqm::core::model::{CqmModel, MODEL_VERSION};
use cqm::core::normalize::Quality;
use cqm::core::pipeline::QualifiedClassification;
use cqm::fuzzy::{MembershipFunction, TskFis, TskRule};
use cqm::serve::{
    ClientConfig, CqmClient, CqmServer, FleetConfig, ModelSource, ServedModel, ServerConfig,
    DEFAULT_TENANT,
};

/// The 1-cue 2-class model the adapt suites share: class 0 near cue 0,
/// class 1 near cue 1, quality high on the agreement diagonal.
fn tiny_model() -> ServedModel {
    let g = |mu: f64, s: f64| MembershipFunction::gaussian(mu, s).expect("gaussian");
    let class_fis = TskFis::new(vec![
        TskRule::new(vec![g(0.0, 0.3)], vec![0.0, 0.0]).expect("rule"),
        TskRule::new(vec![g(1.0, 0.3)], vec![0.0, 1.0]).expect("rule"),
    ])
    .expect("class fis");
    let classifier = FisClassifier::from_fis(class_fis, 2).expect("classifier");
    let quality_fis = TskFis::new(vec![
        TskRule::new(vec![g(0.0, 0.25), g(0.0, 0.25)], vec![0.0, 0.0, 1.0]).expect("rule"),
        TskRule::new(vec![g(1.0, 0.25), g(1.0, 0.25)], vec![0.0, 0.0, 1.0]).expect("rule"),
        TskRule::new(vec![g(0.0, 0.25), g(1.0, 0.25)], vec![0.0, 0.0, 0.0]).expect("rule"),
        TskRule::new(vec![g(1.0, 0.25), g(0.0, 0.25)], vec![0.0, 0.0, 0.0]).expect("rule"),
    ])
    .expect("quality fis");
    let model = CqmModel {
        version: MODEL_VERSION,
        measure: cqm::core::QualityMeasure::new(quality_fis).expect("measure"),
        threshold: 0.5,
        note: "adapt suite".into(),
    };
    ServedModel::new(classifier, model).expect("served model")
}

/// Seeded stationary sample: mostly easy cues near the poles, some
/// ambiguous — the same Weyl pattern the supervisor's unit soak uses.
fn stationary_sample(i: u64) -> (f64, ClassId) {
    let r = (i.wrapping_mul(2654435761).wrapping_add(1) % 1000) as f64 / 1000.0;
    let cue = if i % 4 == 0 {
        0.3 + r * 0.4
    } else if i % 2 == 0 {
        r * 0.25
    } else {
        0.75 + r * 0.25
    };
    (cue, ClassId(usize::from(cue > 0.45)))
}

fn probe_grid() -> Vec<Vec<f64>> {
    (0..24).map(|k| vec![-0.1 + 0.05 * f64::from(k)]).collect()
}

fn answers_on(client: &mut CqmClient, grid: &[Vec<f64>]) -> Vec<QualifiedClassification> {
    grid.iter()
        .map(|cue| client.classify(cue).expect("probe classify"))
        .collect()
}

fn assert_bit_identical(a: &[QualifiedClassification], b: &[QualifiedClassification]) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.class, y.class, "class diverged at probe {i}");
        assert_eq!(x.decision, y.decision, "decision diverged at probe {i}");
        match (x.quality, y.quality) {
            (Quality::Value(p), Quality::Value(q)) => {
                assert_eq!(p.to_bits(), q.to_bits(), "quality bits diverged at probe {i}");
            }
            (p, q) => assert_eq!(p, q, "quality kind diverged at probe {i}"),
        }
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cqm_adapt_test_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn start_server(dir: &std::path::Path) -> CqmServer {
    CqmServer::start(
        ModelSource::Fresh(tiny_model()),
        ServerConfig {
            fleet: FleetConfig {
                store_dir: Some(dir.to_path_buf()),
                probe_cues: (0..4).map(|i| vec![0.1 + 0.25 * f64::from(i)]).collect(),
                ..FleetConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("start server")
}

#[test]
fn stationary_soak_is_a_provable_noop() {
    let dir = scratch_dir("soak");
    let server = start_server(&dir);
    let mut client =
        CqmClient::connect(server.local_addr(), ClientConfig::default()).expect("connect");
    let grid = probe_grid();
    let before = answers_on(&mut client, &grid);

    let config = AdaptationConfig::default();
    let mut sup = AdaptationSupervisor::new(
        config,
        tiny_model(),
        DEFAULT_TENANT,
        dir.join("validate"),
    )
    .expect("supervisor");
    for i in 0..600u64 {
        let (cue, truth) = stationary_sample(i);
        sup.observe(&[cue], truth).expect("observe");
        assert_ne!(
            sup.drift_state(),
            DriftState::Drift,
            "stationary stream must never confirm drift (sample {i})"
        );
    }

    let stats = sup.stats();
    assert_eq!(stats.drift_events, 0, "stationary soak raised a false alarm");
    assert_eq!(stats.retrains, 0, "stationary soak retrained");
    assert_eq!(stats.promotions, 0, "stationary soak promoted a model");
    assert_eq!(stats.swap_failures, 0);

    // The served answers are untouched: same bits on every probe.
    let after = answers_on(&mut client, &grid);
    assert_bit_identical(&before, &after);

    drop(client);
    let health = server.shutdown().expect("shutdown");
    assert_eq!(health.swaps, 0, "no-op soak must not swap models");
    assert_eq!(health.swap_rollbacks, 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn context_shift_is_detected_retrained_and_swapped() {
    let dir = scratch_dir("drift");
    let server = start_server(&dir);
    let stale = tiny_model();

    let config = AdaptationConfig::default();
    let mut sup = AdaptationSupervisor::new(
        config.clone(),
        stale.clone(),
        DEFAULT_TENANT,
        dir.join("validate"),
    )
    .expect("supervisor");
    let mut mirror = SlidingWindow::new(config.window_capacity).expect("mirror");

    // Healthy warm-up, then the shift: cues just above the classifier's
    // boundary while the truth stays class 0, interleaved with easy
    // samples so the window keeps both outcomes.
    for i in 0..400u64 {
        let (cue, truth) = stationary_sample(i);
        sup.observe(&[cue], truth).expect("observe");
        mirror.push(AdaptSample {
            cues: vec![cue],
            truth,
        });
    }
    let mut promoted = false;
    let mut drift_seen = false;
    let mut i = 0u64;
    while !promoted && i < 20_000 {
        let r = (i.wrapping_mul(2654435761) % 1000) as f64 / 1000.0;
        let wrong = 0.5 + r * 0.1;
        sup.observe(&[wrong], ClassId(0)).expect("observe");
        mirror.push(AdaptSample {
            cues: vec![wrong],
            truth: ClassId(0),
        });
        let easy = if i % 2 == 0 { 0.05 + r * 0.1 } else { 0.85 + r * 0.1 };
        let easy_truth = ClassId(usize::from(easy > 0.45));
        sup.observe(&[easy], easy_truth).expect("observe");
        mirror.push(AdaptSample {
            cues: vec![easy],
            truth: easy_truth,
        });
        i += 1;
        if sup.drift_state() == DriftState::Drift {
            drift_seen = true;
            match sup.step(&server).expect("step") {
                AdaptationOutcome::Promoted { candidate, .. } => {
                    promoted = true;
                    assert!(
                        candidate.holdout_rmse <= candidate.live_holdout_rmse,
                        "promotion must not regress the holdout: {} > {}",
                        candidate.holdout_rmse,
                        candidate.live_holdout_rmse
                    );
                }
                AdaptationOutcome::Rejected { .. } => {}
                _ => {}
            }
        }
    }
    assert!(drift_seen, "the context shift was never detected");
    assert!(promoted, "the context shift never produced a promotion");

    let stats = sup.stats();
    assert!(stats.drift_events >= 1);
    assert!(stats.retrains >= 1);
    assert_eq!(stats.promotions, 1);

    // The adapted model beats the stale one on the shared holdout.
    let (_, holdout) = mirror.split(config.holdout_every).expect("split");
    let stale_rmse = holdout_rmse(&stale, &holdout).expect("stale rmse");
    let adapted_rmse = holdout_rmse(sup.live(), &holdout).expect("adapted rmse");
    assert!(
        adapted_rmse < stale_rmse,
        "adapted {adapted_rmse} must beat stale {stale_rmse}"
    );

    let health = server.shutdown().expect("shutdown");
    assert!(health.swaps >= 1, "promotion must reach the server");
    assert_eq!(health.swap_rollbacks, 0, "clean store must not roll back");
    std::fs::remove_dir_all(&dir).ok();
}
