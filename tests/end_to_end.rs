//! Cross-crate integration: the full corpus → train → measure → filter
//! pipeline, determinism, and persistence through the whole stack.

use cqm::appliance::pen::{build_pen_from_corpus, train_pen};
use cqm::core::classifier::Classifier;
use cqm::core::filter::QualityFilter;
use cqm::core::model::CqmModel;
use cqm::sensors::node::training_corpus;
use cqm::sensors::{Context, Scenario, SensorNode};

#[test]
fn full_stack_training_and_filtering() {
    let build = train_pen(2024, 1).expect("pen training");
    assert!(build.train_accuracy > 0.7, "accuracy {}", build.train_accuracy);
    let threshold = build.trained_cqm.threshold.value;
    assert!(threshold > 0.0 && threshold < 1.0);
    // Threshold sits above the wrong mean and below the right mean.
    assert!(threshold > build.trained_cqm.groups.wrong.mu());
    assert!(threshold < build.trained_cqm.groups.right.mu());

    // Run fresh data through the filter; accepted accuracy must not drop
    // below raw accuracy.
    let mut node = SensorNode::with_seed(5150);
    let scenario = Scenario::balanced_session().unwrap();
    let windows = node.run_scenario(&scenario).unwrap();
    let filter = QualityFilter::new(threshold.clamp(0.0, 1.0)).unwrap();
    let labeled: Vec<_> = windows
        .iter()
        .map(|w| {
            let class = build.classifier.classify(&w.cues).unwrap();
            let q = build.trained_cqm.measure.measure(&w.cues, class).unwrap();
            let right = Context::from_index(class.0).unwrap() == w.truth;
            (q, right)
        })
        .collect();
    let outcome = filter.evaluate(&labeled);
    assert!(outcome.total() as usize == windows.len());
    assert!(
        outcome.accuracy_after() + 1e-9 >= outcome.accuracy_before(),
        "{outcome}"
    );
}

#[test]
fn training_is_deterministic() {
    let a = train_pen(7, 1).expect("training");
    let b = train_pen(7, 1).expect("training");
    assert_eq!(a.trained_cqm.threshold.value, b.trained_cqm.threshold.value);
    assert_eq!(a.trained_cqm.measure, b.trained_cqm.measure);
    assert_eq!(a.train_accuracy, b.train_accuracy);
    let c = train_pen(8, 1).expect("training");
    assert_ne!(a.trained_cqm.threshold.value, c.trained_cqm.threshold.value);
}

#[test]
fn corpus_built_pen_matches_train_pen() {
    let corpus = training_corpus(99, 1).unwrap();
    let a = build_pen_from_corpus(&corpus).unwrap();
    let b = train_pen(99, 1).unwrap();
    assert_eq!(a.trained_cqm.threshold.value, b.trained_cqm.threshold.value);
}

#[test]
fn model_persistence_preserves_behaviour_through_stack() {
    let build = train_pen(11, 1).expect("training");
    let model = CqmModel::from_trained(&build.trained_cqm, "integration");
    let json = model.to_json().unwrap();
    let reloaded = CqmModel::from_json(&json).unwrap();

    let mut node = SensorNode::with_seed(606);
    let windows = node
        .run_scenario(&Scenario::write_think_write().unwrap())
        .unwrap();
    for w in &windows {
        let class = build.classifier.classify(&w.cues).unwrap();
        assert_eq!(
            build.trained_cqm.measure.measure(&w.cues, class).unwrap(),
            reloaded.measure.measure(&w.cues, class).unwrap()
        );
    }
}

#[test]
fn quality_lower_on_transition_windows() {
    // The paper's core observation: quality drops on the hard samples.
    //
    // The effect lives in the *low-quality tail*, not the mean: most
    // transition windows still classify cleanly, but transitions produce
    // below-threshold qualities far more often than steady-state windows
    // do. A strict mean comparison on one short scenario is dominated by
    // sampling noise (a handful of transition windows against hundreds of
    // clean ones), so this test pools several session seeds for volume and
    // asserts the tail statistics with effect-size margins.
    let build = train_pen(3, 2).expect("training");
    let threshold = build.trained_cqm.threshold.value;
    let mut transition_q = Vec::new();
    let mut clean_q = Vec::new();
    for seed in [8080u64, 8081, 8082, 8083] {
        let mut node = SensorNode::with_seed(seed);
        let scenario = Scenario::balanced_session()
            .unwrap()
            .then(&Scenario::write_think_write().unwrap())
            .then(&Scenario::balanced_session().unwrap());
        let windows = node.run_scenario(&scenario).unwrap();
        for w in &windows {
            let class = build.classifier.classify(&w.cues).unwrap();
            if let Some(q) = build
                .trained_cqm
                .measure
                .measure(&w.cues, class)
                .unwrap()
                .value()
            {
                if w.is_transition {
                    transition_q.push(q);
                } else {
                    clean_q.push(q);
                }
            }
        }
    }
    assert!(transition_q.len() >= 40, "only {} transition windows", transition_q.len());
    assert!(clean_q.len() >= 400, "only {} clean windows", clean_q.len());

    // Discard rate: transitions must be rejected distinctly more often
    // (measured ~18% vs ~12%; require a >= 2-point gap).
    let discard_rate =
        |v: &[f64]| v.iter().filter(|&&q| q <= threshold).count() as f64 / v.len() as f64;
    let (dt, dc) = (discard_rate(&transition_q), discard_rate(&clean_q));
    assert!(
        dt >= dc + 0.02,
        "transition discard rate {dt:.3} should exceed clean rate {dc:.3} by >= 0.02"
    );

    // Tail quality: the transition windows' 10th percentile sits visibly
    // below the clean one (measured ~0.63 vs ~0.70; require a 0.02 gap).
    let decile = |v: &[f64]| {
        let mut s = v.to_vec();
        s.sort_by(|a, b| a.total_cmp(b));
        s[s.len() / 10]
    };
    let (qt, qc) = (decile(&transition_q), decile(&clean_q));
    assert!(
        qt <= qc - 0.02,
        "transition q10 {qt:.4} should sit below clean q10 {qc:.4} by >= 0.02"
    );

    // Mean quality: transitions must not be *better* than clean windows
    // beyond noise (the means themselves are statistically indistinguishable
    // at this sample size; the strict `<` this test once asserted was a
    // coin flip).
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        mean(&transition_q) <= mean(&clean_q) + 0.01,
        "transition mean {} vs clean mean {}",
        mean(&transition_q),
        mean(&clean_q)
    );
}
