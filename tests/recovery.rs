//! Crash → restart → replay integration suite for `cqm-persist`.
//!
//! The contract under test (ISSUE: crash-safe persistence):
//!
//! * a run journaled through [`RecoveryManager`] can be recovered after an
//!   abrupt stop, and the recovered supervisor is **bit-identical** to the
//!   one that crashed — same ladder position, same last-good-context cache,
//!   same future behaviour;
//! * deterministic replay of the journaled fault plan regenerates every
//!   journaled step report exactly;
//! * corrupted checkpoints and torn/truncated journals surface as typed
//!   [`PersistError`]s — never a panic, never silently-wrong state.

use std::fs;
use std::path::PathBuf;

use cqm::appliance::events::ContextEvent;
use cqm::core::classifier::{ClassId, Classifier};
use cqm::core::filter::Decision;
use cqm::core::model::CqmModel;
use cqm::core::normalize::Quality;
use cqm::core::pipeline::CqmSystem;
use cqm::core::training::{train_cqm, CqmTrainingConfig};
use cqm::core::Result as CoreResult;
use cqm::persist::records::{RunHeader, RuntimeCheckpoint};
use cqm::persist::recovery::RecoveryManager;
use cqm::persist::PersistError;
use cqm::resilience::fault::{FaultInjector, FaultKind, FaultPlan, ScheduledFault};
use cqm::resilience::supervisor::{SupervisedSystem, SupervisorConfig, WindowSource};
use cqm::sensors::Context;

/// Deterministic 1-D classifier: class 1 iff `cue[0] > boundary`.
#[derive(Clone)]
struct BoundaryClassifier {
    boundary: f64,
}

impl Classifier for BoundaryClassifier {
    fn classify(&self, cues: &[f64]) -> CoreResult<ClassId> {
        self.check_cues(cues)?;
        Ok(ClassId(usize::from(cues[0] > self.boundary)))
    }

    fn cue_dim(&self) -> usize {
        1
    }

    fn num_classes(&self) -> usize {
        2
    }
}

fn classifier() -> BoundaryClassifier {
    BoundaryClassifier { boundary: 0.5 }
}

fn trained_model() -> CqmModel {
    let cues: Vec<Vec<f64>> = (0..300).map(|i| vec![i as f64 / 299.0]).collect();
    let truth: Vec<ClassId> = cues
        .iter()
        .map(|c| ClassId(usize::from(c[0] > 0.45)))
        .collect();
    let trained = train_cqm(&classifier(), &cues, &truth, &CqmTrainingConfig::fast())
        .expect("CQM training");
    CqmModel::from_trained(&trained, "recovery suite")
}

fn system_from(model: &CqmModel) -> CqmSystem<BoundaryClassifier> {
    CqmSystem::new(
        classifier(),
        model.measure.clone(),
        model.filter().expect("stored threshold valid"),
    )
    .expect("dimension match")
}

/// Mixed stream: confident class-1 windows with an ambiguous patch, so runs
/// exercise accepts, discards and cache fills.
fn windows(n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            if i % 7 == 3 {
                vec![0.46 + 0.002 * (i % 5) as f64]
            } else {
                vec![0.82 + 0.1 * (i as f64 / n as f64)]
            }
        })
        .collect()
}

fn bumpy_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(
        seed,
        vec![
            ScheduledFault {
                channel: None,
                kind: FaultKind::Dropout,
                from: 8,
                until: 18,
            },
            ScheduledFault {
                channel: None,
                kind: FaultKind::Flapping { period: 2 },
                from: 30,
                until: 40,
            },
        ],
    )
    .expect("valid plan")
}

fn run_header(w: &[Vec<f64>], plan: &FaultPlan, config: SupervisorConfig) -> RunHeader {
    RunHeader {
        seed: plan.seed(),
        faults: plan.faults().to_vec(),
        windows: w.to_vec(),
        config,
        monitor: None,
    }
}

fn initial_checkpoint(
    model: &CqmModel,
    supervisor: &SupervisedSystem<BoundaryClassifier>,
) -> RuntimeCheckpoint {
    RuntimeCheckpoint {
        seq: 0,
        model: model.clone(),
        training: None,
        supervisor: supervisor.snapshot(),
        fuser: None,
    }
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cqm_recovery_{tag}_{}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Journal `crash_after` steps (checkpointing at `ckpt_at` if nonzero),
/// then stop abruptly. Returns the crashed supervisor and its source so the
/// test can compare post-crash continuations.
fn crashy_run(
    dir: &PathBuf,
    model: &CqmModel,
    crash_after: usize,
    ckpt_at: usize,
) -> (SupervisedSystem<BoundaryClassifier>, WindowSource) {
    let w = windows(80);
    let plan = bumpy_plan(21);
    let config = SupervisorConfig::default();
    let mut supervisor = SupervisedSystem::new(system_from(model), config);
    let mut source = WindowSource::new(w.clone(), FaultInjector::new(&plan));

    let mut mgr = RecoveryManager::new(dir.clone(), 1).expect("manager");
    mgr.begin_run(
        &initial_checkpoint(model, &supervisor),
        &run_header(&w, &plan, config),
    )
    .expect("begin_run");
    for step in 1..=crash_after {
        let report = supervisor.step(&mut source).expect("stream long enough");
        mgr.record_step(&report).expect("record_step");
        if step == ckpt_at {
            let mut state = initial_checkpoint(model, &supervisor);
            state.seq = step as u64;
            mgr.checkpoint(&state).expect("checkpoint");
        }
    }
    // "Crash": the manager is simply dropped — no clean shutdown record.
    (supervisor, source)
}

#[test]
fn kill_restart_replay_is_bit_identical() {
    let dir = scratch("kill_restart");
    let model = trained_model();
    let (crashed, source) = crashy_run(&dir, &model, 30, 15);

    let mgr = RecoveryManager::new(dir.clone(), 1).expect("manager");
    let recovered = mgr.recover().expect("recover");
    assert_eq!(recovered.steps.len(), 30);
    assert_eq!(recovered.checkpoint.seq, 15);
    assert_eq!(recovered.tail().len(), 15);
    assert_eq!(recovered.last_checkpoint_mark, 15);
    assert_eq!(recovered.truncated_bytes, 0);

    // The rebuilt supervisor is exactly the crashed one.
    let mut restored = recovered
        .restore_supervisor(classifier())
        .expect("restore_supervisor");
    let mut crashed = crashed;
    assert_eq!(crashed.snapshot(), restored.snapshot());

    // Deterministic replay regenerates the whole journal bit-for-bit.
    assert_eq!(recovered.verify_replay(classifier()).expect("verify"), 30);

    // And the futures coincide: both supervisors produce identical reports
    // over the identical remaining stream.
    let mut source_restored = source.clone();
    let mut source = source;
    let tail_crashed = crashed.run(&mut source);
    let tail_restored = restored.run(&mut source_restored);
    assert!(!tail_crashed.is_empty());
    assert_eq!(tail_crashed, tail_restored);

    fs::remove_dir_all(&dir).ok();
}

#[test]
fn recovery_without_midrun_checkpoint_replays_whole_journal() {
    let dir = scratch("no_midrun_ckpt");
    let model = trained_model();
    let (mut crashed, _) = crashy_run(&dir, &model, 22, 0);
    let mgr = RecoveryManager::new(dir.clone(), 1).expect("manager");
    let recovered = mgr.recover().expect("recover");
    assert_eq!(recovered.checkpoint.seq, 0);
    assert_eq!(recovered.tail().len(), 22);
    let mut restored = recovered.restore_supervisor(classifier()).expect("restore");
    assert_eq!(crashed.snapshot(), restored.snapshot());
    // Both climb the ladder identically afterwards.
    let mut src_a = WindowSource::new(windows(5), FaultInjector::new(&FaultPlan::clean(1)));
    let mut src_b = src_a.clone();
    assert_eq!(crashed.run(&mut src_a), restored.run(&mut src_b));
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn journaled_events_are_recovered_in_order() {
    let dir = scratch("events");
    let model = trained_model();
    let w = windows(12);
    let plan = FaultPlan::clean(3);
    let config = SupervisorConfig::default();
    let mut supervisor = SupervisedSystem::new(system_from(&model), config);
    let mut source = WindowSource::new(w.clone(), FaultInjector::new(&plan));
    let mut mgr = RecoveryManager::new(dir.clone(), 2).expect("manager");
    mgr.begin_run(
        &initial_checkpoint(&model, &supervisor),
        &run_header(&w, &plan, config),
    )
    .expect("begin_run");
    for i in 0..6u64 {
        let report = supervisor.step(&mut source).expect("stream long enough");
        let seq = mgr.record_step(&report).expect("record_step");
        assert_eq!(seq, i + 1);
        mgr.record_event(&ContextEvent {
            source: "awarepen".into(),
            context: Context::Writing,
            quality: Quality::Value(0.5 + 0.05 * i as f64),
            decision: Decision::Accept,
            timestamp: i as f64,
        })
        .expect("record_event");
    }
    mgr.sync().expect("sync");
    let recovered = mgr.recover().expect("recover");
    assert_eq!(recovered.events.len(), 6);
    for (i, e) in recovered.events.iter().enumerate() {
        assert_eq!(e.timestamp, i as f64);
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn first_boot_reports_no_checkpoint() {
    let dir = scratch("first_boot");
    let mgr = RecoveryManager::new(dir.clone(), 1).expect("manager");
    assert!(matches!(
        mgr.recover(),
        Err(PersistError::NoCheckpoint(_))
    ));
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_checkpoint_never_panics_always_typed_error() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let dir = scratch("corrupt_ckpt");
    let model = trained_model();
    crashy_run(&dir, &model, 10, 5);
    let mgr = RecoveryManager::new(dir.clone(), 1).expect("manager");
    let pristine = fs::read(mgr.checkpoint_path()).expect("checkpoint bytes");
    let mut rng = StdRng::seed_from_u64(0xBAD_C0DE);
    for _ in 0..150 {
        let mut bytes = pristine.clone();
        for _ in 0..rng.gen_range(1..5) {
            let i = rng.gen_range(0..bytes.len());
            bytes[i] ^= 1u8 << rng.gen_range(0..8u32);
        }
        fs::write(mgr.checkpoint_path(), &bytes).expect("write corrupted");
        match mgr.recover() {
            // CRC (or a downstream guard) caught it: typed error only.
            Err(
                PersistError::Corrupt(_)
                | PersistError::Decode(_)
                | PersistError::SchemaVersion { .. }
                | PersistError::InvalidState(_),
            ) => {}
            Err(other) => panic!("unexpected error class: {other}"),
            Ok(_) => panic!("corrupted checkpoint accepted"),
        }
    }
    // Restoring the pristine bytes recovers cleanly: the damage was
    // contained to the copy, nothing latched.
    fs::write(mgr.checkpoint_path(), &pristine).expect("restore pristine");
    assert!(mgr.recover().is_ok());
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn journal_truncated_at_every_offset_never_panics() {
    let dir = scratch("truncate_all");
    let model = trained_model();
    crashy_run(&dir, &model, 6, 3);
    let mgr = RecoveryManager::new(dir.clone(), 1).expect("manager");
    let pristine = fs::read(mgr.journal_path()).expect("journal bytes");
    let full = mgr.recover().expect("pristine recover");
    for keep in 0..pristine.len() {
        fs::write(mgr.journal_path(), &pristine[..keep]).expect("truncate");
        match mgr.recover() {
            Ok(recovered) => {
                // Whatever survived is an exact prefix of the full run.
                assert!(recovered.steps.len() <= full.steps.len());
                assert_eq!(
                    recovered.steps[..],
                    full.steps[..recovered.steps.len()],
                    "truncation to {keep} bytes corrupted a surviving record"
                );
            }
            // Cutting into the header record (or the checkpoint/steps
            // consistency) is a typed corruption, not a crash.
            Err(PersistError::Corrupt(_) | PersistError::Decode(_)) => {}
            Err(other) => panic!("unexpected error at truncation {keep}: {other}"),
        }
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_tail_is_repaired_and_run_resumes() {
    let dir = scratch("torn_resume");
    let model = trained_model();
    let (mut crashed, mut source) = crashy_run(&dir, &model, 12, 6);
    // Tear the journal mid-record, as a crash between write and fsync would.
    let mut mgr = RecoveryManager::new(dir.clone(), 1).expect("manager");
    let pristine = fs::read(mgr.journal_path()).expect("journal bytes");
    fs::write(mgr.journal_path(), &pristine[..pristine.len() - 7]).expect("tear");

    let recovered = mgr.recover().expect("recover");
    assert!(recovered.truncated_bytes > 0, "tear must be detected");
    assert_eq!(recovered.steps.len(), 11, "last record lost to the tear");
    // The journal file itself was truncated back to the valid prefix.
    let repaired_len = fs::metadata(mgr.journal_path()).expect("meta").len();
    assert!(repaired_len < pristine.len() as u64);

    // Resume journaling: the next step continues the sequence.
    let mut restored = recovered.restore_supervisor(classifier()).expect("restore");
    mgr.resume_run(&recovered).expect("resume");
    // The restored supervisor is one step behind the crashed one (the torn
    // step was never durably journaled) — regenerate it from the live
    // source the crashed process would have re-polled... which for the
    // suite means: step the restored supervisor and journal it.
    let mut replay_src = {
        // Rebuild the source at the recovered position by replaying the
        // journaled plan from scratch.
        let plan = recovered.header.fault_plan().expect("plan");
        let mut sup = SupervisedSystem::new(system_from(&model), recovered.header.config);
        let mut src = WindowSource::new(
            recovered.header.windows.clone(),
            FaultInjector::new(&plan),
        );
        for _ in 0..recovered.steps.len() {
            sup.step(&mut src).expect("replay step");
        }
        src
    };
    let report = restored.step(&mut replay_src).expect("resumed step");
    let seq = mgr.record_step(&report).expect("record resumed step");
    assert_eq!(seq, 12);
    let after = mgr.recover().expect("second recover");
    assert_eq!(after.steps.len(), 12);
    assert_eq!(after.truncated_bytes, 0);
    // The resumed step is the same step the crashed process had taken.
    let crashed_snapshot = crashed.snapshot();
    let mut resumed = after.restore_supervisor(classifier()).expect("restore 2");
    assert_eq!(crashed_snapshot, resumed.snapshot());
    // Identical continuations from here.
    let mut src_b = source.clone();
    assert_eq!(crashed.run(&mut source), resumed.run(&mut src_b));
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn replay_verifies_when_recovery_retrains_on_a_different_thread_count() {
    use cqm::core::training::train_cqm_with;
    use cqm::parallel::WorkerPool;

    // A run journaled by a serially-trained process must verify in a
    // recovering process that retrains its model on a multi-thread worker
    // pool: the data-parallel runtime is bit-identical at every worker
    // count, so the retrained model — and therefore every replayed step —
    // matches the journal exactly.
    let dir = scratch("thread_counts");
    let serial_model = trained_model();
    crashy_run(&dir, &serial_model, 16, 8);
    let mgr = RecoveryManager::new(dir.clone(), 1).expect("manager");
    let recovered = mgr.recover().expect("recover");
    assert_eq!(recovered.verify_replay(classifier()).expect("verify"), 16);

    let cues: Vec<Vec<f64>> = (0..300).map(|i| vec![i as f64 / 299.0]).collect();
    let truth: Vec<ClassId> = cues
        .iter()
        .map(|c| ClassId(usize::from(c[0] > 0.45)))
        .collect();
    for threads in [2usize, 8] {
        let pool = WorkerPool::new(threads);
        let trained = train_cqm_with(
            &classifier(),
            &cues,
            &truth,
            &CqmTrainingConfig::fast(),
            &pool,
        )
        .expect("pooled training");
        let pooled_model = CqmModel::from_trained(&trained, "recovery suite");
        assert_eq!(
            pooled_model, serial_model,
            "model trained on {threads} threads must be bit-identical to serial"
        );

        // Re-execute the journaled run with the pooled model: every step
        // report must match what the serial process journaled.
        let plan = recovered.header.fault_plan().expect("plan");
        let mut sup = SupervisedSystem::new(system_from(&pooled_model), recovered.header.config);
        let mut src = WindowSource::new(
            recovered.header.windows.clone(),
            FaultInjector::new(&plan),
        );
        for (i, journaled) in recovered.steps.iter().enumerate() {
            let report = sup.step(&mut src).expect("replay step");
            assert_eq!(&report, journaled, "threads={threads}, step {i} diverged");
        }
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn verify_replay_detects_tampered_journal() {
    let dir = scratch("tamper");
    let model = trained_model();
    crashy_run(&dir, &model, 10, 0);
    let mgr = RecoveryManager::new(dir.clone(), 1).expect("manager");
    let mut recovered = mgr.recover().expect("recover");
    // Tamper with a journaled outcome: claim a retry that never happened.
    recovered.steps[4].retries += 1;
    match recovered.verify_replay(classifier()) {
        Err(PersistError::ReplayDivergence { step, .. }) => assert_eq!(step, 4),
        other => panic!("tampered journal must fail verification, got {other:?}"),
    }
    fs::remove_dir_all(&dir).ok();
}
