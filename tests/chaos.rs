//! Chaos suite: the supervised CQM pipeline under injected faults.
//!
//! For every fault class this suite proves the acceptance criteria of the
//! resilience layer:
//!
//! (a) **no panics** — every test here drives the full pipeline over
//!     corrupted streams; the suite completing is the proof;
//! (b) **bounded escalation** — a sustained fault demotes the ladder within
//!     its configured streak bound;
//! (c) **recovery with hysteresis** — once the fault clears, the ladder
//!     climbs back to `Healthy` through `Recovering`;
//! (d) **the paper's tradeoff survives** — filtered accuracy on the
//!     surviving windows stays within 5 points of the clean run while
//!     unfiltered accuracy visibly degrades;
//! plus the bounded-bus guarantees under a stalled subscriber.

use std::sync::OnceLock;
use std::time::{Duration, Instant};

use cqm::appliance::bus::{EventBus, SlowSubscriberPolicy};
use cqm::appliance::events::ContextEvent;
use cqm::appliance::pen::{train_pen, PenBuild};
use cqm::core::filter::Decision;
use cqm::core::normalize::Quality;
use cqm::core::pipeline::CqmSystem;
use cqm::resilience::{
    DegradationPolicy, FaultInjector, FaultKind, FaultPlan, HealthState, ScheduledFault,
    ServedContext, StepReport, SupervisedSystem, SupervisorConfig, WindowSource,
};
use cqm::sensors::node::LabeledCues;
use cqm::sensors::{Context, Scenario, SensorNode};

fn pen() -> &'static PenBuild {
    static PEN: OnceLock<PenBuild> = OnceLock::new();
    PEN.get_or_init(|| train_pen(2024, 1).expect("pen training"))
}

fn session_windows(seed: u64) -> Vec<LabeledCues> {
    let mut node = SensorNode::with_seed(seed);
    let scenario = Scenario::balanced_session()
        .unwrap()
        .then(&Scenario::write_think_write().unwrap())
        .then(&Scenario::balanced_session().unwrap());
    node.run_scenario(&scenario).unwrap()
}

fn supervised(config: SupervisorConfig) -> SupervisedSystem<cqm::classify::tsk::FisClassifier> {
    let build = pen();
    let system = CqmSystem::from_trained(build.classifier.clone(), &build.trained_cqm).unwrap();
    SupervisedSystem::new(system, config)
}

fn run_plan(
    windows: &[LabeledCues],
    plan: &FaultPlan,
    config: SupervisorConfig,
) -> (Vec<StepReport>, SupervisedSystem<cqm::classify::tsk::FisClassifier>) {
    let cues: Vec<Vec<f64>> = windows.iter().map(|w| w.cues.clone()).collect();
    let mut source = WindowSource::new(cues, FaultInjector::new(plan));
    let mut sup = supervised(config);
    let reports = sup.run(&mut source);
    (reports, sup)
}

#[derive(Debug, Default, Clone, Copy)]
struct Accuracy {
    unfiltered_correct: usize,
    unfiltered_total: usize,
    filtered_correct: usize,
    filtered_total: usize,
}

impl Accuracy {
    fn unfiltered(&self) -> f64 {
        self.unfiltered_correct as f64 / self.unfiltered_total.max(1) as f64
    }

    fn filtered(&self) -> f64 {
        self.filtered_correct as f64 / self.filtered_total.max(1) as f64
    }
}

fn score(windows: &[LabeledCues], reports: &[StepReport]) -> Accuracy {
    let mut acc = Accuracy::default();
    for r in reports {
        if let ServedContext::Fresh { index, result } = &r.served {
            let truth = windows[*index].truth;
            let correct = Context::from_index(result.class.0) == Some(truth);
            acc.unfiltered_total += 1;
            acc.unfiltered_correct += usize::from(correct);
            if result.decision.is_accept() {
                acc.filtered_total += 1;
                acc.filtered_correct += usize::from(correct);
            }
        }
    }
    acc
}

fn fault(kind: FaultKind, channel: Option<usize>, from: usize, until: usize) -> ScheduledFault {
    ScheduledFault {
        channel,
        kind,
        from,
        until,
    }
}

/// Every fault class, sustained from window 20 onward: the pipeline must
/// never panic and must leave `Healthy` within its streak bound.
#[test]
fn sustained_faults_escalate_within_streak_bound() {
    let windows = session_windows(4101);
    let policy = DegradationPolicy::default();
    // A fault step burns (1 + max_retries) windows; sustained faults demote
    // after `degrade_after` consecutive fault steps, so the demotion tick is
    // exactly onset + degrade_after for immediately-failing classes.
    let cases: Vec<(&str, FaultKind, usize, bool)> = vec![
        ("dropout", FaultKind::Dropout, 20 + policy.degrade_after, true),
        (
            "stuck-rail",
            FaultKind::StuckAt(Some(500.0)),
            20 + policy.degrade_after,
            true,
        ),
        (
            "spike",
            FaultKind::Spike {
                magnitude: 400.0,
                p: 1.0,
            },
            20 + policy.degrade_after,
            true,
        ),
        (
            "latency",
            FaultKind::Latency { windows: 6 },
            20 + policy.degrade_after,
            true,
        ),
        // Drift needs a few windows to leave the trained domain before the
        // streak can even begin.
        ("drift", FaultKind::Drift { rate: 40.0 }, 20 + 12, true),
        // Flapping starts with a delivered stretch (one period) before the
        // first dropped stretch can build the streak — and because delivered
        // stretches keep recurring, the ladder legitimately oscillates, so
        // the final state depends on the phase the stream ends in.
        (
            "flapping",
            FaultKind::Flapping { period: 12 },
            20 + 12 + policy.degrade_after,
            false,
        ),
    ];
    for (name, kind, demote_by_tick, must_end_unhealthy) in cases {
        let plan = FaultPlan::new(11, vec![fault(kind, None, 20, usize::MAX)]).unwrap();
        let (reports, sup) = run_plan(&windows, &plan, SupervisorConfig::default());
        assert!(!reports.is_empty(), "{name}: no steps ran");
        let transitions = sup.ladder().transitions();
        let first_demotion = transitions
            .iter()
            .find(|&&(_, s)| s != HealthState::Healthy)
            .unwrap_or_else(|| panic!("{name}: never left Healthy"));
        assert!(
            first_demotion.0 <= demote_by_tick,
            "{name}: demoted at tick {} but bound was {demote_by_tick}",
            first_demotion.0
        );
        if must_end_unhealthy {
            assert_ne!(
                sup.state(),
                HealthState::Healthy,
                "{name}: sustained fault ended Healthy"
            );
        }
    }
}

/// Each fault class confined to a band: after it clears, the ladder must
/// re-earn `Healthy`, and only via the `Recovering` probation state.
#[test]
fn every_fault_class_recovers_with_hysteresis() {
    let windows = session_windows(4102);
    let kinds: Vec<(&str, FaultKind)> = vec![
        ("dropout", FaultKind::Dropout),
        ("stuck-rail", FaultKind::StuckAt(Some(500.0))),
        ("stuck-last", FaultKind::StuckAt(None)),
        (
            "spike",
            FaultKind::Spike {
                magnitude: 400.0,
                p: 1.0,
            },
        ),
        ("drift", FaultKind::Drift { rate: 40.0 }),
        ("latency", FaultKind::Latency { windows: 6 }),
        ("flapping", FaultKind::Flapping { period: 12 }),
    ];
    for (name, kind) in kinds {
        let plan = FaultPlan::new(13, vec![fault(kind, None, 15, 60)]).unwrap();
        let (reports, sup) = run_plan(&windows, &plan, SupervisorConfig::default());
        assert!(!reports.is_empty(), "{name}: no steps ran");
        assert_eq!(
            sup.state(),
            HealthState::Healthy,
            "{name}: did not recover; transitions {:?}",
            sup.ladder().transitions()
        );
        let states: Vec<HealthState> = sup
            .ladder()
            .transitions()
            .iter()
            .map(|&(_, s)| s)
            .collect();
        if states.is_empty() {
            // Stuck-at-last freezes plausible values: the pipeline may ride
            // it out entirely on quality alone — that is a pass (no panic,
            // never unhealthy), not an escalation case.
            assert_eq!(name, "stuck-last", "{name}: expected escalation");
            continue;
        }
        let recovering_at = states
            .iter()
            .position(|&s| s == HealthState::Recovering)
            .unwrap_or_else(|| panic!("{name}: recovered without probation: {states:?}"));
        let healthy_after = states[recovering_at..]
            .iter()
            .any(|&s| s == HealthState::Healthy);
        assert!(
            healthy_after,
            "{name}: never re-earned Healthy after probation: {states:?}"
        );
    }
}

/// The paper's acceptance-vs-error tradeoff must survive corruption: the
/// filter keeps the surviving windows nearly as accurate as a clean run,
/// while unfiltered consumption visibly degrades.
#[test]
fn filter_preserves_accuracy_on_surviving_windows() {
    let windows = session_windows(4103);
    // No retries: every window gets exactly one attempt, so clean and
    // faulted runs visit the same 323 windows and "surviving" is
    // well-defined (an ε window falls back to cache instead of burning the
    // windows behind it on re-polls).
    let config = || SupervisorConfig {
        max_retries: 0,
        ..SupervisorConfig::default()
    };
    let clean = FaultPlan::clean(0);
    let (clean_reports, _) = run_plan(&windows, &clean, config());
    let clean_acc = score(&windows, &clean_reports);

    // Plausible corruption (not instant ε): a slow drift on the
    // mean-level channel, comparable in size to the cue scale (cues are
    // O(0.1–4), the drift tops out around 0.7). The cues stay
    // classifiable-looking; only the quality measure can tell they left
    // the trained manifold.
    let plan = FaultPlan::new(
        17,
        vec![fault(FaultKind::Drift { rate: 0.008 }, Some(0), 40, 130)],
    )
    .unwrap();
    let (faulted_reports, _) = run_plan(&windows, &plan, config());
    let faulted_acc = score(&windows, &faulted_reports);

    eprintln!(
        "clean: unfiltered {:.3} ({} windows) filtered {:.3} ({} windows)",
        clean_acc.unfiltered(),
        clean_acc.unfiltered_total,
        clean_acc.filtered(),
        clean_acc.filtered_total
    );
    eprintln!(
        "faulted: unfiltered {:.3} ({} windows) filtered {:.3} ({} windows)",
        faulted_acc.unfiltered(),
        faulted_acc.unfiltered_total,
        faulted_acc.filtered(),
        faulted_acc.filtered_total
    );

    assert!(faulted_acc.filtered_total > 0, "filter accepted nothing");
    // (d) filtered accuracy within 5 points of the clean run...
    assert!(
        faulted_acc.filtered() >= clean_acc.filtered() - 0.05,
        "filtered accuracy collapsed: {:.3} vs clean {:.3}",
        faulted_acc.filtered(),
        clean_acc.filtered()
    );
    // ...while unfiltered consumption degrades.
    assert!(
        faulted_acc.unfiltered() <= clean_acc.unfiltered() - 0.02,
        "unfiltered accuracy did not degrade: {:.3} vs clean {:.3}",
        faulted_acc.unfiltered(),
        clean_acc.unfiltered()
    );
}

/// Corrupted streams must never panic the pipeline, whatever the fault —
/// including NaN-poisoned channels and whole-stream dropouts.
#[test]
fn no_fault_class_panics() {
    let windows = session_windows(4104);
    let kinds = vec![
        FaultKind::StuckAt(Some(500.0)),
        FaultKind::StuckAt(Some(-500.0)),
        FaultKind::StuckAt(None),
        FaultKind::Dropout,
        FaultKind::Spike {
            magnitude: 1e6,
            p: 1.0,
        },
        FaultKind::Drift { rate: 1e4 },
        FaultKind::Latency { windows: 30 },
        FaultKind::Flapping { period: 1 },
    ];
    for kind in kinds {
        for channel in [None, Some(0), Some(2)] {
            let plan = FaultPlan::new(23, vec![fault(kind, channel, 0, usize::MAX)]).unwrap();
            let (reports, _) = run_plan(&windows, &plan, SupervisorConfig::default());
            // Every step produced a report (fresh, cached, or an explicit
            // Unavailable) — nothing was silently lost.
            assert!(!reports.is_empty());
        }
    }
}

/// A stalled subscriber on a bounded bus: the publisher's latency stays
/// bounded, drop counters are exact, and healthy subscribers lose nothing.
#[test]
fn bounded_bus_survives_stalled_subscriber() {
    let event = |t: f64| ContextEvent {
        source: "pen".into(),
        context: Context::Writing,
        quality: Quality::Value(0.9),
        decision: Decision::Accept,
        timestamp: t,
    };
    let timeout = Duration::from_millis(25);
    let bus = EventBus::bounded(4, SlowSubscriberPolicy::Block { timeout }).unwrap();
    let stalled = bus.subscribe();
    let healthy = bus.subscribe();
    let n = 20usize;
    let mut worst = Duration::ZERO;
    for i in 0..n {
        let start = Instant::now();
        bus.publish(&event(i as f64));
        worst = worst.max(start.elapsed());
        // The healthy subscriber sees every event, in order, promptly.
        assert_eq!(healthy.recv().unwrap().timestamp, i as f64);
    }
    // The publisher never blocked past its configured timeout (plus
    // scheduling slack).
    assert!(
        worst < timeout + Duration::from_millis(100),
        "publish blocked {worst:?}, timeout was {timeout:?}"
    );
    // Drop counters are exact: the stalled queue holds 4, the rest shed.
    let health = bus.health();
    let stalled_stats = health.per_subscriber[0];
    let healthy_stats = health.per_subscriber[1];
    assert_eq!(stalled_stats.delivered, 4);
    assert_eq!(stalled_stats.dropped, (n - 4) as u64);
    assert_eq!(healthy_stats.delivered, n as u64);
    assert_eq!(healthy_stats.dropped, 0);
    assert_eq!(health.published, n as u64);
    // The stalled consumer finally drains: exactly the first 4 (Block policy
    // preserves order, sheds the overflow).
    let got: Vec<f64> = stalled.try_iter().map(|e| e.timestamp).collect();
    assert_eq!(got, vec![0.0, 1.0, 2.0, 3.0]);
}

/// Faulted windows served from cache carry their provenance: consumers can
/// tell fresh context from stale fallbacks.
#[test]
fn cached_fallbacks_are_marked_and_bounded() {
    let windows = session_windows(4105);
    let plan = FaultPlan::new(
        29,
        vec![fault(FaultKind::Dropout, None, 30, usize::MAX)],
    )
    .unwrap();
    let config = SupervisorConfig {
        cache_ttl: 3,
        ..SupervisorConfig::default()
    };
    let (reports, _) = run_plan(&windows, &plan, config);
    let cached: Vec<&StepReport> = reports
        .iter()
        .filter(|r| matches!(r.served, ServedContext::Cached { .. }))
        .collect();
    assert!(!cached.is_empty(), "no cached fallbacks served");
    for r in &cached {
        if let ServedContext::Cached { age_steps, .. } = r.served {
            assert!(age_steps <= 3, "cache served past its TTL: {age_steps}");
        }
        assert!(r.fault.is_some(), "cached serve without a fault signal");
    }
    // Once the cache expires the supervisor says so explicitly.
    assert!(reports
        .iter()
        .any(|r| r.served == ServedContext::Unavailable));
}
